#!/usr/bin/env python
"""Import-contract check: the generic pool layer must not know about MD.

Layering (DESIGN.md, "The real parallel engine"):

* ``repro.pool``  — generic supervised pool runtime; imports nothing
  from ``repro.md`` (or any other domain layer listed below).
* ``repro.md.tasks`` / ``repro.md.parallel`` — the MD workload and its
  orchestration; these may import ``repro.pool``, never the reverse.

The check is static (AST walk over every module in the forbidden-import
table), so it catches lazy/function-local imports too.  Run directly or
via ``tests/test_pool/test_layering.py``; CI runs it in the lint step.

Exit status: 0 clean, 1 violation(s) found.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: package -> import prefixes it must never reference
FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro/pool": ("repro.md", "repro.balancer", "repro.instrument"),
}


def imported_names(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.lineno, node.module


def check() -> list[str]:
    violations = []
    for package, banned in FORBIDDEN.items():
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for lineno, name in imported_names(tree):
                if any(
                    name == b or name.startswith(b + ".") for b in banned
                ):
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{package} must not import {name}"
                    )
    return violations


def main() -> int:
    violations = check()
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        return 1
    print("layering OK: repro.pool imports no domain layer")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
