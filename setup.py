"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs fail; this shim lets ``pip install -e .`` fall back
to the classic ``setup.py develop`` path (``--no-use-pep517`` is applied
automatically by older pips, or pass it explicitly).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
