#!/usr/bin/env python
"""Grainsize control (paper §4.2.1, Figures 1-2).

Builds the bR-like system, generates compute objects with and without pair
splitting, and prints the grainsize histograms — the bimodal distribution
with a long tail before, the collapsed distribution after.  Also shows the
"Amdahl corollary" the paper states: maximum speedup is bounded by
T_sequential / T_largest_object.

Run:  python examples/grainsize_study.py
"""

from repro.analysis.grainsize import format_histogram, histogram_from_descriptors
from repro.builder.benchmarks import br_like
from repro.core.computes import GrainsizeConfig, build_nonbonded_computes
from repro.core.decomposition import SpatialDecomposition
from repro.core.simulation import DEFAULT_COST_MODEL


def main() -> None:
    system = br_like()
    decomposition = SpatialDecomposition(system, cutoff=12.0)
    print(f"{system.name}: {system.n_atoms} atoms, "
          f"{decomposition.n_patches} patches\n")

    before = build_nonbonded_computes(
        decomposition,
        DEFAULT_COST_MODEL,
        GrainsizeConfig(split_self=True, split_pairs=False),
    )
    after = build_nonbonded_computes(
        decomposition,
        DEFAULT_COST_MODEL,
        GrainsizeConfig(split_self=True, split_pairs=True, target_load_s=0.005),
    )

    h_before = histogram_from_descriptors(before)
    h_after = histogram_from_descriptors(after)

    print(format_histogram(h_before, title="-- before pair splitting (Figure 1) --"))
    print()
    print(format_histogram(h_after, title="-- after pair splitting (Figure 2) --"))

    seq = sum(d.load for d in before)
    print("\nAmdahl corollary (paper §4.2.1): speedup <= T_seq / T_largest:")
    print(f"  before: {seq:.2f} / {h_before.max_grainsize_ms / 1e3:.4f} "
          f"= {seq / (h_before.max_grainsize_ms / 1e3):.0f}")
    print(f"  after:  {seq:.2f} / {h_after.max_grainsize_ms / 1e3:.4f} "
          f"= {seq / (h_after.max_grainsize_ms / 1e3):.0f}")


if __name__ == "__main__":
    main()
