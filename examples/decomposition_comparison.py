#!/usr/bin/env python
"""Why hybrid force/spatial decomposition (paper §3).

Compares the classic parallelization schemes' modeled step times and
communication-to-computation ratios against the full NAMD-style simulation,
on ApoA-I-sized parameters.  Reproduces the paper's qualitative claim:
replication and atom decomposition saturate early, force decomposition is
competitive to medium scale, spatial-family schemes keep scaling.

Run:  python examples/decomposition_comparison.py
"""

from repro.baselines.schemes import (
    AtomDecompositionModel,
    AtomReplicationModel,
    ForceDecompositionModel,
    SpatialDecompositionModel,
)
from repro.runtime.machine import ASCI_RED

N_ATOMS = 92_224
SEQUENTIAL_S = 57.04
BOX_VOLUME = 108.86 * 108.86 * 77.76


def main() -> None:
    common = dict(
        n_atoms=N_ATOMS, sequential_work_s=SEQUENTIAL_S, machine=ASCI_RED
    )
    models = [
        AtomReplicationModel(**common),
        AtomDecompositionModel(**common),
        ForceDecompositionModel(**common),
        SpatialDecompositionModel(**common, box_volume_A3=BOX_VOLUME),
    ]
    procs = [1, 8, 32, 128, 512, 1024, 2048]

    print("Speedup by scheme (ApoA-I-sized workload, ASCI-Red machine model)")
    header = f"{'P':>6}" + "".join(f"{m.name:>22}" for m in models)
    print(header)
    for p in procs:
        row = f"{p:>6}" + "".join(f"{m.speedup(p):>22.1f}" for m in models)
        print(row)

    print("\nCommunication / computation ratio (the §3 scalability criterion)")
    print(header)
    for p in procs:
        row = f"{p:>6}" + "".join(f"{m.comm_ratio(p):>22.3f}" for m in models)
        print(row)

    print(
        "\nReading: the ratio *grows* with P for replication, atom and force"
        "\ndecomposition (theoretically non-scalable) but stays bounded for"
        "\nspatial decomposition — the hybrid scheme inherits this bound and"
        "\nadds migratable per-pair objects so the balancer can use more"
        "\nprocessors than there are patches."
    )


if __name__ == "__main__":
    main()
