#!/usr/bin/env python
"""Physical sanity of the MD engine: liquid-water structure and dynamics.

Runs NVE water with the sequential engine, then computes the standard
observables: the O-O radial distribution function (first peak near 2.8 Å
for liquid water), mean squared displacement, and the velocity
autocorrelation function.

Run:  python examples/water_structure.py
"""

import numpy as np

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions
from repro.md.observables import (
    mean_squared_displacement,
    radial_distribution,
    velocity_autocorrelation,
)


def main() -> None:
    system = small_water_box(216, seed=7)
    system.assign_velocities(300.0, seed=1)
    engine = SequentialEngine(
        system, NonbondedOptions(cutoff=8.0, switch_dist=7.0), VelocityVerlet(dt=1.0)
    )

    positions, velocities = [], []
    for step in range(30):
        engine.step()
        if step % 3 == 0:
            positions.append(system.positions.copy())
            velocities.append(system.velocities.copy())

    oxygens = np.flatnonzero(
        system.type_indices == system.forcefield.atom_type_index("OT")
    )
    r, g = radial_distribution(
        system.positions, system.box, r_max=system.box.min() / 2 * 0.99,
        n_bins=40, subset=oxygens,
    )
    print("O-O radial distribution function:")
    peak = 0.0
    for ri, gi in zip(r, g):
        bar = "#" * int(round(18 * gi))
        print(f"  r={ri:5.2f} Å  g={gi:5.2f} |{bar}")
        if gi > peak:
            peak, peak_r = gi, ri
    print(f"first peak: g={peak:.2f} at r={peak_r:.2f} Å "
          "(liquid water: ~2.8 Å)\n")

    msd = mean_squared_displacement(positions)
    vacf = velocity_autocorrelation(velocities)
    print("frame   MSD (Å²)   VACF")
    for f, (m, c) in enumerate(zip(msd, vacf)):
        print(f"{f:>5} {m:>10.4f} {c:>6.3f}")


if __name__ == "__main__":
    main()
