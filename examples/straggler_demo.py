#!/usr/bin/env python
"""Why *measurement-based* load balancing (paper §2.1, ref [3]).

Runs the mini assembly on a simulated 8-processor cluster where two
processors run at one-third speed (external load / slower nodes).  The
cost model cannot know this — it predicts identical object times on every
processor — so a balancer fed model loads keeps overloading the
stragglers, while the measurement-fed balancer sees the inflated object
times and routes work away, exactly the paper's argument:

    "a runtime system can employ a measurement-based approach: it can
    measure the object computation and communication patterns over a
    period of time, and base its object remapping decisions on these
    measurements"

Run:  python examples/straggler_demo.py
"""

import numpy as np

from repro.builder.benchmarks import mini_assembly
from repro.core import ParallelSimulation, SimulationConfig
from repro.core.problem import DecomposedProblem
from repro.core.simulation import DEFAULT_COST_MODEL


def run(problem, use_measured: bool, factors):
    cfg = SimulationConfig(
        n_procs=8,
        use_measured_loads=use_measured,
        proc_speed_factors=factors,
        lb_schedule=("greedy+refine", "refine", "refine"),
    )
    return ParallelSimulation(problem.system, cfg, problem=problem).run()


def main() -> None:
    system = mini_assembly()
    problem = DecomposedProblem.build(system, DEFAULT_COST_MODEL)
    factors = np.ones(8)
    factors[1] = factors[5] = 3.0
    print("8 simulated processors; procs 1 and 5 run at 1/3 speed\n")
    print(f"{'balancer input':>18} {'ms/step':>9} {'phase trajectory (ms)':>40}")
    for use_measured, label in ((False, "cost model"), (True, "measurements")):
        res = run(problem, use_measured, factors)
        trajectory = " -> ".join(
            f"{p.timings.time_per_step * 1e3:.1f}" for p in res.phases
        )
        print(f"{label:>18} {res.time_per_step * 1e3:>9.2f} {trajectory:>40}")
    print(
        "\nThe measured-load balancer converges to a faster steady state by"
        "\nmigrating work off the stragglers that only measurement reveals."
    )


if __name__ == "__main__":
    main()
