#!/usr/bin/env python
"""Measurement-based load balancing in action (paper §3.2).

Runs the bR-like vacuum protein — the paper's stress test for load
imbalance (all atoms concentrated in a few patches) — across the three LB
stages and compares the paper's strategy against the baselines.

Run:  python examples/load_balancing_demo.py
"""

from repro.builder.benchmarks import br_like
from repro.core import ParallelSimulation, SimulationConfig
from repro.core.problem import DecomposedProblem
from repro.core.simulation import DEFAULT_COST_MODEL


def show_three_stage_cycle(problem) -> None:
    print("=== Three-stage LB cycle (paper §3.2) on bR @ 32 processors ===")
    cfg = SimulationConfig(n_procs=32)
    result = ParallelSimulation(problem.system, cfg, problem=problem).run()
    for phase in result.phases:
        t = phase.timings.time_per_step
        print(
            f"  after {phase.strategy_applied:>13}: {t * 1e3:8.2f} ms/step  "
            f"(imbalance x{phase.stats['imbalance_ratio']:.2f}, "
            f"{phase.stats['n_proxies']:.0f} proxies)"
        )
    print(f"  speedup: {result.speedup:.1f} on 32 processors\n")


def compare_strategies(problem) -> None:
    print("=== Strategy comparison @ 32 processors ===")
    print(f"{'strategy':>18} {'ms/step':>9} {'imbalance':>10} {'proxies':>8}")
    for schedule, label in [
        ((), "none (static)"),
        (("random",), "random"),
        (("round_robin",), "round robin"),
        (("greedy_load_only",), "load-only greedy"),
        (("greedy",), "paper greedy"),
        (("greedy+refine", "refine"), "greedy+refine"),
    ]:
        cfg = SimulationConfig(n_procs=32, lb_schedule=schedule)
        result = ParallelSimulation(problem.system, cfg, problem=problem).run()
        final = result.final
        print(
            f"{label:>18} {final.timings.time_per_step * 1e3:>9.2f} "
            f"x{final.stats['imbalance_ratio']:>9.2f} "
            f"{final.stats['n_proxies']:>8.0f}"
        )
    print()


def show_audit(problem) -> None:
    from repro.analysis.audit import performance_audit

    print("=== Performance audit (Table 1 style) @ 32 processors ===")
    cfg = SimulationConfig(n_procs=32)
    result = ParallelSimulation(problem.system, cfg, problem=problem).run()
    print(performance_audit(result).format())


if __name__ == "__main__":
    system = br_like()
    problem = DecomposedProblem.build(system, DEFAULT_COST_MODEL)
    print(f"bR-like system: {system.n_atoms} atoms, "
          f"{problem.decomposition.n_patches} patches, "
          f"{len(problem.descriptors)} compute objects\n")
    show_three_stage_cycle(problem)
    compare_strategies(problem)
    show_audit(problem)
