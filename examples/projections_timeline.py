#!/usr/bin/env python
"""Projections-style timeline views and the multicast optimization
(paper §4.1, §4.2.3, Figures 3-4).

Runs the mini assembly twice on a simulated 8-processor machine — once with
the naive multicast (pack per destination) and once with the optimized one
(pack once) — and renders Upshot-style timelines of the same step window so
the shortened integration blocks are visible, as in Figures 3 vs 4.

Run:  python examples/projections_timeline.py
"""

from repro.analysis.timeline import render_timeline
from repro.builder.benchmarks import mini_assembly
from repro.core import ParallelSimulation, SimulationConfig
from repro.core.problem import DecomposedProblem
from repro.core.simulation import DEFAULT_COST_MODEL


def run(problem, optimized: bool):
    cfg = SimulationConfig(
        n_procs=8,
        optimized_multicast=optimized,
        trace_final_phase=True,
    )
    return ParallelSimulation(problem.system, cfg, problem=problem).run()


def main() -> None:
    system = mini_assembly()
    problem = DecomposedProblem.build(system, DEFAULT_COST_MODEL)

    for optimized in (False, True):
        result = run(problem, optimized)
        trace = result.final.trace
        times = result.final.timings.completion_times
        t0, t1 = times[-3], times[-1]  # a two-step window, as in the paper
        label = "optimized" if optimized else "naive"
        print(f"--- {label} multicast: "
              f"{result.time_per_step * 1e3:.2f} ms/step ---")
        print(render_timeline(trace, procs=list(range(8)), t0=t0, t1=t1,
                              width=96))
        summary = result.final.summary
        integ = summary.time_per_category.get("integration", 0.0)
        send = summary.send_overhead_per_proc.sum()
        print(f"integration work {integ * 1e3:.2f} ms, "
              f"send/pack overhead {send * 1e3:.2f} ms "
              f"(over {result.config.steps_per_phase} steps)\n")


if __name__ == "__main__":
    main()
