#!/usr/bin/env python
"""Fault tolerance on the *real* parallel engine (PR 6).

PR 1 gave the simulated runtime deterministic fault injection and
double-checkpoint recovery.  This demo does the same thing to live OS
processes: it runs a water box on the supervised
:class:`~repro.md.parallel.ParallelEngine`, SIGKILLs one worker and
SIGSTOPs another mid-run via a :class:`~repro.md.resilience.WorkerFaultPlan`,
and shows that the supervisor detects each fault, respawns the worker, and
finishes with a trajectory **bit-identical** to an unfaulted run — the
payoff of task-ordered force reduction plus reference-position binning
(a respawned worker rebuilds the dead worker's pair lists mid-skin-window
from the shared reference positions, so the rebuild schedule never shifts).

Also demonstrated: an atomic disk checkpoint written mid-run, then a resume
from it that lands on the same trajectory.

Run:  python examples/resilience_demo.py
"""

import numpy as np

from repro.builder import small_water_box
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import ParallelEngine
from repro.md.resilience import RecoveryPolicy, WorkerFaultPlan
from repro.runtime.checkpoint import load_run_checkpoint, restore_run_checkpoint

WATERS = 600
OPTS = NonbondedOptions(cutoff=8.0)
STEPS = 6


def fresh_system():
    system = small_water_box(WATERS, seed=7, relax=False)
    system.assign_velocities(300.0, seed=5)
    return system


def run(fault=None, policy=None, **engine_kwargs):
    system = fresh_system()
    with ParallelEngine(
        system,
        options=OPTS,
        workers=2,
        timeout=30.0,
        fault_plan=fault,
        recovery=policy,
        **engine_kwargs,
    ) as engine:
        assert engine.parallel
        reports = engine.run(STEPS)
        resilience = engine.resilience
    return system, reports[-1].total, resilience


def main() -> None:
    print(f"{WATERS * 3} atoms, 2 workers, {STEPS} steps\n")

    print("clean run ...")
    clean_system, clean_energy, _ = run()

    print("faulted run: SIGKILL worker 1 at step 2, SIGSTOP worker 0 at step 4")
    fault = WorkerFaultPlan.parse("kill=1@2,hang=0@4")
    policy = RecoveryPolicy(respawn_backoff_s=0.01, hang_timeout_s=2.0)
    faulted_system, faulted_energy, res = run(fault=fault, policy=policy)

    print(f"\n  pool mode after recovery: {res.mode}")
    for ev in res.events:
        print(
            f"  step {ev.step}: worker {ev.worker} {ev.kind} -> {ev.action} "
            f"(detected in {ev.detection_s:.3f}s, healed in {ev.recovery_s:.3f}s)"
        )
    identical = np.array_equal(clean_system.positions, faulted_system.positions)
    print(f"\n  energy clean   : {clean_energy:+.10f} kcal/mol")
    print(f"  energy faulted : {faulted_energy:+.10f} kcal/mol")
    print(f"  trajectory bit-identical to the unfaulted run: {identical}")

    print("\ncheckpoint/resume: write at step 3, resume, continue to step", STEPS)
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.ckpt"
        ckpt_system = fresh_system()
        with ParallelEngine(
            ckpt_system,
            options=OPTS,
            workers=2,
            timeout=30.0,
            checkpoint_every=3,
            checkpoint_path=path,
        ) as engine:
            engine.run(STEPS - 1)  # one checkpoint lands at step 3

        resumed_system = fresh_system()
        with ParallelEngine(
            resumed_system, options=OPTS, workers=2, timeout=30.0
        ) as engine:
            cp = load_run_checkpoint(path)
            restore_run_checkpoint(engine, cp)
            print(f"  resumed from step {cp.step}")
            engine.run(STEPS - 1 - cp.step)

        identical = np.array_equal(
            ckpt_system.positions, resumed_system.positions
        )
        print(f"  resumed trajectory bit-identical to checkpointed run: {identical}")


if __name__ == "__main__":
    main()
