#!/usr/bin/env python
"""Multiple timestepping (extension; paper §1 mentions MTS as standard
practice with full electrostatics).

Runs the same water box with plain velocity Verlet and with the impulse
r-RESPA integrator at several inner-step counts, reporting energy drift and
the non-bonded work saved — the practical trade MTS offers.

Run:  python examples/mts_demo.py
"""

import time

import numpy as np

from repro.builder import small_water_box
from repro.md.mts import MTSEngine
from repro.md.nonbonded import NonbondedOptions

TOTAL_FS = 24.0
DT = 0.5


def run_mts(n_inner: int):
    system = small_water_box(125, seed=9).copy()
    system.assign_velocities(300.0, seed=4)
    engine = MTSEngine(
        system,
        dt=DT,
        n_inner=n_inner,
        options=NonbondedOptions(cutoff=7.0, switch_dist=6.0),
    )
    n_outer = int(TOTAL_FS / (DT * n_inner))
    t0 = time.perf_counter()
    reports = engine.run(n_outer)
    wall = time.perf_counter() - t0
    totals = np.array([r.total for r in reports])
    drift = abs(totals[-1] - totals[0]) / abs(totals[0])
    return drift, wall, engine.nonbonded_evaluations_saved


def main() -> None:
    print(f"{TOTAL_FS:.0f} fs of water dynamics at dt={DT} fs (125 waters)\n")
    print(f"{'inner steps':>12} {'energy drift':>13} {'NB evals saved':>15} "
          f"{'wall (s)':>9}")
    for n_inner in (1, 2, 4):
        drift, wall, saved = run_mts(n_inner)
        print(f"{n_inner:>12} {drift:>13.2e} {saved:>14.0%} {wall:>9.2f}")
    print(
        "\nLarger inner-step counts skip non-bonded evaluations (the 80%+"
        "\ncost component) at modest energy-drift cost, until resonance"
        "\nlimits bite — the standard MTS trade-off."
    )


if __name__ == "__main__":
    main()
