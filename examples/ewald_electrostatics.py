#!/usr/bin/env python
"""Full periodic electrostatics via Ewald summation (extension).

The paper's scaling study covers the cutoff atom-based force components and
notes that full electrostatics adds a small grid/k-space component (§1).
This example exercises that component:

1. validates the implementation against the NaCl Madelung constant, and
2. compares the cutoff (switched/shifted) electrostatic energy of a water
   box against the exact Ewald value, showing what a cutoff approximates.

Run:  python examples/ewald_electrostatics.py
"""

import numpy as np

from repro.builder import small_water_box
from repro.builder.ions import ensure_ion_types
from repro.md.constants import COULOMB_CONSTANT
from repro.md.ewald import EwaldOptions, compute_ewald
from repro.md.forcefield import default_forcefield
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded
from repro.md.system import MolecularSystem
from repro.md.topology import Topology


def madelung_demo() -> None:
    print("=== 1. NaCl lattice: recover the Madelung constant ===")
    a = 5.64  # lattice constant, Å
    ff = default_forcefield()
    ensure_ion_types(ff)
    ncell = 2
    pos, q, ti = [], [], []
    for i in range(2 * ncell):
        for j in range(2 * ncell):
            for k in range(2 * ncell):
                charge = 1.0 if (i + j + k) % 2 == 0 else -1.0
                pos.append([i, j, k])
                q.append(charge)
                ti.append(ff.atom_type_index("SOD" if charge > 0 else "CLA"))
    half = a / 2
    system = MolecularSystem(
        positions=np.array(pos, float) * half,
        velocities=np.zeros((len(pos), 3)),
        charges=np.array(q),
        type_indices=np.array(ti),
        topology=Topology(),
        forcefield=ff,
        box=np.array([2 * ncell * half] * 3),
    )
    res = compute_ewald(system, EwaldOptions(cutoff=5.6, kmax=10))
    n = system.n_atoms
    madelung = -res.energy * half / (COULOMB_CONSTANT * (n / 2))
    print(f"ions: {n}; Ewald energy {res.energy:.3f} kcal/mol")
    print(f"Madelung constant: {madelung:.6f}  (literature: 1.747565)\n")


def cutoff_vs_ewald() -> None:
    print("=== 2. Water box: cutoff electrostatics vs exact Ewald ===")
    system = small_water_box(125, seed=9)
    exact = compute_ewald(system, EwaldOptions(cutoff=7.0, kmax=8))
    print(f"{'scheme':>28} {'elec energy (kcal/mol)':>24}")
    print(f"{'Ewald (exact)':>28} {exact.energy:>24.2f}")
    for cutoff in (6.0, 7.0, 7.2):
        cut = compute_nonbonded(system, NonbondedOptions(cutoff=cutoff))
        print(f"{f'shifted cutoff {cutoff:.1f} Å':>28} {cut.energy_elec:>24.2f}")
    print(
        "\nThe shifted cutoff deviates from the exact periodic sum, and the"
        "\nerror moves with the cutoff choice — that gap is what PME-style"
        "\ngrid components recover; the paper's parallelization applies"
        "\nunchanged to the atom-based part."
    )


if __name__ == "__main__":
    madelung_demo()
    cutoff_vs_ewald()
