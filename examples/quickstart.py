#!/usr/bin/env python
"""Quickstart: real molecular dynamics with the sequential engine, then the
same system on the simulated parallel machine.

Run:  python examples/quickstart.py
"""

from repro.builder import small_water_box
from repro.builder.benchmarks import mini_assembly
from repro.core import ParallelSimulation, SimulationConfig
from repro.md import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions


def run_sequential_md() -> None:
    print("=== 1. Sequential MD: 216-water box, NVE, 20 fs ===")
    system = small_water_box(216, seed=7)
    system.assign_velocities(300.0, seed=1)
    engine = SequentialEngine(
        system,
        NonbondedOptions(cutoff=8.0, switch_dist=7.0),
        VelocityVerlet(dt=1.0),
    )
    print(f"{'step':>5} {'kinetic':>10} {'LJ':>10} {'elec':>10} "
          f"{'bonded':>10} {'total':>12} {'T (K)':>8}")
    for i in range(20):
        rep = engine.step()
        if i % 4 == 3 or i == 0:
            print(
                f"{rep.step:>5} {rep.kinetic:>10.2f} {rep.lj:>10.2f} "
                f"{rep.elec:>10.2f} {rep.bonded.total:>10.2f} "
                f"{rep.total:>12.4f} {system.temperature():>8.1f}"
            )
    print("Total energy is conserved to ~0.1% — the kernels are symplectic-"
          "integrator clean.\n")


def run_parallel_simulation() -> None:
    print("=== 2. Parallel MD on a simulated 16-processor machine ===")
    system = mini_assembly()
    config = SimulationConfig(n_procs=16)
    result = ParallelSimulation(system, config).run()
    print(f"system: {system.name} ({system.n_atoms} atoms), "
          f"{result.counts.nonbonded_pairs} non-bonded pairs/step")
    for phase in result.phases:
        print(
            f"  phase {phase.phase} ({phase.strategy_applied:>13}): "
            f"{phase.timings.time_per_step * 1e3:8.2f} ms/step, "
            f"imbalance x{phase.stats['imbalance_ratio']:.2f}, "
            f"{phase.stats['n_proxies']:.0f} proxies"
        )
    print(f"sequential reference: {result.sequential_reference_s * 1e3:.1f} ms/step")
    print(f"speedup on 16 processors: {result.speedup:.1f}")


if __name__ == "__main__":
    run_sequential_md()
    run_parallel_simulation()
