#!/usr/bin/env python
"""Fault-tolerant runtime: kill a processor mid-run, finish anyway (extension).

The paper's runtime assumptions (migratable objects, measurement-based
load database, message-driven scheduling) are exactly the ingredients of
the in-memory double-checkpointing protocols later built on Charm++.
This demo exercises the reproduction's resilience layer:

1. a deterministic fail-stop fault kills one simulated processor mid-run;
   the runtime detects it, restores the latest surviving checkpoint onto
   the buddy processors, rebalances around the dead processor, and
   replays — the run completes with one fewer processor;
2. the headline invariant: with real kernels (numeric mode), the
   recovered trajectory matches the fault-free one to ~1e-15 — recovery
   is bit-for-bit up to floating-point reassociation;
3. message-level faults (drop/delay/duplicate) degrade timing but never
   correctness, and the whole schedule is reproducible from one seed.

Run:  python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro.builder import mini_assembly, small_water_box
from repro.core import ParallelSimulation, SimulationConfig
from repro.runtime.faults import FaultPlan


def timing_demo() -> None:
    print("=" * 72)
    print("1. Surviving a processor failure (timing mode, mini assembly)")
    print("=" * 72)
    system = mini_assembly()

    base = dict(n_procs=8, lb_schedule=("greedy+refine", "refine"))
    clean = ParallelSimulation(system, SimulationConfig(**base)).run()
    print(f"fault-free      : {clean.time_per_step * 1e3:8.2f} ms/step")

    # kill processor 3 partway through; checkpoint every 2 rounds
    plan = FaultPlan.parse(f"seed=11,kill=3@{clean.time_per_step * 2:.6f}")
    cfg = SimulationConfig(**base, fault_plan=plan, checkpoint_interval=2)
    res = ParallelSimulation(system, cfg).run()
    rec = res.recovery
    print(f"with proc death : {res.time_per_step * 1e3:8.2f} ms/step "
          f"(finished on {cfg.n_procs - len(res.dead_procs)} live procs)")
    print(f"  dead processors      {list(res.dead_procs)}")
    print(f"  checkpoints taken    {rec.checkpoints_taken}"
          f" ({rec.checkpoint_time_s * 1e3:.2f} ms modeled)")
    print(f"  detection latency    {rec.detection_latency_s * 1e3:.3f} ms")
    print(f"  steps replayed       {rec.steps_replayed}")
    print(f"  recovery wall-clock  {rec.recovery_time_s * 1e3:.2f} ms")
    assert res.dead_procs, "the injected failure should have fired"
    assert all(p not in res.dead_procs for p in res.final.placement.values())


def numeric_invariant_demo() -> None:
    print()
    print("=" * 72)
    print("2. Recovery preserves the trajectory (numeric mode, 100 waters)")
    print("=" * 72)
    system = small_water_box(100, seed=4)
    system.assign_velocities(300.0, seed=9)

    base = dict(
        n_procs=4, numeric=True, dt=1.0, cutoff=6.0,
        lb_schedule=(), steps_per_phase=6, measure_last=1,
    )
    ref = ParallelSimulation(system, SimulationConfig(**base)).run_phase_only()
    ref_pos = ref.backend.positions.copy()
    ref_vel = ref.backend.velocities.copy()

    # kill a processor just before round 3 completes
    t_kill = ref.timings.completion_times[2] * 0.9
    plan = FaultPlan.parse(f"seed=5,kill=1@{t_kill:.9f}")
    cfg = SimulationConfig(**base, fault_plan=plan, checkpoint_interval=2)
    faulted = ParallelSimulation(system, cfg).run_phase_only()

    dpos = np.abs(faulted.backend.positions - ref_pos).max()
    dvel = np.abs(faulted.backend.velocities - ref_vel).max()
    print(f"processor 1 killed at t={t_kill * 1e3:.3f} ms "
          f"(steps replayed: {faulted.recovery.steps_replayed})")
    print(f"max |delta position| vs fault-free : {dpos:.3e} A")
    print(f"max |delta velocity| vs fault-free : {dvel:.3e} A/fs")
    ok = np.allclose(faulted.backend.positions, ref_pos,
                     rtol=1e-12, atol=1e-12)
    print(f"identical within 1e-12             : {ok}")
    assert ok and dvel < 1e-12


def message_fault_demo() -> None:
    print()
    print("=" * 72)
    print("3. Graceful degradation under message faults (timing mode)")
    print("=" * 72)
    system = mini_assembly()
    base = dict(n_procs=8, lb_schedule=("greedy+refine",))

    clean = ParallelSimulation(system, SimulationConfig(**base)).run()
    rows = [("none", clean, None)]
    for spec in ("seed=3,drop=0.02", "seed=3,drop=0.02,delay=0.05@1e-4,dup=0.02"):
        plan = FaultPlan.parse(spec)
        cfg = SimulationConfig(**base, fault_plan=plan)
        rows.append((spec, ParallelSimulation(system, cfg).run(), plan))

    print(f"{'fault spec':>44} {'ms/step':>9}  dropped/delayed/duplicated")
    for spec, res, plan in rows:
        rec = res.recovery
        counts = ("-" if plan is None else
                  f"{rec.messages_dropped}/{rec.messages_delayed}"
                  f"/{rec.messages_duplicated}")
        print(f"{spec:>44} {res.time_per_step * 1e3:>9.2f}  {counts}")

    # determinism: the same seed reproduces the same run exactly
    cfg = SimulationConfig(**base, fault_plan=rows[-1][2])
    again = ParallelSimulation(system, cfg).run()
    same = again.time_per_step == rows[-1][1].time_per_step
    print(f"\nsame seed, same run twice -> identical step time: {same}")
    assert same


def main() -> None:
    timing_demo()
    numeric_invariant_demo()
    message_fault_demo()
    print("\nAll fault-tolerance invariants hold.")


if __name__ == "__main__":
    main()
