"""E3 — Table 3: BC1 (206,617 atoms) scaling on ASCI-Red, 2..2048 procs.

The paper's largest benchmark and headline result: speedup 1252 on 2048
processors.  "As expected, the larger problem makes better use of large
numbers of processors" — asserted below by comparing 2048-proc efficiency
against ApoA-I's.
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE2_APOA1_ASCI, TABLE3_BC1_ASCI
from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ASCI_RED

PROCS = sorted(TABLE3_BC1_ASCI)


@pytest.fixture(scope="module")
def rows(bc1_problem):
    cfg = SimulationConfig(n_procs=2, machine=ASCI_RED)
    return scaling_sweep(bc1_problem, cfg, PROCS, baseline_procs=2)


def test_table3_regenerate(benchmark, rows, results_dir):
    def render():
        return format_scaling_table(
            rows,
            title="Table 3 (reproduced): BC1 on ASCI-Red (speedup baseline: 2 procs = 2.0)",
            paper_speedups={p: v["speedup"] for p, v in TABLE3_BC1_ASCI.items()},
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table3_bc1_asci", text)


def test_two_processor_time_near_paper(rows):
    """Paper: 74.2 s/step on two processors."""
    assert rows[0].time_per_step == pytest.approx(
        TABLE3_BC1_ASCI[2]["time"], rel=0.35
    )


def test_speedup_monotone(rows):
    speeds = [r.speedup for r in rows]
    assert speeds == sorted(speeds)


def test_rows_within_factor_of_paper(rows):
    for r in rows:
        ref = TABLE3_BC1_ASCI[r.procs]["speedup"]
        assert 0.55 * ref <= r.speedup <= 1.8 * ref, (r.procs, r.speedup, ref)


def test_headline_speedup_band(rows):
    """Paper headline: 1252 on 2048 processors."""
    by_procs = {r.procs: r for r in rows}
    assert by_procs[2048].speedup > 900


def test_larger_problem_scales_better_than_apoa1(rows):
    """BC1's 2048-proc efficiency exceeds ApoA-I's published 997/2048 —
    the 'larger problem makes better use' claim, checked against our own
    ApoA-I reproduction anchor (the paper ratio is 1252/997 = 1.26)."""
    by_procs = {r.procs: r for r in rows}
    eff_bc1 = by_procs[2048].speedup / 2048
    paper_eff_apoa1 = TABLE2_APOA1_ASCI[2048]["speedup"] / 2048
    assert eff_bc1 > paper_eff_apoa1
