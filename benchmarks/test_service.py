"""Simulation-service throughput: packed concurrent jobs vs serial.

The service's pitch is utilization: many small jobs multiplexed onto
shared capacity should finish sooner wall-clock than the same jobs run
one after another, because slices of different jobs overlap (engine
waits release the GIL) and the cross-job balancer packs cheap jobs
around expensive ones instead of queuing them behind it.

This benchmark runs one mixed batch of jobs twice:

* **serial** — each job solo, one after another (lanes=1, one at a time);
* **packed** — all jobs submitted at once to a service with several
  concurrency lanes.

and records jobs/hour for both plus the speedup.  On a **single-core
host the speedup gate is skipped and the number is close to 1.0** —
sequential engines are pure compute, so lanes time-slice one CPU and
only scheduling overhead shows.  Real overlap needs real cores (or jobs
dominated by worker-pool waits); ``cpu_count`` is recorded so readers
can tell which regime produced the number.

Results land in ``benchmarks/results/BENCH_service.json`` (+ ``.txt``).
Environment knobs for CI: ``SERVICE_BENCH_JOBS`` (default ``6``),
``SERVICE_BENCH_STEPS`` (default ``8``).
"""

import json
import os
import time
from pathlib import Path

from repro.md.jobs import SimSpec
from repro.service import SimulationService
from repro.util.cpus import available_cpu_count

RESULTS_DIR = Path(__file__).parent / "results"

N_JOBS = int(os.environ.get("SERVICE_BENCH_JOBS", "6"))
STEPS = int(os.environ.get("SERVICE_BENCH_STEPS", "8"))
#: packed must beat serial by this factor — asserted only with >= 4 cores,
#: where lanes map onto real parallelism instead of time-slicing
MIN_PACKED_SPEEDUP = 1.15
MIN_CORES_FOR_GATE = 4


def _batch_specs() -> list[SimSpec]:
    """A mixed batch: mostly small jobs plus one heavier straggler."""
    specs = [
        SimSpec(waters=20 + 5 * (i % 3), steps=STEPS, seed=100 + i)
        for i in range(N_JOBS - 1)
    ]
    specs.append(SimSpec(waters=60, steps=STEPS, seed=99))
    return specs


def _run_batch(specs, lanes: int, workdir) -> float:
    """Wall seconds to run the whole batch on a service with ``lanes``."""
    svc = SimulationService(
        worker_slots=2, lanes=lanes, slice_steps=4, workdir=workdir
    )
    t0 = time.perf_counter()
    with svc:
        for i, spec in enumerate(specs):
            svc.submit(spec, job_id=f"bench-{i:02d}")
        svc.run_until_idle(timeout=1200)
        wall = time.perf_counter() - t0
        bad = [j.id for j in svc.jobs() if j.state.value != "completed"]
        assert not bad, f"jobs did not complete: {bad}"
    return wall


def test_service_throughput(tmp_path):
    specs = _batch_specs()
    cores = available_cpu_count()

    serial_wall = _run_batch(specs, lanes=1, workdir=tmp_path / "serial")
    packed_wall = _run_batch(specs, lanes=3, workdir=tmp_path / "packed")

    serial_jph = len(specs) / serial_wall * 3600.0
    packed_jph = len(specs) / packed_wall * 3600.0
    speedup = serial_wall / packed_wall

    result = {
        "n_jobs": len(specs),
        "steps_per_job": STEPS,
        "cpu_count": cores,
        "serial": {"wall_s": serial_wall, "jobs_per_hour": serial_jph},
        "packed": {
            "wall_s": packed_wall,
            "jobs_per_hour": packed_jph,
            "lanes": 3,
        },
        "speedup": speedup,
        "gated": cores >= MIN_CORES_FOR_GATE,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    lines = [
        "Simulation service throughput: packed vs serial",
        f"  {len(specs)} jobs x {STEPS} steps, host cores: {cores}",
        "",
        f"  {'mode':>8} {'wall s':>10} {'jobs/hour':>12}",
        f"  {'serial':>8} {serial_wall:>10.2f} {serial_jph:>12.0f}",
        f"  {'packed':>8} {packed_wall:>10.2f} {packed_jph:>12.0f}",
        "",
        f"  speedup (serial/packed): {speedup:.2f}x",
    ]
    if cores < MIN_CORES_FOR_GATE:
        lines.append(
            f"  NOTE: {cores}-core host — lanes time-slice one CPU, so this"
        )
        lines.append(
            "  measures scheduling overhead only; speedup gate skipped."
        )
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / "BENCH_service.txt").write_text(text)
    print("\n" + text)

    # completing every job with correct accounting is always asserted;
    # the throughput gate only where cores make it meaningful
    if cores >= MIN_CORES_FOR_GATE:
        assert speedup >= MIN_PACKED_SPEEDUP, (
            f"packed ran {speedup:.2f}x vs serial "
            f"(floor {MIN_PACKED_SPEEDUP}x on a {cores}-core host)"
        )
