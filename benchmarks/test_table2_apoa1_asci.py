"""E2 — Table 2: ApoA-I (92,224 atoms) scaling on ASCI-Red, 1..2048 procs.

Regenerates the table's three columns (time/step, speedup, GFLOPS) on the
simulated ASCI-Red and checks the *shape* against the paper: near-perfect
scaling through 128 processors, graceful saturation by 2048 (paper: 997).
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE2_APOA1_ASCI
from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ASCI_RED

PROCS = sorted(TABLE2_APOA1_ASCI)


@pytest.fixture(scope="module")
def rows(apoa1_problem):
    cfg = SimulationConfig(n_procs=1, machine=ASCI_RED)
    return scaling_sweep(apoa1_problem, cfg, PROCS, baseline_procs=1)


def test_table2_regenerate(benchmark, rows, results_dir):
    def render():
        return format_scaling_table(
            rows,
            title="Table 2 (reproduced): ApoA-I on ASCI-Red",
            paper_speedups={p: v["speedup"] for p, v in TABLE2_APOA1_ASCI.items()},
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table2_apoa1_asci", text)


def test_single_processor_time_matches_paper(rows):
    """Paper: 57.1 s/step on one ASCI-Red processor (the calibration anchor)."""
    t1 = rows[0].time_per_step
    assert t1 == pytest.approx(TABLE2_APOA1_ASCI[1]["time"], rel=0.05)


def test_single_processor_gflops_matches_paper(rows):
    assert rows[0].gflops == pytest.approx(TABLE2_APOA1_ASCI[1]["gflops"], rel=0.25)


def test_speedup_monotone(rows):
    speeds = [r.speedup for r in rows]
    assert speeds == sorted(speeds)


def test_near_linear_through_128(rows):
    for r in rows:
        if r.procs <= 128:
            assert r.speedup > 0.85 * r.procs, (r.procs, r.speedup)


def test_saturation_shape_at_high_p(rows):
    """Scaling must bend: efficiency at 2048 well below efficiency at 256,
    as in the paper (997/2048 = 49% vs 221/256 = 86%)."""
    by_procs = {r.procs: r for r in rows}
    eff_256 = by_procs[256].speedup / 256
    eff_2048 = by_procs[2048].speedup / 2048
    assert eff_2048 < 0.85 * eff_256


def test_rows_within_factor_of_paper(rows):
    """Every row's speedup within [0.55x, 1.8x] of the published value."""
    for r in rows:
        ref = TABLE2_APOA1_ASCI[r.procs]["speedup"]
        assert 0.55 * ref <= r.speedup <= 1.8 * ref, (r.procs, r.speedup, ref)


def test_speedup_beyond_previous_generation(rows):
    """The paper's headline: far beyond the ~180-on-256 previous results."""
    by_procs = {r.procs: r for r in rows}
    assert by_procs[1024].speedup > 500
