"""The published numbers from the paper's Tables 1-6, for side-by-side
reporting and shape assertions.

Speedups are exactly as printed in the paper; times are seconds/step.
"""

#: Table 2 — ApoA-I (92,224 atoms) on ASCI-Red.
TABLE2_APOA1_ASCI = {
    1: {"time": 57.1, "speedup": 1.0, "gflops": 0.0480},
    4: {"time": 14.7, "speedup": 3.9, "gflops": 0.186},
    8: {"time": 7.31, "speedup": 7.8, "gflops": 0.375},
    32: {"time": 1.9, "speedup": 30.1, "gflops": 1.44},
    64: {"time": 0.964, "speedup": 59.2, "gflops": 2.84},
    128: {"time": 0.493, "speedup": 116.0, "gflops": 5.56},
    256: {"time": 0.259, "speedup": 221.0, "gflops": 10.6},
    512: {"time": 0.152, "speedup": 376.0, "gflops": 18.0},
    768: {"time": 0.102, "speedup": 560.0, "gflops": 26.9},
    1024: {"time": 0.0822, "speedup": 695.0, "gflops": 33.3},
    1536: {"time": 0.0645, "speedup": 885.0, "gflops": 42.5},
    2048: {"time": 0.0573, "speedup": 997.0, "gflops": 47.8},
}

#: Table 3 — BC1 (206,617 atoms) on ASCI-Red; baseline 2 procs = 2.0.
TABLE3_BC1_ASCI = {
    2: {"time": 74.2, "speedup": 2.0, "gflops": 0.0933},
    4: {"time": 37.8, "speedup": 3.9, "gflops": 0.183},
    8: {"time": 19.3, "speedup": 7.7, "gflops": 0.359},
    32: {"time": 4.91, "speedup": 30.3, "gflops": 1.41},
    64: {"time": 2.49, "speedup": 59.6, "gflops": 2.78},
    128: {"time": 1.26, "speedup": 118.0, "gflops": 5.49},
    256: {"time": 0.653, "speedup": 227.0, "gflops": 10.6},
    512: {"time": 0.352, "speedup": 422.0, "gflops": 19.7},
    768: {"time": 0.246, "speedup": 603.0, "gflops": 28.1},
    1024: {"time": 0.192, "speedup": 773.0, "gflops": 36.1},
    1536: {"time": 0.141, "speedup": 1052.0, "gflops": 49.1},
    2048: {"time": 0.119, "speedup": 1252.0, "gflops": 58.4},
}

#: Table 4 — bR (3,762 atoms) on ASCI-Red.
TABLE4_BR_ASCI = {
    1: {"time": 1.47, "speedup": 1.0},
    2: {"time": 0.759, "speedup": 1.94},
    4: {"time": 0.384, "speedup": 3.83},
    8: {"time": 0.196, "speedup": 7.50},
    32: {"time": 0.071, "speedup": 20.7},
    64: {"time": 0.0358, "speedup": 41.1},
    128: {"time": 0.0299, "speedup": 49.2},
    256: {"time": 0.0300, "speedup": 49.0},
}

#: Table 5 — ApoA-I on the PSC Cray T3E-900; baseline 4 procs = 4.0.
TABLE5_APOA1_T3E = {
    4: {"time": 10.7, "speedup": 4.0, "gflops": 0.256},
    8: {"time": 5.28, "speedup": 8.1, "gflops": 0.519},
    16: {"time": 2.64, "speedup": 16.2, "gflops": 1.04},
    32: {"time": 1.35, "speedup": 31.7, "gflops": 2.03},
    64: {"time": 0.688, "speedup": 62.2, "gflops": 3.98},
    128: {"time": 0.356, "speedup": 120.0, "gflops": 7.69},
    256: {"time": 0.185, "speedup": 231.0, "gflops": 14.8},
}

#: Table 6 — ApoA-I on the NCSA Origin 2000 (250 MHz).
TABLE6_APOA1_ORIGIN = {
    1: {"time": 24.4, "speedup": 1.0, "gflops": 0.112},
    2: {"time": 12.5, "speedup": 1.95, "gflops": 0.219},
    4: {"time": 6.30, "speedup": 3.89, "gflops": 0.435},
    8: {"time": 3.18, "speedup": 7.68, "gflops": 0.862},
    16: {"time": 1.60, "speedup": 15.2, "gflops": 1.71},
    32: {"time": 0.860, "speedup": 28.4, "gflops": 3.19},
    64: {"time": 0.411, "speedup": 59.4, "gflops": 6.67},
    80: {"time": 0.349, "speedup": 70.0, "gflops": 7.86},
}

#: Table 1 — performance audit, ApoA-I on 1024 ASCI-Red processors
#: (milliseconds; "Ideal" assumes perfect scaling of the 1-proc run).
TABLE1_AUDIT = {
    "ideal": {
        "total": 57.04, "nonbonded": 52.44, "bonds": 3.16, "integration": 1.44,
        "overhead": 0.0, "imbalance": 0.0, "idle": 0.0, "receives": 0.0,
    },
    "actual": {
        "total": 86.0, "nonbonded": 49.77, "bonds": 3.9, "integration": 3.05,
        "overhead": 7.97, "imbalance": 10.45, "idle": 9.25, "receives": 1.61,
    },
}

#: Figure 1 facts: ~880 tasks of ~9 ms grainsize; largest ~42 ms; bimodal.
FIG1_MAX_GRAINSIZE_MS = 42.0
