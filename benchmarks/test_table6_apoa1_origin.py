"""E6 — Table 6: ApoA-I on the SGI Origin 2000 (250 MHz), 1..80 procs.

The fastest per-processor machine in the study (24.4 s/step on one CPU,
"110 MFLOPS on a single Origin 2000 processor ... good performance for a
complete application").
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE6_APOA1_ORIGIN
from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ORIGIN_2000

PROCS = sorted(TABLE6_APOA1_ORIGIN)


@pytest.fixture(scope="module")
def rows(apoa1_problem):
    cfg = SimulationConfig(n_procs=1, machine=ORIGIN_2000)
    return scaling_sweep(apoa1_problem, cfg, PROCS, baseline_procs=1)


def test_table6_regenerate(benchmark, rows, results_dir):
    def render():
        return format_scaling_table(
            rows,
            title="Table 6 (reproduced): ApoA-I on Origin 2000",
            paper_speedups={p: v["speedup"] for p, v in TABLE6_APOA1_ORIGIN.items()},
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table6_apoa1_origin", text)


def test_single_processor_time_matches_paper(rows):
    """Paper: 24.4 s/step — the Origin cpu_factor anchor."""
    assert rows[0].time_per_step == pytest.approx(
        TABLE6_APOA1_ORIGIN[1]["time"], rel=0.1
    )


def test_single_processor_near_110_mflops(rows):
    """Paper: ~0.112 GFLOPS on one processor."""
    assert rows[0].gflops == pytest.approx(0.112, rel=0.3)


def test_scaling_through_80(rows):
    by_procs = {r.procs: r for r in rows}
    assert by_procs[80].speedup > 0.75 * 80  # paper: 70.0/80 = 88%


def test_rows_within_factor_of_paper(rows):
    for r in rows:
        ref = TABLE6_APOA1_ORIGIN[r.procs]["speedup"]
        assert 0.6 * ref <= r.speedup <= 1.6 * ref, (r.procs, r.speedup, ref)
