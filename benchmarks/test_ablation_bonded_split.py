"""A3 — the §4.2.2 bonded-work split ablation.

"After distributing the non-bonded work across 1024 processors, the bond
computation could no longer be ignored."  We compare the pre-optimization
design (one non-migratable bonded object per patch, holding all its terms)
against the paper's split (per-kind migratable intra objects + pinned inter
objects) on ApoA-I at 1024 simulated processors.
"""

import pytest

from benchmarks.conftest import save_result
from repro.core.simulation import ParallelSimulation, SimulationConfig
from repro.runtime.machine import ASCI_RED

N_PROCS = 1024


@pytest.fixture(scope="module")
def split_run(apoa1_problem):
    cfg = SimulationConfig(n_procs=N_PROCS, machine=ASCI_RED)
    return ParallelSimulation(
        apoa1_problem.system, cfg, problem=apoa1_problem
    ).run()


@pytest.fixture(scope="module")
def merged_run(apoa1_problem_merged_bonded):
    cfg = SimulationConfig(n_procs=N_PROCS, machine=ASCI_RED, split_bonded=False)
    return ParallelSimulation(
        apoa1_problem_merged_bonded.system, cfg, problem=apoa1_problem_merged_bonded
    ).run()


def test_ablation_regenerate(benchmark, split_run, merged_run, results_dir):
    def render():
        lines = [
            f"A3: bonded-work split ablation — ApoA-I @ {N_PROCS} procs",
            f"{'design':>28} {'ms/step':>9} {'speedup':>8} {'migratable objs':>16}",
        ]
        for label, res in (
            ("merged (pre-§4.2.2)", merged_run),
            ("split intra/inter (paper)", split_run),
        ):
            lines.append(
                f"{label:>28} {res.time_per_step * 1e3:>9.2f} "
                f"{res.speedup:>8.1f} {'':>16}"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "ablation_bonded_split", text)


def test_split_design_not_slower(split_run, merged_run):
    assert split_run.time_per_step <= merged_run.time_per_step * 1.02


def test_split_design_improves_at_scale(split_run, merged_run):
    """The paper's motivation: merged bonded objects serialize on the
    critical path at 1024 processors."""
    assert split_run.time_per_step < merged_run.time_per_step


def test_both_complete_all_steps(split_run, merged_run):
    for res in (split_run, merged_run):
        assert len(res.final.timings.completion_times) == res.config.steps_per_phase
