"""Kernel-backend benchmark: numpy reference vs numba JIT on the hot paths.

Times the three ported kernel families on a 10,200-atom water box for every
available backend:

* the fused non-bonded pair kernel (``nb_pairs``) over the real in-cutoff
  pair set,
* the segment-sum force scatter (``segment_add``),
* the Ewald real-space sum (``ewald_real``),

plus end-to-end :class:`SequentialEngine` steps/sec per backend on a
smaller box.  Results land in ``benchmarks/results/BENCH_backend.json`` /
``.txt`` (CI artifacts, shown by ``repro report``).

The ≥3x speedup gate only applies when the numba backend actually loaded
(the numba CI job); on a numpy-only host the run is informational — it
still regenerates the artifacts, proving the fallback path stays healthy.
Timings use best-of-N to shrug off shared-host noise.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.backend import available_backends, backend_status, get_backend
from repro.builder import small_water_box
from repro.md.cells import candidate_pairs
from repro.md.constants import COULOMB_CONSTANT
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions, _combined_params
from repro.md.system import MolecularSystem

RESULTS_DIR = Path(__file__).parent / "results"

#: 3400 waters = 10,200 atoms — the acceptance scale for the speedup gate
KERNEL_WATERS = 3400
KERNEL_CUTOFF = 6.0
MD_WATERS = 216
MD_CUTOFF = 8.0
MD_STEPS = 20
SPEEDUP_GATE = 3.0


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_inputs(system: MolecularSystem):
    """The real in-cutoff pair set + parameters of the benchmark box."""
    pos, box = system.positions, system.box
    i_c, j_c = candidate_pairs(pos, box, KERNEL_CUTOFF)
    numpy_be = get_backend("numpy")
    within = numpy_be.pair_mask(pos, box, i_c, j_c, KERNEL_CUTOFF)
    i_c, j_c = i_c[within], j_c[within]
    eps, rmin, qq = _combined_params(system, i_c, j_c)
    return i_c, j_c, eps, rmin, qq


def test_backend_benchmark():
    status = backend_status()
    backends = [get_backend(name) for name in available_backends()]
    system = small_water_box(KERNEL_WATERS, seed=11, relax=False)
    pos, box = system.positions, system.box
    n = system.n_atoms
    i_c, j_c, eps, rmin, qq = _kernel_inputs(system)
    m = len(i_c)
    assert m > 0

    rng = np.random.default_rng(0)
    contrib = rng.normal(size=(m, 3))
    qq_coul = COULOMB_CONSTANT * qq

    per_backend: dict[str, dict] = {}
    reference_outputs = {}
    for be in backends:
        forces = np.zeros((n, 3))

        def run_nb():
            forces[...] = 0.0
            return be.nb_pairs(
                pos, box, i_c, j_c, eps, rmin, qq,
                KERNEL_CUTOFF, KERNEL_CUTOFF - 1.0, forces, i_c, j_c,
            )

        def run_scatter():
            out = np.zeros((n, 3))
            be.segment_add(out, i_c, contrib)
            return out

        def run_ewald_real():
            fr = np.zeros((n, 3))
            return be.ewald_real(
                pos, box, i_c, j_c, qq_coul, 0.35, KERNEL_CUTOFF, fr
            )

        # warm-up: triggers (and excludes) lazy JIT compilation
        nb_out = run_nb()
        sc_out = run_scatter()
        ew_out = run_ewald_real()
        if be.name == "numpy":
            reference_outputs = {"nb": nb_out[:2], "ewald": ew_out}
        else:  # correctness gate before timing anything
            ref = reference_outputs
            assert np.allclose(nb_out[:2], ref["nb"], rtol=1e-9, atol=1e-9)
            assert np.allclose(ew_out, ref["ewald"], rtol=1e-9, atol=1e-9)
        del sc_out

        timings = {
            "nb_pairs_s": round(_best_of(run_nb, 3), 6),
            "segment_add_s": round(_best_of(run_scatter, 3), 6),
            "ewald_real_s": round(_best_of(run_ewald_real, 3), 6),
        }

        md_system = small_water_box(MD_WATERS, seed=7)
        md_system.assign_velocities(300.0, seed=7)
        engine = SequentialEngine(
            md_system,
            NonbondedOptions(cutoff=MD_CUTOFF),
            VelocityVerlet(dt=1.0),
            backend=be,
        )
        engine.run(3)  # warm-up
        t0 = time.perf_counter()
        engine.run(MD_STEPS)
        timings["engine_steps_per_sec"] = round(
            MD_STEPS / (time.perf_counter() - t0), 3
        )
        per_backend[be.name] = timings

    speedups = {}
    if "numba" in per_backend:
        for key in ("nb_pairs_s", "segment_add_s", "ewald_real_s"):
            speedups[key.removesuffix("_s")] = round(
                per_backend["numpy"][key] / per_backend["numba"][key], 2
            )

    payload = {
        "n_atoms": n,
        "n_pairs": m,
        "cutoff_A": KERNEL_CUTOFF,
        "available": status["available"],
        "numba_ok": status["numba_ok"],
        "numba_error": status.get("numba_error"),
        "backends": per_backend,
        "speedups_vs_numpy": speedups,
        "speedup_gate": SPEEDUP_GATE if speedups else None,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_backend.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "Kernel backend benchmark (wall-clock on this host)",
        "",
        f"{n} atoms, {m} in-cutoff pairs at {KERNEL_CUTOFF} A cutoff",
        "",
        f"{'kernel':<16}" + "".join(f"{b:>12}" for b in per_backend),
    ]
    for key, label in (
        ("nb_pairs_s", "nb_pairs"),
        ("segment_add_s", "segment_add"),
        ("ewald_real_s", "ewald_real"),
    ):
        lines.append(
            f"{label:<16}"
            + "".join(
                f"{per_backend[b][key] * 1e3:>10.2f}ms" for b in per_backend
            )
        )
    lines.append(
        f"{'engine steps/s':<16}"
        + "".join(
            f"{per_backend[b]['engine_steps_per_sec']:>12.3f}"
            for b in per_backend
        )
    )
    lines.append("")
    if speedups:
        lines.append(
            "numba speedup vs numpy: "
            + ", ".join(f"{k} {v:.2f}x" for k, v in speedups.items())
        )
    else:
        lines.append(
            f"numba backend not available ({status.get('numba_error')}); "
            "numpy reference timings only — fallback path exercised"
        )
    (RESULTS_DIR / "BENCH_backend.txt").write_text("\n".join(lines) + "\n")

    if speedups:  # the gate only binds when the JIT backend actually loaded
        best = max(speedups.values())
        assert best >= SPEEDUP_GATE, (
            f"numba best kernel speedup only {best:.2f}x "
            f"(expected >= {SPEEDUP_GATE}x at {n} atoms): {speedups}"
        )
