"""E4 — Table 4: bR (3,762 atoms) scaling on ASCI-Red, 1..256 procs.

The paper's small-system stress test: "Even on a system this small, NAMD is
able to use up to 64 processors efficiently" — and then saturates (49.2 at
128, 49.0 at 256).  The saturation plateau is the signature we assert.
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE4_BR_ASCI
from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ASCI_RED

PROCS = sorted(TABLE4_BR_ASCI)


@pytest.fixture(scope="module")
def rows(br_problem):
    cfg = SimulationConfig(n_procs=1, machine=ASCI_RED)
    return scaling_sweep(br_problem, cfg, PROCS, baseline_procs=1)


def test_table4_regenerate(benchmark, rows, results_dir):
    def render():
        return format_scaling_table(
            rows,
            title="Table 4 (reproduced): bR on ASCI-Red",
            paper_speedups={p: v["speedup"] for p, v in TABLE4_BR_ASCI.items()},
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table4_br_asci", text)


def test_single_processor_time_near_paper(rows):
    """Paper: 1.47 s/step (ours differs only via the synthetic topology)."""
    assert rows[0].time_per_step == pytest.approx(
        TABLE4_BR_ASCI[1]["time"], rel=0.35
    )


def test_efficient_through_64(rows):
    for r in rows:
        if r.procs <= 64:
            assert r.speedup > 0.55 * r.procs, (r.procs, r.speedup)


def test_saturates_after_64(rows):
    """The plateau: little gain from 64 -> 256 (paper: 41.1 -> 49.0)."""
    by_procs = {r.procs: r for r in rows}
    assert by_procs[256].speedup < 1.35 * by_procs[64].speedup


def test_small_system_saturates_far_below_processor_count(rows):
    by_procs = {r.procs: r for r in rows}
    assert by_procs[256].speedup < 80  # paper: 49


def test_rows_within_factor_of_paper(rows):
    for r in rows:
        ref = TABLE4_BR_ASCI[r.procs]["speedup"]
        assert 0.5 * ref <= r.speedup <= 2.0 * ref, (r.procs, r.speedup, ref)
