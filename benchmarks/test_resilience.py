"""Fault-tolerance benchmark: recovery overhead on the real engine.

Runs the supervised :class:`~repro.md.parallel.ParallelEngine` over the
same water box four times — clean, with a SIGKILL'd worker, with a hung
(SIGSTOP'd) worker, and with a 5x slowdown window — and measures what each
fault costs relative to the clean run.  Every faulted trajectory must end
at the same total energy as the clean one: recovery is bit-identical by
construction (task-ordered reduction + reference-position binning), and
this benchmark is where that claim meets the wall clock.

The acceptance gate (amortized kill-recovery overhead ≤ 25% of the clean
steady-state step time) is asserted only on multi-core hosts: on a single
core the respawned worker's catch-up work serializes with the driver, so
the overhead measures the CPU, not the supervisor.  Hang-recovery overhead
is reported but not gated — detection latency is dominated by the hang
threshold (a policy choice), not by recovery machinery.

Results land in ``benchmarks/results/BENCH_resilience.json`` (+ ``.txt``)
and the per-event recovery log in ``RECOVERY_resilience.log``.
Environment knobs for CI: ``RESILIENCE_BENCH_WORKERS`` (default ``4``)
and ``RESILIENCE_BENCH_STEPS`` (default ``8``).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.builder import small_water_box
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import HAS_SHARED_MEMORY, ParallelEngine
from repro.md.resilience import (
    HAS_POSIX_SIGNALS,
    RecoveryPolicy,
    WorkerFaultPlan,
)

pytestmark = pytest.mark.skipif(
    not (HAS_SHARED_MEMORY and HAS_POSIX_SIGNALS),
    reason="needs shared memory and POSIX signals",
)

RESULTS_DIR = Path(__file__).parent / "results"

WATERS = 600  # 1,800 atoms: enough tasks for 4 workers, fast enough for CI
CUTOFF = 8.0
WORKERS = int(os.environ.get("RESILIENCE_BENCH_WORKERS", "4"))
STEPS = int(os.environ.get("RESILIENCE_BENCH_STEPS", "8"))
FAULT_STEP = 3  # evaluation the fault lands on (after EWMA has settled)
#: kill-recovery overhead budget, as a fraction of clean steady-state step
#: time, amortized over the run; gated only when cores can actually overlap
MAX_KILL_OVERHEAD_FRACTION = 0.25

POLICY = RecoveryPolicy(respawn_backoff_s=0.01, hang_timeout_s=2.0)

SCENARIOS = [
    ("clean", ""),
    ("kill", f"kill=1@{FAULT_STEP}"),
    ("hang", f"hang=0@{FAULT_STEP}"),
    ("slow", f"slow=1@{FAULT_STEP}-{FAULT_STEP + 2}x5"),
]


def _fresh_system():
    system = small_water_box(WATERS, seed=11, relax=False)
    system.assign_velocities(300.0, seed=11)
    return system


def _run_scenario(spec: str) -> dict:
    plan = WorkerFaultPlan.parse(spec) if spec else None
    with ParallelEngine(
        _fresh_system(),
        NonbondedOptions(cutoff=CUTOFF),
        workers=WORKERS,
        timeout=60.0,
        fault_plan=plan,
        recovery=POLICY,
    ) as engine:
        assert engine.parallel, "pool fell back before the benchmark started"
        engine.step()  # warmup: first force eval + pairlist build
        t0 = time.perf_counter()
        reports = engine.run(STEPS)
        wall = time.perf_counter() - t0
        res = engine.resilience
        return {
            "wall_s": wall,
            "step_s": wall / STEPS,
            "total_energy": reports[-1].total,
            "mode": res.mode,
            "live_workers": engine.workers,
            "resilience": res.to_dict(),
        }


def test_resilience_benchmark():
    runs = {name: _run_scenario(spec) for name, spec in SCENARIOS}
    clean = runs["clean"]

    # physics gate: every recovered trajectory ends where the clean one does
    for name in ("kill", "hang", "slow"):
        got, want = runs[name]["total_energy"], clean["total_energy"]
        assert abs(got - want) <= 1e-9 * max(1.0, abs(want)), (
            f"{name}: recovered energy {got} != clean {want}"
        )
    assert runs["kill"]["resilience"]["kills_detected"] == 1
    assert runs["hang"]["resilience"]["hangs_detected"] == 1
    assert runs["slow"]["resilience"]["events"] == []

    rows = []
    for name, spec in SCENARIOS:
        run = runs[name]
        overhead = (run["wall_s"] - clean["wall_s"]) / STEPS
        rows.append(
            {
                "scenario": name,
                "fault_plan": spec,
                "wall_s": round(run["wall_s"], 4),
                "step_s": round(run["step_s"], 4),
                "overhead_per_step_s": round(overhead, 4),
                "overhead_fraction": round(overhead / clean["step_s"], 3),
                "mode": run["mode"],
                "live_workers": run["live_workers"],
                "recovery_time_s": round(
                    run["resilience"]["recovery_time_s"], 4
                ),
                "respawns": run["resilience"]["respawns"],
                "bit_identical_energy": run["total_energy"]
                == clean["total_energy"],
            }
        )

    multi_core = (os.cpu_count() or 1) >= 2
    kill_row = next(r for r in rows if r["scenario"] == "kill")
    if multi_core:
        assert kill_row["overhead_fraction"] <= MAX_KILL_OVERHEAD_FRACTION, (
            f"kill recovery cost {kill_row['overhead_fraction']:.0%} of a "
            f"step (budget {MAX_KILL_OVERHEAD_FRACTION:.0%})"
        )

    payload = {
        "system": {"n_atoms": WATERS * 3, "cutoff_A": CUTOFF},
        "protocol": {
            "workers": WORKERS,
            "measured_steps": STEPS,
            "fault_step": FAULT_STEP,
            "policy": {
                "max_respawns": POLICY.max_respawns,
                "respawn_backoff_s": POLICY.respawn_backoff_s,
                "hang_timeout_s": POLICY.hang_timeout_s,
            },
        },
        "host": {"cpu_count": os.cpu_count()},
        "gate": {
            "max_kill_overhead_fraction": MAX_KILL_OVERHEAD_FRACTION,
            "enforced": multi_core,
        },
        "scenarios": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    log_lines = []
    for name, _spec in SCENARIOS:
        for ev in runs[name]["resilience"]["events"]:
            log_lines.append(
                f"{name}: step {ev['step']} worker {ev['worker']} "
                f"{ev['kind']} -> {ev['action']} "
                f"(detected {ev['detection_s']:.3f}s, "
                f"recovered {ev['recovery_s']:.3f}s, "
                f"{ev['tasks_moved']} tasks moved) {ev['detail']}".rstrip()
            )
    (RESULTS_DIR / "RECOVERY_resilience.log").write_text(
        "\n".join(log_lines) + "\n" if log_lines else "no recovery events\n"
    )

    lines = [
        "Fault-tolerance benchmark (wall-clock on this host)",
        "",
        f"{WATERS * 3} atoms, {WORKERS} workers, {STEPS} measured steps, "
        f"{os.cpu_count()} CPU core(s); "
        f"gate {'enforced' if multi_core else 'reported only (single core)'}",
        "",
        f"  {'scenario':>8} {'step_s':>8} {'overhead':>9} {'mode':>10} "
        f"{'respawns':>9} {'bitwise':>8}",
    ]
    for row in rows:
        lines.append(
            f"  {row['scenario']:>8} {row['step_s']:>8.4f} "
            f"{row['overhead_fraction']:>8.0%} {row['mode']:>10} "
            f"{row['respawns']:>9} {str(row['bit_identical_energy']):>8}"
        )
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / "BENCH_resilience.txt").write_text(text)
    print("\n" + text)
