"""Measurement-based rebalancing benchmark: static vs. rebalanced map.

The load-balancing analogue of the parallel-engine benchmark: the skewed
water box (2x density step along x) run with an injected 2x slowdown on
worker 0, once with the static cost-model assignment
(``rebalance_every=0``) and once with the paper's greedy+refine schedule.
Both runs integrate the *same* trajectory — the engine's reduction is
assignment-independent — so the comparison isolates scheduling quality:
steps/sec and the measured max/mean worker-load ratio.

On a single-core host workers time-share one CPU and migrating tasks
cannot raise throughput, so the >= 1.25x speedup floor is only asserted
when ``os.cpu_count() >= 2`` (the host context is recorded either way).
The load-ratio improvement — skew and slowdown absorbed into a near-flat
profile — is asserted unconditionally.

Results land in ``benchmarks/results/BENCH_rebalance.json`` (+ ``.txt``).
Environment knobs for CI: ``REBALANCE_BENCH_WATERS`` (default ``400``),
``REBALANCE_BENCH_STEPS`` (default ``100``) and ``REBALANCE_BENCH_EVERY``
(default ``50``).
"""

import json
import os
import time
from pathlib import Path

from repro.builder import skewed_water_box
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import ParallelEngine

RESULTS_DIR = Path(__file__).parent / "results"

WATERS = int(os.environ.get("REBALANCE_BENCH_WATERS", "400"))
CUTOFF = 8.0
SKEW = 2.0
SLOWDOWN = {0: 2.0}
WORKERS = 2
WARMUP_STEPS = 1
MEASURE_STEPS = int(os.environ.get("REBALANCE_BENCH_STEPS", "100"))
REBALANCE_EVERY = int(os.environ.get("REBALANCE_BENCH_EVERY", "50"))
#: acceptance floor for the rebalanced configuration on a multi-core host
MIN_SPEEDUP = 1.25


def _fresh_system():
    system = skewed_water_box(WATERS, seed=11, skew=SKEW, relax=False)
    system.assign_velocities(300.0, seed=11)
    return system


def _measure(rebalance_every: int) -> dict:
    with ParallelEngine(
        _fresh_system(),
        NonbondedOptions(cutoff=CUTOFF),
        VelocityVerlet(dt=1.0),
        workers=WORKERS,
        rebalance_every=rebalance_every,
        slowdown=SLOWDOWN,
    ) as engine:
        engine.run(WARMUP_STEPS)
        t0 = time.perf_counter()
        reports = engine.run(MEASURE_STEPS)
        wall = time.perf_counter() - t0
        loads = engine._nb.worker_loads()
        return {
            "rebalance_every": rebalance_every,
            "workers_live": engine.workers,
            "parallel_pool": engine.parallel,
            "steps_per_sec": round(MEASURE_STEPS / wall, 4),
            "max_worker_load_ms": round(float(loads.max()) * 1e3, 4),
            "mean_worker_load_ms": round(float(loads.mean()) * 1e3, 4),
            "max_over_mean_load": round(float(loads.max() / loads.mean()), 4),
            "n_rebalances": engine._nb.n_rebalances,
            "remap_steps": engine.remap_steps,
            "total_energy": reports[-1].total,
        }


def test_rebalance_benchmark():
    static = _measure(0)
    rebalanced = _measure(REBALANCE_EVERY)
    speedup = rebalanced["steps_per_sec"] / static["steps_per_sec"]

    payload = {
        "system": {
            "n_atoms": WATERS * 3,
            "cutoff_A": CUTOFF,
            "density_skew": SKEW,
            "dt_fs": 1.0,
        },
        "protocol": {
            "warmup_steps": WARMUP_STEPS,
            "measured_steps": MEASURE_STEPS,
            "workers": WORKERS,
            "injected_slowdown": {str(k): v for k, v in SLOWDOWN.items()},
        },
        "host": {"cpu_count": os.cpu_count()},
        "static": static,
        "rebalanced": rebalanced,
        "speedup_rebalanced_vs_static": round(speedup, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rebalance.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines = [
        "Rebalancing benchmark (skewed box, 2x-slowed worker 0)",
        "",
        f"{WATERS * 3} atoms at {CUTOFF} A cutoff, {MEASURE_STEPS} measured"
        f" steps, {os.cpu_count()} CPU core(s)",
        "",
        f"  {'config':>16} {'steps/sec':>10} {'max load':>10} {'max/mean':>9}",
    ]
    for label, row in (("static", static), ("rebalanced", rebalanced)):
        lines.append(
            f"  {label:>16} {row['steps_per_sec']:>10.4f} "
            f"{row['max_worker_load_ms']:>8.2f}ms {row['max_over_mean_load']:>9.3f}"
        )
    lines.append(f"\n  speedup: {speedup:.3f}x")
    (RESULTS_DIR / "BENCH_rebalance.txt").write_text("\n".join(lines) + "\n")

    # physics gate: rebalancing must not change the trajectory at all
    assert abs(rebalanced["total_energy"] - static["total_energy"]) <= 1e-9 * abs(
        static["total_energy"]
    ), "rebalanced run diverged from the static trajectory"

    assert static["n_rebalances"] == 0
    assert rebalanced["n_rebalances"] >= 1, "no LB decision in the measured window"
    assert rebalanced["remap_steps"], "rebalancing moved no tasks"

    # scheduling-quality gate: the measured worker-load profile must flatten
    assert rebalanced["max_over_mean_load"] < static["max_over_mean_load"], (
        f"rebalancing did not flatten the load profile: "
        f"{rebalanced['max_over_mean_load']} vs static {static['max_over_mean_load']}"
    )

    if (os.cpu_count() or 1) >= 2 and rebalanced["parallel_pool"]:
        assert speedup >= MIN_SPEEDUP, (
            f"rebalanced speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
        )
