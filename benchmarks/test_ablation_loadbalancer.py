"""A2 — load-balancing strategy ablation (§3.2).

Compares final step time of ApoA-I at 1024 simulated processors under: no
balancing (static placement), random, round-robin, load-only greedy
(communication-oblivious LPT), the paper's greedy, and the paper's full
greedy+refine / refine schedule.

At medium scale (~256 procs) a communication-oblivious LPT is competitive
with the paper's proxy-aware greedy — load imbalance dominates there.  At
1024 processors the proxy explosion of oblivious strategies (an
order-of-magnitude more position/force messages) costs real time, which is
exactly the communication-awareness argument of §3.2.
"""

import pytest

from benchmarks.conftest import save_result
from repro.core.simulation import ParallelSimulation, SimulationConfig
from repro.runtime.machine import ASCI_RED

N_PROCS = 1024

SCHEDULES = {
    "static (none)": (),
    "random": ("random",),
    "round_robin": ("round_robin",),
    "greedy_load_only": ("greedy_load_only",),
    "diffusion": ("diffusion",),
    "greedy": ("greedy",),
    "greedy+refine,refine": ("greedy+refine", "refine"),
    "phase_aware+refine": ("phase_aware+refine",),
}


@pytest.fixture(scope="module")
def results(apoa1_problem):
    out = {}
    for label, schedule in SCHEDULES.items():
        cfg = SimulationConfig(
            n_procs=N_PROCS, machine=ASCI_RED, lb_schedule=schedule
        )
        sim = ParallelSimulation(apoa1_problem.system, cfg, problem=apoa1_problem)
        out[label] = sim.run()
    return out


def test_ablation_regenerate(benchmark, results, results_dir):
    def render():
        lines = [
            f"A2: LB strategy ablation — ApoA-I @ {N_PROCS} simulated ASCI-Red procs",
            f"{'strategy':>22} {'ms/step':>9} {'speedup':>8} {'imbal':>7} {'proxies':>8}",
        ]
        for label, res in results.items():
            f = res.final
            lines.append(
                f"{label:>22} {f.timings.time_per_step * 1e3:>9.2f} "
                f"{res.speedup:>8.1f} "
                f"x{f.stats['imbalance_ratio']:>6.2f} "
                f"{f.stats['n_proxies']:>8.0f}"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "ablation_loadbalancer", text)


def test_any_balancing_beats_none(results):
    static = results["static (none)"].time_per_step
    for label, res in results.items():
        if label != "static (none)":
            assert res.time_per_step < static, label


def test_paper_schedule_beats_naive_baselines(results):
    full = results["greedy+refine,refine"].time_per_step
    assert full < results["random"].time_per_step
    assert full < results["round_robin"].time_per_step


def test_proxy_awareness_cuts_communication(results):
    """The §3.2 criteria exist to bound proxies: the paper schedule creates
    several times fewer than any communication-oblivious strategy."""
    full = results["greedy+refine,refine"].final.stats["n_proxies"]
    for label in ("random", "round_robin", "greedy_load_only"):
        assert full < 0.5 * results[label].final.stats["n_proxies"], label


def test_paper_schedule_within_reach_of_load_only(results):
    """Proxy-aware placement must not sacrifice much load balance; the win
    is far less communication at comparable (or better) time."""
    full = results["greedy+refine,refine"]
    lpt = results["greedy_load_only"]
    assert full.time_per_step < 1.15 * lpt.time_per_step


def test_refinement_improves_on_plain_greedy(results):
    assert (
        results["greedy+refine,refine"].time_per_step
        <= results["greedy"].time_per_step * 1.05
    )
