"""E5 — Table 5: ApoA-I on the Cray T3E-900, 4..256 procs.

"Per-processor performance and scalability are both better than that
achieved by the ASCI-Red" — asserted by comparing per-processor times and
efficiency at 256 against the ASCI-Red reproduction.
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE5_APOA1_T3E
from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ASCI_RED, T3E_900

PROCS = sorted(TABLE5_APOA1_T3E)


@pytest.fixture(scope="module")
def rows(apoa1_problem):
    cfg = SimulationConfig(n_procs=4, machine=T3E_900)
    return scaling_sweep(apoa1_problem, cfg, PROCS, baseline_procs=4)


def test_table5_regenerate(benchmark, rows, results_dir):
    def render():
        return format_scaling_table(
            rows,
            title="Table 5 (reproduced): ApoA-I on T3E-900 (baseline: 4 procs = 4.0)",
            paper_speedups={p: v["speedup"] for p, v in TABLE5_APOA1_T3E.items()},
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table5_apoa1_t3e", text)


def test_four_processor_time_matches_paper(rows):
    """Paper: 10.7 s/step at 4 processors (sets the T3E cpu factor)."""
    assert rows[0].time_per_step == pytest.approx(
        TABLE5_APOA1_T3E[4]["time"], rel=0.1
    )


def test_t3e_faster_per_processor_than_asci(rows, apoa1_problem):
    asci = scaling_sweep(
        apoa1_problem, SimulationConfig(n_procs=4, machine=ASCI_RED), [64]
    )
    t3e_64 = next(r for r in rows if r.procs == 64)
    assert t3e_64.time_per_step < asci[0].time_per_step


def test_scaling_near_linear_through_256(rows):
    """Paper: 231 at 256 procs relative to 4 — 90% efficiency."""
    by_procs = {r.procs: r for r in rows}
    assert by_procs[256].speedup > 0.7 * 256


def test_rows_within_factor_of_paper(rows):
    for r in rows:
        ref = TABLE5_APOA1_T3E[r.procs]["speedup"]
        assert 0.6 * ref <= r.speedup <= 1.6 * ref, (r.procs, r.speedup, ref)
