"""E7/E8 — Figures 1 & 2: grainsize distribution before/after splitting.

Figure 1 (self splitting only): a bimodal distribution — a main mass of
small objects and a tail of big face-pair objects (paper: largest ~42 ms,
~880 tasks near 9 ms).  Figure 2 (pair splitting added): the tail collapses
below the grainsize target, and the task count grows.
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import FIG1_MAX_GRAINSIZE_MS
from repro.analysis.grainsize import format_histogram, histogram_from_descriptors


@pytest.fixture(scope="module")
def hist_before(apoa1_problem_noselfsplit):
    return histogram_from_descriptors(apoa1_problem_noselfsplit.nb_descriptors)


@pytest.fixture(scope="module")
def hist_after(apoa1_problem):
    return histogram_from_descriptors(apoa1_problem.nb_descriptors)


def test_fig1_2_regenerate(benchmark, hist_before, hist_after, results_dir):
    def render():
        return "\n\n".join(
            [
                format_histogram(
                    hist_before,
                    title="Figure 1 (reproduced): grainsize before pair splitting",
                ),
                format_histogram(
                    hist_after,
                    title="Figure 2 (reproduced): grainsize after pair splitting",
                ),
            ]
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "fig1_2_grainsize", text)


def test_fig1_has_long_tail(hist_before):
    """Paper: largest grainsize ~42 ms before splitting.  Our synthetic
    membrane patches are denser than the real ApoA-I lipids, stretching the
    tail further (~120 ms) — same failure mode, larger magnitude."""
    assert hist_before.max_grainsize_ms > 15.0
    assert hist_before.max_grainsize_ms < 250.0


def test_fig1_bimodal(hist_before):
    """'A bimodal distribution of grainsizes is clearly visible.'"""
    assert hist_before.bimodality_gap()


def test_fig2_tail_removed(hist_before, hist_after):
    assert hist_after.max_grainsize_ms < hist_before.max_grainsize_ms / 2


def test_fig2_meets_grainsize_target(hist_after):
    """§5 lesson 2: aim at ~5 ms average grainsize; splitting enforces the
    ceiling (allowing 2.5x slop for striping granularity)."""
    assert hist_after.max_grainsize_ms <= 5.0 * 2.5


def test_fig2_more_tasks(hist_before, hist_after):
    assert hist_after.total_tasks > hist_before.total_tasks


def test_task_count_scale_matches_paper(hist_before):
    """Paper: 3430 objects before splitting grew via self-splitting; the
    pre-pair-splitting count stays in the low thousands."""
    assert 3000 <= hist_before.total_tasks <= 12000
