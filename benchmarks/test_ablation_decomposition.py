"""A1 — §3's scalability claims: atom replication / atom decomposition /
force decomposition / pure spatial, against the full hybrid simulation.

The paper asserts (citing [9]) that replication and atom decomposition are
theoretically non-scalable (communication/computation ratio grows with P),
force decomposition is non-scalable but practically fine to ~128
processors, and spatial decomposition is scalable.  We regenerate the
comparison at ApoA-I scale on the ASCI-Red model.
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.speedup import scaling_sweep
from repro.baselines.schemes import (
    AtomDecompositionModel,
    AtomReplicationModel,
    ForceDecompositionModel,
    SpatialDecompositionModel,
)
from repro.core.simulation import SimulationConfig
from repro.runtime.machine import ASCI_RED

PROCS = [1, 8, 32, 128, 512, 1024, 2048]


@pytest.fixture(scope="module")
def baselines(apoa1_problem):
    w = apoa1_problem.cost_model.sequential_step_cost(apoa1_problem.counts)
    n = apoa1_problem.system.n_atoms
    common = dict(n_atoms=n, sequential_work_s=w, machine=ASCI_RED)
    import numpy as np

    return {
        "replication": AtomReplicationModel(**common),
        "atom": AtomDecompositionModel(**common),
        "force": ForceDecompositionModel(**common),
        "spatial": SpatialDecompositionModel(
            **common, box_volume_A3=float(np.prod(apoa1_problem.system.box))
        ),
    }


@pytest.fixture(scope="module")
def hybrid_rows(apoa1_problem):
    return scaling_sweep(
        apoa1_problem, SimulationConfig(n_procs=1, machine=ASCI_RED), PROCS
    )


def test_ablation_regenerate(benchmark, baselines, hybrid_rows, results_dir):
    def render():
        lines = [
            "A1: decomposition-scheme comparison, ApoA-I scale (speedups)",
            f"{'P':>6}" + "".join(f"{k:>14}" for k in baselines)
            + f"{'hybrid (sim)':>14}",
        ]
        hybrid = {r.procs: r.speedup for r in hybrid_rows}
        for p in PROCS:
            line = f"{p:>6}" + "".join(
                f"{m.speedup(p):>14.1f}" for m in baselines.values()
            )
            line += f"{hybrid[p]:>14.1f}"
            lines.append(line)
        lines.append("")
        lines.append("communication/computation ratios (growth = non-scalable)")
        lines.append(f"{'P':>6}" + "".join(f"{k:>14}" for k in baselines))
        for p in PROCS:
            lines.append(
                f"{p:>6}"
                + "".join(f"{m.comm_ratio(p):>14.3f}" for m in baselines.values())
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "ablation_decomposition", text)


def test_replication_saturates_early(baselines):
    m = baselines["replication"]
    assert m.speedup(2048) < 300


def test_atom_decomposition_saturates(baselines):
    m = baselines["atom"]
    assert m.speedup(2048) < 1.2 * m.speedup(512)


def test_force_decomposition_fine_to_128(baselines):
    assert baselines["force"].speedup(128) > 90


def test_comm_ratio_ordering_at_scale(baselines):
    """Non-scalable schemes' ratios grow; spatial's stays bounded (a small
    absolute constant even at 2048 processors, while replication's exceeds
    its compute time many times over)."""
    for name in ("replication", "atom", "force"):
        assert (
            baselines[name].comm_ratio(2048) > 2.0 * baselines[name].comm_ratio(32)
        ), name
    assert baselines["spatial"].comm_ratio(2048) < 0.25
    assert baselines["replication"].comm_ratio(2048) > 2.0


def test_hybrid_tracks_or_beats_spatial_model(baselines, hybrid_rows):
    """The full simulation (with LB and overlap) stays in the same class as
    the analytic spatial bound at 1024 processors."""
    hybrid = {r.procs: r.speedup for r in hybrid_rows}
    assert hybrid[1024] > 0.5 * baselines["spatial"].speedup(1024)
