"""Parallel engine benchmark: steps/sec at workers = 1, 2, 4.

The repo's first *real* scaling datapoint (analogous to the paper's Table 2
speedup rows, but on this host rather than ASCI-Red): the 10,200-atom water
box stepped by :class:`~repro.md.engine.SequentialEngine` and by
:class:`~repro.md.parallel.ParallelEngine` at increasing worker counts.

Two effects contribute to the parallel engine's advantage, and the JSON
records the context needed to tell them apart:

* **Algorithmic**: each worker keeps a *prefiltered* Verlet list (distance-
  filtered to cutoff+skin with exclusions/1-4 removed at rebuild), so
  between rebuilds it distance-tests ~1-2M real neighbours instead of the
  sequential engine's ~20M+ raw cell-grid candidates every step.
* **Hardware**: on a multi-core host the per-worker pair blocks also run
  concurrently.  ``cpu_count`` is recorded so single-core results (where
  only the algorithmic effect and driver/worker overlap can show) are not
  misread as core scaling.

Results land in ``benchmarks/results/BENCH_parallel.json`` (+ ``.txt``).
Each pool row also records the **driver-vs-worker wall-time split**
(``driver_report``), and a second section measures the Ewald-enabled run
with and without ``distribute=True`` — the driver's per-step compute share
must drop by >= 50% with distribution on (asserted only on hosts with 4+
cores and 4+ workers; on fewer cores driver and workers time-slice one CPU
and the share is not meaningful).

Environment knobs for CI: ``PARALLEL_BENCH_WORKERS`` (default ``1,2,4``),
``PARALLEL_BENCH_STEPS`` (default ``3``), and ``PARALLEL_BENCH_EWALD``
(default ``1``; ``0`` skips the distribution section).
"""

import json
import os
import time
from pathlib import Path

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import ParallelEngine

RESULTS_DIR = Path(__file__).parent / "results"

WATERS = 3400  # 10,200 atoms — same box as the hot-path enumeration bench
CUTOFF = 8.0
WARMUP_STEPS = 1
MEASURE_STEPS = int(os.environ.get("PARALLEL_BENCH_STEPS", "3"))
WORKER_COUNTS = [
    int(w) for w in os.environ.get("PARALLEL_BENCH_WORKERS", "1,2,4").split(",")
]
#: acceptance floor for the 4-worker configuration (only asserted when 4
#: workers are actually measured, i.e. not under a reduced CI matrix)
MIN_SPEEDUP_4W = 1.6
RUN_EWALD_SECTION = os.environ.get("PARALLEL_BENCH_EWALD", "1") != "0"
#: with distribution on, the driver's compute share must at least halve
#: (gated on >= 4 cores and >= 4 workers; meaningless when time-slicing)
MAX_DISTRIBUTED_SHARE_RATIO = 0.5


def _fresh_system():
    system = small_water_box(WATERS, seed=11, relax=False)
    system.assign_velocities(300.0, seed=11)
    return system


def _measure(engine) -> tuple[float, float]:
    """(steps/sec, total energy after the run) for one warmed-up engine."""
    engine.run(WARMUP_STEPS)  # first force eval + pairlist build
    t0 = time.perf_counter()
    reports = engine.run(MEASURE_STEPS)
    wall = time.perf_counter() - t0
    return MEASURE_STEPS / wall, reports[-1].total


def test_parallel_benchmark():
    seq_engine = SequentialEngine(
        _fresh_system(), NonbondedOptions(cutoff=CUTOFF), VelocityVerlet(dt=1.0)
    )
    seq_rate, seq_energy = _measure(seq_engine)
    n_atoms = seq_engine.system.n_atoms

    rows = []
    for workers in WORKER_COUNTS:
        with ParallelEngine(
            _fresh_system(),
            NonbondedOptions(cutoff=CUTOFF),
            VelocityVerlet(dt=1.0),
            workers=workers,
        ) as engine:
            rate, energy = _measure(engine)
            drep = (
                engine.driver_report()
                if engine.parallel
                else {"driver_s": 0.0, "wall_s": 0.0, "driver_share": None}
            )
            rows.append(
                {
                    "workers_requested": workers,
                    "workers_live": engine.workers,
                    "parallel_pool": engine.parallel,
                    "steps_per_sec": round(rate, 4),
                    "speedup_vs_sequential": round(rate / seq_rate, 2),
                    "efficiency": round(rate / seq_rate / max(workers, 1), 2),
                    "total_energy": energy,
                    "driver_compute_s": round(drep["driver_s"], 4),
                    "force_wall_s": round(drep["wall_s"], 4),
                    "driver_share": (
                        round(drep["driver_share"], 4)
                        if drep["driver_share"] is not None
                        else None
                    ),
                }
            )
        # physics gate: same trajectory endpoint as the sequential engine
        assert abs(energy - seq_energy) <= 1e-6 * abs(seq_energy), (
            f"workers={workers} diverged: {energy} vs sequential {seq_energy}"
        )

    # distribution section: the Ewald-enabled run, driver keeping bonded +
    # k-space (distribute=False) vs shipping them to the pool as force tasks
    distribution = None
    w_max = max(WORKER_COUNTS)
    if RUN_EWALD_SECTION and w_max >= 2:
        from repro.md.ewald import EwaldOptions

        ewald = EwaldOptions(cutoff=CUTOFF, kmax=6)
        modes = {}
        for distribute in (False, True):
            with ParallelEngine(
                _fresh_system(),
                NonbondedOptions(cutoff=CUTOFF),
                VelocityVerlet(dt=1.0),
                workers=w_max,
                ewald=ewald,
                distribute=distribute,
            ) as engine:
                rate, energy = _measure(engine)
                pool_ok = engine.parallel
                drep = engine.driver_report()
            modes["on" if distribute else "off"] = {
                "parallel_pool": pool_ok,
                "steps_per_sec": round(rate, 4),
                "total_energy": energy,
                "driver_compute_s": round(drep["driver_s"], 4),
                "force_wall_s": round(drep["wall_s"], 4),
                "driver_share": round(drep["driver_share"], 4),
            }
        distribution = {
            "workers": w_max,
            "ewald_kmax": ewald.kmax,
            "modes": modes,
        }
        # both modes integrate the same physics
        e_on, e_off = modes["on"]["total_energy"], modes["off"]["total_energy"]
        assert abs(e_on - e_off) <= 1e-6 * abs(e_off), (
            f"distributed Ewald run diverged: {e_on} vs {e_off}"
        )
        cores = os.cpu_count() or 1
        if (
            cores >= 4
            and w_max >= 4
            and modes["on"]["parallel_pool"]
            and modes["off"]["parallel_pool"]
        ):
            share_on = modes["on"]["driver_share"]
            share_off = modes["off"]["driver_share"]
            assert share_on <= MAX_DISTRIBUTED_SHARE_RATIO * share_off, (
                f"distribution left the driver share at {share_on:.3f} "
                f"(undistributed {share_off:.3f}); expected at least a "
                f"{1 - MAX_DISTRIBUTED_SHARE_RATIO:.0%} drop"
            )

    payload = {
        "system": {"n_atoms": n_atoms, "cutoff_A": CUTOFF, "dt_fs": 1.0},
        "protocol": {
            "warmup_steps": WARMUP_STEPS,
            "measured_steps": MEASURE_STEPS,
        },
        "host": {"cpu_count": os.cpu_count()},
        "sequential_steps_per_sec": round(seq_rate, 4),
        "workers": rows,
        "distribution": distribution,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines = [
        "Parallel engine benchmark (wall-clock on this host)",
        "",
        f"{n_atoms} atoms at {CUTOFF} A cutoff, {MEASURE_STEPS} measured steps,"
        f" {os.cpu_count()} CPU core(s)",
        "",
        f"  {'workers':>8} {'steps/sec':>10} {'speedup':>8} {'efficiency':>11}",
        f"  {'seq':>8} {seq_rate:>10.4f} {'1.00x':>8} {'':>11}",
    ]
    for row in rows:
        lines.append(
            f"  {row['workers_live']:>8} {row['steps_per_sec']:>10.4f} "
            f"{row['speedup_vs_sequential']:>7.2f}x "
            f"{row['efficiency']:>10.2f}"
        )
    if distribution is not None:
        lines.append("")
        lines.append(
            f"Ewald run at {distribution['workers']} workers "
            f"(kmax {distribution['ewald_kmax']}): driver share"
        )
        for mode, m in distribution["modes"].items():
            lines.append(
                f"  distribute {mode:>3}: {m['driver_share'] * 100:6.1f}% "
                f"({m['driver_compute_s']:.3f}s of {m['force_wall_s']:.3f}s), "
                f"{m['steps_per_sec']:.4f} steps/sec"
            )
    (RESULTS_DIR / "BENCH_parallel.txt").write_text("\n".join(lines) + "\n")

    by_requested = {r["workers_requested"]: r for r in rows}
    if 4 in by_requested:
        speedup4 = by_requested[4]["speedup_vs_sequential"]
        assert speedup4 >= MIN_SPEEDUP_4W, (
            f"4-worker speedup {speedup4:.2f}x below the {MIN_SPEEDUP_4W}x floor"
        )
    if 2 in by_requested:
        assert by_requested[2]["parallel_pool"], "2-worker pool failed to start"
