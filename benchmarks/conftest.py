"""Benchmark fixtures: the paper's systems, decomposed once and disk-cached.

Building a :class:`DecomposedProblem` for ApoA-I / BC1 requires exact pair
counting over every patch pair (tens of seconds), but is deterministic per
seed — so it is pickled under ``.bench_cache/`` and reused across the
benchmark session and across runs.  Delete the directory to force a rebuild.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.builder.benchmarks import apoa1_like, bc1_like, br_like
from repro.core.problem import DecomposedProblem
from repro.core.simulation import DEFAULT_COST_MODEL

CACHE_DIR = Path(__file__).parent / ".bench_cache"
RESULTS_DIR = Path(__file__).parent / "results"


def _cached_problem(
    name: str, build_system, cache_tag: str = "", **build_kwargs
) -> DecomposedProblem:
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}{'_' + cache_tag if cache_tag else ''}.pkl"
    if path.exists():
        with path.open("rb") as fh:
            return pickle.load(fh)
    system = build_system()
    problem = DecomposedProblem.build(system, DEFAULT_COST_MODEL, **build_kwargs)
    with path.open("wb") as fh:
        pickle.dump(problem, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return problem


@pytest.fixture(scope="session")
def apoa1_problem() -> DecomposedProblem:
    """ApoA-I (92,224 atoms), default grainsize, split bonded."""
    return _cached_problem("apoa1", apoa1_like)


@pytest.fixture(scope="session")
def apoa1_problem_noselfsplit() -> DecomposedProblem:
    """ApoA-I with pair splitting disabled (the Figure 1 configuration)."""
    from repro.core.computes import GrainsizeConfig

    return _cached_problem(
        "apoa1",
        apoa1_like,
        cache_tag="nopairsplit",
        grainsize=GrainsizeConfig(split_self=True, split_pairs=False),
    )


@pytest.fixture(scope="session")
def apoa1_problem_merged_bonded() -> DecomposedProblem:
    """ApoA-I with the pre-§4.2.2 merged bonded objects (ablation A3)."""
    return _cached_problem(
        "apoa1", apoa1_like, cache_tag="mergedbonded", split_bonded=False
    )


@pytest.fixture(scope="session")
def bc1_problem() -> DecomposedProblem:
    """BC1 (206,617 atoms)."""
    return _cached_problem("bc1", bc1_like)


@pytest.fixture(scope="session")
def br_problem() -> DecomposedProblem:
    """bR (3,762 atoms)."""
    return _cached_problem("br", br_like)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the log."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
