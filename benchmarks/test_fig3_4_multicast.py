"""E9 — Figures 3 & 4: timeline views before/after the optimized multicast.

"More than half of the time in this method was spent in sending 20-30
identical messages.  The allocation and packing of messages was consuming
most of the time.  A simple utility was then added to the Charm++ runtime
... that carries out the multicast by using only one user level packing and
allocation.  This shortened the duration of this critical entry method by
half."

We run ApoA-I on 1024 simulated processors with the naive and optimized
multicast, render two-step timeline windows (the figures), and assert the
quantitative claims: per-patch send CPU drops by at least half, and the
step time improves.
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.timeline import render_timeline
from repro.core.simulation import ParallelSimulation, SimulationConfig
from repro.runtime.machine import ASCI_RED

N_PROCS = 1024


@pytest.fixture(scope="module")
def runs(apoa1_problem):
    out = {}
    for optimized in (False, True):
        cfg = SimulationConfig(
            n_procs=N_PROCS,
            machine=ASCI_RED,
            optimized_multicast=optimized,
            trace_final_phase=True,
        )
        sim = ParallelSimulation(apoa1_problem.system, cfg, problem=apoa1_problem)
        out[optimized] = sim.run()
    return out


def test_fig3_4_regenerate(benchmark, runs, results_dir):
    def render():
        sections = []
        for optimized, fig in ((False, "Figure 3"), (True, "Figure 4")):
            res = runs[optimized]
            times = res.final.timings.completion_times
            t0, t1 = times[-3], times[-1]
            label = "after" if optimized else "before"
            sections.append(
                f"{fig} (reproduced): two timesteps {label} the optimized "
                f"multicast — {res.time_per_step * 1e3:.1f} ms/step\n"
                + render_timeline(
                    res.final.trace, procs=list(range(0, 12)), t0=t0, t1=t1,
                    width=100,
                )
            )
        return "\n\n".join(sections)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "fig3_4_multicast", text)


def test_optimized_multicast_improves_step_time(runs):
    assert runs[True].time_per_step < runs[False].time_per_step


def test_send_overhead_at_least_halved(runs):
    """The paper's 'shortened ... by half' claim, measured on the send/pack
    CPU charged to the patch processors."""
    naive = runs[False].final.summary.send_overhead_per_proc.sum()
    opt = runs[True].final.summary.send_overhead_per_proc.sum()
    assert opt < 0.6 * naive


def test_integration_phase_visible_in_trace(runs):
    for res in runs.values():
        cats = res.final.summary.time_per_category
        assert cats.get("integration", 0.0) > 0.0
        assert cats.get("nonbonded", 0.0) > 0.0
