"""Microbenchmarks of the real computational kernels.

Unlike the table/figure harness (which regenerates the paper's results on
the simulated machine), these measure the *actual* wall-clock throughput of
the Python kernels on this host — the numbers a downstream user needs to
size real workloads, and the data behind the guide rule "profile before
optimizing".
"""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.bonded import compute_bonded
from repro.md.cells import CellGrid, candidate_pairs
from repro.md.ewald import EwaldOptions, compute_ewald
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded


@pytest.fixture(scope="module")
def water512():
    return small_water_box(512, seed=13, relax=False)


def test_bench_cell_grid_build(benchmark, water512):
    result = benchmark(CellGrid.build, water512.positions, water512.box, 8.0)
    assert result.n_cells >= 1


def test_bench_candidate_pairs(benchmark, water512):
    i, j = benchmark(candidate_pairs, water512.positions, water512.box, 8.0)
    assert len(i) > 0


def test_bench_nonbonded_kernel(benchmark, water512):
    opts = NonbondedOptions(cutoff=8.0)
    result = benchmark(compute_nonbonded, water512, opts)
    assert result.n_pairs > 0
    # throughput note: pairs per second = result.n_pairs / mean_time


def test_bench_bonded_kernels(benchmark, water512):
    def run():
        return compute_bonded(water512)

    energies, _ = benchmark(run)
    assert energies.bond > 0


def test_bench_ewald(benchmark, water512):
    opts = EwaldOptions(cutoff=7.0, kmax=6)
    result = benchmark.pedantic(
        compute_ewald, args=(water512, opts), rounds=3, iterations=1
    )
    assert np.isfinite(result.energy)


def test_bench_exclusion_build(benchmark, water512):
    def build():
        water512.invalidate_exclusions()
        return water512.topology.build_exclusions(water512.n_atoms)

    excl = benchmark(build)
    assert excl.n_excluded == 512 * 3  # 2x O-H + 1x H-H per water
