"""E1 — Table 1: the performance audit, ApoA-I on 1024 ASCI-Red processors.

The paper's audit was taken "at an intermediate stage, when the time per
step ... was around 86 ms" — i.e. with the naive multicast still in place.
We reproduce both that intermediate configuration and the fully optimized
one, checking the audit's structure: load imbalance and idle time dominate
the gap, communication overhead is "significant, but relatively small".
"""

import pytest

from benchmarks.conftest import save_result
from benchmarks.paper_data import TABLE1_AUDIT
from repro.analysis.audit import performance_audit
from repro.core.simulation import ParallelSimulation, SimulationConfig
from repro.runtime.machine import ASCI_RED


@pytest.fixture(scope="module")
def audit_run(apoa1_problem):
    cfg = SimulationConfig(
        n_procs=1024,
        machine=ASCI_RED,
        optimized_multicast=False,  # the paper's intermediate stage
    )
    sim = ParallelSimulation(apoa1_problem.system, cfg, problem=apoa1_problem)
    return sim.run()


def test_table1_regenerate(benchmark, audit_run, results_dir):
    def render():
        audit = performance_audit(audit_run)
        paper = TABLE1_AUDIT
        lines = [audit.format(), "", "Paper's Table 1 for comparison (ms):"]
        for row in ("ideal", "actual"):
            vals = paper[row]
            lines.append(
                f"{row.capitalize():8}" + "".join(
                    f"{vals[k]:12.2f}"
                    for k in ("total", "nonbonded", "bonds", "integration",
                              "overhead", "imbalance", "idle", "receives")
                )
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "table1_audit", text)


def test_ideal_row_matches_paper(audit_run):
    """Our ideal row is the calibrated single-processor decomposition / P;
    the paper prints the same single-processor numbers."""
    audit = performance_audit(audit_run)
    # paper's ideal values are the 1-processor seconds (not divided by P) —
    # compare the proportions instead
    ideal = audit.ideal
    assert ideal.nonbonded / ideal.total == pytest.approx(52.44 / 57.04, rel=0.02)
    assert ideal.bonds / ideal.total == pytest.approx(3.16 / 57.04, rel=0.02)
    assert ideal.integration / ideal.total == pytest.approx(1.44 / 57.04, rel=0.02)


def test_actual_total_in_paper_band(audit_run):
    """Paper: ~86 ms/step at this stage (we accept 55-110 ms)."""
    t = audit_run.time_per_step
    assert 0.055 < t < 0.110, t


def test_imbalance_and_idle_dominate_gap(audit_run):
    """Paper: 'clearly load imbalance was a major factor'; imbalance (10.45)
    + idle (9.25) together exceed overhead (7.97) + receives (1.61)."""
    a = performance_audit(audit_run).actual
    assert a.imbalance + a.idle > a.overhead + a.receives


def test_overhead_significant_but_small(audit_run):
    a = performance_audit(audit_run).actual
    assert 0.0 < a.overhead + a.receives < 0.5 * a.total


def test_accounting_identity(audit_run):
    a = performance_audit(audit_run).actual
    total = (a.nonbonded + a.bonds + a.integration + a.overhead + a.receives
             + a.imbalance + a.idle)
    assert total == pytest.approx(a.total, rel=1e-9)
