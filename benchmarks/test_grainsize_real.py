"""Grainsize-control benchmark on the real engine: Figure 1 -> Figure 2.

Three configurations of the skewed water box (10x density step) with a 2x
injected slowdown on worker 0:

* ``static``            — whole-cell tasks, cost-model assignment only
* ``rebalanced``        — whole-cell tasks + greedy/refine rebalancing
* ``rebalanced_split``  — grainsize sub-tasks + the same rebalancing

All three integrate the same trajectory (the reduction is assignment- and
split-independent to 1e-9), so the measured max worker load isolates what
granularity buys the balancer: with whole cells, one dense task bounds the
achievable balance no matter how tasks are placed (paper §4.2.1).

The Figure 1 -> 2 reproduction runs separately without any slowdown: two
short runs (split off/on) whose WorkDB-measured per-task times become the
before/after grainsize histograms.

Gates: sub-task pair sets must *exactly* partition each parent's pair set
(always), energies must agree across configurations to 1e-9 (always), and
the rebalanced+split max worker load must be >= 15% below rebalanced-
unsplit on multi-core hosts.

Results land in ``benchmarks/results/BENCH_grainsize_real.json`` (+
``.txt``).  Environment knobs for CI: ``GRAINSIZE_BENCH_WATERS`` (default
``400``), ``GRAINSIZE_BENCH_STEPS`` (default ``60``) and
``GRAINSIZE_BENCH_EVERY`` (default ``20``).
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis import format_histogram, histogram_from_workdb
from repro.builder import skewed_water_box
from repro.core.decomposition import bin_atoms
from repro.md.cells import CellGrid
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import ParallelEngine, ParallelNonbonded, _build_task_lists
from repro.util.pbc import wrap_positions

RESULTS_DIR = Path(__file__).parent / "results"

WATERS = int(os.environ.get("GRAINSIZE_BENCH_WATERS", "400"))
CUTOFF = 8.0
SKIN = 1.5
# SKEW/WORKERS pick the regime where granularity structurally binds: the
# densest cell task is ~11% of the total work while a fast worker's fair
# share is ~13% (7.5 effective workers once worker 0 runs at half speed).
# Whole-cell placement then cannot beat max/mean ~1.5 no matter how tasks
# are measured or moved, while 1 ms slices rebalance to ~1.02.
SKEW = 10.0
SLOWDOWN = {0: 2.0}
WORKERS = 8
GRAINSIZE_MS = 1.0
WARMUP_STEPS = 1
MEASURE_STEPS = int(os.environ.get("GRAINSIZE_BENCH_STEPS", "60"))
REBALANCE_EVERY = int(os.environ.get("GRAINSIZE_BENCH_EVERY", "20"))
#: acceptance floor on multi-core hosts: rebalanced+split max worker load
#: must sit at least this far below rebalanced-unsplit
MIN_MAX_LOAD_DROP = 0.15

OPTS = NonbondedOptions(cutoff=CUTOFF)


def _fresh_system():
    system = skewed_water_box(WATERS, seed=11, skew=SKEW, relax=False)
    system.assign_velocities(300.0, seed=11)
    return system


def _pair_keys(i, j, n):
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return np.sort(lo * n + hi)


def _exact_pair_set_check() -> dict:
    """The CI gate: every parent's pair set == union of its slices' sets."""
    system = _fresh_system()
    nb = ParallelNonbonded(
        system, OPTS, n_workers=WORKERS, skin=SKIN, grainsize_ms=GRAINSIZE_MS
    )
    try:
        assert nb.active, "worker pool failed to start"
        report = nb.split_report()
        probe = system.copy()
        probe.positions = wrap_positions(probe.positions, probe.box)
        r_list = CUTOFF + SKIN
        grid = CellGrid.build(probe.positions, probe.box, r_list)
        _, _, buckets = bin_atoms(probe.positions, probe.box, grid.dims)
        n = probe.n_atoms
        subs_by_parent: dict[tuple, list] = {}
        for a, b, part, n_parts in nb._tasks:
            subs_by_parent.setdefault((a, b, n_parts), []).append(part)
        for (a, b, n_parts), parts in subs_by_parent.items():
            assert sorted(parts) == list(range(n_parts))
            parent_lists = _build_task_lists(
                probe, [(a, b, 0, 1)], [0], buckets, r_list
            )
            subs = [(a, b, p, n_parts) for p in range(n_parts)]
            sub_lists = _build_task_lists(
                probe, subs, list(range(n_parts)), buckets, r_list
            )

            def keys(lists, count):
                chunks = [
                    _pair_keys(lists[t][0], lists[t][1], n)
                    for t in range(count)
                    if lists.get(t) is not None
                ]
                return (
                    np.sort(np.concatenate(chunks))
                    if chunks
                    else np.zeros(0, dtype=np.int64)
                )

            assert np.array_equal(keys(sub_lists, n_parts), keys(parent_lists, 1)), (
                f"split of task ({a},{b}) into {n_parts} parts lost or "
                "duplicated pairs"
            )
        return report
    finally:
        nb.close()


def _measure(rebalance_every: int, grainsize_ms: float) -> dict:
    with ParallelEngine(
        _fresh_system(),
        OPTS,
        VelocityVerlet(dt=1.0),
        workers=WORKERS,
        skin=SKIN,
        rebalance_every=rebalance_every,
        slowdown=SLOWDOWN,
        grainsize_ms=grainsize_ms,
    ) as engine:
        assert engine.parallel, "worker pool failed to start"
        engine.run(WARMUP_STEPS)
        reports = engine.run(MEASURE_STEPS)
        loads = engine._nb.worker_loads()
        split = engine._nb.split_report()
        return {
            "rebalance_every": rebalance_every,
            "grainsize_ms": grainsize_ms,
            "n_parent_tasks": split["n_parent_tasks"],
            "n_subtasks": split["n_subtasks"],
            "max_worker_load_ms": round(float(loads.max()) * 1e3, 4),
            "mean_worker_load_ms": round(float(loads.mean()) * 1e3, 4),
            "max_over_mean_load": round(float(loads.max() / loads.mean()), 4),
            "n_rebalances": engine._nb.n_rebalances,
            "total_energy": reports[-1].total,
        }


def _figure_histogram(grainsize_ms: float) -> tuple[dict, str]:
    """Short slowdown-free run -> measured per-task time histogram."""
    with ParallelEngine(
        _fresh_system(),
        OPTS,
        VelocityVerlet(dt=1.0),
        workers=WORKERS,
        skin=SKIN,
        grainsize_ms=grainsize_ms,
    ) as engine:
        assert engine.parallel
        engine.run(5)
        hist = histogram_from_workdb(engine.workdb, bin_ms=0.5)
    label = (
        f"grainsize off (whole cells)"
        if grainsize_ms == 0
        else f"grainsize {grainsize_ms:g} ms (split)"
    )
    payload = {
        "grainsize_ms": grainsize_ms,
        "bin_edges_ms": [round(float(e), 4) for e in hist.bin_edges_ms],
        "counts": [float(c) for c in hist.counts],
        "max_task_ms": round(hist.max_grainsize_ms, 4),
        "total_tasks": hist.total_tasks,
    }
    return payload, format_histogram(hist, width=48, title=label)


def test_grainsize_real_benchmark():
    split_info = _exact_pair_set_check()
    assert split_info["n_subtasks"] > split_info["n_parent_tasks"], (
        f"grainsize {GRAINSIZE_MS} ms split nothing on this box"
    )

    fig1, fig1_txt = _figure_histogram(0.0)
    fig2, fig2_txt = _figure_histogram(GRAINSIZE_MS)

    static = _measure(0, 0.0)
    rebalanced = _measure(REBALANCE_EVERY, 0.0)
    rebalanced_split = _measure(REBALANCE_EVERY, GRAINSIZE_MS)
    drop = 1.0 - (
        rebalanced_split["max_worker_load_ms"] / rebalanced["max_worker_load_ms"]
    )
    # max/mean within one run is immune to run-to-run wall-clock drift, so
    # it is the robust view of scheduling quality on oversubscribed hosts
    imbalance_drop = 1.0 - (
        rebalanced_split["max_over_mean_load"] / rebalanced["max_over_mean_load"]
    )

    payload = {
        "system": {
            "n_atoms": WATERS * 3,
            "cutoff_A": CUTOFF,
            "density_skew": SKEW,
            "dt_fs": 1.0,
        },
        "protocol": {
            "warmup_steps": WARMUP_STEPS,
            "measured_steps": MEASURE_STEPS,
            "workers": WORKERS,
            "rebalance_every": REBALANCE_EVERY,
            "grainsize_ms": GRAINSIZE_MS,
            "injected_slowdown": {str(k): v for k, v in SLOWDOWN.items()},
        },
        "host": {"cpu_count": os.cpu_count()},
        "split": split_info,
        "figure1_unsplit_histogram": fig1,
        "figure2_split_histogram": fig2,
        "static": static,
        "rebalanced": rebalanced,
        "rebalanced_split": rebalanced_split,
        "max_load_drop_split_vs_unsplit": round(drop, 4),
        "imbalance_drop_split_vs_unsplit": round(imbalance_drop, 4),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_grainsize_real.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    rows = [
        ("static", static),
        ("rebalanced", rebalanced),
        ("rebalanced+split", rebalanced_split),
    ]
    lines = [
        "Grainsize benchmark (skewed box, 2x-slowed worker 0)",
        "",
        f"{WATERS * 3} atoms at {CUTOFF} A cutoff, {MEASURE_STEPS} measured"
        f" steps, {os.cpu_count()} CPU core(s); "
        f"{split_info['n_parent_tasks']} cell tasks -> "
        f"{split_info['n_subtasks']} sub-tasks at {GRAINSIZE_MS:g} ms",
        "",
        f"  {'config':>18} {'tasks':>6} {'max load':>10} {'max/mean':>9}",
    ]
    for label, row in rows:
        lines.append(
            f"  {label:>18} {row['n_subtasks']:>6} "
            f"{row['max_worker_load_ms']:>8.2f}ms {row['max_over_mean_load']:>9.3f}"
        )
    lines.append(
        f"\n  max-load drop, split vs unsplit rebalanced: {drop * 100:.1f}%"
        f"\n  imbalance (max/mean) drop:                  "
        f"{imbalance_drop * 100:.1f}%"
    )
    lines += ["", fig1_txt, "", fig2_txt]
    (RESULTS_DIR / "BENCH_grainsize_real.txt").write_text("\n".join(lines) + "\n")

    # physics gate: granularity and rebalancing must not change the physics
    for label, row in rows[1:]:
        assert abs(row["total_energy"] - static["total_energy"]) <= 1e-9 * abs(
            static["total_energy"]
        ), f"{label} run diverged from the static trajectory"

    # the split run must actually schedule sub-tasks and keep rebalancing
    assert rebalanced_split["n_subtasks"] > rebalanced["n_subtasks"]
    assert rebalanced_split["n_rebalances"] >= 1
    assert rebalanced["n_rebalances"] >= 1

    # the Figure 1 -> 2 signature: splitting caps the largest measured task
    assert fig2["max_task_ms"] < fig1["max_task_ms"], (
        "splitting did not reduce the largest measured task time"
    )

    # scheduling-quality gate (multi-core hosts): finer granularity must cut
    # the rebalanced max worker load by >= 15%
    if (os.cpu_count() or 1) >= 2:
        assert drop >= MIN_MAX_LOAD_DROP, (
            f"max-load drop {drop * 100:.1f}% below the "
            f"{MIN_MAX_LOAD_DROP * 100:.0f}% floor"
        )
        assert imbalance_drop >= MIN_MAX_LOAD_DROP, (
            f"imbalance drop {imbalance_drop * 100:.1f}% below the "
            f"{MIN_MAX_LOAD_DROP * 100:.0f}% floor"
        )
