"""A4 — machine-parameter sensitivity of the hybrid scheme.

The paper demonstrates the same program scaling on three very different
machines (mesh, torus, ccNUMA).  This ablation quantifies *why* that
portability holds: ApoA-I at 512 simulated processors under systematic
perturbations of one machine parameter at a time.  The data-driven overlap
makes step time insensitive to latency (messages hide behind computation)
and primarily sensitive to per-message CPU overheads — the quantity the
optimized multicast attacks.
"""

import pytest

from benchmarks.conftest import save_result
from repro.core.simulation import ParallelSimulation, SimulationConfig
from repro.runtime.machine import ASCI_RED

N_PROCS = 512

VARIANTS = {
    "baseline": {},
    "latency x10": {"latency_s": ASCI_RED.latency_s * 10},
    "bandwidth /4": {"bandwidth_Bps": ASCI_RED.bandwidth_Bps / 4},
    "send+recv overhead x4": {
        "send_overhead_s": ASCI_RED.send_overhead_s * 4,
        "recv_overhead_s": ASCI_RED.recv_overhead_s * 4,
    },
    "pack cost x4": {"pack_per_byte_s": ASCI_RED.pack_per_byte_s * 4},
}


@pytest.fixture(scope="module")
def results(apoa1_problem):
    out = {}
    for label, overrides in VARIANTS.items():
        machine = ASCI_RED.with_overrides(**overrides) if overrides else ASCI_RED
        cfg = SimulationConfig(n_procs=N_PROCS, machine=machine)
        out[label] = ParallelSimulation(
            apoa1_problem.system, cfg, problem=apoa1_problem
        ).run()
    return out


def test_ablation_regenerate(benchmark, results, results_dir):
    def render():
        base = results["baseline"].time_per_step
        lines = [
            f"A4: machine-parameter sensitivity — ApoA-I @ {N_PROCS} procs",
            f"{'variant':>24} {'ms/step':>9} {'vs baseline':>12}",
        ]
        for label, res in results.items():
            lines.append(
                f"{label:>24} {res.time_per_step * 1e3:>9.2f} "
                f"{res.time_per_step / base:>11.2f}x"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_result(results_dir, "ablation_machine_sensitivity", text)


def test_latency_largely_hidden(results):
    """Data-driven overlap: 10x latency costs well under 2x step time."""
    base = results["baseline"].time_per_step
    assert results["latency x10"].time_per_step < 1.8 * base


def test_cpu_overheads_bite_hardest(results):
    """Per-message CPU cost is the real scaling tax (§4.2.3's motivation):
    quadrupling it hurts at least as much as quadrupling wire costs."""
    base = results["baseline"].time_per_step
    ovh = results["send+recv overhead x4"].time_per_step / base
    bw = results["bandwidth /4"].time_per_step / base
    assert ovh >= bw * 0.95


def test_all_variants_still_scale(results):
    """Even degraded machines keep triple-digit speedups at 512 procs —
    the portability the paper demonstrates across three architectures."""
    for label, res in results.items():
        assert res.speedup > 100, label
