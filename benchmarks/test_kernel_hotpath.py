"""Hot-path benchmark: pair enumeration speedup, steps/sec, pairlist reuse.

Measures the two quantities the non-bonded hot path lives or dies by:

* **candidate enumeration** — vectorized :func:`repro.md.cells.candidate_pairs`
  against the retained per-cell-loop reference on a 10,200-atom water box
  (the paper's point that speedups must be quoted against a *good*
  sequential algorithm, §4.3, applied to our own baseline); and
* **engine throughput** — steps/sec of :class:`SequentialEngine` on its
  default Verlet-pairlist path, with the list reuse fraction.

Results land in ``benchmarks/results/BENCH_hotpath.json`` (machine-readable,
uploaded as a CI artifact) and ``BENCH_hotpath.txt`` (for ``repro report``).
Timings use best-of-N to shrug off shared-host noise.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.builder import small_water_box
from repro.md.cells import _candidate_pairs_reference, candidate_pairs
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions

RESULTS_DIR = Path(__file__).parent / "results"

#: 3400 waters = 10,200 atoms; cutoff in the regime where the old per-cell
#: Python loop dominates (many cells, modest atoms per cell).
ENUM_WATERS = 3400
ENUM_CUTOFF = 6.0
MD_WATERS = 216
MD_CUTOFF = 8.0
MD_STEPS = 30


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _pair_keys(i, j, n):
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return np.sort(lo * n + hi)


def test_hotpath_benchmark():
    system = small_water_box(ENUM_WATERS, seed=11, relax=False)
    pos, box = system.positions, system.box
    n = system.n_atoms

    # correctness gate before timing anything
    i_new, j_new = candidate_pairs(pos, box, ENUM_CUTOFF)
    i_ref, j_ref = _candidate_pairs_reference(pos, box, ENUM_CUTOFF)
    assert len(i_new) == len(i_ref)
    assert np.array_equal(_pair_keys(i_new, j_new, n), _pair_keys(i_ref, j_ref, n))

    t_vec = _best_of(lambda: candidate_pairs(pos, box, ENUM_CUTOFF), repeats=5)
    t_ref = _best_of(
        lambda: _candidate_pairs_reference(pos, box, ENUM_CUTOFF), repeats=3
    )
    speedup = t_ref / t_vec

    # engine throughput on the default (Verlet-pairlist) path
    md_system = small_water_box(MD_WATERS, seed=7)
    md_system.assign_velocities(300.0, seed=7)
    engine = SequentialEngine(
        md_system, NonbondedOptions(cutoff=MD_CUTOFF), VelocityVerlet(dt=1.0)
    )
    engine.run(3)  # warm-up: first build + cache warm
    t0 = time.perf_counter()
    engine.run(MD_STEPS)
    wall = time.perf_counter() - t0
    steps_per_sec = MD_STEPS / wall
    reuse = engine.pairlist.reuse_fraction

    payload = {
        "enumeration": {
            "n_atoms": n,
            "cutoff_A": ENUM_CUTOFF,
            "n_candidate_pairs": int(len(i_new)),
            "vectorized_s": round(t_vec, 6),
            "reference_loop_s": round(t_ref, 6),
            "speedup": round(speedup, 2),
        },
        "engine": {
            "n_atoms": md_system.n_atoms,
            "cutoff_A": MD_CUTOFF,
            "n_steps": MD_STEPS,
            "steps_per_sec": round(steps_per_sec, 3),
            "pairlist_skin_A": engine.pairlist.skin,
            "pairlist_reuse_fraction": round(reuse, 3),
            "pairlist_builds": engine.pairlist.n_builds,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    (RESULTS_DIR / "BENCH_hotpath.txt").write_text(
        "Hot-path benchmark (kernel wall-clock on this host)\n"
        "\n"
        f"Candidate enumeration, {n} atoms at {ENUM_CUTOFF} A cutoff:\n"
        f"  vectorized      {t_vec * 1e3:8.1f} ms\n"
        f"  reference loop  {t_ref * 1e3:8.1f} ms\n"
        f"  speedup         {speedup:8.2f}x  ({len(i_new)} candidate pairs)\n"
        "\n"
        f"Sequential engine, {md_system.n_atoms} atoms at {MD_CUTOFF} A cutoff:\n"
        f"  steps/sec       {steps_per_sec:8.3f}\n"
        f"  pairlist reuse  {reuse:8.2%}  (skin {engine.pairlist.skin} A, "
        f"{engine.pairlist.n_builds} builds over {MD_STEPS + 3} steps)\n"
    )

    assert reuse > 0.3, "Verlet list should be reused most steps"
    assert speedup >= 3.0, (
        f"vectorized enumeration only {speedup:.2f}x faster than the "
        f"reference loop (vec {t_vec * 1e3:.1f} ms, ref {t_ref * 1e3:.1f} ms)"
    )
