"""TIP3P-like water construction and solvent filling.

Waters are placed on a jittered lattice whose cell volume matches the
experimental number density of liquid water (0.0334 molecules/Å³), then
randomly oriented.  :func:`fill_water` fills the free volume of a partially
assembled system, skipping lattice sites that clash with existing solute.
"""

from __future__ import annotations

import numpy as np

from repro.md.forcefield import WATER_ANGLE, WATER_OH_BOND
from repro.md.topology import Topology
from repro.util.rng import make_rng

__all__ = [
    "WATER_DENSITY_PER_A3",
    "water_molecule",
    "water_box_positions",
    "fill_water",
]

#: Number density of liquid water, molecules per Å³.
WATER_DENSITY_PER_A3 = 0.0334

_OH = 0.9572  # Å, TIP3P O-H bond length
_HOH = np.deg2rad(104.52)  # TIP3P H-O-H angle

#: Minimum lattice spacing fill_water will densify down to before giving up.
_MIN_SITE_SPACING = 2.6

# local geometry: O at origin, both hydrogens in the xy plane
_WATER_LOCAL = np.array(
    [
        [0.0, 0.0, 0.0],
        [_OH, 0.0, 0.0],
        [_OH * np.cos(_HOH), _OH * np.sin(_HOH), 0.0],
    ]
)
_WATER_CHARGES = np.array([-0.834, 0.417, 0.417])
_WATER_NAMES = ["OT", "HT", "HT"]


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (via a random unit quaternion)."""
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def water_molecule(
    center: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, list[str], Topology]:
    """One randomly oriented TIP3P-like water with its oxygen at ``center``.

    Returns ``(positions (3,3), charges (3,), names, topology)`` where the
    topology holds the two O-H bonds and the H-O-H angle.
    """
    rot = _random_rotation(make_rng(rng))
    pos = _WATER_LOCAL @ rot.T + np.asarray(center, dtype=np.float64)
    topo = Topology()
    topo.add_bond(0, 1, WATER_OH_BOND)
    topo.add_bond(0, 2, WATER_OH_BOND)
    topo.add_angle(1, 0, 2, WATER_ANGLE)
    return pos, _WATER_CHARGES.copy(), list(_WATER_NAMES), topo


def _lattice_dims(box: np.ndarray, n: int) -> np.ndarray:
    """Per-axis cell counts whose product is >= n, cells near-cubic."""
    scale = (n / float(np.prod(box))) ** (1.0 / 3.0)
    dims = np.maximum(np.floor(box * scale).astype(np.int64), 1)
    while int(np.prod(dims)) < n:
        # grow the axis whose cells are currently largest
        dims[int(np.argmax(box / dims))] += 1
    return dims


def water_box_positions(
    box: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` oxygen sites on a jittered lattice spanning ``box``.

    Sites are cell centres of a near-cubic grid, visited in random order, so
    any prefix of the returned array still covers the whole box.
    """
    box = np.asarray(box, dtype=np.float64)
    if n <= 0:
        return np.zeros((0, 3), dtype=np.float64)
    rng = make_rng(rng)
    dims = _lattice_dims(box, n)
    cell = box / dims
    grids = np.meshgrid(*(np.arange(d) for d in dims), indexing="ij")
    sites = (np.stack([g.ravel() for g in grids], axis=1) + 0.5) * cell
    sites = sites[rng.permutation(len(sites))[:n]]
    sites += rng.uniform(-0.15, 0.15, size=sites.shape)
    return sites


def _wrap_into(points: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Wrap points into [0, box) strictly (safe for KDTree boxsize)."""
    wrapped = np.mod(points, box)
    wrapped[wrapped >= box] = 0.0
    return wrapped


def fill_water(
    asm,
    n_molecules: int,
    rng: np.random.Generator,
    clearance: float = 2.0,
) -> int:
    """Add exactly ``n_molecules`` waters to ``asm``, avoiding the solute.

    Lattice sites closer than ``clearance`` + one O-H bond to any existing
    atom (minimum-image) are rejected; if too few sites survive, the lattice
    is densified until either enough fit or the spacing would drop below
    ``2.6`` Å, at which point ``RuntimeError`` is raised.
    """
    from scipy.spatial import cKDTree

    rng = make_rng(rng)
    box = asm.box
    volume = float(np.prod(box))
    solute = asm.current_positions()
    tree = cKDTree(_wrap_into(solute, box), boxsize=box) if len(solute) else None
    site_clearance = clearance + _OH + 0.1  # keep hydrogens clear too

    n_sites = n_molecules
    while True:
        spacing = (volume / n_sites) ** (1.0 / 3.0)
        if spacing < _MIN_SITE_SPACING:
            raise RuntimeError(
                f"cannot fit {n_molecules} waters in box {box.tolist()} "
                f"(lattice spacing would fall below {_MIN_SITE_SPACING} Å)"
            )
        sites = water_box_positions(box, n_sites, rng)
        if tree is not None:
            d, _ = tree.query(_wrap_into(sites, box), k=1)
            sites = sites[d > site_clearance]
        if len(sites) >= n_molecules:
            sites = sites[:n_molecules]
            break
        n_sites = int(np.ceil(n_sites * 1.3)) + 1

    for site in sites:
        pos, q, names, topo = water_molecule(site, rng)
        asm.add_component(pos, q, names, topo, "WAT")
    return n_molecules
