"""Synthetic lipid and bilayer builders.

A lipid is a 9-atom phosphatidylcholine-like head group plus two aliphatic
tails of configurable length.  ``direction`` (+1/-1) points the tails along
±z, so two leaflets built with opposite directions form a bilayer whose
tails meet at the mid-plane — the density profile the ApoA-I and BC1
benchmarks need for realistic load imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.md.forcefield import (
    STANDARD_ANGLE,
    STANDARD_BOND,
    STANDARD_DIHEDRAL,
)
from repro.md.topology import Topology
from repro.util.rng import make_rng

__all__ = ["LIPID_HEAD_ATOMS", "lipid_molecule", "lipid_bilayer"]

#: Head-group atoms: (type name, partial charge, local offset (x, y, z)).
#: z offsets are multiplied by ``direction`` so the head sits opposite the
#: tails.  Charges sum to zero (zwitterionic PC head).
LIPID_HEAD_ATOMS: list[tuple[str, float, tuple[float, float, float]]] = [
    ("NTL", 0.60, (0.0, 0.0, -3.6)),  # choline nitrogen
    ("CL", 0.10, (0.0, 0.9, -2.5)),
    ("CL", 0.10, (0.0, 0.0, -1.5)),
    ("PL", 1.10, (1.3, 0.0, -2.2)),  # phosphorus
    ("O2L", -0.70, (2.4, 0.8, -2.2)),
    ("O2L", -0.70, (2.4, -0.8, -2.2)),
    ("OSL", -0.35, (-0.75, -0.5, 0.9)),  # ester oxygen, anchors tail A
    ("OSL", -0.35, (0.75, -0.5, 0.9)),  # ester oxygen, anchors tail B
    ("CL", 0.20, (0.0, -0.3, -0.1)),  # glycerol carbon
]

# head-group bond graph over local indices (glycerol CL at 8 bridges to
# both ester oxygens, which anchor the two tails)
_HEAD_BONDS = [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (2, 8), (8, 6), (8, 7)]
_HEAD_ANGLES = [(0, 1, 2), (1, 2, 3), (2, 3, 4), (6, 8, 7)]
_TAIL_ANCHORS = (6, 7)
_TAIL_RISE = 1.27  # Å per carbon along the tail axis
_TAIL_ZIGZAG = 0.4


def lipid_molecule(
    xy: np.ndarray,
    z0: float,
    direction: int,
    tail_length: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, list[str], Topology]:
    """One lipid at in-plane position ``xy``, head anchored at ``z0``.

    ``direction`` = +1 points the two tails toward +z, -1 toward -z.
    Returns ``(positions, charges, names, topology)`` with
    ``9 + 2*tail_length`` atoms.
    """
    if tail_length < 3:
        raise ValueError("lipid tails need at least 3 carbons")
    rng = make_rng(rng)
    xy = np.asarray(xy, dtype=np.float64)
    base = np.array([xy[0], xy[1], z0])
    jitter = rng.uniform(-0.15, 0.15, size=2)

    positions: list[np.ndarray] = []
    charges: list[float] = []
    names: list[str] = []
    topo = Topology()

    for name, charge, (dx, dy, dz) in LIPID_HEAD_ATOMS:
        positions.append(base + [dx + jitter[0], dy + jitter[1], direction * dz])
        charges.append(charge)
        names.append(name)
    for i, j in _HEAD_BONDS:
        topo.add_bond(i, j, STANDARD_BOND)
    for i, j, k in _HEAD_ANGLES:
        topo.add_angle(i, j, k, STANDARD_ANGLE)

    for tail, anchor in enumerate(_TAIL_ANCHORS):
        anchor_pos = positions[anchor]
        tail_x = -0.75 if tail == 0 else 0.75
        prev_idx = anchor
        first_idx = len(positions)
        for j in range(tail_length):
            zig = _TAIL_ZIGZAG * (1 if j % 2 else -1)
            pos = base + [
                tail_x + zig + jitter[0],
                -0.5 + jitter[1],
                direction * (2.0 + _TAIL_RISE * j),
            ]
            idx = len(positions)
            positions.append(pos)
            charges.append(0.0)
            names.append("CTL")
            topo.add_bond(prev_idx, idx, STANDARD_BOND)
            if j == 1:
                topo.add_angle(anchor, first_idx, idx, STANDARD_ANGLE)
            elif j >= 2:
                topo.add_angle(idx - 2, idx - 1, idx, STANDARD_ANGLE)
            if j == 2:
                topo.add_dihedral(anchor, first_idx, idx - 1, idx, STANDARD_DIHEDRAL)
            prev_idx = idx
        _ = anchor_pos  # anchor geometry is implicit in the offsets above

    return (
        np.array(positions, dtype=np.float64),
        np.array(charges, dtype=np.float64),
        names,
        topo,
    )


def lipid_bilayer(
    asm,
    z_center: float,
    rect: tuple[float, float, float, float],
    n_lipids: int,
    rng: np.random.Generator,
    tail_length: int = 12,
) -> int:
    """Tile ``n_lipids`` into two leaflets meeting at ``z_center``.

    ``rect`` is ``(x0, x1, y0, y1)`` bounding the membrane patch.  Odd
    counts put the extra lipid in the lower leaflet.  Returns the number of
    lipids placed.
    """
    x0, x1, y0, y1 = rect
    if x1 <= x0 or y1 <= y0:
        raise ValueError(f"degenerate membrane rectangle {rect}")
    rng = make_rng(rng)

    leaflet_offset = 2.0 + _TAIL_RISE * (tail_length - 1) + 0.6
    leaflets = (
        (n_lipids - n_lipids // 2, z_center - leaflet_offset, 1),
        (n_lipids // 2, z_center + leaflet_offset, -1),
    )
    width, height = x1 - x0, y1 - y0
    for count, z0, direction in leaflets:
        if count == 0:
            continue
        nx = max(1, int(np.ceil(np.sqrt(count * width / height))))
        ny = int(np.ceil(count / nx))
        dx, dy = width / nx, height / ny
        placed = 0
        for iy in range(ny):
            for ix in range(nx):
                if placed >= count:
                    break
                xy = np.array([x0 + (ix + 0.5) * dx, y0 + (iy + 0.5) * dy])
                pos, q, names, topo = lipid_molecule(
                    xy, z0, direction, tail_length, rng
                )
                asm.add_component(pos, q, names, topo, "LIP")
                placed += 1
    return n_lipids
