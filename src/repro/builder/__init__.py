"""Synthetic structure builders for the paper benchmarks.

Builds water boxes, peptides, lipid bilayers, ions, and the composed
benchmark assemblies (ApoA-I / BC1 / bR analogues) with exact atom counts,
entirely from the in-repo force field — no external structure files.
"""

from repro.builder.assembler import SystemAssembler
from repro.builder.benchmarks import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    apoa1_like,
    bc1_like,
    br_like,
    mini_assembly,
    skewed_water_box,
    small_water_box,
    tiny_peptide,
)
from repro.builder.ions import add_ions, ensure_ion_types
from repro.builder.membrane import lipid_bilayer, lipid_molecule
from repro.builder.protein import protein_chain
from repro.builder.water import fill_water, water_box_positions, water_molecule

__all__ = [
    "SystemAssembler",
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "apoa1_like",
    "bc1_like",
    "br_like",
    "mini_assembly",
    "skewed_water_box",
    "small_water_box",
    "tiny_peptide",
    "add_ions",
    "ensure_ion_types",
    "lipid_bilayer",
    "lipid_molecule",
    "protein_chain",
    "fill_water",
    "water_box_positions",
    "water_molecule",
]
