"""Benchmark system builders with exact paper atom counts.

The paper's three benchmarks (Table 1) are rebuilt synthetically but with
the *exact* atom counts and patch grids, so decomposition and load-balance
behaviour match the published configurations:

==========  ========  ===========  ====================================
benchmark   atoms     patch grid   composition
==========  ========  ===========  ====================================
ApoA-I       92,224   7 x 7 x 5    protein + lipid bilayer + water
BC1         206,617   9 x 7 x 6    4-chain protein + membrane + water
bR            3,762   4 x 3 x 3    vacuum protein (very inhomogeneous)
==========  ========  ===========  ====================================

Atom budgets close exactly because waters come in threes and ions in ones:
``_ion_count_for_remainder`` picks an ion count that makes the remainder
divisible by three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.builder.assembler import SystemAssembler
from repro.builder.ions import add_ions
from repro.builder.membrane import lipid_bilayer
from repro.builder.protein import protein_chain
from repro.builder.water import (
    WATER_DENSITY_PER_A3,
    fill_water,
    water_box_positions,
    water_molecule,
)
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedOptions
from repro.md.system import MolecularSystem
from repro.util.rng import make_rng

__all__ = [
    "BenchmarkSpec",
    "BENCHMARK_SPECS",
    "small_water_box",
    "skewed_water_box",
    "tiny_peptide",
    "mini_assembly",
    "br_like",
    "apoa1_like",
    "bc1_like",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published configuration of one paper benchmark."""

    name: str
    n_atoms: int
    patch_grid: tuple[int, int, int]
    cutoff: float
    box: tuple[float, float, float]
    description: str


BENCHMARK_SPECS: dict[str, BenchmarkSpec] = {
    "apoa1": BenchmarkSpec(
        name="apoa1",
        n_atoms=92_224,
        patch_grid=(7, 7, 5),
        cutoff=12.0,
        box=(108.86, 108.86, 77.76),
        description="Apolipoprotein A-I: protein + lipid bilayer + water",
    ),
    "bc1": BenchmarkSpec(
        name="bc1",
        n_atoms=206_617,
        patch_grid=(9, 7, 6),
        cutoff=12.0,
        box=(154.0, 123.0, 108.0),
        description="Cytochrome bc1 complex: multi-chain protein in membrane",
    ),
    "br": BenchmarkSpec(
        name="br",
        n_atoms=3_762,
        patch_grid=(4, 3, 3),
        cutoff=12.0,
        box=(70.0, 54.0, 54.0),
        description="Bacteriorhodopsin in vacuum: highly inhomogeneous",
    ),
}


def _sidechain_pattern(n_res: int, mean: int = 5) -> np.ndarray:
    """Deterministic side-chain lengths in 2..8 summing to exactly ``mean*n``."""
    cycle = (5, 3, 7, 2, 8, 4, 6)  # mean 5 over one period
    pattern = np.array([cycle[i % len(cycle)] for i in range(n_res)], dtype=np.int64)
    deficit = mean * n_res - int(pattern.sum())
    i = 0
    while deficit != 0:
        step = 1 if deficit > 0 else -1
        if 2 <= pattern[i] + step <= 8:
            pattern[i] += step
            deficit -= step
        i = (i + 1) % n_res
    return pattern


def _ion_count_for_remainder(remaining: int, min_ions: int) -> tuple[int, int]:
    """Split ``remaining`` atoms into ions + 3-atom waters, exactly.

    Returns ``(n_ions, n_waters)`` with ``n_ions >= min_ions`` chosen so the
    water remainder is divisible by three.
    """
    if remaining < min_ions:
        raise ValueError(
            f"cannot allocate {remaining} atoms with at least {min_ions} ions"
        )
    n_ions = min_ions + (remaining - min_ions) % 3
    return n_ions, (remaining - n_ions) // 3


# --------------------------------------------------------------------- #
# small test fixtures
# --------------------------------------------------------------------- #
def small_water_box(
    n_molecules: int, seed: int = 0, relax: bool = True
) -> MolecularSystem:
    """A cubic water box at liquid density, energy-minimized by default."""
    edge = (n_molecules / WATER_DENSITY_PER_A3) ** (1.0 / 3.0)
    asm = SystemAssembler(np.full(3, edge))
    fill_water(asm, n_molecules, make_rng(seed))
    system = asm.finalize(name=f"water{n_molecules}")
    if relax:
        cutoff = min(6.0, 0.49 * edge)
        minimize(system, NonbondedOptions(cutoff=cutoff))
    return system


def skewed_water_box(
    n_molecules: int, seed: int = 0, skew: float = 2.0, relax: bool = True
) -> MolecularSystem:
    """A water box with a density step along x — the LB stress fixture.

    The ``x < L/2`` half holds ``skew`` times as many waters as the other
    half (the whole box averages liquid density), so cell tasks on the
    dense side cost a multiple of those on the sparse side.  This is the
    benchmark the real engine's measurement-based rebalancing is exercised
    on: uniform boxes barely reward migration, a density step does.

    ``skew`` is bounded by the minimum lattice spacing; the default 2x
    keeps the dense half comfortably above it.
    """
    if skew <= 0:
        raise ValueError("skew must be positive")
    edge = (n_molecules / WATER_DENSITY_PER_A3) ** (1.0 / 3.0)
    rng = make_rng(seed)
    n_dense = int(round(n_molecules * skew / (skew + 1.0)))
    half = np.array([edge / 2.0, edge, edge])
    dense = water_box_positions(half, n_dense, rng)
    sparse = water_box_positions(half, n_molecules - n_dense, rng)
    sparse[:, 0] += edge / 2.0
    asm = SystemAssembler(np.full(3, edge))
    for site in np.concatenate([dense, sparse]):
        pos, q, names, topo = water_molecule(site, rng)
        asm.add_component(pos, q, names, topo, "WAT")
    system = asm.finalize(name=f"skewed_water{n_molecules}")
    if relax:
        cutoff = min(6.0, 0.49 * edge)
        minimize(system, NonbondedOptions(cutoff=cutoff))
    return system


def tiny_peptide(n_res: int = 5, seed: int = 0, relax: bool = True) -> MolecularSystem:
    """A small vacuum peptide centred in a 60 Å box."""
    box = np.full(3, 60.0)
    center = box / 2
    rng = make_rng(seed)
    asm = SystemAssembler(box)
    pos, q, names, topo = protein_chain(
        n_res, center, rng, confine_center=center, confine_radius=10.0
    )
    asm.add_component(pos, q, names, topo, "PROT")
    system = asm.finalize(name=f"peptide{n_res}", wrap=False)
    if relax:
        minimize(system, NonbondedOptions(cutoff=10.0), max_iterations=150)
    return system


def mini_assembly(seed: int = 0) -> MolecularSystem:
    """A 3,100-atom protein + lipid + ion + water assembly (2x2x2 patches).

    The miniature version of the paper benchmarks used throughout the unit
    tests: same component structure and density contrast, 36 Å box.
    """
    box = np.full(3, 36.0)
    rng = make_rng(seed)
    asm = SystemAssembler(box)

    center = np.array([18.0, 18.0, 28.0])
    pos, q, names, topo = protein_chain(
        40,
        center,
        rng,
        sidechain_lengths=_sidechain_pattern(40),
        confine_center=center,
        confine_radius=7.0,
    )
    asm.add_component(pos, q, names, topo, "PROT")  # 440 atoms

    lipid_bilayer(asm, 15.0, (3.0, 33.0, 3.0, 33.0), 14, rng, tail_length=8)  # 350
    add_ions(asm, 6, rng, clearance=2.2)
    fill_water(asm, 768, rng, clearance=2.2)  # 2304 atoms -> 3100 total
    return asm.finalize(name="mini_assembly")


# --------------------------------------------------------------------- #
# paper benchmarks
# --------------------------------------------------------------------- #
def br_like(seed: int = 2002) -> MolecularSystem:
    """The 3,762-atom bR-like vacuum protein (patch grid 4x3x3).

    A single confined chain: most patches are empty and a few central ones
    hold hundreds of atoms — the load-imbalance stress case of the paper.
    """
    spec = BENCHMARK_SPECS["br"]
    box = np.array(spec.box)
    center = box / 2
    rng = make_rng(seed)
    asm = SystemAssembler(box)
    pos, q, names, topo = protein_chain(
        342,
        center,
        rng,
        sidechain_lengths=_sidechain_pattern(342),
        confine_center=center,
        confine_radius=13.5,
    )
    asm.add_component(pos, q, names, topo, "PROT")
    system = asm.finalize(name="br_like")
    assert system.n_atoms == spec.n_atoms
    return system


def apoa1_like(seed: int = 1912) -> MolecularSystem:
    """The 92,224-atom ApoA-I-like membrane system (patch grid 7x7x5)."""
    spec = BENCHMARK_SPECS["apoa1"]
    box = np.array(spec.box)
    rng = make_rng(seed)
    asm = SystemAssembler(box)

    center = np.array([box[0] / 2, box[1] / 2, box[2] / 2])
    pos, q, names, topo = protein_chain(
        800,
        center,
        rng,
        sidechain_lengths=_sidechain_pattern(800),
        confine_center=center,
        confine_radius=26.0,
    )
    asm.add_component(pos, q, names, topo, "PROT")  # 8,800 atoms

    lipid_bilayer(
        asm, box[2] / 2, (4.0, box[0] - 4.0, 4.0, box[1] - 4.0), 150, rng,
        tail_length=12,
    )  # 4,950 atoms
    n_ions, n_waters = _ion_count_for_remainder(
        spec.n_atoms - asm.n_atoms, min_ions=20
    )
    add_ions(asm, n_ions, rng, clearance=2.2)
    fill_water(asm, n_waters, rng, clearance=2.2)
    system = asm.finalize(name="apoa1_like")
    assert system.n_atoms == spec.n_atoms
    return system


def bc1_like(seed: int = 1997) -> MolecularSystem:
    """The 206,617-atom BC1-like multi-chain membrane system (9x7x6)."""
    spec = BENCHMARK_SPECS["bc1"]
    box = np.array(spec.box)
    rng = make_rng(seed)
    asm = SystemAssembler(box)

    # four protein chains straddling the membrane, bc1-complex style
    half = np.array([box[0] / 2, box[1] / 2, box[2] / 2])
    for dx, dy in ((-22.0, -22.0), (22.0, -22.0), (-22.0, 22.0), (22.0, 22.0)):
        chain_center = half + np.array([dx, dy, 0.0])
        pos, q, names, topo = protein_chain(
            1000,
            chain_center,
            rng,
            sidechain_lengths=_sidechain_pattern(1000),
            confine_center=chain_center,
            confine_radius=22.0,
        )
        asm.add_component(pos, q, names, topo, "PROT")  # 11,000 atoms each

    lipid_bilayer(
        asm, box[2] / 2, (4.0, box[0] - 4.0, 4.0, box[1] - 4.0), 400, rng,
        tail_length=12,
    )  # 13,200 atoms
    n_ions, n_waters = _ion_count_for_remainder(
        spec.n_atoms - asm.n_atoms, min_ions=20
    )
    add_ions(asm, n_ions, rng, clearance=2.2)
    fill_water(asm, n_waters, rng, clearance=2.2)
    system = asm.finalize(name="bc1_like")
    assert system.n_atoms == spec.n_atoms
    return system
