"""Incremental composition of molecular systems.

The synthetic benchmark builders construct systems one molecule (or one
molecule family) at a time: each :meth:`SystemAssembler.add_component` call
appends a block of atoms plus its local topology, shifting term indices by
the current atom count.  :meth:`SystemAssembler.finalize` produces the
:class:`~repro.md.system.MolecularSystem` consumed by both engines.
"""

from __future__ import annotations

import numpy as np

from repro.md.forcefield import ForceField, default_forcefield
from repro.md.system import MolecularSystem
from repro.md.topology import Topology

__all__ = ["SystemAssembler"]


class SystemAssembler:
    """Accumulates components (water, protein, lipids, ions) into one system.

    Parameters
    ----------
    box:
        Orthorhombic box lengths ``(Lx, Ly, Lz)`` in Å.
    forcefield:
        Parameter registry; defaults to :func:`default_forcefield`.  Atom
        names passed to :meth:`add_component` must already be registered.
    """

    def __init__(self, box: np.ndarray, forcefield: ForceField | None = None) -> None:
        self.box = np.asarray(box, dtype=np.float64)
        if self.box.shape != (3,) or np.any(self.box <= 0):
            raise ValueError(f"box must be 3 positive lengths; got {box}")
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.topology = Topology()
        self._positions: list[np.ndarray] = []
        self._charges: list[np.ndarray] = []
        self._type_indices: list[int] = []
        self._labels: list[str] = []
        self._n_atoms = 0

    @property
    def n_atoms(self) -> int:
        """Number of atoms added so far."""
        return self._n_atoms

    def add_component(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        names: list[str],
        topology: Topology,
        label: str,
    ) -> int:
        """Append one component; returns the atom-index offset it received.

        ``names`` are atom-type names resolved against the assembler's force
        field (``KeyError`` if unregistered); ``topology`` uses local indices
        ``0..n-1`` and is merged with the returned offset.
        """
        pos = np.asarray(positions, dtype=np.float64).reshape(-1, 3)
        q = np.asarray(charges, dtype=np.float64).ravel()
        n = len(pos)
        if len(q) != n or len(names) != n:
            raise ValueError(
                f"component arrays disagree: {n} positions, {len(q)} charges, "
                f"{len(names)} names"
            )
        type_idx = [self.forcefield.atom_type_index(name) for name in names]
        offset = self._n_atoms
        self.topology.merge(topology, offset)
        self._positions.append(pos)
        self._charges.append(q)
        self._type_indices.extend(type_idx)
        self._labels.extend([label] * n)
        self._n_atoms += n
        return offset

    def current_positions(self) -> np.ndarray:
        """Copy of all positions added so far (``(n_atoms, 3)``)."""
        if not self._positions:
            return np.zeros((0, 3), dtype=np.float64)
        return np.concatenate(self._positions, axis=0)

    def finalize(self, name: str = "assembly", wrap: bool = True) -> MolecularSystem:
        """Build the :class:`MolecularSystem`; wraps into the box by default."""
        if self._n_atoms == 0:
            raise ValueError("cannot finalize an empty assembly")
        system = MolecularSystem(
            positions=self.current_positions(),
            velocities=np.zeros((self._n_atoms, 3), dtype=np.float64),
            charges=np.concatenate(self._charges),
            type_indices=np.array(self._type_indices, dtype=np.int64),
            topology=self.topology,
            forcefield=self.forcefield,
            box=self.box.copy(),
            segment_labels=list(self._labels),
            name=name,
        )
        if wrap:
            system.wrap()
        return system
