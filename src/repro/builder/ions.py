"""Counter-ion placement.

Ions alternate Na⁺/Cl⁻ so an even count is exactly neutral and an odd count
carries a net +1 — the convention the benchmark builders rely on to hit
exact atom budgets while staying (near) neutral.
"""

from __future__ import annotations

import numpy as np

from repro.md.forcefield import AtomType, ForceField
from repro.md.topology import Topology
from repro.util.pbc import minimum_image
from repro.util.rng import make_rng

__all__ = ["SODIUM", "CHLORIDE", "ensure_ion_types", "add_ions"]

SODIUM = AtomType("SOD", 22.9898, 0.0469, 1.41075)
CHLORIDE = AtomType("CLA", 35.453, 0.1500, 2.2700)

_MAX_ATTEMPTS_PER_ION = 500


def ensure_ion_types(forcefield: ForceField) -> None:
    """Register the SOD/CLA atom types (idempotent)."""
    forcefield.add_atom_type(SODIUM)
    forcefield.add_atom_type(CHLORIDE)


def add_ions(
    asm,
    n_ions: int,
    rng: np.random.Generator,
    clearance: float = 2.0,
) -> int:
    """Scatter ``n_ions`` alternating Na⁺/Cl⁻ ions into free space of ``asm``.

    Each candidate position is drawn uniformly in the box and accepted only
    if its minimum-image distance to every existing atom (and every ion
    placed so far) exceeds ``clearance``.  Raises ``RuntimeError`` when a
    position cannot be found within the attempt budget.
    """
    rng = make_rng(rng)
    ensure_ion_types(asm.forcefield)
    box = asm.box
    existing = asm.current_positions()

    placed: list[np.ndarray] = []
    for i in range(n_ions):
        accepted = None
        for _ in range(_MAX_ATTEMPTS_PER_ION):
            candidate = rng.uniform(0.0, 1.0, size=3) * box
            others = existing if not placed else np.vstack([existing, placed])
            if len(others):
                delta = minimum_image(others - candidate, box)
                if np.min(np.einsum("ij,ij->i", delta, delta)) <= clearance**2:
                    continue
            accepted = candidate
            break
        if accepted is None:
            raise RuntimeError(
                f"could not place ion {i + 1}/{n_ions} with clearance "
                f"{clearance} Å in box {box.tolist()}"
            )
        placed.append(accepted)
        positive = i % 2 == 0
        asm.add_component(
            accepted.reshape(1, 3),
            np.array([1.0 if positive else -1.0]),
            ["SOD" if positive else "CLA"],
            Topology(),
            "ION",
        )
    return n_ions
