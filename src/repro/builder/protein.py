"""Synthetic protein chain builder.

Residues are laid out along a persistent random walk of Cα atoms with the
canonical 3.8 Å Cα-Cα spacing.  Each residue carries six backbone atoms
(N, H, CA, HA, C, O — CA at local index 2) plus a side chain of 2-8
aliphatic carbons, so atom counts are exactly ``6*n_res + sum(sidechains)``.
An optional spherical confinement keeps the walk inside a benchmark box.
"""

from __future__ import annotations

import numpy as np

from repro.md.forcefield import (
    BACKBONE_ANGLE,
    BACKBONE_BOND,
    BACKBONE_DIHEDRAL,
    CARBONYL_BOND,
    STANDARD_ANGLE,
    STANDARD_BOND,
    STANDARD_DIHEDRAL,
    STANDARD_IMPROPER,
    XH_BOND,
)
from repro.md.topology import Topology
from repro.util.rng import make_rng

__all__ = ["protein_chain", "BACKBONE_ATOMS_PER_RESIDUE"]

#: N, H, CA, HA, C, O
BACKBONE_ATOMS_PER_RESIDUE = 6

_CA_SPACING = 3.8
_BACKBONE_NAMES = ["N", "H", "CA", "HA", "C", "O"]
# CHARMM-like backbone partial charges; they sum to zero per residue.
_BACKBONE_CHARGES = [-0.47, 0.31, 0.07, 0.09, 0.51, -0.51]


def _random_unit(rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=3)
    return v / np.linalg.norm(v)


def _perpendicular(d: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A unit vector perpendicular to ``d`` with a random azimuth."""
    p = np.cross(d, _random_unit(rng))
    norm = np.linalg.norm(p)
    while norm < 1e-8:
        p = np.cross(d, _random_unit(rng))
        norm = np.linalg.norm(p)
    return p / norm


def _ca_trace(
    n_res: int,
    start: np.ndarray,
    rng: np.random.Generator,
    confine_center: np.ndarray | None,
    confine_radius: float | None,
) -> np.ndarray:
    """Persistent random walk of Cα positions, optionally confined."""
    cas = np.empty((n_res, 3), dtype=np.float64)
    cas[0] = start
    direction = _random_unit(rng)
    for i in range(1, n_res):
        for _ in range(64):
            candidate = cas[i - 1] + _CA_SPACING * direction
            if (
                confine_center is None
                or np.linalg.norm(candidate - confine_center) <= confine_radius
            ):
                break
            # steer back toward the confinement centre
            inward = confine_center - cas[i - 1]
            inward /= max(np.linalg.norm(inward), 1e-12)
            direction = inward + 0.6 * _random_unit(rng)
            direction /= np.linalg.norm(direction)
        cas[i] = cas[i - 1] + _CA_SPACING * direction
        direction = direction + 0.7 * _random_unit(rng)
        direction /= np.linalg.norm(direction)
    return cas


def protein_chain(
    n_res: int,
    start: np.ndarray,
    rng: np.random.Generator,
    sidechain_lengths: np.ndarray | None = None,
    confine_center: np.ndarray | None = None,
    confine_radius: float | None = None,
) -> tuple[np.ndarray, np.ndarray, list[str], Topology]:
    """Build one protein chain of ``n_res`` residues starting at ``start``.

    Returns ``(positions, charges, names, topology)``.  ``sidechain_lengths``
    (2..8 carbons per residue) defaults to random draws; pass an explicit
    array for exact atom budgets.
    """
    if n_res < 1:
        raise ValueError("protein chain needs at least one residue")
    rng = make_rng(rng)
    if sidechain_lengths is None:
        sidechain_lengths = rng.integers(2, 9, size=n_res)
    sidechain_lengths = np.asarray(sidechain_lengths, dtype=np.int64)
    if sidechain_lengths.shape != (n_res,):
        raise ValueError(
            f"sidechain_lengths must have shape ({n_res},); "
            f"got {sidechain_lengths.shape}"
        )
    if sidechain_lengths.min() < 2 or sidechain_lengths.max() > 8:
        raise ValueError("sidechain lengths must be in 2..8")

    start = np.asarray(start, dtype=np.float64)
    if confine_center is not None:
        confine_center = np.asarray(confine_center, dtype=np.float64)
    cas = _ca_trace(n_res, start, rng, confine_center, confine_radius)

    positions: list[np.ndarray] = []
    charges: list[float] = []
    names: list[str] = []
    topo = Topology()

    # per-residue backbone directions (last residue reuses the previous one)
    dirs = np.empty((n_res, 3))
    if n_res > 1:
        diffs = np.diff(cas, axis=0)
        dirs[:-1] = diffs / np.linalg.norm(diffs, axis=1, keepdims=True)
        dirs[-1] = dirs[-2]
    else:
        dirs[0] = _random_unit(rng)

    n_index_of: list[int] = []  # absolute index of each residue's N
    c_index_of: list[int] = []  # absolute index of each residue's C
    ca_index_of: list[int] = []
    sc0_index_of: list[int] = []

    offset = 0
    for i in range(n_res):
        d = dirs[i]
        d_prev = dirs[i - 1] if i > 0 else dirs[i]
        perp = _perpendicular(d, rng)
        ca = cas[i]

        n_pos = ca - 1.45 * d_prev
        h_pos = n_pos + 1.0 * perp
        ha_dir = -perp + 0.3 * d
        ha_pos = ca + 1.09 * ha_dir / np.linalg.norm(ha_dir)
        # C sits off-axis so the C(i)-N(i+1) peptide bond lands at its
        # 1.45 Å rest length: (2.35 - a)^2 + b^2 = 1.45^2 with a^2 + b^2
        # = 1.53^2 (CA-C rest length) gives (a, b) below.
        c_pos = ca + 1.2255 * d + 0.9153 * perp
        o_dir = perp + 0.25 * d
        o_pos = c_pos + 1.23 * o_dir / np.linalg.norm(o_dir)
        positions.extend([n_pos, h_pos, ca, ha_pos, c_pos, o_pos])
        charges.extend(_BACKBONE_CHARGES)
        names.extend(_BACKBONE_NAMES)

        n_i, h_i, ca_i, ha_i, c_i, o_i = (offset + k for k in range(6))
        n_index_of.append(n_i)
        c_index_of.append(c_i)
        ca_index_of.append(ca_i)

        topo.add_bond(n_i, h_i, XH_BOND)
        topo.add_bond(n_i, ca_i, BACKBONE_BOND)
        topo.add_bond(ca_i, ha_i, XH_BOND)
        topo.add_bond(ca_i, c_i, STANDARD_BOND)
        topo.add_bond(c_i, o_i, CARBONYL_BOND)
        topo.add_angle(h_i, n_i, ca_i, STANDARD_ANGLE)
        topo.add_angle(n_i, ca_i, c_i, BACKBONE_ANGLE)
        topo.add_angle(ca_i, c_i, o_i, STANDARD_ANGLE)

        # side chain: a short random walk of aliphatic carbons off CA
        sc = int(sidechain_lengths[i])
        prev_pos, prev_idx = ca, ca_i
        step_dir = _perpendicular(d, rng)
        for j in range(sc):
            sc_pos = prev_pos + 1.53 * step_dir
            sc_idx = offset + 6 + j
            positions.append(sc_pos)
            charges.append(0.0)
            names.append("CT")
            topo.add_bond(prev_idx, sc_idx, STANDARD_BOND)
            if j == 0:
                sc0_index_of.append(sc_idx)
            if j == 1:
                topo.add_angle(ca_i, sc0_index_of[i], sc_idx, STANDARD_ANGLE)
            elif j >= 2:
                topo.add_angle(sc_idx - 2, sc_idx - 1, sc_idx, STANDARD_ANGLE)
            if j == 2:
                topo.add_dihedral(
                    ca_i, sc0_index_of[i], sc_idx - 1, sc_idx, STANDARD_DIHEDRAL
                )
            prev_pos, prev_idx = sc_pos, sc_idx
            step_dir = step_dir + 0.8 * _random_unit(rng)
            step_dir /= np.linalg.norm(step_dir)

        # improper keeps CA pyramidal: CA central, bonded to N, C, SC0
        topo.add_improper(ca_i, n_i, c_i, sc0_index_of[i], STANDARD_IMPROPER)
        offset += 6 + sc

    # inter-residue terms
    for i in range(n_res - 1):
        c_i, n_next = c_index_of[i], n_index_of[i + 1]
        topo.add_bond(c_i, n_next, BACKBONE_BOND)
        topo.add_angle(ca_index_of[i], c_i, n_next, BACKBONE_ANGLE)
        topo.add_angle(c_i, n_next, ca_index_of[i + 1], BACKBONE_ANGLE)
        topo.add_dihedral(
            n_index_of[i], ca_index_of[i], c_i, n_next, BACKBONE_DIHEDRAL
        )

    return (
        np.array(positions, dtype=np.float64),
        np.array(charges, dtype=np.float64),
        names,
        topo,
    )
