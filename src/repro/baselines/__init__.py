"""Baseline parallelization schemes (paper §3).

"Many existing implementations of parallel molecular dynamics use atom
replication or atom decomposition techniques.  Although these techniques
allow relatively easy porting of existing sequential codes, they can be
shown to be theoretically non-scalable: as the number of processors
increases, the communication to computation ratio also increases, even if
the problem size is arbitrarily increased.  More sophisticated strategies,
which are variants of force decomposition are also non-scalable in this
sense, although in practice they may lead to reasonable speedups on
medium-size computers (up to 128 processors).  Spatial decomposition
schemes ... are shown to be theoretically scalable."

Each scheme here is modeled at the same message/overhead fidelity as the
full NAMD simulation (same machine models, same cost model), exposing the
predicted per-step time and the communication/computation ratio whose trend
with P decides theoretical scalability.  The ablation benchmark A1 plots
these side by side with the hybrid simulation.
"""

from repro.baselines.schemes import (
    DecompositionModel,
    AtomReplicationModel,
    AtomDecompositionModel,
    ForceDecompositionModel,
    SpatialDecompositionModel,
    BASELINE_MODELS,
)

__all__ = [
    "DecompositionModel",
    "AtomReplicationModel",
    "AtomDecompositionModel",
    "ForceDecompositionModel",
    "SpatialDecompositionModel",
    "BASELINE_MODELS",
]
