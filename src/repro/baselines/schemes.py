"""Analytic performance models of the classic MD parallelization schemes.

All models share the notation:

* ``N`` — atom count, ``P`` — processors,
* ``W`` — sequential per-step compute time (from the calibrated cost
  model), assumed perfectly divisible,
* machine parameters from :class:`repro.runtime.machine.MachineModel`,
* ``bytes_per_atom`` — wire size of one atom's coordinates or forces.

Each model provides ``step_time(P)`` (modeled seconds/step) and
``comm_ratio(P)`` (communication / computation time); a scheme is
*theoretically scalable* iff ``comm_ratio`` does not grow with ``P`` at
fixed work per processor — the paper's §3 criterion (analyzed in detail in
the NAMD2 paper [9]).

====================  ========================  =====================
Scheme                comm volume per proc      ratio trend (fixed N/P)
====================  ========================  =====================
atom replication      O(N)  (allgather all)     grows with P
atom decomposition    O(N)  (positions of all)  grows with P
force decomposition   O(N/sqrt(P))              grows like sqrt(P)
spatial (cutoff)      O((N/P)^(2/3) + cutoff    bounded
                      surface terms)
====================  ========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.machine import MachineModel

__all__ = [
    "DecompositionModel",
    "AtomReplicationModel",
    "AtomDecompositionModel",
    "ForceDecompositionModel",
    "SpatialDecompositionModel",
    "BASELINE_MODELS",
]

_BYTES_PER_ATOM = 32.0


@dataclass
class DecompositionModel:
    """Base: perfectly balanced computation + scheme-specific communication."""

    n_atoms: int
    sequential_work_s: float  # reference seconds; scaled by machine factor
    machine: MachineModel

    name = "abstract"

    def compute_time(self, n_procs: int) -> float:
        """Perfectly divided computation time at ``n_procs``."""
        return self.sequential_work_s * self.machine.cpu_factor / n_procs

    def comm_time(self, n_procs: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step_time(self, n_procs: int) -> float:
        """Modeled seconds/step: compute + communication (no overlap —
        these schemes, unlike the data-driven hybrid, synchronize globally)."""
        if n_procs == 1:
            return self.sequential_work_s * self.machine.cpu_factor
        return self.compute_time(n_procs) + self.comm_time(n_procs)

    def comm_ratio(self, n_procs: int) -> float:
        """Communication / computation ratio (§3's scalability criterion)."""
        if n_procs == 1:
            return 0.0
        return self.comm_time(n_procs) / self.compute_time(n_procs)

    def speedup(self, n_procs: int) -> float:
        """Modeled speedup over the single-processor time."""
        return (self.sequential_work_s * self.machine.cpu_factor) / self.step_time(
            n_procs
        )

    def _xfer(self, n_bytes: float, n_messages: float) -> float:
        """Time to move ``n_bytes`` in ``n_messages`` (send CPU + wire)."""
        m = self.machine
        return (
            n_messages * (m.send_overhead_s + m.recv_overhead_s + m.latency_s)
            + n_bytes * (m.pack_per_byte_s + 1.0 / m.bandwidth_Bps)
        )


class AtomReplicationModel(DecompositionModel):
    """Replicated data: every processor holds all atoms; forces are
    all-reduced every step.  Per-processor communication is O(N log P) with
    a tree allreduce — growing with P at any fixed N."""

    name = "atom-replication"

    def comm_time(self, n_procs: int) -> float:
        rounds = np.ceil(np.log2(n_procs))
        return self._xfer(
            self.n_atoms * _BYTES_PER_ATOM * rounds, rounds
        )


class AtomDecompositionModel(DecompositionModel):
    """Atom decomposition: each processor owns N/P atoms but needs all
    positions (no spatial locality), i.e. an allgather of N coordinates."""

    name = "atom-decomposition"

    def comm_time(self, n_procs: int) -> float:
        # allgather: receives (P-1) blocks of N/P atoms = ~N atoms total
        blocks = n_procs - 1
        return self._xfer(self.n_atoms * _BYTES_PER_ATOM, blocks)


class ForceDecompositionModel(DecompositionModel):
    """Plimpton-style force-matrix blocks: processor (i, j) needs the atom
    rows i and columns j — two ring allgathers of N/sqrt(P) atoms along the
    processor row and column, plus a fold (reduce-scatter) of forces.  Each
    collective takes sqrt(P)-1 stages, which is the sqrt(P)-growing term
    that makes the scheme theoretically non-scalable (§3)."""

    name = "force-decomposition"

    def comm_time(self, n_procs: int) -> float:
        root = max(np.sqrt(n_procs), 1.0)
        stages = 3.0 * max(root - 1.0, 1.0)  # 2 allgathers + 1 fold
        atoms_moved = 3.0 * self.n_atoms / root
        return self._xfer(atoms_moved * _BYTES_PER_ATOM, stages)


class SpatialDecompositionModel(DecompositionModel):
    """Pure spatial decomposition with cutoff: each processor owns a compact
    region of ``N/P`` atoms and exchanges a shell of thickness ``cutoff``
    with neighbors.  Communication per processor is bounded by the shell
    volume — independent of P once the region is larger than the cutoff,
    and bounded by the *whole* 26-neighborhood otherwise."""

    name = "spatial-decomposition"

    def __init__(
        self,
        n_atoms: int,
        sequential_work_s: float,
        machine: MachineModel,
        box_volume_A3: float,
        cutoff_A: float = 12.0,
        density_atoms_per_A3: float | None = None,
    ) -> None:
        super().__init__(n_atoms, sequential_work_s, machine)
        self.box_volume = float(box_volume_A3)
        self.cutoff = float(cutoff_A)
        self.density = (
            density_atoms_per_A3
            if density_atoms_per_A3 is not None
            else n_atoms / box_volume_A3
        )

    def comm_time(self, n_procs: int) -> float:
        region_volume = self.box_volume / n_procs
        side = region_volume ** (1.0 / 3.0)
        # shell of import: (side + 2 rc)^3 - side^3, clipped to whole box
        shell_volume = min(
            (side + 2.0 * self.cutoff) ** 3 - side**3, self.box_volume - region_volume
        )
        shell_volume = max(shell_volume, 0.0)
        atoms_imported = self.density * shell_volume
        messages = 26.0  # neighbor regions
        return self._xfer(atoms_imported * _BYTES_PER_ATOM, messages)


BASELINE_MODELS = {
    m.name: m
    for m in (
        AtomReplicationModel,
        AtomDecompositionModel,
        ForceDecompositionModel,
        SpatialDecompositionModel,
    )
}
