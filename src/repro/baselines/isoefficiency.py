"""Isoefficiency analysis of the decomposition schemes (paper §3, ref [9]).

The paper's scalability claim is formally an *isoefficiency* statement: a
scheme is scalable iff, to hold parallel efficiency constant as processors
are added, the problem size needs to grow only moderately (ideally linearly
in P).  A non-scalable scheme needs super-linear growth — or cannot reach
the target efficiency at any size (atom replication: per-processor
communication is Θ(N), so efficiency is capped regardless of N).

:func:`isoefficiency_atoms` inverts the closed-form models of
:mod:`repro.baselines.schemes` numerically: the smallest atom count N such
that ``efficiency(N, P) >= target``.  The benchmark/ablation uses the
resulting growth curves to verify the ordering the paper asserts.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.schemes import DecompositionModel
from repro.runtime.machine import MachineModel

__all__ = ["isoefficiency_atoms", "efficiency"]

#: Per-atom sequential work (reference seconds), from the ApoA-I anchor:
#: 57.04 s / 92,224 atoms.
WORK_PER_ATOM_S = 57.04 / 92_224

#: ApoA-I's atom number density, atoms/Å^3 (uniform solvated system).
DENSITY_ATOMS_PER_A3 = 92_224 / (108.86 * 108.86 * 77.76)


def _model_for(scheme: type, n_atoms: int, machine: MachineModel) -> DecompositionModel:
    from repro.baselines.schemes import SpatialDecompositionModel

    work = WORK_PER_ATOM_S * n_atoms
    if scheme is SpatialDecompositionModel:
        return SpatialDecompositionModel(
            n_atoms=n_atoms,
            sequential_work_s=work,
            machine=machine,
            box_volume_A3=n_atoms / DENSITY_ATOMS_PER_A3,
        )
    return scheme(n_atoms=n_atoms, sequential_work_s=work, machine=machine)


def efficiency(scheme: type, n_atoms: int, n_procs: int, machine: MachineModel) -> float:
    """Parallel efficiency of ``scheme`` at ``(N, P)``: speedup / P."""
    model = _model_for(scheme, n_atoms, machine)
    return model.speedup(n_procs) / n_procs


def isoefficiency_atoms(
    scheme: type,
    n_procs: int,
    machine: MachineModel,
    target_efficiency: float = 0.5,
    n_max: int = 10**9,
) -> int | None:
    """Smallest atom count reaching ``target_efficiency`` on ``n_procs``.

    Returns ``None`` when even ``n_max`` atoms cannot reach the target —
    the signature of a theoretically non-scalable scheme whose
    communication grows as fast as its computation.
    """
    lo, hi = 100, n_max
    if efficiency(scheme, hi, n_procs, machine) < target_efficiency:
        return None
    if efficiency(scheme, lo, n_procs, machine) >= target_efficiency:
        return lo
    while hi - lo > max(1, lo // 100):
        mid = (lo + hi) // 2
        if efficiency(scheme, mid, n_procs, machine) >= target_efficiency:
            hi = mid
        else:
            lo = mid
    return hi
