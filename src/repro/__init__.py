"""repro — a reproduction of *Scalable Molecular Dynamics for Large
Biomolecular Systems* (Brunner, Phillips, Kalé; SC 2000).

The package provides, from the bottom up:

* :mod:`repro.md` — a real, vectorized cutoff molecular-dynamics engine
  (force field, bonded + non-bonded kernels, cell lists, velocity Verlet);
* :mod:`repro.builder` — synthetic generators for the paper's three
  benchmark systems at their exact published atom counts;
* :mod:`repro.runtime` — a Charm++/Converse-style data-driven runtime on a
  discrete-event-simulated parallel machine;
* :mod:`repro.balancer` — the measurement-based load-balancing framework
  with the paper's greedy and refinement strategies;
* :mod:`repro.core` — the hybrid force/spatial decomposition: patches,
  proxies, compute objects, grainsize control and the timestep protocol;
* :mod:`repro.baselines` — atom/force/spatial decomposition models for the
  paper's scalability comparison;
* :mod:`repro.analysis` — performance audit, grainsize histograms,
  timeline views and scaling tables mirroring the paper's Tables 1–6 and
  Figures 1–4.

Quickstart::

    from repro.builder import small_water_box
    from repro.md import SequentialEngine

    system = small_water_box(216)
    system.assign_velocities(300.0)
    engine = SequentialEngine(system)
    print(engine.run(10)[-1].total)

Parallel quickstart::

    from repro.builder.benchmarks import mini_assembly
    from repro.core import ParallelSimulation, SimulationConfig

    result = ParallelSimulation(mini_assembly(), SimulationConfig(n_procs=8)).run()
    print(result.time_per_step, result.speedup)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
