"""Worker-slot leasing: one process-count budget shared by many pools.

The service layer runs many concurrent simulations, each owning its own
:class:`~repro.pool.runtime.SupervisedPool` (a pool's task structure is
fixed per workload at construction), but the machine's capacity for worker
*processes* is one shared resource.  :class:`WorkerBudget` is the
thread-safe allocator for that resource: a job acquires a
:class:`WorkerLease` for the slots its pool will spawn, holds it for the
pool's lifetime, and releases it when the pool closes — so the total
number of live worker processes across every job stays bounded no matter
how many jobs are queued.

Deliberately tiny and domain-free (this module is part of ``repro.pool``
and must not import any MD layer): the budget does not spawn anything and
does not know what a job is.  Admission policy — who waits, who runs,
priorities, quotas — lives with the caller (``repro.service``).
"""

from __future__ import annotations

import threading

__all__ = ["WorkerBudget", "WorkerLease"]


class WorkerLease:
    """A held allocation of worker slots; release exactly once.

    Usable as a context manager.  ``release()`` is idempotent, so a
    crash-path sweep may release a lease the happy path already returned.
    """

    __slots__ = ("slots", "label", "_budget", "_released")

    def __init__(self, budget: "WorkerBudget", slots: int, label: str) -> None:
        self.slots = int(slots)
        self.label = str(label)
        self._budget = budget
        self._released = False

    @property
    def active(self) -> bool:
        return not self._released

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._budget._give_back(self)

    def __enter__(self) -> "WorkerLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "released"
        return f"WorkerLease({self.slots} slots, {self.label!r}, {state})"


class WorkerBudget:
    """Thread-safe fixed budget of worker-process slots.

    ``try_acquire`` never blocks: the service's admission loop polls it at
    scheduling boundaries, which keeps admission policy (priorities,
    quotas, fairness) out of this layer entirely.
    """

    def __init__(self, total_slots: int) -> None:
        total_slots = int(total_slots)
        if total_slots < 0:
            raise ValueError("total_slots must be >= 0")
        self._total = total_slots
        self._leased = 0
        self._lock = threading.Lock()
        self._live: set[WorkerLease] = set()

    @property
    def total(self) -> int:
        return self._total

    @property
    def leased(self) -> int:
        with self._lock:
            return self._leased

    @property
    def available(self) -> int:
        with self._lock:
            return self._total - self._leased

    @property
    def n_leases(self) -> int:
        with self._lock:
            return len(self._live)

    def try_acquire(self, slots: int, label: str = "") -> WorkerLease | None:
        """Lease ``slots`` worker slots, or return None if they don't fit.

        ``slots=0`` is legal (a driver-only sequential job) and always
        succeeds — it participates in lease accounting without consuming
        capacity.
        """
        slots = int(slots)
        if slots < 0:
            raise ValueError("slots must be >= 0")
        if slots > self._total:
            raise ValueError(
                f"lease of {slots} slots can never fit a budget of "
                f"{self._total} (raise the budget or shrink the job)"
            )
        with self._lock:
            if self._leased + slots > self._total:
                return None
            lease = WorkerLease(self, slots, label)
            self._leased += slots
            self._live.add(lease)
            return lease

    def _give_back(self, lease: WorkerLease) -> None:
        with self._lock:
            if lease in self._live:
                self._live.discard(lease)
                self._leased -= lease.slots

    def release_all(self) -> None:
        """Crash-path sweep: force-release every outstanding lease."""
        with self._lock:
            live = list(self._live)
        for lease in live:
            lease.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkerBudget({self._leased}/{self._total} leased, "
            f"{self.n_leases} leases)"
        )
