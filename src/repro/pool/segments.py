"""Shared-memory segment registry with collision-free names.

``multiprocessing.shared_memory`` picks random names for anonymous
segments, but a *registry* of explicitly named segments is what lets a
worker process attach by name after a respawn, lets diagnostics point at
the owning pool, and — critically for the multi-pool future — guarantees
that two pools in one process (or two processes on one host) can never
collide: every :class:`SegmentRegistry` derives a unique prefix from the
owning pid plus a random token, and every segment name is
``<prefix>-<label>``.

Ownership is explicit: the registry *creates* (and therefore unlinks)
its segments; workers attach with :func:`attach_segment` and must only
``close()`` their mapping, never unlink (see the function docstring for
the resource-tracker subtlety).  ``unlink_all`` is idempotent and
tolerates segments that already vanished, so teardown ladders can call
it unconditionally.
"""

from __future__ import annotations

import os
import uuid

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shm

    HAS_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None
    HAS_SHARED_MEMORY = False

__all__ = ["HAS_SHARED_MEMORY", "SegmentRegistry", "attach_segment"]

#: retries when a generated name is (astronomically unlikely to be) taken
_NAME_RETRIES = 8


def _new_prefix() -> str:
    """A short, host-unique prefix: pid + random token.

    Kept well under the POSIX shm name limit (31 bytes on the strictest
    platforms, macOS) even after a 8-char label suffix.
    """
    return f"rp{os.getpid():x}-{uuid.uuid4().hex[:8]}"


def attach_segment(name: str):
    """Attach to an existing shared block without adopting ownership.

    Python < 3.13 registers every attach with the resource tracker; pool
    workers are always children of the driver and therefore share *its*
    tracker (both fork and spawn inherit the tracker fd), where the extra
    register is an idempotent no-op.  Crucially the workers must NOT
    unregister — that would strip the driver's own registration and turn
    its later ``unlink()`` into tracker noise.
    """
    return _shm.SharedMemory(name=name)


class SegmentRegistry:
    """Creates, tracks, and tears down one pool's shared-memory segments.

    Each segment is created under a collision-free name
    ``<pid+token prefix>-<label>``; :meth:`names` hands the name map to
    worker processes so they can re-attach (including after a respawn).
    The registry owns the segments: :meth:`unlink_all` closes and unlinks
    everything it created, and is safe to call repeatedly.
    """

    def __init__(self) -> None:
        if not HAS_SHARED_MEMORY:  # pragma: no cover - platform dependent
            raise RuntimeError("platform lacks POSIX shared memory")
        self._prefix = _new_prefix()
        self._segments: dict[str, _shm.SharedMemory] = {}

    # ------------------------------------------------------------------ #
    @property
    def prefix(self) -> str:
        return self._prefix

    def create(self, label: str, nbytes: int):
        """Create segment ``label`` (``nbytes > 0``); returns the block."""
        if label in self._segments:
            raise ValueError(f"segment {label!r} already registered")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        for _ in range(_NAME_RETRIES):
            name = f"{self._prefix}-{label}"
            try:
                seg = _shm.SharedMemory(name=name, create=True, size=nbytes)
            except FileExistsError:  # pragma: no cover - vanishing odds
                # stale segment from a recycled pid: pick a fresh token
                self._prefix = _new_prefix()
                continue
            self._segments[label] = seg
            return seg
        raise RuntimeError(  # pragma: no cover - _NAME_RETRIES collisions
            f"could not find a free shared-memory name for {label!r}"
        )

    def get(self, label: str):
        return self._segments[label]

    def name(self, label: str) -> str:
        return self._segments[label].name

    def names(self) -> dict[str, str]:
        """Label → shared-memory name, for worker attach."""
        return {label: seg.name for label, seg in self._segments.items()}

    def __contains__(self, label: str) -> bool:
        return label in self._segments

    # ------------------------------------------------------------------ #
    def unlink_all(self) -> None:
        """Close and unlink every owned segment (idempotent).

        Callers must drop any numpy views over the buffers first — a view
        keeps the mapping exported and ``close()`` would raise.
        """
        for seg in self._segments.values():
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            except Exception:  # pragma: no cover - teardown must not raise
                pass
        self._segments = {}
