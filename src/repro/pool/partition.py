"""Deterministic static partitioning of task costs onto workers.

The seed assignment of a supervised pool: contiguous, near-equal-cost
runs over the task order.  Generic — any client with a per-task cost
prior can use it (the MD engine seeds from its cost model, a synthetic
workload from uniform costs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["contiguous_partition"]


def contiguous_partition(costs: np.ndarray, n_parts: int) -> np.ndarray:
    """Boundaries of ``n_parts`` contiguous, cost-balanced runs.

    Returns an int array ``bounds`` of length ``n_parts + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == len(costs)``; part ``k`` owns
    tasks ``bounds[k]:bounds[k+1]``.  Deterministic (prefix-sum splitting at
    equal cost targets).

    Guarantees beyond the raw prefix cuts: whenever ``n_tasks >= n_parts``
    every part is nonempty (a single dominant task, or ``searchsorted``
    landing before a run of zero-cost tasks, would otherwise collapse
    several cuts onto one index and starve the trailing parts), and with
    ``n_parts > n_tasks`` the first ``n_tasks`` parts get one task each.
    The clamp moves a collapsed cut to the nearest admissible index, which
    never raises the maximum part cost: the part that previously held the
    dominant prefix only sheds tasks to its (previously empty) successors.
    """
    n_tasks = len(costs)
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    total = float(prefix[-1])
    if total <= 0.0:
        bounds = np.linspace(0, n_tasks, n_parts + 1).round().astype(np.int64)
    else:
        targets = total * np.arange(1, n_parts) / n_parts
        cuts = np.searchsorted(prefix, targets, side="left")
        bounds = np.concatenate([[0], cuts, [n_tasks]]).astype(np.int64)
    # force strictly increasing bounds while tasks last: in the shifted
    # coordinate d[k] = bounds[k] - k, "every part nonempty" is plain
    # monotonicity, so one maximum.accumulate plus a clip to the feasible
    # band [0, n_tasks - n_parts] repairs collapsed cuts with the minimal
    # moves (and pins bounds[0] = 0, bounds[-1] = n_tasks)
    k = np.arange(n_parts + 1, dtype=np.int64)
    d = np.maximum.accumulate(np.clip(bounds, 0, n_tasks) - k)
    d = np.clip(d, 0, max(n_tasks - n_parts, 0))
    return np.minimum(d + k, n_tasks)
