"""Generic supervised shared-memory pool runtime.

A reusable process-pool layer extracted from the MD parallel engine:
worker supervision (spawn/respawn with pipes and sentinels), a
collision-free shared-memory segment registry, an epoch'd
dispatch/collect step protocol with per-task timing, deterministic
fault injection, and the respawn → reassign → degrade recovery ladder.

The runtime is domain-agnostic: it schedules opaque task ids described
by a :class:`TaskProvider` (see :mod:`repro.pool.protocol`) and imports
nothing from :mod:`repro.md` — the MD force-field workload plugs in
through :mod:`repro.md.tasks`, and any other workload (the synthetic
provider in ``tests/test_pool``, future multi-job services) can do the
same.
"""

from repro.pool.lease import WorkerBudget, WorkerLease
from repro.pool.partition import contiguous_partition
from repro.pool.protocol import (
    STAT_COLS,
    STAT_TIME_NS,
    STAT_V0,
    STAT_V1,
    STAT_V2,
    TaskEvaluator,
    TaskProvider,
)
from repro.pool.resilience import (
    HAS_POSIX_SIGNALS,
    FaultInjector,
    RecoveryEventLog,
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
    WorkerHang,
    WorkerKill,
)
from repro.pool.runtime import (
    SupervisedPool,
    normalize_slowdown,
    slowdown_factor,
)
from repro.pool.segments import (
    HAS_SHARED_MEMORY,
    SegmentRegistry,
    attach_segment,
)

__all__ = [
    "HAS_POSIX_SIGNALS",
    "HAS_SHARED_MEMORY",
    "FaultInjector",
    "RecoveryEventLog",
    "RecoveryPolicy",
    "ResilienceStats",
    "STAT_COLS",
    "STAT_TIME_NS",
    "STAT_V0",
    "STAT_V1",
    "STAT_V2",
    "SegmentRegistry",
    "SupervisedPool",
    "TaskEvaluator",
    "TaskProvider",
    "WorkerBudget",
    "WorkerFaultPlan",
    "WorkerHang",
    "WorkerKill",
    "WorkerLease",
    "attach_segment",
    "contiguous_partition",
    "normalize_slowdown",
    "slowdown_factor",
]
