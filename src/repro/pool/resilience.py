"""Fault injection, recovery policy, and accounting for supervised pools.

The *simulated* runtime has a deterministic
:class:`~repro.runtime.faults.FaultPlan`; this module is its counterpart
against live operating-system processes, and is the failure-handling
half of the :mod:`repro.pool` runtime (it knows nothing about what the
workers compute).  A :class:`WorkerFaultPlan` schedules, by evaluation
step:

* **SIGKILL** of a worker process (:class:`WorkerKill`) — fail-stop death,
  the analogue of :class:`~repro.runtime.faults.ProcessorFailure`;
* **SIGSTOP hangs** (:class:`WorkerHang`) — the worker freezes for
  ``duration_s`` seconds (or forever), the failure mode a timeout-based
  supervisor must distinguish from mere slowness;
* **slowdown windows** — reusing the exact
  :class:`~repro.runtime.faults.SlowdownWindow` semantics the pool already
  implements as a measured busy-spin.

The :class:`FaultInjector` fires the plan from the driver side (the driver
owns the pids), once per scheduled event, and un-freezes finite hangs when
their window expires.  Because events are step-indexed, injection is fully
deterministic — the same property that makes the simulated FaultPlan's
tests reproducible.

:class:`RecoveryPolicy` configures the supervised pool's response ladder
(respawn with bounded retry + exponential backoff → reassign to
survivors → degraded serving by the pool's client) and
:class:`ResilienceStats` is the driver-side accounting that the WorkDB,
timeline renders, and ``BENCH_resilience.json`` surface.
"""

from __future__ import annotations

import math
import os
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only; keeps the pool
    # layer import-free of the simulated runtime (and its balancer deps)
    from repro.runtime.faults import SlowdownWindow

__all__ = [
    "HAS_POSIX_SIGNALS",
    "WorkerKill",
    "WorkerHang",
    "WorkerFaultPlan",
    "FaultInjector",
    "RecoveryPolicy",
    "RecoveryEventLog",
    "ResilienceStats",
]

#: SIGSTOP/SIGCONT (hang injection) and SIGKILL exist only on POSIX.
HAS_POSIX_SIGNALS = hasattr(signal, "SIGSTOP") and hasattr(signal, "SIGKILL")


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL worker ``worker`` right after step ``step`` is dispatched."""

    worker: int
    step: int

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0")
        if self.step < 1:
            raise ValueError("step must be >= 1 (1-based evaluation index)")


@dataclass(frozen=True)
class WorkerHang:
    """SIGSTOP worker ``worker`` at step ``step`` for ``duration_s`` seconds.

    ``duration_s = inf`` (the default) freezes the worker until the
    supervisor escalates — the canonical "hung, not dead" scenario.  A
    finite duration models a transient stall (page-fault storm, cgroup
    throttle): the injector sends SIGCONT when the window expires, and a
    stall shorter than the hang threshold is simply *measured* as load.
    """

    worker: int
    step: int
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0")
        if self.step < 1:
            raise ValueError("step must be >= 1 (1-based evaluation index)")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A deterministic, step-indexed schedule of real-process faults."""

    kills: tuple[WorkerKill, ...] = ()
    hangs: tuple[WorkerHang, ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()

    @property
    def active(self) -> bool:
        """True when any fault is scheduled."""
        return bool(self.kills or self.hangs or self.slowdowns)

    def max_worker(self) -> int:
        """Highest worker index any fault targets (-1 when empty)."""
        targets = [k.worker for k in self.kills]
        targets += [h.worker for h in self.hangs]
        targets += [int(w.proc) for w in self.slowdowns]
        return max(targets, default=-1)

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "WorkerFaultPlan":
        """Build a plan from a compact CLI string.

        Comma-separated clauses (steps are 1-based evaluation indices)::

            kill=<worker>@<step>
            hang=<worker>@<step>          (indefinite SIGSTOP)
            hang=<worker>@<step>x<secs>   (SIGCONT after <secs>)
            slow=<worker>@<start>-<end>x<factor>

        Example: ``"kill=1@3,hang=2@5x1.5,slow=0@2-8x4"``.
        """
        from repro.runtime.faults import SlowdownWindow

        kills: list[WorkerKill] = []
        hangs: list[WorkerHang] = []
        slowdowns: list["SlowdownWindow"] = []
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(
                    f"bad fault clause {clause!r} (expected key=value)"
                )
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "kill":
                worker, _, step = value.partition("@")
                kills.append(WorkerKill(int(worker), int(step)))
            elif key == "hang":
                worker, _, rest = value.partition("@")
                step, _, secs = rest.partition("x")
                hangs.append(
                    WorkerHang(
                        int(worker),
                        int(step),
                        float(secs) if secs else math.inf,
                    )
                )
            elif key == "slow":
                worker, _, rest = value.partition("@")
                window, _, factor = rest.partition("x")
                start, _, end = window.partition("-")
                slowdowns.append(
                    SlowdownWindow(
                        int(worker), float(start), float(end), float(factor)
                    )
                )
            else:
                raise ValueError(f"unknown fault clause key {key!r}")
        return cls(
            kills=tuple(kills), hangs=tuple(hangs), slowdowns=tuple(slowdowns)
        )


class FaultInjector:
    """Fires a :class:`WorkerFaultPlan` against live worker processes.

    The driver calls :meth:`inject` right after dispatching each evaluation
    (so kills land while tasks are in flight) and :meth:`poll` from its
    wait loop (to SIGCONT finite hangs whose window expired).  Every event
    fires at most once; a worker that no longer exists (already dead,
    already recovered under a new pid) is skipped silently — injection
    must never take down the driver.
    """

    def __init__(self, plan: WorkerFaultPlan) -> None:
        if not HAS_POSIX_SIGNALS and (plan.kills or plan.hangs):
            raise RuntimeError(
                "worker fault injection needs POSIX signals "
                "(SIGKILL/SIGSTOP); this platform has neither"
            )
        self.plan = plan
        self._fired: set[tuple[str, int, int]] = set()
        #: (worker, pid, resume_deadline) for in-flight finite hangs
        self._stopped: list[tuple[int, int, float]] = []

    @staticmethod
    def _signal(pid: int, signum: int) -> bool:
        try:
            os.kill(pid, signum)
            return True
        except (ProcessLookupError, PermissionError, OSError):
            return False

    def inject(self, step: int, pids: dict[int, int]) -> list[str]:
        """Fire every event scheduled at ``step``; returns what fired."""
        fired: list[str] = []
        for k in self.plan.kills:
            key = ("kill", k.worker, k.step)
            if k.step == step and key not in self._fired:
                self._fired.add(key)
                pid = pids.get(k.worker)
                if pid is not None and self._signal(pid, signal.SIGKILL):
                    fired.append(f"SIGKILL worker {k.worker} @step {step}")
        for h in self.plan.hangs:
            key = ("hang", h.worker, h.step)
            if h.step == step and key not in self._fired:
                self._fired.add(key)
                pid = pids.get(h.worker)
                if pid is not None and self._signal(pid, signal.SIGSTOP):
                    fired.append(f"SIGSTOP worker {h.worker} @step {step}")
                    if math.isfinite(h.duration_s):
                        self._stopped.append(
                            (h.worker, pid, time.monotonic() + h.duration_s)
                        )
        return fired

    def poll(self) -> list[int]:
        """SIGCONT finite hangs whose window expired; returns the workers."""
        if not self._stopped:
            return []
        now = time.monotonic()
        resumed: list[int] = []
        still: list[tuple[int, int, float]] = []
        for worker, pid, deadline in self._stopped:
            if now >= deadline:
                self._signal(pid, signal.SIGCONT)
                resumed.append(worker)
            else:
                still.append((worker, pid, deadline))
        self._stopped = still
        return resumed

    def release_all(self) -> None:
        """SIGCONT everything still stopped (teardown must not leave
        frozen children for the join loop to time out on)."""
        for _worker, pid, _deadline in self._stopped:
            self._signal(pid, signal.SIGCONT)
        self._stopped = []


# --------------------------------------------------------------------------- #
# recovery policy + accounting
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RecoveryPolicy:
    """How the supervised pool responds to dead, hung, or erroring workers.

    The ladder: a failed worker is respawned up to ``max_respawns`` times
    (per worker slot, with exponential backoff ``respawn_backoff_s * 2^n``);
    past that budget it is marked permanently dead and its tasks are
    reassigned to survivors through the WorkDB → LBProblem path (the same
    ``dead_procs`` marking the simulated balancer uses).  When no workers
    survive — or one evaluation needs more than ``max_recovery_rounds``
    recovery episodes — the pool degrades to the sequential path instead
    of raising.

    ``hang_timeout_s`` is the no-progress threshold after which a live but
    silent worker is declared hung and killed; ``None`` derives it per step
    as ``clamp(hang_grace_factor * EWMA(step wall time), min_hang_timeout_s,
    pool timeout)`` — no threshold is applied before the first completed
    step (cold starts legitimately take much longer than steady state).
    ``poll_interval_s`` bounds the supervisor's wait granularity: worker
    death interrupts the wait immediately via process sentinels, so this
    only paces hang/injector checks.

    ``recovery_budget_s`` caps the *total* wall clock one evaluation may
    spend across every recovery rung combined.  Each successful recovery
    re-arms the per-attempt deadline (a re-issued evaluation should not
    inherit a nearly expired one), so without this cap a flapping worker —
    hang, respawn, hang again — could stall a single evaluation for up to
    ``max_respawns × n_workers × timeout`` before the rounds limit bites.
    When the budget is exhausted the pool degrades immediately.  ``None``
    derives the cap as ``recovery_budget_factor × pool timeout``; pass
    ``math.inf`` to opt out.
    """

    max_respawns: int = 2
    respawn_backoff_s: float = 0.05
    max_recovery_rounds: int = 8
    hang_timeout_s: float | None = None
    min_hang_timeout_s: float = 1.0
    hang_grace_factor: float = 20.0
    poll_interval_s: float = 0.2
    recovery_budget_s: float | None = None
    recovery_budget_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.respawn_backoff_s < 0:
            raise ValueError("respawn_backoff_s must be >= 0")
        if self.max_recovery_rounds < 1:
            raise ValueError("max_recovery_rounds must be >= 1")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.recovery_budget_s is not None and self.recovery_budget_s <= 0:
            raise ValueError("recovery_budget_s must be positive")
        if self.recovery_budget_factor < 1.0:
            raise ValueError("recovery_budget_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Backoff before respawn attempt ``attempt`` (0-based)."""
        return self.respawn_backoff_s * (2.0**attempt)

    def recovery_budget(self, timeout: float) -> float:
        """Total recovery wall clock one evaluation may consume."""
        if self.recovery_budget_s is not None:
            return self.recovery_budget_s
        return self.recovery_budget_factor * timeout

    def hang_threshold(self, step_wall_ewma: float, timeout: float) -> float:
        """Silence (seconds) after which a live worker counts as hung."""
        if self.hang_timeout_s is not None:
            return min(self.hang_timeout_s, timeout)
        if step_wall_ewma <= 0.0:
            return timeout  # no steady state yet: only the hard budget
        return min(
            max(self.hang_grace_factor * step_wall_ewma, self.min_hang_timeout_s),
            timeout,
        )


@dataclass
class RecoveryEventLog:
    """One recovery episode, as the driver saw it."""

    step: int  # evaluation index the episode interrupted (0 = between steps)
    worker: int
    kind: str  # "died" | "hung" | "error"
    action: str  # "respawned" | "reassigned" | "degraded"
    detection_s: float  # dispatch-to-detection latency (0 between steps)
    recovery_s: float  # detection-to-resolution wall time
    tasks_moved: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "worker": self.worker,
            "kind": self.kind,
            "action": self.action,
            "detection_s": self.detection_s,
            "recovery_s": self.recovery_s,
            "tasks_moved": self.tasks_moved,
            "detail": self.detail,
        }


@dataclass
class ResilienceStats:
    """Aggregate fault-tolerance accounting for one supervised pool.

    The real-engine sibling of the simulated runtime's
    :class:`~repro.runtime.checkpoint.RecoveryStats`: kills and hangs
    detected, respawns attempted and succeeded, tasks re-executed after
    reassignment, time spent recovering, and how long the pool has been
    running below full strength ("degraded").
    """

    events: list[RecoveryEventLog] = field(default_factory=list)
    kills_detected: int = 0
    hangs_detected: int = 0
    errors_detected: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    tasks_reassigned: int = 0
    reassigned_by_kind: dict[str, int] = field(default_factory=dict)
    steps_redone: int = 0
    recovery_time_s: float = 0.0
    degraded_steps: int = 0
    degraded_since_step: int | None = None
    mode: str = "full"  # "full" | "degraded" | "sequential"

    @property
    def n_failures(self) -> int:
        return self.kills_detected + self.hangs_detected + self.errors_detected

    def note_event(self, event: RecoveryEventLog) -> None:
        self.events.append(event)
        if event.worker >= 0:
            # worker < 0 marks a synthetic pool-level event (e.g. the
            # degrade-to-sequential summary), not a per-worker detection
            if event.kind == "died":
                self.kills_detected += 1
            elif event.kind == "hung":
                self.hangs_detected += 1
            else:
                self.errors_detected += 1
        self.recovery_time_s += event.recovery_s

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "kills_detected": self.kills_detected,
            "hangs_detected": self.hangs_detected,
            "errors_detected": self.errors_detected,
            "respawns": self.respawns,
            "respawn_failures": self.respawn_failures,
            "tasks_reassigned": self.tasks_reassigned,
            "reassigned_by_kind": dict(self.reassigned_by_kind),
            "steps_redone": self.steps_redone,
            "recovery_time_s": self.recovery_time_s,
            "degraded_steps": self.degraded_steps,
            "events": [e.to_dict() for e in self.events],
        }
