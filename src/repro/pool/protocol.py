"""Contracts between the supervised pool runtime and its task providers.

The runtime (:mod:`repro.pool.runtime`) schedules *opaque* tasks: it
knows how many there are, where each task's scratch block lives, and how
long each execution took — never what a task computes.  Everything
domain-specific enters through two small interfaces:

* :class:`TaskProvider` — the driver-side description of a task family:
  how many tasks, how big the shared scratch must be, which extra shared
  data segments the tasks need (e.g. particle positions), and a factory
  for the worker-side evaluator.  The provider object is shipped to
  every worker process (by fork inheritance or pickle), so it must be
  picklable and must not hold live OS resources.
* :class:`TaskEvaluator` — the worker-process-side object built by the
  provider.  The runtime's generic worker loop calls it in a fixed
  order: :meth:`~TaskEvaluator.begin_step` with the driver's per-step
  payload, :meth:`~TaskEvaluator.rebuild` whenever the task→worker
  assignment changed or the driver requested it (returning the scratch
  block *offsets* that define the reduction layout), then
  :meth:`~TaskEvaluator.eval_task` once per owned task, and finally
  :meth:`~TaskEvaluator.end_step` with the worker's private stats row.

Both are :class:`typing.Protocol` classes — structural, no inheritance
required — so providers (e.g. :mod:`repro.md.tasks`) depend only on this
module, never on runtime internals.

**Determinism contract**: the scratch layout returned by ``rebuild`` and
the driver's reduction over it must be derived from *task order*, never
from the assignment — that is what makes results bit-identical across
worker counts, remaps, and recovery (see the MD engine's docstring for
the worked example).  The runtime guarantees in return that a respawned
or reassigned worker re-runs ``rebuild`` before evaluating anything.

Per-task statistics travel through a shared ``(n_tasks + n_workers, 4)``
float64 array: columns :data:`STAT_V0`, :data:`STAT_V1`, :data:`STAT_V2`
carry the three values returned by ``eval_task`` (the provider assigns
their meaning), and :data:`STAT_TIME_NS` the measured wall time of the
task in nanoseconds (written by the runtime, slowdown-injection
inclusive).  Rows past ``n_tasks`` are per-worker rows handed to
``end_step``.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "STAT_V0",
    "STAT_V1",
    "STAT_V2",
    "STAT_TIME_NS",
    "STAT_COLS",
    "TaskEvaluator",
    "TaskProvider",
]

#: columns of the shared per-task stats array
STAT_V0, STAT_V1, STAT_V2, STAT_TIME_NS = range(4)
STAT_COLS = 4


@runtime_checkable
class TaskEvaluator(Protocol):
    """Worker-side task executor, built once per worker process."""

    def begin_step(self, payload: Any) -> None:
        """Receive the driver's per-step payload (e.g. the current box)."""

    def rebuild(self, my_tasks: list[int]) -> np.ndarray:
        """Refresh per-assignment state; return scratch block offsets.

        Called before the first evaluation and whenever the driver set
        the rebuild flag or changed this worker's assignment.  Returns an
        ``int64`` array of ``n_tasks + 1`` offsets: task ``t`` owns
        scratch rows ``offsets[t]:offsets[t + 1]``.  Must be derived
        deterministically from shared reference data so every worker
        (and the driver) agrees on the layout without communicating.
        """

    def eval_task(self, t: int, block: np.ndarray) -> tuple[float, float, float]:
        """Evaluate task ``t`` into its (pre-zeroed) scratch block.

        Returns three floats recorded in the task's stats row
        (:data:`STAT_V0`..:data:`STAT_V2`).
        """

    def end_step(self, out_row: np.ndarray) -> None:
        """Publish per-worker stats into this worker's private row."""

    def close(self) -> None:
        """Drop buffer views so the worker can unmap shared segments."""


@runtime_checkable
class TaskProvider(Protocol):
    """Driver-side description of a family of schedulable tasks."""

    @property
    def n_tasks(self) -> int:
        """Total number of tasks (fixed for the life of the pool)."""

    def scratch_shape(self) -> tuple[int, int]:
        """``(rows, width)`` of the shared float64 scratch array.

        ``rows`` must upper-bound every layout :meth:`TaskEvaluator.
        rebuild` can ever return, so the segment sized at pool start
        stays valid across rebuilds.
        """

    def segments(self) -> dict[str, tuple[tuple[int, ...], str]]:
        """Extra shared data segments: label → ``(shape, dtype name)``.

        The runtime creates each one, exposes a driver-side view via
        :meth:`~repro.pool.runtime.SupervisedPool.view`, and hands the
        worker-side views to :meth:`make_evaluator`.  Labels must not
        collide with the runtime's own ``"scratch"``/``"stats"``.
        """

    def make_evaluator(
        self, worker_id: int, n_workers: int, views: dict[str, np.ndarray]
    ) -> TaskEvaluator:
        """Build the worker-side evaluator (called in the worker process).

        ``views`` maps every label from :meth:`segments` plus
        ``"scratch"`` and ``"stats"`` to its mapped array.
        """
