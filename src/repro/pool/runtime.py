"""Generic supervised shared-memory worker-pool runtime.

This module is the scheduling/supervision half of the repository's real
parallel engine, split out of :mod:`repro.md.parallel` so that *what* is
computed (an MD force field, a synthetic test workload, a future
multi-job service) is decoupled from *how* it is run.  The runtime knows
nothing about molecular dynamics — it is parameterized by a
:class:`~repro.pool.protocol.TaskProvider` and schedules opaque task
ids.  It owns:

* **Worker lifecycle** — spawn and respawn of worker processes with
  per-worker command/result pipes; a process killed mid-send can corrupt
  only its own channel, never a shared queue, and the driver waits on
  the pipes *and* the process sentinels so a SIGKILL'd worker is
  detected within milliseconds, not at the step timeout.
* **Shared-memory segments** — one :class:`~repro.pool.segments.
  SegmentRegistry` per pool gives every segment a pid+token prefixed,
  collision-free name, so any number of pools can coexist in one
  process; all segments are unlinked by the bounded teardown ladder.
* **The epoch'd step protocol** — ``("step", seq, epoch, rebuild,
  payload, assignment)`` out, ``("ok"|"error", worker, seq, epoch[,
  traceback])`` back.  The per-worker epoch lets the driver re-issue an
  in-flight evaluation to a respawned or reassigned worker and discard
  any stale ack the previous incarnation left in the pipe.
* **Per-task timing** — each task's wall time (``perf_counter_ns``,
  slowdown-injection inclusive) lands in the shared stats segment next
  to the three provider-defined result columns.
* **The recovery ladder** (:class:`~repro.pool.resilience.
  RecoveryPolicy`) — respawn with bounded retry and exponential backoff,
  then permanent reassignment of the dead slot's tasks to survivors
  (via a client-supplied ``reassign`` hook or a deterministic built-in),
  and finally *degradation*: the pool closes and reports failure so the
  client can serve the evaluation some other way instead of raising.
* **Deterministic fault injection** — a
  :class:`~repro.pool.resilience.WorkerFaultPlan` fired against the
  pool's own children right after each dispatch, plus measured
  per-worker slowdown windows (busy-spin after each task, so injected
  load is visible to measurement like any real background load).

The driver-side client (e.g. :class:`repro.md.parallel.
ParallelNonbonded`) composes ``begin_step`` / ``dispatch`` / its own
overlapped work / ``collect`` / ``finish_step``, then reduces the shared
scratch in task order.  Nothing in this module imports :mod:`repro.md`
(enforced by the layering tests).
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import time
import traceback
import warnings
import weakref
from collections import defaultdict
from typing import Callable

import numpy as np

from repro.pool.protocol import (
    STAT_COLS,
    STAT_TIME_NS,
    STAT_V0,
    STAT_V1,
    STAT_V2,
    TaskProvider,
)
from repro.pool.resilience import (
    FaultInjector,
    RecoveryEventLog,
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
)
from repro.pool.segments import (
    HAS_SHARED_MEMORY,
    SegmentRegistry,
    attach_segment,
)

__all__ = [
    "HAS_SHARED_MEMORY",
    "SupervisedPool",
    "normalize_slowdown",
    "slowdown_factor",
]


# --------------------------------------------------------------------------- #
# interpreter-exit safety net: one handler, weak references only
# --------------------------------------------------------------------------- #
#: pools that are live (started, not yet closed).  A WeakSet so that a pool
#: dropped without close() never keeps itself alive just for the atexit
#: sweep, and so that explicit close() leaves no dead-object callback
#: behind — the failure mode of per-instance ``atexit.register(self.close)``.
_LIVE_POOLS: "weakref.WeakSet[SupervisedPool]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_live_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _track_pool(pool: "SupervisedPool") -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_close_live_pools)
        _ATEXIT_REGISTERED = True
    _LIVE_POOLS.add(pool)


# --------------------------------------------------------------------------- #
# slowdown injection helpers
# --------------------------------------------------------------------------- #
def normalize_slowdown(slowdown) -> dict[int, list[tuple[float, float, float]]]:
    """Per-worker slowdown windows ``(start_step, end_step, factor)``.

    Accepts ``{worker: factor}`` (permanent slowdown) or an iterable of
    :class:`repro.runtime.faults.SlowdownWindow`-like objects whose
    ``start``/``end`` are *step* indices (1-based evaluation sequence).
    """
    windows: dict[int, list[tuple[float, float, float]]] = defaultdict(list)
    if not slowdown:
        return {}
    if isinstance(slowdown, dict):
        for proc, factor in slowdown.items():
            if float(factor) <= 0:
                raise ValueError("slowdown factor must be positive")
            windows[int(proc)].append((0.0, float("inf"), float(factor)))
    else:
        for w in slowdown:
            if w.factor <= 0:
                raise ValueError("slowdown factor must be positive")
            windows[int(w.proc)].append(
                (float(w.start), float(w.end), float(w.factor))
            )
    return dict(windows)


def slowdown_factor(
    windows: list[tuple[float, float, float]], step: int
) -> float:
    """Combined slowdown at ``step`` (mirrors ``FaultPlan.slowdown_factor``:
    overlapping windows multiply)."""
    factor = 1.0
    for start, end, f in windows:
        if start <= step < end:
            factor *= f
    return factor


# --------------------------------------------------------------------------- #
# worker side: the generic command loop
# --------------------------------------------------------------------------- #
def _pool_worker_main(
    worker_id,
    n_workers,
    cmd_conn,
    res_conn,
    seg_names,
    seg_specs,
    scratch_shape,
    n_tasks,
    provider,
    assignment,
    slow_windows,
):
    """Worker loop: attach shared segments, then serve step/stop commands.

    All domain work is delegated to the provider's evaluator; this loop
    owns the protocol (epochs, acks, error replies), the rebuild
    trigger, per-task timing, and slowdown injection.  See
    :mod:`repro.pool.protocol` for the exact calling order.
    """
    segs = {label: attach_segment(name) for label, name in seg_names.items()}
    scratch = np.ndarray(
        scratch_shape, dtype=np.float64, buffer=segs["scratch"].buf
    )
    stats = np.ndarray(
        (n_tasks + n_workers, STAT_COLS),
        dtype=np.float64,
        buffer=segs["stats"].buf,
    )
    views: dict[str, np.ndarray] = {"scratch": scratch, "stats": stats}
    for label, (shape, dtype) in seg_specs.items():
        views[label] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segs[label].buf
        )
    evaluator = provider.make_evaluator(worker_id, n_workers, views)
    assignment = np.asarray(assignment, dtype=np.int64)
    my_tasks: list[int] = []
    offsets = None
    perf = time.perf_counter_ns
    try:
        while True:
            try:
                cmd = cmd_conn.recv()
            except (EOFError, OSError):
                break  # driver gone
            if cmd[0] == "stop":
                break
            seq = epoch = -1
            try:
                _, seq, epoch, rebuild, payload, new_assignment = cmd
                evaluator.begin_step(payload)
                changed = False
                if new_assignment is not None:
                    new_assignment = np.asarray(new_assignment, dtype=np.int64)
                    changed = not np.array_equal(new_assignment, assignment)
                    assignment = new_assignment
                if rebuild or changed or offsets is None:
                    my_tasks = np.flatnonzero(
                        assignment == worker_id
                    ).tolist()
                    offsets = np.asarray(
                        evaluator.rebuild(my_tasks), dtype=np.int64
                    )
                factor = slowdown_factor(slow_windows, seq)
                for t in my_tasks:
                    t0 = perf()
                    block = scratch[offsets[t] : offsets[t + 1]]
                    block[...] = 0.0
                    v0, v1, v2 = evaluator.eval_task(t, block)
                    elapsed = perf() - t0
                    if factor > 1.0:
                        # busy-spin: the CPU "runs factor times slower", so
                        # the extra time is real, measurable load
                        target = t0 + elapsed * factor
                        while perf() < target:
                            pass
                        elapsed = perf() - t0
                    stats[t, STAT_V0] = v0
                    stats[t, STAT_V1] = v1
                    stats[t, STAT_V2] = v2
                    stats[t, STAT_TIME_NS] = elapsed
                evaluator.end_step(stats[n_tasks + worker_id])
                res_conn.send(("ok", worker_id, seq, epoch))
            except Exception:
                try:
                    res_conn.send(
                        ("error", worker_id, seq, epoch, traceback.format_exc())
                    )
                except (OSError, ValueError):  # pragma: no cover
                    break
    finally:
        # evaluator views must drop their buffer exports before the mmaps
        # close; a provider that failed to build cleanly must not block
        # the unmap either
        try:
            evaluator.close()
        except Exception:  # pragma: no cover
            pass
        del views, scratch, stats, evaluator
        for seg in segs.values():
            seg.close()


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
class SupervisedPool:
    """A persistent, supervised pool of worker processes over shared memory.

    ``provider`` describes the tasks (see :class:`~repro.pool.protocol.
    TaskProvider`); ``n_workers`` is the exact pool size (the caller
    resolves "one per CPU" and task-count clamping); ``assignment`` the
    initial task→worker map.  ``reassign(dead_worker, assignment,
    survivors)`` may return a full replacement assignment when a worker
    is declared permanently dead (the MD layer routes this through its
    measurement database and load balancers); without it, orphans are
    dealt round-robin to survivors.  ``on_recovery_note(label, n)``
    mirrors recovery counters into client-side accounting.

    Driver call order per evaluation::

        pool.begin_step()            # liveness sweep; False => degraded
        pool.dispatch(rebuild, payload, new_assignment)
        ... client-side overlapped work ...
        pool.collect()               # supervised wait; False => degraded
        wall = pool.finish_step()
        ... client reduces pool.scratch / reads pool.stats ...

    The pool is idempotently closable, closes itself at interpreter exit
    through a weak-reference registry (no dead-object atexit callbacks),
    and bounds teardown latency even with hung workers.
    """

    _TEARDOWN_BUDGET_S = 5.0

    def __init__(
        self,
        provider: TaskProvider,
        n_workers: int,
        assignment,
        *,
        timeout: float = 120.0,
        policy: RecoveryPolicy | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        slow_windows: dict[int, list[tuple[float, float, float]]] | None = None,
        start_method: str | None = None,
        reassign: Callable | None = None,
        on_recovery_note: Callable | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if n_workers < 2:
            raise ValueError("SupervisedPool needs at least 2 workers")
        self.provider = provider
        self.n_tasks = int(provider.n_tasks)
        self.n_workers = int(n_workers)
        self.timeout = float(timeout)
        self.policy = policy or RecoveryPolicy()
        self.resilience = ResilienceStats()
        self._reassign_cb = reassign
        self._note_cb = on_recovery_note
        self._slow_windows = dict(slow_windows or {})
        self._assignment = np.asarray(assignment, dtype=np.int64).copy()
        if len(self._assignment) != self.n_tasks:
            raise ValueError("assignment length must equal provider.n_tasks")

        self._registry: SegmentRegistry | None = None
        self._views: dict[str, np.ndarray] = {}
        self._procs: list = []
        self._cmd_conns: list = []
        self._res_conns: list = []
        self._worker_epoch: list[int] = []
        self._dead_workers: set[int] = set()
        self._respawn_counts: dict[int, int] = {}
        self._acked: set[int] = set()
        self._injector: FaultInjector | None = None
        self._seq = 0
        self._pending: int | None = None
        self._payload = None
        self._t_dispatch: float | None = None
        self._deadline: float | None = None
        self._t_eval_start: float | None = None
        self._step_wall_ewma = 0.0
        self._recovery_rounds = 0
        self._last_reassign_moved = 0
        self._degraded_reason: str | None = None
        self._closed = False

        try:
            self._start(start_method, fault_plan)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    def _start(self, start_method, fault_plan) -> None:
        provider = self.provider
        scratch_shape = tuple(int(d) for d in provider.scratch_shape())
        self._scratch_shape = scratch_shape
        self._seg_specs = {
            label: (tuple(int(d) for d in shape), str(dtype))
            for label, (shape, dtype) in provider.segments().items()
        }
        for label in ("scratch", "stats"):
            if label in self._seg_specs:
                raise ValueError(f"provider segment label {label!r} is reserved")

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)

        registry = SegmentRegistry()
        self._registry = registry
        n_stat_rows = self.n_tasks + self.n_workers
        registry.create(
            "scratch", max(int(np.prod(scratch_shape)), 1) * 8
        )
        registry.create("stats", n_stat_rows * STAT_COLS * 8)
        self._views["scratch"] = np.ndarray(
            scratch_shape, dtype=np.float64, buffer=registry.get("scratch").buf
        )
        self._views["stats"] = np.ndarray(
            (n_stat_rows, STAT_COLS),
            dtype=np.float64,
            buffer=registry.get("stats").buf,
        )
        for label, (shape, dtype) in self._seg_specs.items():
            nbytes = max(int(np.prod(shape)), 1) * np.dtype(dtype).itemsize
            registry.create(label, nbytes)
            self._views[label] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=registry.get(label).buf
            )

        self._procs = [None] * self.n_workers
        self._cmd_conns = [None] * self.n_workers
        self._res_conns = [None] * self.n_workers
        self._worker_epoch = [0] * self.n_workers
        for w in range(self.n_workers):
            self._spawn_worker(w)
        if fault_plan is not None and fault_plan.active:
            self._injector = FaultInjector(fault_plan)
        _track_pool(self)

    def _spawn_worker(self, w: int) -> bool:
        """(Re)start worker ``w``: fresh pipes, fresh process, index slot.

        The child re-attaches the live shared segments and is handed the
        *current* assignment; provider state is rebuilt on the first
        command that asks for a rebuild.  Returns False — spawning
        nothing and orphaning nothing — when the pool is already closed
        (a close() racing an in-flight recovery must win).
        """
        if self._closed:
            return False
        ctx = self._ctx
        cmd_recv, cmd_send = ctx.Pipe(duplex=False)
        res_recv, res_send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_pool_worker_main,
            args=(
                w,
                self.n_workers,
                cmd_recv,
                res_send,
                self._registry.names(),
                self._seg_specs,
                self._scratch_shape,
                self.n_tasks,
                self.provider,
                self._assignment,
                self._slow_windows.get(w, []),
            ),
            daemon=True,
            name=f"repro-pool-worker-{w}",
        )
        proc.start()
        # close the child's pipe ends in the parent so a dead child turns
        # into EOF on its result conn instead of a silent hang
        cmd_recv.close()
        res_send.close()
        self._procs[w] = proc
        self._cmd_conns[w] = cmd_send
        self._res_conns[w] = res_recv
        if self._closed:
            # close() landed between the entry check and start(): reap the
            # half-spawned worker immediately rather than orphaning it
            self._reap_worker(w)
            return False
        return True

    def arm_faults(self, fault_plan: WorkerFaultPlan | None) -> None:
        """Install a fault-injection plan after construction.

        Lets the client validate the plan against the final pool size
        first (e.g. after task-count clamping) and only then arm it.
        """
        if fault_plan is not None and fault_plan.active:
            self._injector = FaultInjector(fault_plan)

    def _reap_worker(self, w: int) -> None:
        proc = self._procs[w]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(timeout=1.0)
        for conn in (self._cmd_conns[w], self._res_conns[w]):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._procs[w] = None
        self._cmd_conns[w] = None
        self._res_conns[w] = None

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True while the pool can serve evaluations (started, not closed)."""
        return not self._closed

    @property
    def seq(self) -> int:
        """Sequence number of the most recent (or in-flight) evaluation."""
        return self._seq

    @seq.setter
    def seq(self, value: int) -> None:
        # clients realign the counter on checkpoint restore so that
        # step-indexed events (remaps, fault plans) land on the same
        # absolute evaluation numbers as the run that wrote the checkpoint
        self._seq = int(value)

    @property
    def pending(self) -> int | None:
        """Sequence number of the in-flight evaluation, if any."""
        return self._pending

    @property
    def deadline(self) -> float | None:
        """Absolute monotonic deadline of the in-flight evaluation."""
        return self._deadline

    @property
    def assignment(self) -> np.ndarray:
        """The live task→worker map."""
        return self._assignment

    @property
    def procs(self) -> list:
        """Worker process handles (None for torn-down slots)."""
        return self._procs

    @property
    def scratch(self) -> np.ndarray | None:
        return self._views.get("scratch")

    @property
    def stats(self) -> np.ndarray | None:
        return self._views.get("stats")

    def view(self, label: str) -> np.ndarray:
        """Driver-side view of a provider data segment."""
        return self._views[label]

    @property
    def degraded_reason(self) -> str | None:
        """Why the pool degraded and closed (None while healthy)."""
        return self._degraded_reason

    def live_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if w not in self._dead_workers]

    @property
    def n_live(self) -> int:
        """Workers still serving tasks (``n_workers`` minus permanent dead)."""
        return self.n_workers - len(self._dead_workers)

    # ------------------------------------------------------------------ #
    def begin_step(self) -> bool:
        """Between-steps liveness sweep; heal or degrade before dispatching.

        Returns False when the pool degraded (and closed) instead.
        """
        self._recovery_rounds = 0
        for w in self.live_workers():
            proc = self._procs[w]
            if proc is not None and not proc.is_alive():
                if not self._recover_worker(w, "died", "found dead at dispatch"):
                    return False
        return True

    def dispatch(self, rebuild: bool, payload, new_assignment=None) -> int:
        """Start the workers on one evaluation; returns its sequence number.

        ``payload`` is forwarded opaquely to every evaluator's
        ``begin_step``; ``new_assignment`` (when not None) becomes the
        live task→worker map and rides along in the step command.
        Exactly one :meth:`collect` + :meth:`finish_step` must follow.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._pending is not None:
            raise RuntimeError("dispatch() called with a collect() outstanding")
        self._seq += 1
        if new_assignment is not None:
            self._assignment = np.asarray(new_assignment, dtype=np.int64)
        self._pending = self._seq
        self._payload = payload
        self._acked = set()
        # the timeout budget starts when the workers do — the client may
        # run arbitrary overlapped work before it first waits
        self._t_dispatch = time.monotonic()
        self._deadline = self._t_dispatch + self.timeout
        # ... whereas the recovery budget spans the whole evaluation: it
        # is never re-armed by a recovery, only by the next dispatch
        self._t_eval_start = self._t_dispatch
        for w in self.live_workers():
            # a failed send means the worker just died; don't recover here —
            # all original commands must be out before any re-issue, or a
            # replacement could interleave a stale command after its re-sent
            # one.  collect()'s liveness sweep picks it up immediately.
            self._send_step(w, rebuild, new_assignment)
        if self._injector is not None:
            pids = {
                w: self._procs[w].pid
                for w in self.live_workers()
                if self._procs[w] is not None
            }
            self._injector.inject(self._seq, pids)
        return self._seq

    def _send_step(self, w: int, rebuild: bool, assignment_payload) -> bool:
        cmd = (
            "step",
            self._pending,
            self._worker_epoch[w],
            rebuild,
            self._payload,
            assignment_payload,
        )
        try:
            self._cmd_conns[w].send(cmd)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    def finish_step(self) -> float:
        """Close out a collected evaluation; returns its wall time."""
        step_wall = (
            time.monotonic() - self._t_dispatch
            if self._t_dispatch is not None
            else 0.0
        )
        self._pending = None
        self._payload = None
        self._deadline = None
        self._t_dispatch = None
        self._t_eval_start = None
        if self._recovery_rounds == 0:
            # hang detection calibrates on clean steps only — a recovered
            # step's wall time includes backoff sleeps and re-execution
            self._step_wall_ewma = (
                step_wall
                if self._step_wall_ewma <= 0.0
                else 0.2 * step_wall + 0.8 * self._step_wall_ewma
            )
        if self._dead_workers:
            self.resilience.degraded_steps += 1
        return step_wall

    # ------------------------------------------------------------------ #
    # supervision: detection, respawn, reassignment, degradation
    # ------------------------------------------------------------------ #
    def collect(self) -> bool:
        """Wait until every live worker acked the pending evaluation.

        Returns False only when the pool degraded all the way down (the
        caller then serves the evaluation by other means).
        """
        policy = self.policy
        while True:
            if self._closed:
                return False
            live = self.live_workers()
            unacked = [w for w in live if w not in self._acked]
            if not unacked:
                return True
            now = time.monotonic()
            if self._injector is not None:
                self._injector.poll()
            if self._deadline is not None and now >= self._deadline:
                if not self._recover_worker(
                    unacked[0],
                    "hung",
                    f"no ack within the {self.timeout:.0f}s timeout",
                ):
                    return False
                continue
            hang_t = policy.hang_threshold(self._step_wall_ewma, self.timeout)
            if (
                self._t_dispatch is not None
                and now - self._t_dispatch > hang_t
                and self._procs[unacked[0]] is not None
                and self._procs[unacked[0]].is_alive()
            ):
                if not self._recover_worker(
                    unacked[0],
                    "hung",
                    f"silent for {now - self._t_dispatch:.2f}s "
                    f"(threshold {hang_t:.2f}s)",
                ):
                    return False
                continue
            wait_objs = []
            for w in unacked:
                if self._res_conns[w] is not None:
                    wait_objs.append(self._res_conns[w])
                if self._procs[w] is not None:
                    wait_objs.append(self._procs[w].sentinel)
            budget = min(
                policy.poll_interval_s,
                max(self._deadline - now, 1e-3),
                max(hang_t - (now - self._t_dispatch), 1e-3),
            )
            try:
                mp_connection.wait(wait_objs, timeout=budget)
            except OSError:  # pragma: no cover - closed handle race
                pass
            # liveness is checked on EVERY iteration: a SIGKILL'd worker is
            # detected within one poll interval, not at timeout expiry
            recovered = False
            for w in list(unacked):
                proc = self._procs[w]
                if proc is not None and not proc.is_alive():
                    if not self._recover_worker(w, "died", "process exited"):
                        return False
                    recovered = True
            if recovered:
                continue
            for w in list(unacked):
                conn = self._res_conns[w]
                if conn is None:
                    continue
                drained_dead = False
                while True:
                    try:
                        if not conn.poll():
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        drained_dead = True
                        break
                    if not self._handle_ack(w, msg):
                        return False
                    if self._res_conns[w] is not conn:
                        break  # worker was respawned; old conn is gone
                if drained_dead:
                    if not self._recover_worker(w, "died", "result pipe EOF"):
                        return False

    def _handle_ack(self, w: int, msg) -> bool:
        tag, wid, seq, epoch = msg[0], msg[1], msg[2], msg[3]
        if seq != self._pending or epoch != self._worker_epoch[wid]:
            return True  # stale ack from before a recovery re-issue
        if tag == "error":
            return self._recover_worker(
                wid, "error", f"worker raised:\n{msg[4]}"
            )
        self._acked.add(wid)
        return True

    def _note(self, label: str, n: int = 1) -> None:
        if self._note_cb is not None:
            self._note_cb(label, n)

    def _recover_worker(self, w: int, kind: str, detail: str = "") -> bool:
        """Heal a failed worker: respawn → reassign → degrade.

        Returns False only when the pool degraded (and closed).
        """
        if self._closed:
            return False
        t0 = time.monotonic()
        detection = (
            t0 - self._t_dispatch if self._t_dispatch is not None else 0.0
        )
        self._recovery_rounds += 1
        if self._recovery_rounds > self.policy.max_recovery_rounds:
            return self._degrade(
                f"recovery limit reached ({self.policy.max_recovery_rounds} "
                f"rounds in one evaluation); last failure: worker {w} {kind}"
            )
        if self._pending is not None and self._t_eval_start is not None:
            spent = t0 - self._t_eval_start
            budget = self.policy.recovery_budget(self.timeout)
            if spent >= budget:
                return self._degrade(
                    f"recovery budget exhausted ({spent:.1f}s >= "
                    f"{budget:.1f}s in one evaluation); last failure: "
                    f"worker {w} {kind}"
                )
        # counters live in ResilienceStats.note_event (called below); the
        # note callback mirrors them into client accounting (e.g. WorkDB)
        if kind == "died":
            self._note("kills")
        elif kind == "hung":
            self._note("hangs")
        else:
            self._note("errors")
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            # hung or errored: SIGKILL works on stopped processes too
            proc.kill()
            proc.join(timeout=5.0)
        for conn in (self._cmd_conns[w], self._res_conns[w]):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._cmd_conns[w] = None
        self._res_conns[w] = None
        self._procs[w] = None
        self._acked.discard(w)

        attempts = self._respawn_counts.get(w, 0)
        action = None
        tasks_moved = 0
        if attempts < self.policy.max_respawns:
            time.sleep(self.policy.backoff(attempts))
            self._respawn_counts[w] = attempts + 1
            if self._closed:
                # close() arrived during the backoff: do not spawn into a
                # torn-down pool (the replacement would be orphaned)
                return False
            try:
                spawned = self._spawn_worker(w)
            except Exception:  # pragma: no cover - spawn failure is rare
                self.resilience.respawn_failures += 1
            else:
                if not spawned:
                    return False  # pool closed mid-spawn; nothing to heal
                self.resilience.respawns += 1
                self._note("respawns")
                action = "respawned"
                if self._pending is not None:
                    # re-issue under a fresh epoch; rebuild=True makes the
                    # replacement reconstruct its state from the shared
                    # reference data, so its task blocks are bitwise those
                    # the dead worker would have written
                    self._worker_epoch[w] += 1
                    self.resilience.steps_redone += 1
                    if not self._send_step(w, True, self._assignment):
                        # died again before the re-issue landed; next loop
                        # iteration recovers it (bounded by recovery rounds)
                        pass
        if action is None:
            degraded = not self._reassign_dead(w)
            if degraded:
                return False
            action = "reassigned"
            tasks_moved = self._last_reassign_moved
        dt = time.monotonic() - t0
        event = RecoveryEventLog(
            step=self._seq,
            worker=w,
            kind=kind,
            action=action,
            detection_s=detection,
            recovery_s=dt,
            tasks_moved=tasks_moved,
            detail=detail,
        )
        self.resilience.note_event(event)
        # a successful recovery earns a fresh wait budget: the re-issued
        # evaluation should not inherit a nearly expired deadline — but
        # never past the evaluation's total recovery budget, or a flapping
        # worker could ratchet the deadline forward indefinitely
        if self._pending is not None:
            self._t_dispatch = time.monotonic()
            self._deadline = self._t_dispatch + self.timeout
            if self._t_eval_start is not None:
                budget = self.policy.recovery_budget(self.timeout)
                if math.isfinite(budget):
                    self._deadline = min(
                        self._deadline, self._t_eval_start + budget
                    )
        return True

    def _default_reassign(self, w: int, survivors: list[int]) -> np.ndarray:
        """Deterministic round-robin of the dead slot's tasks to survivors."""
        new_assignment = self._assignment.copy()
        orphans = np.flatnonzero(new_assignment == w)
        for k, tid in enumerate(orphans.tolist()):
            new_assignment[tid] = survivors[k % len(survivors)]
        return new_assignment

    def _reassign_dead(self, w: int) -> bool:
        """Permanent death: move ``w``'s tasks to survivors.

        Returns False when no survivors remain (degraded).
        """
        self._dead_workers.add(w)
        survivors = self.live_workers()
        if not survivors:
            return self._degrade("no workers left")
        orphans = np.flatnonzero(self._assignment == w)
        if self._reassign_cb is not None:
            new_assignment = self._reassign_cb(w, self._assignment, survivors)
            if new_assignment is None:
                new_assignment = self._default_reassign(w, survivors)
            else:
                new_assignment = np.asarray(new_assignment, dtype=np.int64)
        else:
            new_assignment = self._default_reassign(w, survivors)
        # every orphan MUST leave the dead slot or its scratch block would
        # silently never be computed
        strays = [
            tid
            for tid in orphans.tolist()
            if int(new_assignment[tid]) in self._dead_workers
        ]
        for k, tid in enumerate(strays):  # pragma: no cover - safety net
            new_assignment[tid] = survivors[k % len(survivors)]
        self._assignment = new_assignment
        self.resilience.tasks_reassigned += int(len(orphans))
        self._note("reassigned", int(len(orphans)))
        self._last_reassign_moved = int(len(orphans))
        if self.resilience.mode == "full":
            self.resilience.mode = "degraded"
            self.resilience.degraded_since_step = self._seq
        if self._pending is not None:
            # survivors whose task set grew must redo the evaluation under
            # the new map; rebuild=True re-derives their state from the
            # shared reference data so the redone blocks are bitwise
            # unchanged
            gained = {
                int(new_assignment[t]) for t in orphans.tolist()
            } & set(survivors)
            for s in sorted(gained):
                self._worker_epoch[s] += 1
                self._acked.discard(s)
                self.resilience.steps_redone += 1
                self._send_step(s, True, self._assignment)
            # survivors that did not gain tasks still need the new map for
            # their *next* rebuild; it rides along at the next rebuild via
            # the normal assignment payload (their current blocks are valid)
        return True

    def _degrade(self, reason: str) -> bool:
        """Bottom rung of the ladder: close the pool, report failure."""
        self.resilience.mode = "sequential"
        if self.resilience.degraded_since_step is None:
            self.resilience.degraded_since_step = self._seq
        self._note("degraded")
        self.resilience.note_event(
            RecoveryEventLog(
                step=self._seq,
                worker=-1,
                kind="died",
                action="degraded",
                detection_s=0.0,
                recovery_s=0.0,
                detail=reason,
            )
        )
        self._degraded_reason = reason
        warnings.warn(
            f"parallel worker pool degraded to the sequential path: {reason}",
            RuntimeWarning,
            stacklevel=4,
        )
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def _teardown(self) -> None:
        """Best-effort release of pool state, bounded in total latency.

        All workers are joined *concurrently* against one overall deadline
        (not 5 s serially per worker), escalating ``terminate`` and then
        ``kill`` for stragglers — so shutdown of an ``n``-worker pool with
        hung members costs O(budget), not O(n × budget).
        """
        if self._injector is not None:
            # never leave SIGSTOP'd children frozen behind a dead driver
            self._injector.release_all()
        for conn in self._cmd_conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + self._TEARDOWN_BUDGET_S
        procs = [p for p in self._procs if p is not None]
        pending = [p for p in procs if p.is_alive()]
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                mp_connection.wait(
                    [p.sentinel for p in pending],
                    timeout=min(remaining, 0.2),
                )
            except OSError:  # pragma: no cover - sentinel close race
                pass
            pending = [p for p in pending if p.is_alive()]
        for p in pending:
            p.terminate()
        if pending:
            grace = time.monotonic() + 0.5
            while any(p.is_alive() for p in pending):
                if time.monotonic() >= grace:
                    break
                time.sleep(0.01)
            for p in pending:
                if p.is_alive():  # pragma: no cover - terminate refused
                    p.kill()
        for p in procs:
            p.join(timeout=0.2)
        for conn in [*self._cmd_conns, *self._res_conns]:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = []
        self._cmd_conns = []
        self._res_conns = []
        # numpy views must drop their buffer exports before the mmaps close
        self._views = {}
        if self._registry is not None:
            self._registry.unlink_all()
            self._registry = None

    def close(self) -> None:
        """Stop the workers and release shared memory (idempotent).

        Safe under double-close, close-during-dispatch (the outstanding
        evaluation is dropped), and close racing an in-flight recovery
        respawn (the half-spawned replacement is reaped, never orphaned).
        """
        if self._closed:
            return
        self._closed = True
        self._pending = None
        self._payload = None
        self._deadline = None
        self._t_dispatch = None
        self._t_eval_start = None
        _LIVE_POOLS.discard(self)
        self._teardown()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:
            pass
