"""Back-compat shim: fault injection and recovery moved to :mod:`repro.pool`.

The fault-plan / injector / recovery-policy machinery was extracted into
the generic supervised pool runtime (PR 9) because none of it is
MD-specific — the pool supervises opaque task workers.  This module
re-exports the same names so existing imports (tests, benchmarks, user
code) keep working; new code should import from
:mod:`repro.pool.resilience` (or :mod:`repro.pool`) directly.
"""

from repro.pool.resilience import (
    HAS_POSIX_SIGNALS,
    FaultInjector,
    RecoveryEventLog,
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
    WorkerHang,
    WorkerKill,
)

__all__ = [
    "HAS_POSIX_SIGNALS",
    "WorkerKill",
    "WorkerHang",
    "WorkerFaultPlan",
    "FaultInjector",
    "RecoveryPolicy",
    "RecoveryEventLog",
    "ResilienceStats",
]
