"""Classic Ewald summation for full periodic electrostatics.

The paper's results cover the cutoff atom-based force components and note
(§1) that "even when full, long-range electrostatic interactions are
included in a simulation, these forces may be calculated via an efficient
combination of global grid-based and cutoff atom-based components.  The
results in this paper are directly applicable to the atom-based components
of such methods.  The remaining grid-based calculations consume a small
fraction of the total computation time."

This module provides that remaining component as an extension: classic
Ewald summation (the exact O(N^{3/2}) method PME approximates), with

* a real-space sum, short-ranged by ``erfc(alpha r)`` and evaluated under
  the minimum-image convention within a cutoff,
* a reciprocal-space sum over k-vectors with ``|m| <= kmax`` per axis,
* the self-energy and charged-background corrections, and
* exclusion corrections so the 1-2/1-3 pairs removed from the cutoff
  kernel are also removed from the periodic sum.

Validated in the tests against the NaCl Madelung constant and numerical
force differentiation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backend import KernelBackend, get_backend
from repro.md.constants import COULOMB_CONSTANT
from repro.md.scatter import accumulate_pair_forces
from repro.md.system import MolecularSystem
from repro.util.pbc import minimum_image

__all__ = [
    "EwaldOptions",
    "EwaldResult",
    "KspaceCacheView",
    "compute_ewald",
    "clear_kspace_cache",
    "kspace_cache_stats",
]


@dataclass(frozen=True)
class EwaldOptions:
    """Ewald parameters.

    ``alpha`` balances the two sums: larger alpha shortens the real-space
    range but requires more k-vectors.  The default pairing (alpha = 3/cutoff,
    kmax ~ alpha * L) keeps both truncation errors ~1e-5 for typical boxes.
    """

    cutoff: float = 9.0
    alpha: float | None = None
    kmax: int = 8

    def alpha_value(self) -> float:
        """The effective real/reciprocal split parameter."""
        return self.alpha if self.alpha is not None else 3.0 / self.cutoff


@dataclass
class EwaldResult:
    """Energy components (kcal/mol) and forces (kcal/mol/Å)."""

    energy_real: float
    energy_recip: float
    energy_self: float
    energy_background: float
    energy_exclusion: float
    forces: np.ndarray

    @property
    def energy(self) -> float:
        """Total electrostatic energy (all Ewald components)."""
        return (
            self.energy_real
            + self.energy_recip
            + self.energy_self
            + self.energy_background
            + self.energy_exclusion
        )


def _real_space(
    system: MolecularSystem,
    alpha: float,
    cutoff: float,
    forces: np.ndarray,
    backend: KernelBackend,
) -> float:
    from repro.md.cells import candidate_pairs

    pos = system.positions
    box = system.box
    q = system.charges
    i_c, j_c = candidate_pairs(pos, box, cutoff)
    if len(i_c) == 0:
        return 0.0
    # drop fully excluded pairs from the real-space sum (their periodic
    # contribution is corrected separately); the distance test, erfc math,
    # and force scatter are fused in the backend kernel
    excl = system.exclusions
    keep = ~excl.is_excluded(i_c, j_c)
    i_c, j_c = i_c[keep], j_c[keep]
    if len(i_c) == 0:
        return 0.0
    qq = COULOMB_CONSTANT * q[i_c] * q[j_c]
    return backend.ewald_real(pos, box, i_c, j_c, qq, alpha, cutoff, forces)


# k-space tables depend only on (box, kmax, alpha) — between box changes
# every step rebuilds identical meshgrids, so memoize them.  Bounded LRU;
# entries are marked read-only because callers share the cached arrays.
# The table cache is deliberately process-global (concurrent engines — the
# multi-job service case — share identical tables), but the *counters* are
# monotonic raw totals: every per-client view (the module-level functions
# below, or a per-engine KspaceCacheView) subtracts its own baseline, so
# one client's clear can never zero or negate another's accounting.
_KSPACE_CACHE: OrderedDict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = (
    OrderedDict()
)
_KSPACE_CACHE_MAX = 8
_KSPACE_RAW = {"builds": 0, "hits": 0}
_KSPACE_BASE = {"builds": 0, "hits": 0}


def clear_kspace_cache() -> None:
    """Drop all memoized k-space tables and reset the hit/build counters.

    Only the *module-level* counter view resets; per-engine
    :class:`KspaceCacheView` handles keep their own baselines and stay
    monotone (their next evaluation simply rebuilds the dropped tables).
    """
    _KSPACE_CACHE.clear()
    _KSPACE_BASE.update(_KSPACE_RAW)


def kspace_cache_stats() -> dict[str, int]:
    """Copy of the k-space cache counters (``builds``, ``hits``).

    Counts activity since the last module-level :func:`clear_kspace_cache`,
    clamped at zero, across every engine in the process.
    """
    return {
        key: max(_KSPACE_RAW[key] - _KSPACE_BASE[key], 0)
        for key in ("builds", "hits")
    }


class KspaceCacheView:
    """Per-engine accounting handle over the shared k-space table LRU.

    The tables themselves stay process-global on purpose — concurrent jobs
    simulating same-shaped boxes share them — but each engine threads its
    view's ``counters`` dict into :func:`_kspace_tables` as a sink, so
    builds/hits are attributed exactly to the engine that caused them.
    Another engine (or the module-level function) clearing the cache can
    therefore never make this view's numbers go backwards or negative.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters = {"builds": 0, "hits": 0}

    def stats(self) -> dict[str, int]:
        return dict(self.counters)

    def clear(self) -> None:
        """Drop the shared tables and reset only *this* view's counters."""
        _KSPACE_CACHE.clear()
        self.counters["builds"] = 0
        self.counters["hits"] = 0


def _kspace_tables(
    box: np.ndarray,
    kmax: int,
    alpha: float,
    stats: dict[str, int] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(k, k2, ak)`` reciprocal-space tables for one (box, kmax, alpha).

    ``k`` are the nonzero reciprocal vectors with ``|m| <= kmax`` per axis,
    ``k2`` their squared norms, ``ak`` the ``exp(-k2/4a^2)/k2`` prefactors.
    Cached: a box change (or different kmax/alpha) misses and rebuilds,
    identical parameters hit and share the same read-only arrays.

    The key and the tables are both derived from one private snapshot of
    the box taken on entry.  Callers routinely mutate the box ndarray in
    place (NPT-style rescale); keying on anything that aliases the live
    array would let a later mutation disagree with the tables the key maps
    to, silently serving stale reciprocal vectors.
    """
    box_snap = np.array(np.asarray(box, dtype=np.float64).reshape(3), copy=True)
    key = (
        float(box_snap[0]),
        float(box_snap[1]),
        float(box_snap[2]),
        int(kmax),
        float(alpha),
    )
    cached = _KSPACE_CACHE.get(key)
    if cached is not None:
        _KSPACE_RAW["hits"] += 1
        if stats is not None:
            stats["hits"] += 1
        _KSPACE_CACHE.move_to_end(key)
        return cached
    _KSPACE_RAW["builds"] += 1
    if stats is not None:
        stats["builds"] += 1
    mx, my, mz = np.meshgrid(
        np.arange(-kmax, kmax + 1),
        np.arange(-kmax, kmax + 1),
        np.arange(-kmax, kmax + 1),
        indexing="ij",
    )
    m = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1).astype(np.float64)
    m = m[np.any(m != 0, axis=1)]
    k = 2.0 * np.pi * m / box_snap[None, :]
    k2 = np.einsum("ij,ij->i", k, k)
    ak = np.exp(-k2 / (4.0 * alpha * alpha)) / k2  # (nk,)
    for arr in (k, k2, ak):
        arr.setflags(write=False)
    _KSPACE_CACHE[key] = (k, k2, ak)
    while len(_KSPACE_CACHE) > _KSPACE_CACHE_MAX:
        _KSPACE_CACHE.popitem(last=False)
    return k, k2, ak


def _reciprocal_space(
    system: MolecularSystem,
    alpha: float,
    kmax: int,
    forces: np.ndarray,
    backend: KernelBackend,
    kspace_stats: dict[str, int] | None = None,
) -> float:
    pos = system.positions
    box = system.box
    q = system.charges
    volume = float(np.prod(box))

    k, _k2, ak = _kspace_tables(box, kmax, alpha, stats=kspace_stats)
    if len(k) == 0:  # kmax=0: only the excluded m=0 term — nothing to sum
        return 0.0

    pref = COULOMB_CONSTANT * 2.0 * np.pi / volume
    return backend.ewald_recip(pos, q, k, ak, pref, forces)


def _exclusion_correction(
    system: MolecularSystem, alpha: float, forces: np.ndarray
) -> float:
    """Remove the reciprocal-sum interaction of excluded pairs.

    The k-space sum includes *all* pairs; for an excluded pair (i, j) the
    unwanted screened-complement interaction qiqj erf(alpha r)/r must be
    subtracted (standard Ewald exclusion handling).
    """
    from scipy.special import erf

    excl = system.exclusions
    if excl.n_excluded == 0:
        return 0.0
    # decoded (i, j) arrays are cached per Exclusions instance — the table
    # only changes when a topology edit rebuilds the exclusions object
    i_c, j_c = excl.excluded_pairs()
    pos = system.positions
    delta = minimum_image(pos[j_c] - pos[i_c], system.box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    r = np.sqrt(np.maximum(r2, 1e-12))
    qq = COULOMB_CONSTANT * system.charges[i_c] * system.charges[j_c]
    erf_term = erf(alpha * r)
    energy = float(-np.sum(qq * erf_term / r))
    # d/dr [ -qq erf(ar)/r ] = -qq [ 2a/sqrt(pi) exp(-a^2r^2)/r - erf(ar)/r^2 ]
    dE_dr = -qq * (
        (2.0 * alpha / np.sqrt(np.pi)) * np.exp(-(alpha * r) ** 2) / r
        - erf_term / r2
    )
    fvec = (dE_dr / r)[:, None] * delta
    accumulate_pair_forces(forces, i_c, j_c, fvec)
    return energy


def compute_ewald(
    system: MolecularSystem,
    options: EwaldOptions | None = None,
    backend: KernelBackend | str | None = None,
    recip: bool = True,
    kspace_stats: dict[str, int] | None = None,
) -> EwaldResult:
    """Full periodic electrostatic energy and forces via Ewald summation.

    ``recip=False`` skips the reciprocal-space sum (``energy_recip`` is 0
    and its forces are absent): the parallel engine computes that component
    on the worker pool as sharded k-space tasks and combines it with this
    driver-side remainder.  ``kspace_stats`` is an optional per-caller
    builds/hits sink (see :class:`KspaceCacheView`): the shared LRU counts
    are attributed to the engine that caused them.
    """
    options = options or EwaldOptions()
    be = get_backend(backend)
    alpha = options.alpha_value()
    n = system.n_atoms
    forces = np.zeros((n, 3))
    q = system.charges
    volume = float(np.prod(system.box))

    system.wrap()
    e_real = _real_space(system, alpha, options.cutoff, forces, be)
    e_recip = (
        _reciprocal_space(
            system, alpha, options.kmax, forces, be, kspace_stats=kspace_stats
        )
        if recip
        else 0.0
    )
    e_excl = _exclusion_correction(system, alpha, forces)
    e_self = float(-COULOMB_CONSTANT * alpha / np.sqrt(np.pi) * np.sum(q * q))
    total_charge = float(q.sum())
    e_bg = float(
        -COULOMB_CONSTANT * np.pi / (2.0 * volume * alpha * alpha) * total_charge**2
    )
    return EwaldResult(
        energy_real=e_real,
        energy_recip=e_recip,
        energy_self=e_self,
        energy_background=e_bg,
        energy_exclusion=e_excl,
        forces=forces,
    )
