"""Engine-as-job adapter: one simulation as a suspendable stream of steps.

The service layer (:mod:`repro.service`) schedules many concurrent
simulations; this module is the MD-side adapter it drives.  A
:class:`SimSpec` is a plain, JSON-round-trippable description of one run
(system, steps, engine configuration); a :class:`SimJob` owns the live
engine built from it and exposes the small surface the scheduler needs:

* ``open()`` / ``close()`` — build the engine (resuming from the job's
  durable checkpoint when one exists) and tear it down;
* ``step_slice(n)`` — advance up to ``n`` steps, returning NDJSON-ready
  metric/trajectory records;
* ``suspend()`` — close the engine, keeping the latest durable checkpoint.

Determinism contract: a job's trajectory is bit-identical to a solo run of
the same spec.  Slicing is invisible (an engine stepped 3+2 steps equals
one stepped 5), and suspend/resume rides the engine's own
``checkpoint_every`` schedule — suspension discards any steps past the
last durable checkpoint and replays them on resume, passing through the
exact rebuild-pinning points (:mod:`repro.runtime.checkpoint`) the
uninterrupted run passes through.  A spec with ``checkpoint_every=0`` is
still suspendable; it simply replays from step 0.

Backend isolation: the spec's ``backend`` is resolved per engine and
passed to :func:`repro.md.engine.make_engine` — never through
:func:`repro.backend.set_default_backend` — so one job requesting the JIT
backend cannot flip another job's kernels mid-run (each engine's WorkDB
keeps its own ``backend`` provenance).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["SimSpec", "SimJob"]

#: spec fields that must be non-negative
_NON_NEGATIVE = (
    "steps",
    "seed",
    "kmax",
    "checkpoint_every",
    "traj_every",
    "rebalance_every",
)


@dataclass(frozen=True)
class SimSpec:
    """One simulation run, as a declarative JSON-friendly record.

    ``workers == 1`` runs on the sequential engine (no worker processes);
    ``workers >= 2`` runs a :class:`~repro.md.parallel.ParallelEngine`
    whose worker-process count the service leases from the shared
    :class:`~repro.pool.lease.WorkerBudget`.
    """

    waters: int = 40
    seed: int = 0
    skew: float = 0.0
    relax: bool = False
    temperature: float = 25.0
    steps: int = 10
    dt: float = 1.0
    cutoff: float = 8.0
    skin: float | None = None
    workers: int = 1
    backend: str | None = None
    ewald: bool = False
    kmax: int = 4
    distribute: bool = False
    rebalance_every: int = 0
    lb_strategy: str | None = None
    fault_plan: str | None = None
    checkpoint_every: int = 0
    traj_every: int = 0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.waters < 1:
            raise ValueError("waters must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        for name in _NON_NEGATIVE:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.fault_plan and self.workers == 1:
            raise ValueError("fault_plan needs workers >= 2")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimSpec":
        """Build a spec from an untrusted JSON payload (REST submission)."""
        if not isinstance(data, dict):
            raise ValueError("spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s): {', '.join(unknown)}")
        return cls(**data)

    @property
    def worker_slots(self) -> int:
        """Worker processes this spec will spawn (0 on the sequential path)."""
        return 0 if self.workers == 1 else max(self.workers, 2)


def _positions_digest(positions: np.ndarray) -> str:
    """Bitwise trajectory fingerprint: sha256 of the raw float64 bytes."""
    return hashlib.sha256(
        np.ascontiguousarray(positions, dtype=np.float64).tobytes()
    ).hexdigest()


@dataclass
class SimJob:
    """A live engine driven in slices, with durable suspend/resume.

    Not thread-safe: the service scheduler serializes all calls on one
    job (concurrency happens *across* jobs, never within one).
    """

    spec: SimSpec
    workdir: Path
    engine: object | None = None
    steps_done: int = 0
    _records: list[dict] = field(default_factory=list)
    _emitted_step: int = 0
    _final_emitted: bool = False
    _provenance: dict | None = None

    def __post_init__(self) -> None:
        self.workdir = Path(self.workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    @property
    def checkpoint_path(self) -> Path:
        return self.workdir / "checkpoint.npz"

    @property
    def done(self) -> bool:
        return self.steps_done >= self.spec.steps

    @property
    def active(self) -> bool:
        return self.engine is not None

    def _build_system(self):
        from repro.builder import skewed_water_box, small_water_box

        spec = self.spec
        if spec.skew > 0:
            system = skewed_water_box(
                spec.waters, seed=spec.seed, skew=spec.skew, relax=spec.relax
            )
        else:
            system = small_water_box(
                spec.waters, seed=spec.seed, relax=spec.relax
            )
        system.assign_velocities(spec.temperature, seed=spec.seed)
        return system

    def _build_engine(self, system):
        from repro.md.engine import make_engine
        from repro.md.integrator import VelocityVerlet
        from repro.md.nonbonded import NonbondedOptions

        spec = self.spec
        ewald = None
        if spec.ewald:
            from repro.md.ewald import EwaldOptions

            ewald = EwaldOptions(cutoff=spec.cutoff, kmax=spec.kmax)
        kwargs: dict = {}
        if spec.skin is not None:
            kwargs["skin"] = spec.skin
        if spec.checkpoint_every > 0:
            kwargs["checkpoint_every"] = spec.checkpoint_every
            kwargs["checkpoint_path"] = self.checkpoint_path
        if spec.workers != 1:
            kwargs["distribute"] = spec.distribute
            if spec.rebalance_every:
                kwargs["rebalance_every"] = spec.rebalance_every
            if spec.lb_strategy:
                kwargs["lb_strategy"] = spec.lb_strategy
            if spec.timeout is not None:
                kwargs["timeout"] = spec.timeout
            if spec.fault_plan:
                from repro.pool import WorkerFaultPlan

                kwargs["fault_plan"] = WorkerFaultPlan.parse(spec.fault_plan)
        return make_engine(
            system,
            NonbondedOptions(cutoff=spec.cutoff),
            VelocityVerlet(dt=spec.dt),
            workers=spec.workers,
            backend=spec.backend,  # per-job, never the process default
            ewald=ewald,
            **kwargs,
        )

    def open(self) -> None:
        """Build (or rebuild) the engine, resuming from the durable
        checkpoint when one exists."""
        if self.engine is not None:
            return
        engine = self._build_engine(self._build_system())
        if self.checkpoint_path.exists():
            from repro.runtime.checkpoint import (
                load_run_checkpoint,
                restore_run_checkpoint,
            )

            cp = load_run_checkpoint(self.checkpoint_path)
            restore_run_checkpoint(engine, cp)
            self.steps_done = int(cp.step)
        self.engine = engine
        self.backend_provenance()  # snapshot while the engine is live

    # ------------------------------------------------------------------ #
    def step_slice(self, n: int) -> list[dict]:
        """Advance up to ``n`` steps; returns the new NDJSON records.

        Steps replayed after a suspend (those at or below the last emitted
        step) are recomputed — they must be, to rebuild the dynamical
        state — but not re-emitted: the replay is bit-identical to what
        the stream already carries, so the stream stays exactly one record
        per step, same as an uninterrupted run.
        """
        if self.engine is None:
            raise RuntimeError("job is not open")
        spec = self.spec
        n = min(int(n), spec.steps - self.steps_done)
        out: list[dict] = []
        for _ in range(max(n, 0)):
            report = self.engine.step()
            self.steps_done += 1
            if self.steps_done <= self._emitted_step:
                continue  # bit-identical replay of an already-emitted step
            self._emitted_step = self.steps_done
            out.append(
                {
                    "type": "step",
                    "step": self.steps_done,
                    "kinetic": report.kinetic,
                    "lj": report.lj,
                    "elec": report.elec,
                    "bonded": report.bonded.total,
                    "potential": report.potential,
                    "total": report.total,
                }
            )
            if spec.traj_every > 0 and self.steps_done % spec.traj_every == 0:
                out.append(self._frame_record())
        if self.done and not self._final_emitted:
            self._final_emitted = True
            out.append(self._frame_record(final=True))
        self._records.extend(out)
        return out

    def _frame_record(self, final: bool = False) -> dict:
        rec = {
            "type": "frame",
            "step": self.steps_done,
            "pos_sha256": _positions_digest(self.engine.system.positions),
        }
        if final:
            rec["final"] = True
        return rec

    @property
    def records(self) -> list[dict]:
        """Every record emitted so far (the job's NDJSON stream)."""
        return self._records

    # ------------------------------------------------------------------ #
    def backend_provenance(self) -> dict:
        """Which kernel backend this job actually ran (per-engine, plus
        the parallel engine's WorkDB provenance when present).

        Snapshotted while the engine is live so the answer survives the
        engine's teardown — a completed job still reports its backend.
        """
        if self.engine is not None:
            out: dict = {"backend": self.engine.backend.name,
                         "workdb_backend": None}
            nb = getattr(self.engine, "_nb", None)
            if nb is not None:
                out["workdb_backend"] = nb.workdb.backend
            self._provenance = out
        if self._provenance is None:
            return {"backend": None, "workdb_backend": None}
        return dict(self._provenance)

    def suspend(self) -> None:
        """Release the engine (and its worker processes / leases).

        Progress past the last durable checkpoint is discarded and
        replayed on resume — the same steps, bit-identically, because
        resume passes through the identical rebuild-pinning points.
        """
        if self.engine is None:
            return
        engine = self.engine
        cp_step = 0
        if self.checkpoint_path.exists():
            from repro.runtime.checkpoint import load_run_checkpoint

            cp_step = int(load_run_checkpoint(self.checkpoint_path).step)
        # progress rolls back to the checkpoint; the emitted stream does
        # not (replayed steps are suppressed in step_slice)
        self.steps_done = cp_step
        self.engine = None
        close = getattr(engine, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        """Tear the engine down without touching progress accounting."""
        if self.engine is None:
            return
        engine, self.engine = self.engine, None
        close = getattr(engine, "close", None)
        if close is not None:
            close()
