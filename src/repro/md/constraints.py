"""Holonomic bond constraints (SHAKE / RATTLE).

Production biomolecular MD rigidifies bonds to hydrogen (and water
entirely) so the fast bond vibrations stop limiting the timestep — the
very vibrations the paper cites as forcing ~1 fs steps ("Due to high
frequency bond vibrations, the Newtonian equations of motion must be
integrated in time-steps of (typically) one femtosecond").  This module
implements the classic iterative schemes:

* :meth:`ConstraintSolver.shake` — position constraints after the drift,
* :meth:`ConstraintSolver.rattle` — velocity constraints so the velocity
  stays tangent to the constraint manifold (needed for clean kinetic
  energies with velocity Verlet).

Constraints are plain (i, j, distance) triples; :func:`water_constraints`
builds the rigid-water set (two O-H bonds plus the H-H distance fixing the
angle) from a system's topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import MolecularSystem
from repro.util.pbc import minimum_image

__all__ = ["ConstraintSolver", "water_constraints"]


@dataclass
class ConstraintSolver:
    """Iterative SHAKE/RATTLE over a fixed set of distance constraints.

    Parameters
    ----------
    pairs:
        ``(m, 2)`` atom-index pairs.
    distances:
        ``(m,)`` target distances (Å).
    tolerance:
        Relative distance tolerance for convergence.
    max_iterations:
        Sweeps over all constraints before giving up.
    """

    pairs: np.ndarray
    distances: np.ndarray
    tolerance: float = 1e-8
    max_iterations: int = 500

    def __post_init__(self) -> None:
        self.pairs = np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2)
        self.distances = np.asarray(self.distances, dtype=np.float64)
        if len(self.pairs) != len(self.distances):
            raise ValueError("one target distance per constrained pair")
        if np.any(self.distances <= 0):
            raise ValueError("constraint distances must be positive")

    @property
    def n_constraints(self) -> int:
        """Number of constrained pairs."""
        return len(self.pairs)

    # ------------------------------------------------------------------ #
    def shake(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        box: np.ndarray,
        velocities: np.ndarray | None = None,
        dt: float | None = None,
    ) -> int:
        """Project positions back onto the constraint manifold, in place.

        With ``velocities`` and ``dt`` given, the position corrections are
        also applied to the velocities (the standard SHAKE-in-Verlet form
        ``v += delta_x / dt``).  Returns the number of sweeps used; raises
        ``RuntimeError`` if the tolerance is not met.
        """
        i, j = self.pairs[:, 0], self.pairs[:, 1]
        inv_mi = 1.0 / masses[i]
        inv_mj = 1.0 / masses[j]
        d2 = self.distances * self.distances
        for sweep in range(1, self.max_iterations + 1):
            delta = minimum_image(positions[j] - positions[i], box)
            r2 = np.einsum("ij,ij->i", delta, delta)
            diff = r2 - d2
            violated = np.abs(diff) > 2.0 * self.tolerance * d2
            if not np.any(violated):
                return sweep - 1
            # Gauss-Seidel-like sweep, vectorized: g = diff / (2 r.d (1/mi+1/mj))
            g = diff / (2.0 * (inv_mi + inv_mj) * np.maximum(r2, 1e-12))
            g = np.where(violated, g, 0.0)
            corr = g[:, None] * delta
            np.add.at(positions, i, corr * inv_mi[:, None])
            np.add.at(positions, j, -corr * inv_mj[:, None])
            if velocities is not None and dt:
                np.add.at(velocities, i, corr * inv_mi[:, None] / dt)
                np.add.at(velocities, j, -corr * inv_mj[:, None] / dt)
        raise RuntimeError(
            f"SHAKE failed to converge in {self.max_iterations} sweeps"
        )

    def rattle(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
        box: np.ndarray,
    ) -> int:
        """Remove velocity components along the constraints, in place."""
        i, j = self.pairs[:, 0], self.pairs[:, 1]
        inv_mi = 1.0 / masses[i]
        inv_mj = 1.0 / masses[j]
        for sweep in range(1, self.max_iterations + 1):
            delta = minimum_image(positions[j] - positions[i], box)
            r2 = np.maximum(np.einsum("ij,ij->i", delta, delta), 1e-12)
            vrel = velocities[j] - velocities[i]
            rv = np.einsum("ij,ij->i", delta, vrel)
            violated = np.abs(rv) > self.tolerance * np.sqrt(r2)
            if not np.any(violated):
                return sweep - 1
            k = rv / ((inv_mi + inv_mj) * r2)
            k = np.where(violated, k, 0.0)
            corr = k[:, None] * delta
            np.add.at(velocities, i, corr * inv_mi[:, None])
            np.add.at(velocities, j, -corr * inv_mj[:, None])
        raise RuntimeError(
            f"RATTLE failed to converge in {self.max_iterations} sweeps"
        )

    # ------------------------------------------------------------------ #
    def max_violation(self, positions: np.ndarray, box: np.ndarray) -> float:
        """Largest relative distance error over all constraints."""
        delta = minimum_image(
            positions[self.pairs[:, 1]] - positions[self.pairs[:, 0]], box
        )
        r = np.linalg.norm(delta, axis=1)
        return float(np.abs(r - self.distances).max() / self.distances.max())


def water_constraints(system: MolecularSystem) -> ConstraintSolver:
    """Rigid-water constraint set from a system's topology.

    For every angle term H-O-H whose atoms are water types (OT/HT), emits
    the two O-H bonds at their equilibrium length plus the H-H distance
    implied by the equilibrium angle — the standard rigid TIP3P triangle.
    """
    ff = system.forcefield
    ot = ff.atom_type_index("OT") if "OT" in ff else -1
    ht = ff.atom_type_index("HT") if "HT" in ff else -1
    types = system.type_indices

    pairs: list[tuple[int, int]] = []
    dists: list[float] = []
    angle_idx, _, theta0 = system.topology.angle_arrays()
    bond_idx, _, r0 = system.topology.bond_arrays()
    bond_length = {
        (min(int(a), int(b)), max(int(a), int(b))): float(r)
        for (a, b), r in zip(bond_idx, r0)
    }
    for (h1, o, h2), th in zip(angle_idx, theta0):
        if types[o] != ot or types[h1] != ht or types[h2] != ht:
            continue
        key1 = (min(int(h1), int(o)), max(int(h1), int(o)))
        key2 = (min(int(h2), int(o)), max(int(h2), int(o)))
        if key1 not in bond_length or key2 not in bond_length:
            continue
        r1, r2 = bond_length[key1], bond_length[key2]
        pairs.extend([key1, key2, (min(int(h1), int(h2)), max(int(h1), int(h2)))])
        hh = np.sqrt(r1 * r1 + r2 * r2 - 2.0 * r1 * r2 * np.cos(th))
        dists.extend([r1, r2, float(hh)])
    if not pairs:
        raise ValueError("no water constraints found in the topology")
    return ConstraintSolver(np.array(pairs), np.array(dists))
