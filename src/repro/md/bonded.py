"""Bonded force kernels: bonds, angles, dihedrals, impropers.

These are the 2-, 3-, and 4-body covalent terms of §3 of the paper ("Forces
due to covalent bonds within biomolecules are represented via a sum of 2-body
(bond), 3-body (angle), and 4-body (dihedral and improper) terms which follow
the topology of the molecule").

Every kernel is vectorized over its term array and accepts an optional
``subset`` of term indices so the parallel layer can evaluate exactly the
terms owned by one patch (paper §3: the upstream-ownership rule assigns each
term to a unique patch).  Forces are *accumulated* into the caller's array,
matching how home patches combine force messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.scatter import segment_add
from repro.md.system import MolecularSystem
from repro.util.pbc import minimum_image

__all__ = [
    "BondedEnergies",
    "compute_bonds",
    "compute_angles",
    "compute_dihedrals",
    "compute_impropers",
    "compute_bonded",
    "dihedral_angles",
]

_MIN_SIN = 1e-8  # guard against collinear angle configurations


@dataclass
class BondedEnergies:
    """Per-kind bonded energies (kcal/mol) from one evaluation."""

    bond: float = 0.0
    angle: float = 0.0
    dihedral: float = 0.0
    improper: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all bonded energy components."""
        return self.bond + self.angle + self.dihedral + self.improper


def _take(arr: np.ndarray, subset: np.ndarray | None) -> np.ndarray:
    return arr if subset is None else arr[subset]


def compute_bonds(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
) -> float:
    """Harmonic bonds ``E = k (r - r0)²``; returns energy, accumulates forces."""
    idx, k, r0 = system.topology.bond_arrays()
    idx, k, r0 = _take(idx, subset), _take(k, subset), _take(r0, subset)
    if len(idx) == 0:
        return 0.0
    pos = system.positions
    delta = minimum_image(pos[idx[:, 1]] - pos[idx[:, 0]], system.box)
    r = np.linalg.norm(delta, axis=1)
    stretch = r - r0
    energy = float(np.dot(k, stretch * stretch))
    # F_i = 2 k (r - r0) * delta / r  (toward j when stretched)
    fmag = (2.0 * k * stretch / np.maximum(r, 1e-12))[:, None]
    fvec = fmag * delta
    segment_add(forces, idx[:, 0], fvec)
    segment_add(forces, idx[:, 1], -fvec)
    return energy


def compute_angles(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
) -> float:
    """Harmonic angles ``E = k (θ - θ0)²`` centred on the middle atom."""
    idx, k, theta0 = system.topology.angle_arrays()
    idx, k, theta0 = _take(idx, subset), _take(k, subset), _take(theta0, subset)
    if len(idx) == 0:
        return 0.0
    pos = system.positions
    a = minimum_image(pos[idx[:, 0]] - pos[idx[:, 1]], system.box)
    b = minimum_image(pos[idx[:, 2]] - pos[idx[:, 1]], system.box)
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    ah = a / na[:, None]
    bh = b / nb[:, None]
    cos_t = np.clip(np.einsum("ij,ij->i", ah, bh), -1.0, 1.0)
    theta = np.arccos(cos_t)
    sin_t = np.maximum(np.sqrt(1.0 - cos_t * cos_t), _MIN_SIN)
    diff = theta - theta0
    energy = float(np.dot(k, diff * diff))
    dE_dtheta = 2.0 * k * diff
    # dθ/dri = (cosθ â - b̂) / (|a| sinθ);  F_i = -dE/dθ dθ/dri
    fi = (-dE_dtheta / (na * sin_t))[:, None] * (cos_t[:, None] * ah - bh)
    fk = (-dE_dtheta / (nb * sin_t))[:, None] * (cos_t[:, None] * bh - ah)
    fj = -(fi + fk)
    segment_add(forces, idx[:, 0], fi)
    segment_add(forces, idx[:, 1], fj)
    segment_add(forces, idx[:, 2], fk)
    return energy


def _torsion_geometry(
    system: MolecularSystem, idx: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Shared dihedral/improper geometry.

    Returns ``(phi, m, n, b1, b2, b3, nb2, m2, n2)`` for the torsion defined
    by atom quadruples ``idx``.
    """
    pos = system.positions
    box = system.box
    b1 = minimum_image(pos[idx[:, 1]] - pos[idx[:, 0]], box)
    b2 = minimum_image(pos[idx[:, 2]] - pos[idx[:, 1]], box)
    b3 = minimum_image(pos[idx[:, 3]] - pos[idx[:, 2]], box)
    m = np.cross(b1, b2)
    n = np.cross(b2, b3)
    nb2 = np.linalg.norm(b2, axis=1)
    # phi = atan2((m × n)·b̂2, m·n)
    mxn = np.cross(m, n)
    sin_term = np.einsum("ij,ij->i", mxn, b2) / np.maximum(nb2, 1e-12)
    cos_term = np.einsum("ij,ij->i", m, n)
    phi = np.arctan2(sin_term, cos_term)
    m2 = np.maximum(np.einsum("ij,ij->i", m, m), 1e-12)
    n2 = np.maximum(np.einsum("ij,ij->i", n, n), 1e-12)
    return phi, m, n, b1, b2, b3, nb2, m2, n2


def _torsion_forces(
    dE_dphi: np.ndarray,
    m: np.ndarray,
    n: np.ndarray,
    b1: np.ndarray,
    b2: np.ndarray,
    b3: np.ndarray,
    nb2: np.ndarray,
    m2: np.ndarray,
    n2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cartesian forces for a torsion given ``dE/dφ`` (standard gradient).

    Uses the classic analytic gradient (Bekker et al.):
    ``dφ/dr_i = -|b2| m / |m|²``, ``dφ/dr_l = |b2| n / |n|²``, with the
    middle-atom gradients fixed by translation invariance.
    """
    b2sq = np.maximum(nb2 * nb2, 1e-12)
    dphi_dri = (-nb2 / m2)[:, None] * m
    dphi_drl = (nb2 / n2)[:, None] * n
    t = (np.einsum("ij,ij->i", b1, b2) / b2sq)[:, None]
    s = (np.einsum("ij,ij->i", b3, b2) / b2sq)[:, None]
    # middle-atom gradients fixed by translation invariance (validated
    # against numerical differentiation in tests/test_md/test_bonded.py)
    dphi_drj = -(1.0 + t) * dphi_dri + s * dphi_drl
    dphi_drk = -(1.0 + s) * dphi_drl + t * dphi_dri
    scale = (-dE_dphi)[:, None]
    return scale * dphi_dri, scale * dphi_drj, scale * dphi_drk, scale * dphi_drl


def compute_dihedrals(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
) -> float:
    """Cosine torsions ``E = k (1 + cos(n φ - δ))``."""
    idx, k, n_per, delta = system.topology.dihedral_arrays()
    idx, k = _take(idx, subset), _take(k, subset)
    n_per, delta = _take(n_per, subset), _take(delta, subset)
    if len(idx) == 0:
        return 0.0
    phi, m, n, b1, b2, b3, nb2, m2, n2 = _torsion_geometry(system, idx)
    arg = n_per * phi - delta
    energy = float(np.dot(k, 1.0 + np.cos(arg)))
    dE_dphi = -k * n_per * np.sin(arg)
    fi, fj, fk, fl = _torsion_forces(dE_dphi, m, n, b1, b2, b3, nb2, m2, n2)
    segment_add(forces, idx[:, 0], fi)
    segment_add(forces, idx[:, 1], fj)
    segment_add(forces, idx[:, 2], fk)
    segment_add(forces, idx[:, 3], fl)
    return energy


def compute_impropers(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
) -> float:
    """Harmonic impropers ``E = k (ψ - ψ0)²`` on the torsion angle ψ.

    The deviation is wrapped into ``[-π, π)`` so that ψ0 near ±π behaves
    continuously.
    """
    idx, k, psi0 = system.topology.improper_arrays()
    idx, k, psi0 = _take(idx, subset), _take(k, subset), _take(psi0, subset)
    if len(idx) == 0:
        return 0.0
    psi, m, n, b1, b2, b3, nb2, m2, n2 = _torsion_geometry(system, idx)
    diff = psi - psi0
    diff = (diff + np.pi) % (2.0 * np.pi) - np.pi
    energy = float(np.dot(k, diff * diff))
    dE_dpsi = 2.0 * k * diff
    fi, fj, fk, fl = _torsion_forces(dE_dpsi, m, n, b1, b2, b3, nb2, m2, n2)
    segment_add(forces, idx[:, 0], fi)
    segment_add(forces, idx[:, 1], fj)
    segment_add(forces, idx[:, 2], fk)
    segment_add(forces, idx[:, 3], fl)
    return energy


def compute_bonded(
    system: MolecularSystem, forces: np.ndarray | None = None
) -> tuple[BondedEnergies, np.ndarray]:
    """All bonded terms; returns energies and the (possibly new) force array."""
    if forces is None:
        forces = np.zeros((system.n_atoms, 3), dtype=np.float64)
    energies = BondedEnergies(
        bond=compute_bonds(system, forces),
        angle=compute_angles(system, forces),
        dihedral=compute_dihedrals(system, forces),
        improper=compute_impropers(system, forces),
    )
    return energies, forces


def dihedral_angles(system: MolecularSystem) -> np.ndarray:
    """Torsion angles φ (radians) of every dihedral, for analysis/tests."""
    idx, _, _, _ = system.topology.dihedral_arrays()
    if len(idx) == 0:
        return np.zeros(0)
    phi = _torsion_geometry(system, idx)[0]
    return phi
