"""Bonded force kernels: bonds, angles, dihedrals, impropers.

These are the 2-, 3-, and 4-body covalent terms of §3 of the paper ("Forces
due to covalent bonds within biomolecules are represented via a sum of 2-body
(bond), 3-body (angle), and 4-body (dihedral and improper) terms which follow
the topology of the molecule").

Every kernel is vectorized over its term array and accepts an optional
``subset`` of term indices so the parallel layer can evaluate exactly the
terms owned by one patch (paper §3: the upstream-ownership rule assigns each
term to a unique patch).  Forces are *accumulated* into the caller's array,
matching how home patches combine force messages.

The per-term math lives in the backend layer (``backend.bonded_terms``, with
a numpy reference bit-identical to the historical inline code and a numba
JIT twin) so the parallel engine's worker processes can evaluate bonded
tasks through the same kernel registry as the pair kernel.  These wrappers
keep the md-facing API: term arrays come from the topology, forces scatter
at the global atom indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import KernelBackend, get_backend
from repro.md.system import MolecularSystem

__all__ = [
    "BondedEnergies",
    "BONDED_KINDS",
    "bonded_term_arrays",
    "compute_bonds",
    "compute_angles",
    "compute_dihedrals",
    "compute_impropers",
    "compute_bonded",
    "dihedral_angles",
]

#: Kind codes of the ``backend.bonded_terms`` contract, in evaluation order.
BONDED_KINDS = ("bond", "angle", "dihedral", "improper")


@dataclass
class BondedEnergies:
    """Per-kind bonded energies (kcal/mol) from one evaluation."""

    bond: float = 0.0
    angle: float = 0.0
    dihedral: float = 0.0
    improper: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all bonded energy components."""
        return self.bond + self.angle + self.dihedral + self.improper


def _take(arr: np.ndarray, subset: np.ndarray | None) -> np.ndarray:
    return arr if subset is None else arr[subset]


def bonded_term_arrays(
    system: MolecularSystem, kind: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The ``(idx, k, p1, p2)`` arrays of one bonded-term kind.

    This is the kernel-ready form of the topology's term tables, matching
    the ``backend.bonded_terms`` contract: ``p1`` is the equilibrium
    parameter (``r0``/``theta0``/periodicity/``psi0``), ``p2`` the dihedral
    phase (zeros for other kinds).  The parallel engine partitions these
    arrays into per-cell tasks.
    """
    topo = system.topology
    if kind == 0:
        idx, k, r0 = topo.bond_arrays()
        return idx, k, r0, np.zeros(len(k))
    if kind == 1:
        idx, k, theta0 = topo.angle_arrays()
        return idx, k, theta0, np.zeros(len(k))
    if kind == 2:
        idx, k, n_per, delta = topo.dihedral_arrays()
        return idx, k, n_per, delta
    if kind == 3:
        idx, k, psi0 = topo.improper_arrays()
        return idx, k, psi0, np.zeros(len(k))
    raise ValueError(f"unknown bonded term kind {kind!r}")


def _compute_kind(
    system: MolecularSystem,
    kind: int,
    forces: np.ndarray,
    subset: np.ndarray | None,
    backend: KernelBackend | str | None,
) -> float:
    idx, k, p1, p2 = bonded_term_arrays(system, kind)
    idx, k = _take(idx, subset), _take(k, subset)
    p1, p2 = _take(p1, subset), _take(p2, subset)
    if len(idx) == 0:
        return 0.0
    return get_backend(backend).bonded_terms(
        system.positions, system.box, kind, idx, k, p1, p2, forces, idx
    )


def compute_bonds(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
) -> float:
    """Harmonic bonds ``E = k (r - r0)²``; returns energy, accumulates forces."""
    return _compute_kind(system, 0, forces, subset, backend)


def compute_angles(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
) -> float:
    """Harmonic angles ``E = k (θ - θ0)²`` centred on the middle atom."""
    return _compute_kind(system, 1, forces, subset, backend)


def compute_dihedrals(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
) -> float:
    """Cosine torsions ``E = k (1 + cos(n φ - δ))``."""
    return _compute_kind(system, 2, forces, subset, backend)


def compute_impropers(
    system: MolecularSystem,
    forces: np.ndarray,
    subset: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
) -> float:
    """Harmonic impropers ``E = k (ψ - ψ0)²`` on the torsion angle ψ.

    The deviation is wrapped into ``[-π, π)`` so that ψ0 near ±π behaves
    continuously.
    """
    return _compute_kind(system, 3, forces, subset, backend)


def compute_bonded(
    system: MolecularSystem,
    forces: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
) -> tuple[BondedEnergies, np.ndarray]:
    """All bonded terms; returns energies and the (possibly new) force array."""
    if forces is None:
        forces = np.zeros((system.n_atoms, 3), dtype=np.float64)
    energies = BondedEnergies(
        bond=compute_bonds(system, forces, backend=backend),
        angle=compute_angles(system, forces, backend=backend),
        dihedral=compute_dihedrals(system, forces, backend=backend),
        improper=compute_impropers(system, forces, backend=backend),
    )
    return energies, forces


def dihedral_angles(system: MolecularSystem) -> np.ndarray:
    """Torsion angles φ (radians) of every dihedral, for analysis/tests."""
    from repro.backend import reference as _reference

    idx, _, _, _ = system.topology.dihedral_arrays()
    if len(idx) == 0:
        return np.zeros(0)
    phi = _reference._torsion_geometry(system.positions, system.box, idx)[0]
    return phi
