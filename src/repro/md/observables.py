"""Physical observables from MD trajectories.

Standard analysis quantities a user of the engine needs to judge whether a
simulation is physically sensible:

* :func:`radial_distribution` — the pair correlation g(r), whose first
  O-O peak near 2.8 Å is the classic liquid-water fingerprint,
* :func:`mean_squared_displacement` — diffusive motion over a trajectory,
* :func:`velocity_autocorrelation` — the normalized VACF.

All are vectorized over frames/pairs; trajectories are simple lists of
position snapshots as produced by the example scripts.
"""

from __future__ import annotations

import numpy as np

from repro.util.pbc import minimum_image

__all__ = [
    "radial_distribution",
    "mean_squared_displacement",
    "velocity_autocorrelation",
]


def radial_distribution(
    positions: np.ndarray,
    box: np.ndarray,
    r_max: float,
    n_bins: int = 100,
    subset: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair correlation function g(r) for one configuration.

    Parameters
    ----------
    positions:
        ``(n, 3)`` coordinates.
    box:
        Orthorhombic box lengths; ``r_max`` must be at most half the
        smallest edge for the minimum image to be valid.
    n_bins:
        Histogram resolution.
    subset:
        Optional atom indices to correlate (e.g. water oxygens only).

    Returns
    -------
    (r, g):
        Bin centers and the normalized pair correlation.
    """
    box = np.asarray(box, dtype=np.float64)
    if r_max > box.min() / 2 + 1e-9:
        raise ValueError("r_max exceeds half the smallest box edge")
    pts = positions if subset is None else positions[subset]
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two atoms")

    iu, ju = np.triu_indices(n, k=1)
    delta = minimum_image(pts[ju] - pts[iu], box)
    r = np.linalg.norm(delta, axis=1)
    counts, edges = np.histogram(r, bins=n_bins, range=(0.0, r_max))

    volume = float(np.prod(box))
    density = n / volume
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = density * shell_volumes * n / 2.0  # expected pair counts
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    centers = 0.5 * (edges[1:] + edges[:-1])
    return centers, g


def mean_squared_displacement(
    trajectory: list[np.ndarray] | np.ndarray,
) -> np.ndarray:
    """MSD(t) relative to the first frame (unwrapped coordinates expected).

    Returns one value per frame; frame 0 is zero by construction.
    """
    frames = np.asarray(trajectory, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError("trajectory must be (frames, atoms, 3)")
    disp = frames - frames[0]
    return np.einsum("fij,fij->f", disp, disp) / frames.shape[1]


def velocity_autocorrelation(
    velocities: list[np.ndarray] | np.ndarray,
) -> np.ndarray:
    """Normalized VACF: ``C(t) = <v(0).v(t)> / <v(0).v(0)>``."""
    frames = np.asarray(velocities, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError("velocities must be (frames, atoms, 3)")
    v0 = frames[0]
    denom = float(np.einsum("ij,ij->", v0, v0))
    if denom == 0.0:
        raise ValueError("zero initial velocities")
    return np.einsum("fij,ij->f", frames, v0) / denom
