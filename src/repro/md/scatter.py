"""Segment-sum force accumulation.

``np.add.at`` is correct for duplicate indices but dispatches through the
generic ufunc inner loop, which is an order of magnitude slower than a
vectorized pass.  ``np.bincount`` computes the same segment sums with a
single C loop per component, so all force kernels scatter through these
helpers instead.

Both paths add contributions in input order per output row; the only
floating-point difference from ``np.add.at`` is the final reassociation
``out += partial`` (exactly zero when the output rows start from zero, one
rounding otherwise), well inside every kernel tolerance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_add", "accumulate_pair_forces"]

#: Below this many contributions per output row (on average), the bincount
#: pass over the whole output array costs more than the generic scatter.
_BINCOUNT_MIN_FILL = 0.25


def segment_add(out: np.ndarray, idx: np.ndarray, contrib: np.ndarray) -> None:
    """Accumulate ``contrib[p]`` into ``out[idx[p]]`` (duplicates summed).

    ``out`` has shape ``(n, k)`` and ``contrib`` shape ``(m, k)`` for small
    ``k`` (force components).  Uses one ``np.bincount`` per component; falls
    back to ``np.add.at`` when the contribution count is small relative to
    ``n`` (bincount would be dominated by its O(n) output pass).
    """
    if len(idx) == 0:
        return
    n = out.shape[0]
    if len(idx) < _BINCOUNT_MIN_FILL * n:
        np.add.at(out, idx, contrib)
        return
    for k in range(out.shape[1]):
        out[:, k] += np.bincount(idx, weights=contrib[:, k], minlength=n)


def accumulate_pair_forces(
    forces: np.ndarray, i: np.ndarray, j: np.ndarray, fvec: np.ndarray
) -> None:
    """Newton's-third-law scatter: ``forces[i] += fvec``, ``forces[j] -= fvec``."""
    segment_add(forces, i, fvec)
    segment_add(forces, j, -fvec)
