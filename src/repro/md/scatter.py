"""Segment-sum force accumulation (validated entry to the backend scatter).

``np.add.at`` is correct for duplicate indices but dispatches through the
generic ufunc inner loop, which is an order of magnitude slower than a
vectorized pass.  ``np.bincount`` computes the same segment sums with a
single C loop per component.  The actual scatter now lives in the kernel
backend (:mod:`repro.backend`); the numpy reference keeps the historical
bincount/``add.at`` heuristic bit-for-bit, the numba backend runs one
compiled loop.

Index validation happens once here, at the public entry point.  The two
numpy paths used to disagree on bad input — ``np.add.at`` silently *wraps*
negative indices (accumulating into the wrong atoms) while ``np.bincount``
raises — so whether a corrupt pair list crashed or silently misfolded
forces depended on the fill-ratio heuristic.  Both paths (and every
backend) now raise the same ``ValueError``.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.backend.reference import _BINCOUNT_MIN_FILL  # noqa: F401  (back-compat)

__all__ = ["segment_add", "accumulate_pair_forces"]


def segment_add(
    out: np.ndarray,
    idx: np.ndarray,
    contrib: np.ndarray,
    backend=None,
) -> None:
    """Accumulate ``contrib[p]`` into ``out[idx[p]]`` (duplicates summed).

    ``out`` has shape ``(n, k)`` and ``contrib`` shape ``(m, k)`` for small
    ``k`` (force components).  Indices are validated once at entry: any
    index outside ``[0, n)`` raises ``ValueError`` regardless of which
    scatter path or backend runs.  ``backend`` is a
    :class:`repro.backend.KernelBackend` (or spec); ``None`` uses the
    session default.
    """
    idx = np.asarray(idx)
    if idx.size == 0:
        return
    n = out.shape[0]
    imin = int(idx.min())
    imax = int(idx.max())
    if imin < 0 or imax >= n:
        raise ValueError(
            f"segment_add: scatter indices must lie in [0, {n}); "
            f"got range [{imin}, {imax}]"
        )
    get_backend(backend).segment_add(out, idx, contrib)


def accumulate_pair_forces(
    forces: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    fvec: np.ndarray,
    backend=None,
) -> None:
    """Newton's-third-law scatter: ``forces[i] += fvec``, ``forces[j] -= fvec``."""
    segment_add(forces, i, fvec, backend=backend)
    segment_add(forces, j, -fvec, backend=backend)
