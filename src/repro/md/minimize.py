"""Energy minimization (steepest descent with adaptive step).

Synthetic structures from :mod:`repro.builder` start from jittered lattices
and random-walk chains, so a few bad contacts are inevitable.  A short
minimization removes them before dynamics — the same preparation step every
production MD package performs before equilibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.bonded import compute_bonded
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded
from repro.md.system import MolecularSystem

__all__ = ["minimize", "MinimizationResult"]


@dataclass
class MinimizationResult:
    """Outcome of a minimization run."""

    initial_energy: float
    final_energy: float
    iterations: int
    converged: bool
    max_force: float


def _energy_forces(
    system: MolecularSystem, options: NonbondedOptions
) -> tuple[float, np.ndarray]:
    nb = compute_nonbonded(system, options)
    be, forces = compute_bonded(system)
    forces += nb.forces
    return nb.energy + be.total, forces


def minimize(
    system: MolecularSystem,
    options: NonbondedOptions | None = None,
    max_iterations: int = 200,
    force_tolerance: float = 10.0,
    initial_step: float = 0.02,
    max_displacement: float = 0.2,
) -> MinimizationResult:
    """Steepest-descent minimization, in place.

    The step size adapts: it grows 20% after a successful (energy-lowering)
    step and halves after a rejected one — the classic robust scheme for
    removing clashes.  Per-atom displacement is capped at
    ``max_displacement`` Å per iteration so overlapping atoms cannot be
    catapulted.

    Returns a :class:`MinimizationResult`; ``converged`` means the maximum
    per-atom force dropped below ``force_tolerance`` (kcal/mol/Å).
    """
    options = options or NonbondedOptions()
    energy, forces = _energy_forces(system, options)
    initial_energy = energy
    step = initial_step
    it = 0
    for it in range(1, max_iterations + 1):
        fmax = float(np.abs(forces).max()) if system.n_atoms else 0.0
        if fmax < force_tolerance:
            return MinimizationResult(initial_energy, energy, it - 1, True, fmax)
        displacement = step * forces
        norms = np.linalg.norm(displacement, axis=1)
        big = norms > max_displacement
        if np.any(big):
            displacement[big] *= (max_displacement / norms[big])[:, None]
        trial = system.positions + displacement
        saved = system.positions
        system.positions = trial
        new_energy, new_forces = _energy_forces(system, options)
        if new_energy < energy:
            energy, forces = new_energy, new_forces
            step *= 1.2
        else:
            system.positions = saved
            step *= 0.5
            if step < 1e-8:
                break
    fmax = float(np.abs(forces).max()) if system.n_atoms else 0.0
    return MinimizationResult(initial_energy, energy, it, fmax < force_tolerance, fmax)
