"""Molecular topology: bonded terms and exclusion generation.

A :class:`Topology` stores the covalent structure of a molecular system as
index arrays into the atom list, with one parameter object per term:

* bonds — ``(i, j)`` with a :class:`~repro.md.forcefield.BondType`
* angles — ``(i, j, k)`` centred on ``j``
* dihedrals — ``(i, j, k, l)`` around the ``j-k`` axis
* impropers — ``(i, j, k, l)`` with ``i`` the central atom

Following CHARMM/NAMD semantics (paper §3), non-bonded interactions between
atoms connected by one or two bonds (1-2 and 1-3 pairs) are *excluded*, and
pairs connected by three bonds (1-4 pairs) are *modified* (computed with
scaled parameters).  :meth:`Topology.build_exclusions` derives both sets from
the bond graph by breadth-first expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import AngleType, BondType, DihedralType, ImproperType

__all__ = ["Topology", "Exclusions"]


@dataclass(frozen=True)
class Exclusions:
    """Exclusion data in kernel-ready form for a system of ``n_atoms`` atoms.

    Attributes
    ----------
    n_atoms:
        Number of atoms the pair keys were computed against.
    excluded_keys:
        Sorted ``int64`` array of canonical pair keys ``min*n + max`` for
        every fully excluded (1-2 and 1-3) pair.
    pairs14:
        ``(m, 2)`` int array of modified 1-4 pairs (canonical order, each
        pair listed once).  Pairs that are *also* 1-2/1-3 via a shorter path
        (rings) are dropped from this list.
    """

    n_atoms: int
    excluded_keys: np.ndarray
    pairs14: np.ndarray

    def pair_key(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Canonical scalar key for atom pairs (vectorized)."""
        lo = np.minimum(i, j).astype(np.int64)
        hi = np.maximum(i, j).astype(np.int64)
        return lo * np.int64(self.n_atoms) + hi

    def is_excluded(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the (i, j) pair is fully excluded."""
        keys = self.pair_key(np.asarray(i), np.asarray(j))
        pos = np.searchsorted(self.excluded_keys, keys)
        pos = np.minimum(pos, max(len(self.excluded_keys) - 1, 0))
        if len(self.excluded_keys) == 0:
            return np.zeros(keys.shape, dtype=bool)
        return self.excluded_keys[pos] == keys

    def excluded_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(i, j)`` index arrays of every fully excluded pair.

        Decoding the sorted pair keys costs two integer-divide passes over
        the whole exclusion table; the Ewald exclusion correction needs the
        decoded form every evaluation, so it is computed once per
        ``Exclusions`` instance and cached (read-only).  Topology edits
        rebuild exclusions via ``MolecularSystem.invalidate_exclusions``,
        which replaces this object — and with it the cache.
        """
        cached = getattr(self, "_pair_table", None)
        if cached is None:
            n = np.int64(self.n_atoms)
            i_c = (self.excluded_keys // n).astype(np.int64)
            j_c = (self.excluded_keys % n).astype(np.int64)
            for arr in (i_c, j_c):
                arr.setflags(write=False)
            cached = (i_c, j_c)
            object.__setattr__(self, "_pair_table", cached)
        return cached

    @property
    def n_excluded(self) -> int:
        """Number of fully excluded (1-2/1-3) pairs."""
        return int(len(self.excluded_keys))


class Topology:
    """Covalent structure of a molecular system.

    Term indices refer to positions in the owning system's atom arrays.  The
    class supports in-place construction (``add_*``) and whole-topology
    composition via :meth:`merge`, which the synthetic builders use to tile
    molecules into assemblies.
    """

    def __init__(self) -> None:
        self._bonds: list[tuple[int, int]] = []
        self._bond_types: list[BondType] = []
        self._angles: list[tuple[int, int, int]] = []
        self._angle_types: list[AngleType] = []
        self._dihedrals: list[tuple[int, int, int, int]] = []
        self._dihedral_types: list[DihedralType] = []
        self._impropers: list[tuple[int, int, int, int]] = []
        self._improper_types: list[ImproperType] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_bond(self, i: int, j: int, btype: BondType) -> None:
        """Register a 2-body bond term."""
        if i == j:
            raise ValueError(f"self-bond on atom {i}")
        self._bonds.append((int(i), int(j)))
        self._bond_types.append(btype)

    def add_angle(self, i: int, j: int, k: int, atype: AngleType) -> None:
        """Register a 3-body angle term centred on ``j``."""
        if len({i, j, k}) != 3:
            raise ValueError(f"degenerate angle ({i}, {j}, {k})")
        self._angles.append((int(i), int(j), int(k)))
        self._angle_types.append(atype)

    def add_dihedral(self, i: int, j: int, k: int, l: int, dtype: DihedralType) -> None:
        """Register a 4-body torsion around the ``j-k`` axis."""
        if len({i, j, k, l}) != 4:
            raise ValueError(f"degenerate dihedral ({i}, {j}, {k}, {l})")
        self._dihedrals.append((int(i), int(j), int(k), int(l)))
        self._dihedral_types.append(dtype)

    def add_improper(self, i: int, j: int, k: int, l: int, itype: ImproperType) -> None:
        """Register a 4-body improper with ``i`` central."""
        if len({i, j, k, l}) != 4:
            raise ValueError(f"degenerate improper ({i}, {j}, {k}, {l})")
        self._impropers.append((int(i), int(j), int(k), int(l)))
        self._improper_types.append(itype)

    def merge(self, other: "Topology", atom_offset: int) -> None:
        """Append ``other``'s terms with atom indices shifted by ``atom_offset``."""
        off = int(atom_offset)
        self._bonds.extend((i + off, j + off) for i, j in other._bonds)
        self._bond_types.extend(other._bond_types)
        self._angles.extend((i + off, j + off, k + off) for i, j, k in other._angles)
        self._angle_types.extend(other._angle_types)
        self._dihedrals.extend(
            (i + off, j + off, k + off, l + off) for i, j, k, l in other._dihedrals
        )
        self._dihedral_types.extend(other._dihedral_types)
        self._impropers.extend(
            (i + off, j + off, k + off, l + off) for i, j, k, l in other._impropers
        )
        self._improper_types.extend(other._improper_types)

    # ------------------------------------------------------------------ #
    # array views
    # ------------------------------------------------------------------ #
    @property
    def n_bonds(self) -> int:
        """Number of bond terms."""
        return len(self._bonds)

    @property
    def n_angles(self) -> int:
        """Number of angle terms."""
        return len(self._angles)

    @property
    def n_dihedrals(self) -> int:
        """Number of dihedral terms."""
        return len(self._dihedrals)

    @property
    def n_impropers(self) -> int:
        """Number of improper terms."""
        return len(self._impropers)

    @property
    def n_terms(self) -> int:
        """Total bonded term count across all four term kinds."""
        return self.n_bonds + self.n_angles + self.n_dihedrals + self.n_impropers

    def bond_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indices (n,2), k (n,), r0 (n,))`` for all bonds."""
        idx = np.array(self._bonds, dtype=np.int64).reshape(-1, 2)
        k = np.array([t.k for t in self._bond_types], dtype=np.float64)
        r0 = np.array([t.r0 for t in self._bond_types], dtype=np.float64)
        return idx, k, r0

    def angle_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indices (n,3), k (n,), theta0 (n,))`` for all angles."""
        idx = np.array(self._angles, dtype=np.int64).reshape(-1, 3)
        k = np.array([t.k for t in self._angle_types], dtype=np.float64)
        theta0 = np.array([t.theta0 for t in self._angle_types], dtype=np.float64)
        return idx, k, theta0

    def dihedral_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(indices (n,4), k, n_period, delta)`` for all dihedrals."""
        idx = np.array(self._dihedrals, dtype=np.int64).reshape(-1, 4)
        k = np.array([t.k for t in self._dihedral_types], dtype=np.float64)
        n = np.array([t.n for t in self._dihedral_types], dtype=np.float64)
        delta = np.array([t.delta for t in self._dihedral_types], dtype=np.float64)
        return idx, k, n, delta

    def improper_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indices (n,4), k, psi0)`` for all impropers."""
        idx = np.array(self._impropers, dtype=np.int64).reshape(-1, 4)
        k = np.array([t.k for t in self._improper_types], dtype=np.float64)
        psi0 = np.array([t.psi0 for t in self._improper_types], dtype=np.float64)
        return idx, k, psi0

    # ------------------------------------------------------------------ #
    # exclusions
    # ------------------------------------------------------------------ #
    def bonded_neighbors(self, n_atoms: int) -> list[list[int]]:
        """Adjacency list of the bond graph over ``n_atoms`` atoms."""
        adj: list[list[int]] = [[] for _ in range(n_atoms)]
        for i, j in self._bonds:
            if i >= n_atoms or j >= n_atoms or i < 0 or j < 0:
                raise IndexError(
                    f"bond ({i},{j}) references atom outside 0..{n_atoms - 1}"
                )
            adj[i].append(j)
            adj[j].append(i)
        return adj

    def build_exclusions(self, n_atoms: int) -> Exclusions:
        """Derive 1-2/1-3 exclusions and 1-4 modified pairs from bonds.

        Exclusion classes are assigned by the *shortest* bond path between
        two atoms, so in rings a pair reachable in both 3 and 2 bonds is
        excluded rather than modified (matching CHARMM semantics).
        """
        adj = self.bonded_neighbors(n_atoms)
        n = np.int64(n_atoms)

        excluded: set[int] = set()
        pairs14: set[tuple[int, int]] = set()

        for i in range(n_atoms):
            # shortest-path distances up to 3 bonds from atom i
            dist = {i: 0}
            frontier = [i]
            for d in (1, 2, 3):
                nxt: list[int] = []
                for u in frontier:
                    for v in adj[u]:
                        if v not in dist:
                            dist[v] = d
                            nxt.append(v)
                frontier = nxt
            for j, d in dist.items():
                if j <= i:
                    continue
                key = int(np.int64(i) * n + np.int64(j))
                if d in (1, 2):
                    excluded.add(key)
                elif d == 3:
                    pairs14.add((i, j))

        # drop 1-4 pairs that are also excluded via a shorter path (handled
        # above because shortest distance wins), and canonicalize arrays
        excluded_keys = np.array(sorted(excluded), dtype=np.int64)
        p14 = np.array(sorted(pairs14), dtype=np.int64).reshape(-1, 2)
        return Exclusions(n_atoms=n_atoms, excluded_keys=excluded_keys, pairs14=p14)

    # ------------------------------------------------------------------ #
    def validate(self, n_atoms: int) -> None:
        """Raise if any term references an out-of-range atom index."""
        for name, terms in (
            ("bond", self._bonds),
            ("angle", self._angles),
            ("dihedral", self._dihedrals),
            ("improper", self._impropers),
        ):
            for term in terms:
                for idx in term:
                    if idx < 0 or idx >= n_atoms:
                        raise IndexError(
                            f"{name} {term} references atom {idx} outside "
                            f"0..{n_atoms - 1}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(bonds={self.n_bonds}, angles={self.n_angles}, "
            f"dihedrals={self.n_dihedrals}, impropers={self.n_impropers})"
        )
