"""Real shared-memory parallel MD: a patch-based multiprocessing engine.

Everything else in this repository *models* the paper's parallelism on a
simulated machine; this module actually runs it.  :class:`ParallelEngine`
is API-compatible with :class:`~repro.md.engine.SequentialEngine` (same
:class:`~repro.md.engine.StepReport`, same integrator contract) but
evaluates the non-bonded force field — "eighty percent or more" of a step,
paper §4.2.1 — across a persistent pool of worker *processes*.

Design, mirroring the paper's hybrid decomposition on real hardware:

* **Patches**: space is divided into the same half-shell cell grid the
  sequential pairlist uses (:mod:`repro.md.cells`), sized to
  ``cutoff + skin``; the compute *tasks* are the per-cell self blocks and
  the 13-per-cell neighbour pair blocks, exactly the paper's "one compute
  object per cube and per neighbouring-cube pair" (§3).
* **Measurement-based load balancing** (§2.2): every worker times each of
  its tasks with ``perf_counter_ns`` and ships the samples back with the
  force data; the driver records them in a shared
  :class:`~repro.instrument.WorkDB` whose priors come from
  :func:`repro.costmodel.model.estimate_block_costs` (the cost model used
  "before the first measurement").  With ``rebalance_every > 0`` the driver
  periodically builds an :class:`~repro.balancer.problem.LBProblem` from
  the database and runs the paper's strategies — the ``greedy`` seed on the
  first cycle, ``refine`` thereafter (or any registry schedule via
  ``lb_strategy``) — and installs the new task→worker map at the next
  pair-list rebuild.
* **Pack-once multicast**: positions are packed once per step into a
  ``multiprocessing.shared_memory`` array that every worker maps — the
  §4.2.3 optimization realized by the operating system's shared pages
  instead of per-destination message copies.
* **Per-worker Verlet lists**: each worker keeps the pair list for *its*
  tasks, prefiltered at build time to ``r < cutoff + skin`` with exclusions
  and 1-4 pairs already removed (:func:`repro.md.nonbonded.filter_candidates`)
  and with the Lorentz-Berthelot parameters pre-combined; between
  driver-coordinated rebuilds the hot loop is distance test + kernel only.
* **Grainsize control** (§4.2.1–2, Figures 1→2): with ``grainsize_ms > 0``
  any cell task whose cost-model-prior execution time exceeds the target is
  split into *sub-block tasks* — row stripes of the task's first cell, the
  same :mod:`repro.core.grainsize` arithmetic the simulated layer uses — so
  no single dense cell pair caps the achievable load balance.  Sub-tasks
  are real schedulable units: the static partition, the WorkDB (sub-task
  identity = parent task + slice index, priors inherited pro-rata by
  candidate count), and every LB decision operate on them.  The split
  structure is decided *once, at construction, from the deterministic
  cost-model prior* — never from noisy wall-clock measurements — because
  the scratch layout (and therefore the floating-point reduction order)
  follows the task list: a measurement-driven split would make repeat runs
  bitwise diverge.  Measured sub-task times still drive *placement*, and
  :func:`repro.analysis.grainsize.histogram_from_workdb` turns them into
  the Figure 1→2 histograms on real processes.
* **Assignment-independent deterministic reduction**: each task writes its
  forces into a *compact per-task block* of a shared scratch buffer whose
  layout (task-ordered, offsets from the deterministic atom binning) is
  fixed at every rebuild.  The driver reduces with a task-ordered
  segment-sum, so the bitwise result does not depend on which worker ran
  which task — repeated runs are bit-identical *even while measured times
  (and therefore rebalanced assignments) jitter*, and remaps never perturb
  the trajectory.  Remap points themselves are step-indexed: a rebalance
  decision at step ``k·rebalance_every`` always forces a rebuild at the
  next evaluation, whether or not the placement changed.

The driver overlaps its own work (bonded terms and the scaled 1-4 pass)
with the workers' non-bonded evaluation, then adds the reduced blocks.

Falls back to the sequential path when ``workers <= 1``, when the platform
lacks POSIX shared memory, or when the pool cannot start; ``close()`` (also
wired to a context manager, ``atexit``, and the finalizer) shuts the pool
down so tests never leak processes.  A configurable ``timeout`` makes a hung
worker fail fast instead of stalling the caller.

For tests and experiments, ``slowdown`` injects an artificial per-worker
CPU slowdown with the semantics of
:class:`repro.runtime.faults.SlowdownWindow` (step-indexed windows during
which the worker runs ``factor`` times slower, realized as a busy spin
after each task so the slowdown is *measured* by the WorkDB like any real
background load).

**Self-healing supervision** (:mod:`repro.md.resilience`): the pool is
supervised.  Worker results travel over per-worker pipes (a process killed
mid-send can corrupt only its own channel, never a shared queue), and the
driver waits on those pipes *and* the workers' process sentinels, so a
SIGKILL'd worker is detected within milliseconds — not at the step
timeout.  Detection triggers the recovery ladder of
:class:`~repro.md.resilience.RecoveryPolicy`: respawn the worker (bounded
retry, exponential backoff) and re-issue the in-flight evaluation to it,
or — past the respawn budget — mark the slot permanently dead and reassign
its tasks to survivors through the WorkDB → LBProblem path with
``dead_procs`` marked, exactly like the simulated runtime.  Only when no
workers survive (or recovery itself thrashes) does the pool degrade to the
sequential path, and it does so by *serving the result*, not by raising.

Recovery is **bit-identical** to an unfaulted run on the first two rungs
of that ladder.  Two properties make this work: the scratch reduction is
task-ordered and assignment-independent (who computed a block never
matters), and workers always derive their binning and pair lists from the
*reference* positions of the last rebuild — published in their own shared
segment — never from the current positions.  A respawned or newly assigned
worker therefore reconstructs exactly the lists the dead worker was using,
and re-executes its tasks to the same bits, without perturbing the rebuild
schedule.  (The final rung, sequential fallback, reduces in a different
order and is equivalent only to ~1e-9, the same caveat PR 1 documents for
the simulated recovery path.)

Deterministic *real-process* fault injection rides on the same machinery:
``fault_plan`` takes a :class:`~repro.md.resilience.WorkerFaultPlan`
(SIGKILL / SIGSTOP-hang / slowdown, step-indexed) that the driver fires
against its own children right after dispatching the scheduled step.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import time
import traceback
import warnings
from collections import defaultdict

import numpy as np

from repro.backend import get_backend
from repro.md.bonded import (
    BONDED_KINDS,
    BondedEnergies,
    bonded_term_arrays,
    compute_bonded,
)
from repro.md.cells import CellGrid
from repro.md.constants import COULOMB_CONSTANT
from repro.md.engine import SequentialEngine
from repro.md.ewald import (
    EwaldOptions,
    EwaldResult,
    _kspace_tables,
    compute_ewald,
    kspace_cache_stats,
)
from repro.md.nonbonded import (
    NonbondedOptions,
    NonbondedResult,
    _combined_params,
    filter_candidates,
    nonbonded_14,
)
from repro.md.pairlist import VerletPairList
from repro.md.resilience import (
    FaultInjector,
    RecoveryEventLog,
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
)
from repro.core.grainsize import GrainsizeConfig, stripe_candidate_counts
from repro.util.cpus import available_cpu_count
from repro.util.pbc import minimum_image, wrap_positions

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shm

    HAS_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None
    HAS_SHARED_MEMORY = False

__all__ = ["ParallelEngine", "ParallelNonbonded", "HAS_SHARED_MEMORY"]

#: columns of the shared per-task stats array
_STAT_E_LJ, _STAT_E_EL, _STAT_N_PAIRS, _STAT_TIME_NS = range(4)

#: hard cap on grainsize slices per cell task in the real engine — real
#: sub-tasks carry per-part list/scatter overhead the simulated layer's
#: descriptors do not, so the engine caps lower than GrainsizeConfig's 64
_MAX_SPLIT_PARTS = 16

#: Ewald k-space sharding: target k-vectors per shard and shard-count cap.
#: Both derive from the k-table size only — never from the worker count —
#: so the task structure (and with it the reduction order) is identical at
#: any pool size; that is what keeps trajectories bit-identical across
#: worker counts with k-space distribution on.
_KSHARD_TARGET = 512
_KSHARD_MAX = 8


def _kspace_shards(nk: int) -> list[tuple[str, int, int]]:
    """Worker-count-independent ``("kspace", lo, hi)`` shard descriptors."""
    if nk <= 0:
        return []
    n_shards = min(_KSHARD_MAX, max(1, -(-nk // _KSHARD_TARGET)))
    bounds = np.linspace(0, nk, n_shards + 1).round().astype(np.int64)
    return [
        ("kspace", int(bounds[s]), int(bounds[s + 1]))
        for s in range(n_shards)
        if bounds[s + 1] > bounds[s]
    ]


def _xtask_rows(
    xtasks: list[tuple],
    term_data: dict[int, tuple],
    flat: np.ndarray,
    n_atoms: int,
) -> tuple[list, list]:
    """Term selections and scatter rows of every extra task, one binning.

    Extra tasks ride after the cell tasks in the global task order:

    * ``("bonded", kind, cell, intra)`` — the bonded terms of ``kind``
      whose *home cell* (the cell of the term's first atom under the
      reference binning) is ``cell``, split into the intra group (every
      atom of the term in that cell, ``intra=1``) and the inter group
      (``intra=0``).  For each kind the groups partition the term list
      exactly, so energies and forces are independent of the binning; the
      block rows are the flattened global atom indices of the selected
      terms (duplicates are fine — the driver reduces with a segment sum).
    * ``("kspace", lo, hi)`` — a reciprocal-vector shard; its forces touch
      every atom, so the block is a full ``(n_atoms, 3)`` slab.

    Returns ``(sels, rows)`` aligned with ``xtasks``; ``sels[x]`` is None
    for k-space shards.  Driver and workers both call this on the same
    reference binning, so layouts agree without communicating.
    """
    sels: list = []
    rows: list = []
    all_rows = np.arange(n_atoms, dtype=np.int64)
    for xt in xtasks:
        if xt[0] == "kspace":
            sels.append(None)
            rows.append(all_rows)
            continue
        _, kind, cell, intra = xt
        idx = term_data[kind][0]
        home = flat[idx[:, 0]]
        same = np.all(flat[idx] == home[:, None], axis=1)
        sel = np.flatnonzero((home == cell) & (same == bool(intra)))
        sels.append(sel)
        rows.append(idx[sel].reshape(-1))
    return sels, rows


# --------------------------------------------------------------------------- #
# task layout: shared between driver (reduction) and workers (block writes)
# --------------------------------------------------------------------------- #
def _task_layout(
    buckets: list[np.ndarray],
    tasks: list[tuple[int, int, int, int]],
    xrows: list[np.ndarray] = (),
) -> tuple[np.ndarray, np.ndarray]:
    """Task-ordered block layout of the shared force scratch.

    Tasks are grainsize sub-blocks ``(a, b, part, n_parts)`` — the unsplit
    case is ``(a, b, 0, 1)``.  Block ``t`` holds the force rows its kernel
    can touch: for a *self* sub-task every row of cell ``a`` (a stripe's
    pairs ``(i, j)``, ``i`` in the stripe, scatter onto arbitrary ``j``);
    for a *pair* sub-task the stripe ``part::n_parts`` of cell ``a``'s rows
    followed by all of cell ``b``'s.  Returns ``(offsets, gather)`` where
    ``offsets`` has ``n_tasks + 1`` entries and
    ``gather[offsets[t]:offsets[t+1]]`` are the *global* atom indices of
    block ``t``'s rows.  Both driver and workers derive this from the same
    deterministic binning of the same published positions, so they agree
    without communicating; because the layout (and the driver's
    segment-sum over it) is in task order, the reduced forces are bitwise
    independent of the task→worker assignment.

    ``xrows`` appends extra-task blocks (bonded term groups and k-space
    shards, see :func:`_xtask_rows`) after the cell blocks: extra task
    ``x`` occupies global task slot ``len(tasks) + x`` and its block rows
    are exactly ``xrows[x]``.
    """
    n_nb = len(tasks)
    n_tasks = n_nb + len(xrows)
    sizes = np.zeros(n_tasks, dtype=np.int64)
    for t, (a, b, part, n_parts) in enumerate(tasks):
        na = len(buckets[a])
        if b == a:
            sizes[t] = na
        else:
            sizes[t] = len(buckets[a][part::n_parts]) + len(buckets[b])
    for x, rows in enumerate(xrows):
        sizes[n_nb + x] = len(rows)
    offsets = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    gather = np.empty(int(offsets[-1]), dtype=np.int64)
    for t, (a, b, part, n_parts) in enumerate(tasks):
        lo = int(offsets[t])
        if b == a:
            atoms_a = buckets[a]
            gather[lo : lo + len(atoms_a)] = atoms_a
        else:
            rows_a = buckets[a][part::n_parts]
            atoms_b = buckets[b]
            gather[lo : lo + len(rows_a)] = rows_a
            gather[lo + len(rows_a) : lo + len(rows_a) + len(atoms_b)] = atoms_b
    for x, rows in enumerate(xrows):
        lo = int(offsets[n_nb + x])
        gather[lo : lo + len(rows)] = rows
    return offsets, gather


def _scratch_rows_bound(
    tasks: list[tuple[int, int, int, int]], n_cells: int, n_atoms: int
) -> int:
    """Upper bound on scratch rows any future layout of ``tasks`` can need.

    Counts, per cell, how many block rows it can contribute: a self parent
    split ``n`` ways keeps *all* of cell ``a``'s rows in each slice
    (``n`` full blocks); a pair parent contributes cell ``a`` once (its
    stripes partition the rows exactly) and cell ``b`` once per slice.
    The bound is topology-only — independent of where atoms sit — so the
    shared segment sized at construction stays valid across rebuilds.
    """
    if not n_cells:
        return 1
    mult = np.zeros(n_cells, dtype=np.int64)
    for a, b, part, n_parts in tasks:
        if part != 0:  # count each parent task once
            continue
        if b == a:
            mult[a] += n_parts
        else:
            mult[a] += 1
            mult[b] += n_parts
    return max(n_atoms * int(mult.max()), 1)


def _normalize_slowdown(slowdown) -> dict[int, list[tuple[float, float, float]]]:
    """Per-worker slowdown windows ``(start_step, end_step, factor)``.

    Accepts ``{worker: factor}`` (permanent slowdown) or an iterable of
    :class:`repro.runtime.faults.SlowdownWindow`-like objects whose
    ``start``/``end`` are *step* indices (1-based evaluation sequence).
    """
    windows: dict[int, list[tuple[float, float, float]]] = defaultdict(list)
    if not slowdown:
        return {}
    if isinstance(slowdown, dict):
        for proc, factor in slowdown.items():
            if float(factor) <= 0:
                raise ValueError("slowdown factor must be positive")
            windows[int(proc)].append((0.0, float("inf"), float(factor)))
    else:
        for w in slowdown:
            if w.factor <= 0:
                raise ValueError("slowdown factor must be positive")
            windows[int(w.proc)].append(
                (float(w.start), float(w.end), float(w.factor))
            )
    return dict(windows)


def _slowdown_factor(
    windows: list[tuple[float, float, float]], step: int
) -> float:
    """Combined slowdown at ``step`` (mirrors ``FaultPlan.slowdown_factor``:
    overlapping windows multiply)."""
    factor = 1.0
    for start, end, f in windows:
        if start <= step < end:
            factor *= f
    return factor


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _attach_shared(name: str):
    """Attach to an existing shared block without adopting ownership.

    Python < 3.13 registers every attach with the resource tracker; our
    workers are always children of the driver and therefore share *its*
    tracker (both fork and spawn inherit the tracker fd), where the extra
    register is an idempotent no-op.  Crucially the workers must NOT
    unregister — that would strip the driver's own registration and turn
    its later ``unlink()`` into tracker noise.
    """
    return _shm.SharedMemory(name=name)


def _build_task_lists(
    system, tasks, my_tasks, buckets, r_list, backend=None, coulomb=True
):
    """Per-task prefiltered pair lists with local scatter indices.

    For each owned sub-task ``(a, b, part, n_parts)``: global candidate
    index arrays filtered to ``r < r_list`` minus exclusions/1-4, the
    matching *local* block-row indices, and the pre-combined LJ/charge
    parameters (position-independent, so combined once per rebuild instead
    of every step).  A self sub-task keeps the triu pairs whose row ``i``
    lands in the stripe (rows ``0..na-1`` of the block, so all slices of
    one self cell share scatter indexing); a pair sub-task enumerates its
    stripe's rows (block rows ``0..ns-1``) against all of cell ``b``
    (rows ``ns..``).  The slices are an exact partition of the parent
    task's candidate set.

    ``coulomb=False`` zeroes the combined charge products so the pair
    kernel runs LJ-only — the Ewald path owns the full electrostatics and
    the shifted point-charge term must not double count it.
    """
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    lists: dict[int, tuple | None] = {}
    for t in my_tasks:
        a, b, part, n_parts = tasks[t]
        atoms_a = buckets[a]
        na = len(atoms_a)
        if a == b:
            if na < 2:
                lists[t] = None
                continue
            if na not in triu_cache:
                triu_cache[na] = np.triu_indices(na, k=1)
            si, sj = triu_cache[na]
            if n_parts > 1:
                keep = si % n_parts == part
                si = np.ascontiguousarray(si[keep])
                sj = np.ascontiguousarray(sj[keep])
                if len(si) == 0:
                    lists[t] = None
                    continue
            i_g = atoms_a[si]
            j_g = atoms_a[sj]
        else:
            atoms_b = buckets[b]
            nb = len(atoms_b)
            rows_a = np.arange(part, na, n_parts, dtype=np.int64)
            ns = len(rows_a)
            if ns == 0 or nb == 0:
                lists[t] = None
                continue
            i_g = np.repeat(atoms_a[rows_a], nb)
            j_g = np.tile(atoms_b, ns)
            si = np.repeat(np.arange(ns, dtype=np.int64), nb)
            sj = np.tile(np.arange(nb, dtype=np.int64) + ns, ns)
        i_f, j_f, kept = filter_candidates(
            system, i_g.astype(np.int32), j_g.astype(np.int32), r_list,
            return_kept=True, backend=backend,
        )
        if len(i_f) == 0:
            lists[t] = None
            continue
        eps, rmin, qq = _combined_params(system, i_f, j_f)
        if not coulomb:
            qq = np.zeros_like(qq)
        lists[t] = (
            i_f,
            j_f,
            np.ascontiguousarray(si[kept], dtype=np.int64),
            np.ascontiguousarray(sj[kept], dtype=np.int64),
            eps,
            rmin,
            qq,
        )
    return lists


def _task_kernel(system, entry, options, block, backend) -> tuple[float, float, int]:
    """One task's switched LJ + shifted Coulomb into its compact block.

    Identical per-pair arithmetic to :func:`repro.md.nonbonded.
    nonbonded_kernel` (same fused ``backend.nb_pairs`` kernel, same
    segment-sum scatter), but over a prefiltered list with pre-combined
    parameters and local scatter indices — the parallel hot loop.
    """
    i_g, j_g, si, sj, eps, rmin, qq = entry
    return backend.nb_pairs(
        system.positions, system.box, i_g, j_g, eps, rmin, qq,
        options.cutoff, options.switch, block, si, sj,
    )


def _build_xtask_entries(xtasks, xsels, term_data, my_tasks, n_nb):
    """Kernel-ready entries for this worker's extra tasks, one rebuild.

    Bonded entries pre-slice the kind's term arrays to the group's
    selection and carry local scatter indices (block row ``r`` of a group
    with terms of arity ``m`` holds atom ``idx[r // m, r % m]`` — exactly
    the row order of :func:`_xtask_rows`).  K-space entries are just the
    shard descriptor; the tables are memoized per process.
    """
    entries: dict[int, tuple] = {}
    for t in my_tasks:
        if t < n_nb:
            continue
        xt = xtasks[t - n_nb]
        if xt[0] == "kspace":
            entries[t] = xt
            continue
        _, kind, _cell, _intra = xt
        idx, kpar, p1, p2 = term_data[kind]
        sel = xsels[t - n_nb]
        arity = idx.shape[1]
        sidx = np.arange(len(sel) * arity, dtype=np.int64).reshape(-1, arity)
        entries[t] = (
            "bonded", kind, idx[sel], kpar[sel], p1[sel], p2[sel], sidx
        )
    return entries


def _eval_xtask(system, entry, ewald_cfg, block, backend):
    """One extra task into its block; returns ``(energy, n_items)``.

    Bonded groups report their term count, k-space shards their k-vector
    count — measurement context for the WorkDB, never added to the pair
    total.  The shard prefactor uses the *current* box (the driver forces a
    rebuild on any box change, so tables and volume always agree).
    """
    if entry[0] == "kspace":
        _, lo, hi = entry
        alpha, kmax = ewald_cfg
        box = np.asarray(system.box, dtype=np.float64)
        k_tab, _k2, ak = _kspace_tables(box, kmax, alpha)
        if hi <= lo or len(k_tab) == 0:
            return 0.0, 0
        pref = COULOMB_CONSTANT * 2.0 * np.pi / float(np.prod(box))
        energy = backend.ewald_recip_shard(
            system.positions, system.charges, k_tab[lo:hi], ak[lo:hi],
            pref, block,
        )
        return float(energy), hi - lo
    _, kind, idx, kpar, p1, p2, sidx = entry
    if len(idx) == 0:
        return 0.0, 0
    energy = backend.bonded_terms(
        system.positions, system.box, kind, idx, kpar, p1, p2, block, sidx
    )
    return float(energy), len(idx)


def _worker_main(
    worker_id,
    n_workers,
    cmd_conn,
    res_conn,
    pos_name,
    ref_name,
    scratch_name,
    stats_name,
    system,
    options,
    dims,
    tasks,
    r_list,
    backend_name,
    assignment,
    slow_windows,
    xtasks=(),
    term_data=None,
    ewald_cfg=None,
    coulomb=True,
):
    """Worker loop: attach shared arrays, then serve step/rebuild commands.

    Commands and acks travel over per-worker pipes: ``("step", seq, epoch,
    rebuild, box, assignment_or_None)`` in, ``("ok"|"error", worker_id,
    seq, epoch[, traceback])`` out.  The epoch lets the driver re-issue an
    evaluation to a respawned/reassigned worker and discard any stale ack
    the previous incarnation may have left in flight.

    Binning and pair-list construction always use the *reference* positions
    (the ``ref`` shared segment, written by the driver at each rebuild),
    never the live ones — so a worker (re)building its lists mid-window
    reconstructs exactly the state every other worker derived at the last
    rebuild, which is what makes recovery bit-identical.  The kernel, of
    course, evaluates at the live positions.

    ``xtasks`` appends bonded term groups and Ewald k-space shards after
    the cell tasks (global slots ``len(tasks)..``).  Their partitions are
    re-derived from the same reference binning at every rebuild, so a
    respawned or reassigned worker reconstructs them bit-identically too.
    Bonded group energies land in the ``E_LJ`` stats column, shard
    energies in ``E_EL``; the driver separates them by task-id range.
    With Ewald enabled each worker also publishes its process-local
    k-space table cache counters (builds, hits since spawn) into the
    per-worker stats rows after the task rows.
    """
    from repro.core.decomposition import bin_atoms

    # resolve the kernel backend once per worker process; forked workers
    # inherit the parent's compiled state, spawned ones recompile from the
    # on-disk JIT cache — either way every task of this worker runs the
    # same kernels for its whole life
    backend = get_backend(backend_name)

    pos_seg = _attach_shared(pos_name)
    ref_seg = _attach_shared(ref_name)
    scratch_seg = _attach_shared(scratch_name)
    stats_seg = _attach_shared(stats_name)
    n = system.n_atoms
    n_nb = len(tasks)
    n_tasks = n_nb + len(xtasks)
    positions = np.ndarray((n, 3), dtype=np.float64, buffer=pos_seg.buf)
    ref_positions = np.ndarray((n, 3), dtype=np.float64, buffer=ref_seg.buf)
    scratch = np.ndarray(
        (scratch_seg.size // 24, 3), dtype=np.float64, buffer=scratch_seg.buf
    )
    stats = np.ndarray(
        (n_tasks + n_workers, 4), dtype=np.float64, buffer=stats_seg.buf
    )
    # the worker's system aliases the shared positions; the driver owns the
    # contents and guarantees they are wrapped before each command
    system.positions = positions
    dims = np.asarray(dims, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    my_tasks: list[int] = []
    offsets = None
    lists: dict[int, tuple | None] = {}
    xentries: dict[int, tuple] = {}
    # cache counters are cumulative per process; under fork the child
    # inherits the parent's, so report deltas from this baseline
    cache_base = kspace_cache_stats() if ewald_cfg is not None else None
    perf = time.perf_counter_ns
    try:
        while True:
            try:
                cmd = cmd_conn.recv()
            except (EOFError, OSError):
                break  # driver gone
            if cmd[0] == "stop":
                break
            seq = epoch = -1
            try:
                _, seq, epoch, rebuild, box, new_assignment = cmd
                system.box = np.asarray(box, dtype=np.float64)
                changed = False
                if new_assignment is not None:
                    new_assignment = np.asarray(new_assignment, dtype=np.int64)
                    changed = not np.array_equal(new_assignment, assignment)
                    assignment = new_assignment
                if rebuild or changed or offsets is None:
                    # derive everything from the reference positions so the
                    # result is independent of *when* this worker (re)built
                    system.positions = ref_positions
                    try:
                        _, flat, buckets = bin_atoms(
                            ref_positions, system.box, dims
                        )
                        xsels, xrows = _xtask_rows(xtasks, term_data, flat, n)
                        offsets, _ = _task_layout(buckets, tasks, xrows)
                        my_tasks = np.flatnonzero(
                            assignment == worker_id
                        ).tolist()
                        lists = _build_task_lists(
                            system, tasks,
                            [t for t in my_tasks if t < n_nb],
                            buckets, r_list,
                            backend=backend, coulomb=coulomb,
                        )
                        xentries = _build_xtask_entries(
                            xtasks, xsels, term_data, my_tasks, n_nb
                        )
                    finally:
                        system.positions = positions
                factor = _slowdown_factor(slow_windows, seq)
                for t in my_tasks:
                    t0 = perf()
                    block = scratch[offsets[t] : offsets[t + 1]]
                    block[...] = 0.0
                    if t >= n_nb:
                        energy, n_items = _eval_xtask(
                            system, xentries[t], ewald_cfg, block, backend
                        )
                        if xentries[t][0] == "kspace":
                            e_lj, e_el = 0.0, energy
                        else:
                            e_lj, e_el = energy, 0.0
                        n_pairs = n_items
                    else:
                        entry = lists[t]
                        if entry is None:
                            e_lj = e_el = 0.0
                            n_pairs = 0
                        else:
                            e_lj, e_el, n_pairs = _task_kernel(
                                system, entry, options, block, backend
                            )
                    elapsed = perf() - t0
                    if factor > 1.0:
                        # busy-spin: the CPU "runs factor times slower", so
                        # the extra time is real, measurable load
                        target = t0 + elapsed * factor
                        while perf() < target:
                            pass
                        elapsed = perf() - t0
                    stats[t, _STAT_E_LJ] = e_lj
                    stats[t, _STAT_E_EL] = e_el
                    stats[t, _STAT_N_PAIRS] = n_pairs
                    stats[t, _STAT_TIME_NS] = elapsed
                if cache_base is not None:
                    cs = kspace_cache_stats()
                    stats[n_tasks + worker_id, 0] = (
                        cs["builds"] - cache_base["builds"]
                    )
                    stats[n_tasks + worker_id, 1] = (
                        cs["hits"] - cache_base["hits"]
                    )
                res_conn.send(("ok", worker_id, seq, epoch))
            except Exception:
                try:
                    res_conn.send(
                        ("error", worker_id, seq, epoch, traceback.format_exc())
                    )
                except (OSError, ValueError):  # pragma: no cover
                    break
    finally:
        del positions, ref_positions, scratch, stats, system.positions
        system.positions = np.zeros((0, 3))
        pos_seg.close()
        ref_seg.close()
        scratch_seg.close()
        stats_seg.close()


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
def _contiguous_partition(costs: np.ndarray, n_parts: int) -> np.ndarray:
    """Boundaries of ``n_parts`` contiguous, cost-balanced runs.

    Returns an int array ``bounds`` of length ``n_parts + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == len(costs)``; part ``k`` owns
    tasks ``bounds[k]:bounds[k+1]``.  Deterministic (prefix-sum splitting at
    equal cost targets).

    Guarantees beyond the raw prefix cuts: whenever ``n_tasks >= n_parts``
    every part is nonempty (a single dominant task, or ``searchsorted``
    landing before a run of zero-cost tasks, would otherwise collapse
    several cuts onto one index and starve the trailing parts), and with
    ``n_parts > n_tasks`` the first ``n_tasks`` parts get one task each.
    The clamp moves a collapsed cut to the nearest admissible index, which
    never raises the maximum part cost: the part that previously held the
    dominant prefix only sheds tasks to its (previously empty) successors.
    """
    n_tasks = len(costs)
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    total = float(prefix[-1])
    if total <= 0.0:
        bounds = np.linspace(0, n_tasks, n_parts + 1).round().astype(np.int64)
    else:
        targets = total * np.arange(1, n_parts) / n_parts
        cuts = np.searchsorted(prefix, targets, side="left")
        bounds = np.concatenate([[0], cuts, [n_tasks]]).astype(np.int64)
    # force strictly increasing bounds while tasks last: in the shifted
    # coordinate d[k] = bounds[k] - k, "every part nonempty" is plain
    # monotonicity, so one maximum.accumulate plus a clip to the feasible
    # band [0, n_tasks - n_parts] repairs collapsed cuts with the minimal
    # moves (and pins bounds[0] = 0, bounds[-1] = n_tasks)
    k = np.arange(n_parts + 1, dtype=np.int64)
    d = np.maximum.accumulate(np.clip(bounds, 0, n_tasks) - k)
    d = np.clip(d, 0, max(n_tasks - n_parts, 0))
    return np.minimum(d + k, n_tasks)


class ParallelNonbonded:
    """Pool-backed non-bonded evaluator over one molecular system.

    Evaluates the same quantity as :func:`repro.md.nonbonded.compute_nonbonded`
    (main pair loop + scaled 1-4 pass) but distributes the pair work across
    ``n_workers`` processes.  Split :meth:`dispatch`/:meth:`collect` calls
    let the caller overlap its own work — the engine computes bonded terms
    while the workers run — or use :meth:`compute` for the one-shot form.

    Every evaluation feeds per-task ``perf_counter_ns`` samples into
    :attr:`workdb`; with ``rebalance_every > 0`` the driver re-runs the
    paper's balancers on that database (see the module docstring) and
    installs new task→worker maps at step-indexed pair-list rebuilds.

    Falls back to an in-process Verlet-pairlist evaluation when
    ``n_workers <= 1``, shared memory is unavailable, or pool startup fails;
    :attr:`active` tells which mode is live.
    """

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        n_workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
        start_method: str | None = None,
        rebalance_every: int = 0,
        lb_strategy: str | None = None,
        slowdown=None,
        grainsize_ms: float = 0.0,
        fault_plan: WorkerFaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
        backend=None,
        bonded: bool = False,
        ewald: EwaldOptions | None = None,
        kspace: bool = True,
    ) -> None:
        """``n_workers <= 0`` means "one per CPU" (the CPUs this process may
        run on, affinity/cgroup aware); ``timeout`` (seconds) bounds every
        wait on the pool so a hung worker fails fast.

        ``bonded=True`` distributes the bonded terms onto the pool as extra
        tasks (per home cell, intra/inter term groups) — :meth:`collect`'s
        forces then *include* the bonded contribution and
        :attr:`last_bonded` reports the per-kind energies, so the engine
        must not add them again.  ``ewald`` (an
        :class:`~repro.md.ewald.EwaldOptions`) makes this evaluator own the
        *full* electrostatics: the pair kernel runs LJ-only, the scaled 1-4
        electrostatic term is dropped (the Ewald sum covers those pairs at
        full strength), and ``energy_elec`` is the complete Ewald total.
        With ``kspace=True`` (default) the reciprocal sum is sharded over
        k-vector ranges and evaluated on the pool, overlapped with the pair
        tasks, while the driver computes the real-space/self/background/
        exclusion remainder; ``kspace=False`` keeps the whole Ewald sum on
        the driver (still overlapped with the workers).  All of these keep
        the task-ordered reduction, so trajectories stay bit-identical
        across repeats, remaps, worker counts, and recovery.

        ``rebalance_every=N`` runs a load-balancing decision every N
        evaluations (0 disables); ``lb_strategy`` overrides the default
        greedy-seed-then-refine schedule with any
        :data:`repro.balancer.strategies.STRATEGIES` name or ``"+"``-combo;
        ``slowdown`` injects per-worker artificial slowdowns (dict
        ``{worker: factor}`` or step-indexed ``SlowdownWindow`` iterable);
        ``grainsize_ms > 0`` enables grainsize control — cell tasks whose
        cost-model-prior time exceeds the target (in *cost-model*
        milliseconds, :data:`repro.core.simulation.DEFAULT_COST_MODEL`
        unless ``cost_model`` overrides it) are split into row-stripe
        sub-tasks before the static partition and every LB decision.

        ``fault_plan`` schedules deterministic real-process fault injection
        (a :class:`~repro.md.resilience.WorkerFaultPlan` or its compact
        string form, e.g. ``"kill=1@3,hang=0@2x1.5"``); ``recovery``
        configures the supervision ladder (default
        :class:`~repro.md.resilience.RecoveryPolicy`).

        ``backend`` selects the :mod:`repro.backend` kernel set used by the
        driver (candidate filtering, 1-4 pass, fallback path) and by every
        worker; resolved once here and shipped to workers by *name* so a
        respawned worker rebuilds the identical kernels.  Recorded in
        :attr:`workdb` so measurements taken under different backends are
        never blended.
        """
        from repro.balancer.strategies import STRATEGIES
        from repro.instrument import WorkDB

        if skin < 0:
            raise ValueError("skin must be non-negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if rebalance_every < 0:
            raise ValueError("rebalance_every must be >= 0")
        if grainsize_ms < 0:
            raise ValueError("grainsize_ms must be >= 0")
        if lb_strategy is not None:
            for part in lb_strategy.split("+"):
                if part not in STRATEGIES:
                    raise ValueError(
                        f"unknown LB strategy {part!r}; "
                        f"choose from {sorted(STRATEGIES)}"
                    )
        if isinstance(fault_plan, str):
            fault_plan = WorkerFaultPlan.parse(fault_plan)
        self.system = system
        self.options = options or NonbondedOptions()
        self.backend = get_backend(backend)
        self.skin = float(skin)
        self.timeout = float(timeout)
        self.rebalance_every = int(rebalance_every)
        self.lb_strategy = lb_strategy
        self.grainsize_ms = float(grainsize_ms)
        self._slow_windows = _normalize_slowdown(slowdown)
        if fault_plan is not None and fault_plan.slowdowns:
            for w in fault_plan.slowdowns:
                self._slow_windows.setdefault(int(w.proc), []).append(
                    (float(w.start), float(w.end), float(w.factor))
                )
        self.fault_plan = fault_plan
        self.policy = recovery or RecoveryPolicy()
        self.resilience = ResilienceStats()
        self.workdb = WorkDB()
        self.workdb.set_backend(self.backend.name)
        self.bonded_tasks = bool(bonded)
        self.ewald = ewald
        self.kspace_tasks = bool(kspace) and ewald is not None
        self._coulomb = ewald is None
        self.last_bonded: BondedEnergies | None = None
        self.last_ewald: EwaldResult | None = None
        self._n_nb = 0
        self._n_total = 0
        self._xtasks: list[tuple] = []
        self._term_data: dict[int, tuple] = {}
        self._bonded_ids: dict[int, np.ndarray] = {}
        self._kspace_ids: np.ndarray = np.zeros(0, dtype=np.int64)
        self._kspace_stat_base: np.ndarray | None = None
        self.driver_compute_s = 0.0
        self.pool_wall_s = 0.0
        self.n_evals = 0
        self.n_workers = 1
        self.task_bounds: np.ndarray | None = None
        self.n_rebuilds = 0
        self.n_reuses = 0
        self.n_rebalances = 0
        self.remap_steps: list[int] = []
        self.rebalance_log: list[dict] = []
        self._seq = 0
        self._pending: int | None = None
        self._pending_assignment: np.ndarray | None = None
        self._ref_positions: np.ndarray | None = None
        self._ref_box: np.ndarray | None = None
        self._procs: list = []
        self._cmd_conns: list = []
        self._res_conns: list = []
        self._worker_epoch: list[int] = []
        self._dead_workers: set[int] = set()
        self._respawn_counts: dict[int, int] = {}
        self._acked: set[int] = set()
        self._injector: FaultInjector | None = None
        self._ctx = None
        self._worker_static: tuple | None = None
        self._t_dispatch: float | None = None
        self._step_wall_ewma = 0.0
        self._recovery_rounds = 0
        self._force_rebuild = False
        self._degraded_dispatch = False
        self._last_reassign_moved = 0
        self._pending_box: tuple | None = None
        self._pos_seg = None
        self._refpos_seg = None
        self._scratch_seg = None
        self._stats_seg = None
        self._positions_view: np.ndarray | None = None
        self._refpos_view: np.ndarray | None = None
        self._scratch_view: np.ndarray | None = None
        self._stats_view: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._gather: np.ndarray | None = None
        self._fallback_pairlist: VerletPairList | None = None
        self._deadline: float | None = None
        self._closed = False

        # "one per CPU" must mean CPUs this process may *run on* — on
        # cgroup/affinity-restricted hosts os.cpu_count() oversubscribes
        requested = int(n_workers) if n_workers else available_cpu_count()
        if requested > 1 and HAS_SHARED_MEMORY and system.n_atoms >= 2:
            try:
                self._start_pool(requested, cost_model, start_method)
            except Exception as exc:  # pragma: no cover - platform dependent
                self._teardown()
                warnings.warn(
                    f"parallel worker pool unavailable ({exc!r}); "
                    "falling back to the sequential non-bonded path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.n_workers = 1
        if self.n_workers > 1 and self.fault_plan and self.fault_plan.active:
            if self.fault_plan.max_worker() >= self.n_workers:
                self.close()
                raise ValueError(
                    f"fault plan targets worker {self.fault_plan.max_worker()}"
                    f", but the pool has {self.n_workers} workers"
                )
            self._injector = FaultInjector(self.fault_plan)

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True when the worker pool is live (not fallback, not closed)."""
        return self.n_workers > 1 and not self._closed

    def _start_pool(self, requested, cost_model, start_method) -> None:
        system = self.system
        system.exclusions  # build once, before workers copy the system
        r_list = self.options.cutoff + self.skin
        # construction must not mutate the caller's system (the sequential
        # engine's does not): the grid build and cost model see a wrapped
        # *copy*; the engines wrap before every dispatch as usual
        box = np.asarray(system.box, dtype=np.float64)
        wrapped = wrap_positions(system.positions, box)
        grid = CellGrid.build(wrapped, box, r_list)
        self._dims = grid.dims.copy()
        self._init_box = box.copy()
        ca, cb = grid.neighbor_cell_pair_arrays()
        parents = list(zip(ca.tolist(), cb.tolist()))

        # static, cost-model-seeded block assignment: exact in-cutoff pair
        # counts per task become the WorkDB priors (the paper's "before the
        # first measurement" rule), then contiguous near-equal-cost runs
        from repro.core.decomposition import bin_atoms
        from repro.costmodel.model import estimate_block_costs

        _, flat0, buckets = bin_atoms(wrapped, box, self._dims)
        model = cost_model
        if model is None and self.grainsize_ms > 0:
            # grainsize_ms is a physical target: need real (reference-
            # machine) seconds, not the unitless pair-count default
            from repro.core.simulation import DEFAULT_COST_MODEL

            model = DEFAULT_COST_MODEL
        costs = estimate_block_costs(
            wrapped,
            box,
            self.options.cutoff,
            buckets,
            parents,
            model=model,
        )

        # grainsize control (§4.2.1–2): split oversized parents into row
        # stripes — structure decided here, once, from the deterministic
        # prior (never from noisy measurements: the scratch layout follows
        # the task list, so a measurement-driven split would break bitwise
        # repeatability).  Priors are handed down pro-rata by stripe
        # candidate count.
        cfg = GrainsizeConfig(
            target_load_s=self.grainsize_ms * 1e-3, max_parts=_MAX_SPLIT_PARTS
        )
        tasks: list[tuple[int, int, int, int]] = []
        sub_costs: list[float] = []
        sub_parents: list[int] = []
        for pt, (a, b) in enumerate(parents):
            na = len(buckets[a])
            if self.grainsize_ms > 0:
                enabled = cfg.split_self if a == b else cfg.split_pairs
                n_parts = min(
                    cfg.parts_for(float(costs[pt]), enabled), max(na, 1)
                )
            else:
                n_parts = 1
            weights = stripe_candidate_counts(
                na, None if a == b else len(buckets[b]), n_parts
            )
            wsum = float(weights.sum())
            for part in range(n_parts):
                frac = float(weights[part]) / wsum if wsum > 0 else 1.0 / n_parts
                tasks.append((a, b, part, n_parts))
                sub_costs.append(float(costs[pt]) * frac)
                sub_parents.append(pt)
        sub_cost_arr = np.asarray(sub_costs, dtype=np.float64)

        # extra force tasks: bonded term groups and Ewald k-space shards.
        # Their structure is fixed here, once, from topology/grid/kmax only
        # (never from the worker count or measurements), so the scratch
        # layout — and the reduction order — is identical at any pool size.
        n_cells = int(np.prod(self._dims))
        xtasks: list[tuple] = []
        x_costs: list[float] = []
        term_data: dict[int, tuple] = {}
        mean_nb = float(sub_cost_arr.mean()) if len(sub_costs) else 1.0
        if self.bonded_tasks:
            for kind in range(len(BONDED_KINDS)):
                idx, kpar, p1, p2 = bonded_term_arrays(system, kind)
                if len(idx) == 0:
                    continue
                term_data[kind] = (idx, kpar, p1, p2)
                home = flat0[idx[:, 0]]
                same = np.all(flat0[idx] == home[:, None], axis=1)
                for cell in range(n_cells):
                    in_cell = home == cell
                    for intra in (1, 0):
                        n_terms = int(
                            np.count_nonzero(in_cell & (same == bool(intra)))
                        )
                        xtasks.append(("bonded", kind, cell, intra))
                        # heuristic prior (a bonded term is far cheaper
                        # than a cell block); measurements take over after
                        # the first step
                        x_costs.append(
                            mean_nb * (n_terms / 64.0) + mean_nb * 1e-3
                        )
        nk = 0
        if self.kspace_tasks:
            nk = (2 * self.ewald.kmax + 1) ** 3 - 1
            shards = _kspace_shards(nk)
            for lo_hi in shards:
                xtasks.append(lo_hi)
                x_costs.append(mean_nb)
        all_costs = (
            np.concatenate([sub_cost_arr, np.asarray(x_costs)])
            if x_costs
            else sub_cost_arr
        )

        n_total = len(tasks) + len(xtasks)
        n_workers = min(requested, n_total)
        if n_workers <= 1:
            self.n_workers = 1
            return

        bounds = _contiguous_partition(all_costs, n_workers)
        assignment = np.repeat(
            np.arange(n_workers, dtype=np.int64), np.diff(bounds)
        )
        self._tasks = tasks
        self._xtasks = xtasks
        self._term_data = term_data
        self._n_nb = len(tasks)
        self._n_total = n_total
        self._parents = parents
        self._n_cells = n_cells
        self._self_task_of = {
            a: t
            for t, (a, b, part, _np) in enumerate(tasks)
            if a == b and part == 0
        }
        for t, (a, b, part, n_parts) in enumerate(tasks):
            patches = (a,) if a == b else (a, b)
            self.workdb.ensure_task(
                t,
                patches,
                prior=float(sub_cost_arr[t]),
                owner=int(assignment[t]),
                parent=sub_parents[t],
                part=part,
                n_parts=n_parts,
            )
        bonded_ids: dict[int, list[int]] = {}
        kspace_ids: list[int] = []
        for x, xt in enumerate(xtasks):
            t = self._n_nb + x
            if xt[0] == "kspace":
                kspace_ids.append(t)
                self.workdb.ensure_task(
                    t, (), prior=float(x_costs[x]),
                    owner=int(assignment[t]), kind="kspace",
                )
            else:
                _, kind, cell, intra = xt
                bonded_ids.setdefault(kind, []).append(t)
                # inter-cell groups stay with their initial owner: the
                # balancer sees their load as background (fixed_owner_loads)
                self.workdb.ensure_task(
                    t, (cell,), prior=float(x_costs[x]),
                    owner=int(assignment[t]), migratable=bool(intra),
                    kind="bonded",
                )
        self._bonded_ids = {
            k: np.asarray(v, dtype=np.int64) for k, v in bonded_ids.items()
        }
        self._kspace_ids = np.asarray(kspace_ids, dtype=np.int64)

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self._ctx = ctx
        n = system.n_atoms
        # extra-task scratch bound is topology-only too: per kind, each
        # term lands in exactly one group under any binning (idx.size rows
        # in total), and each k-shard always writes one full (n, 3) slab
        x_rows = sum(td[0].size for td in term_data.values())
        x_rows += len(kspace_ids) * n
        # task rows, then one row per worker for the k-space cache counters
        n_stat_rows = n_total + n_workers
        scratch_rows = _scratch_rows_bound(tasks, self._n_cells, n) + x_rows
        self._pos_seg = _shm.SharedMemory(create=True, size=n * 3 * 8)
        # reference positions: the coordinates the pair lists were last
        # built from.  Workers always bin/build from this segment, so a
        # respawned replacement reconstructs the dead worker's lists
        # exactly, mid-skin-window, without touching the rebuild schedule.
        self._refpos_seg = _shm.SharedMemory(create=True, size=n * 3 * 8)
        self._scratch_seg = _shm.SharedMemory(
            create=True, size=scratch_rows * 3 * 8
        )
        self._stats_seg = _shm.SharedMemory(
            create=True, size=n_stat_rows * 4 * 8
        )
        self._positions_view = np.ndarray(
            (n, 3), dtype=np.float64, buffer=self._pos_seg.buf
        )
        self._refpos_view = np.ndarray(
            (n, 3), dtype=np.float64, buffer=self._refpos_seg.buf
        )
        self._scratch_view = np.ndarray(
            (scratch_rows, 3), dtype=np.float64, buffer=self._scratch_seg.buf
        )
        self._stats_view = np.ndarray(
            (n_stat_rows, 4), dtype=np.float64, buffer=self._stats_seg.buf
        )
        ewald_cfg = (
            (self.ewald.alpha_value(), int(self.ewald.kmax))
            if self.kspace_tasks
            else None
        )
        self._worker_static = (
            n_workers,
            self._pos_seg.name,
            self._refpos_seg.name,
            self._scratch_seg.name,
            self._stats_seg.name,
            system,
            self.options,
            tuple(int(d) for d in self._dims),
            tasks,
            r_list,
            self.backend.name,
            xtasks,
            term_data,
            ewald_cfg,
            self._coulomb,
        )
        self._procs = [None] * n_workers
        self._cmd_conns = [None] * n_workers
        self._res_conns = [None] * n_workers
        self._worker_epoch = [0] * n_workers
        self.n_workers = n_workers
        self.task_bounds = bounds
        self._assignment = assignment
        for w in range(n_workers):
            self._spawn_worker(w)
        atexit.register(self.close)

    def _spawn_worker(self, w: int) -> None:
        """(Re)start worker ``w``: fresh pipes, fresh process, index slot.

        The child re-attaches the live shared segments and is handed the
        *current* assignment; its pair lists are rebuilt from the reference
        positions on the first command that asks for a rebuild.
        """
        (
            n_workers,
            pos_name,
            ref_name,
            scratch_name,
            stats_name,
            system,
            options,
            dims,
            tasks,
            r_list,
            backend_name,
            xtasks,
            term_data,
            ewald_cfg,
            coulomb,
        ) = self._worker_static
        ctx = self._ctx
        cmd_recv, cmd_send = ctx.Pipe(duplex=False)
        res_recv, res_send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(
                w,
                n_workers,
                cmd_recv,
                res_send,
                pos_name,
                ref_name,
                scratch_name,
                stats_name,
                system,
                options,
                dims,
                tasks,
                r_list,
                backend_name,
                self._assignment,
                self._slow_windows.get(w, []),
                xtasks,
                term_data,
                ewald_cfg,
                coulomb,
            ),
            daemon=True,
            name=f"repro-nb-worker-{w}",
        )
        proc.start()
        # close the child's pipe ends in the parent so a dead child turns
        # into EOF on its result conn instead of a silent hang
        cmd_recv.close()
        res_send.close()
        self._procs[w] = proc
        self._cmd_conns[w] = cmd_send
        self._res_conns[w] = res_recv
        self.workdb.note_worker_backend(w, backend_name)

    # ------------------------------------------------------------------ #
    def _needs_rebuild(self) -> bool:
        pos = self.system.positions
        box = np.asarray(self.system.box, dtype=np.float64)
        if self._ref_positions is None:
            return True
        if not np.array_equal(box, self._ref_box):
            # the task grid is fixed at construction; a changed box is only
            # admissible while its patches still cover the list cutoff
            edge = box / self._dims
            r_list = self.options.cutoff + self.skin
            if np.any((self._dims > 1) & (edge < r_list)):
                raise RuntimeError(
                    f"box {box.tolist()} shrank below the task grid's "
                    f"coverage (edge {edge.tolist()} < cutoff+skin {r_list}); "
                    "recreate the parallel engine for the new box"
                )
            return True
        if len(pos) != len(self._ref_positions):
            raise RuntimeError(
                "atom count changed under a live worker pool; "
                "recreate the parallel engine"
            )
        delta = minimum_image(pos - self._ref_positions, box)
        max_disp2 = float(np.einsum("ij,ij->i", delta, delta).max())
        return max_disp2 > (0.5 * self.skin) ** 2

    def _live_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if w not in self._dead_workers]

    @property
    def n_live(self) -> int:
        """Workers still serving tasks (``n_workers`` minus permanent dead)."""
        return self.n_workers - len(self._dead_workers) if self.active else 1

    def force_rebuild_next(self) -> None:
        """Force a pair-list rebuild at the next dispatch.

        Checkpoint/restore uses this to pin the rebuild schedule: both the
        run that wrote a checkpoint and the run resumed from it rebuild at
        the evaluation after the checkpoint step, so their trajectories stay
        bit-identical.
        """
        self._force_rebuild = True

    def _repair_idle_deaths(self) -> bool:
        """Between-steps liveness sweep; heal or degrade before dispatching."""
        for w in self._live_workers():
            proc = self._procs[w]
            if proc is not None and not proc.is_alive():
                if not self._recover_worker(w, "died", "found dead at dispatch"):
                    return False
        return True

    def dispatch(self) -> None:
        """Publish positions and start the workers on one evaluation.

        The caller must have wrapped positions into the primary cell (the
        engines do).  Exactly one :meth:`collect` must follow.
        """
        if not self.active:
            raise RuntimeError("worker pool is not active")
        if self._pending is not None:
            raise RuntimeError("dispatch() called with a collect() outstanding")
        self._recovery_rounds = 0
        if not self._repair_idle_deaths():
            # pool degraded to sequential between steps; the paired
            # collect() serves the evaluation on the fallback path
            self._degraded_dispatch = True
            return
        rebuild = (
            self._needs_rebuild()
            or self._pending_assignment is not None
            or self._force_rebuild
        )
        self._force_rebuild = False
        pos = self.system.positions
        self._positions_view[...] = pos  # pack once; every worker maps it
        self._seq += 1
        assignment_payload = None
        if rebuild:
            self._ref_positions = pos.copy()
            self._ref_box = np.asarray(self.system.box, dtype=np.float64).copy()
            self._refpos_view[...] = pos  # workers bin/build from this
            self.n_rebuilds += 1
            if self._pending_assignment is not None:
                if not np.array_equal(self._pending_assignment, self._assignment):
                    self.remap_steps.append(self._seq)
                self._assignment = self._pending_assignment
                self._pending_assignment = None
            # the driver's reduction layout must match the workers' blocks:
            # both bin the same published reference positions
            from repro.core.decomposition import bin_atoms

            _, flat, buckets = bin_atoms(
                pos, np.asarray(self.system.box, dtype=np.float64), self._dims
            )
            xrows: list = []
            if self._xtasks:
                _, xrows = _xtask_rows(
                    self._xtasks, self._term_data, flat, len(pos)
                )
            self._offsets, self._gather = _task_layout(
                buckets, self._tasks, xrows
            )
            assignment_payload = self._assignment
        else:
            self.n_reuses += 1
        self._pending = self._seq
        self._pending_box = tuple(float(x) for x in self.system.box)
        self._acked = set()
        # the timeout budget starts when the workers do — collect() may run
        # arbitrary driver-side work (the 1-4 pass) before it first waits
        self._t_dispatch = time.monotonic()
        self._deadline = self._t_dispatch + self.timeout
        for w in self._live_workers():
            # a failed send means the worker just died; don't recover here —
            # all original commands must be out before any re-issue, or a
            # replacement could interleave a stale command after its re-sent
            # one.  collect()'s liveness sweep picks it up immediately.
            self._send_step(w, rebuild, assignment_payload)
        if self._injector is not None:
            pids = {
                w: self._procs[w].pid
                for w in self._live_workers()
                if self._procs[w] is not None
            }
            self._injector.inject(self._seq, pids)

    def _send_step(self, w: int, rebuild: bool, assignment_payload) -> bool:
        cmd = (
            "step",
            self._pending,
            self._worker_epoch[w],
            rebuild,
            self._pending_box,
            assignment_payload,
        )
        try:
            self._cmd_conns[w].send(cmd)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    def _fallback_compute(self) -> NonbondedResult:
        """One complete evaluation on the in-process path.

        Serves the same contract as :meth:`collect` under the current
        configuration: bonded terms are folded into the forces (and
        :attr:`last_bonded` set) when this evaluator owns them, and with
        Ewald enabled the full periodic electrostatics replace the
        point-charge term.  Equivalent to the pool result to ~1e-9 (the
        sequential reduction order differs — the documented caveat of the
        ladder's bottom rung).
        """
        from repro.md.nonbonded import compute_nonbonded

        if self._fallback_pairlist is None:
            self._fallback_pairlist = VerletPairList(
                self.options.cutoff, skin=self.skin
            )
        nb = compute_nonbonded(
            self.system, self.options,
            pairlist=self._fallback_pairlist, backend=self.backend,
            coulomb=self._coulomb,
        )
        forces = nb.forces
        e_el = nb.energy_elec
        if self.bonded_tasks:
            self.last_bonded, _ = compute_bonded(
                self.system, forces, backend=self.backend
            )
        if self.ewald is not None:
            ew = compute_ewald(self.system, self.ewald, backend=self.backend)
            forces += ew.forces
            e_el += ew.energy
            self.last_ewald = ew
        return NonbondedResult(nb.energy_lj, e_el, forces, nb.n_pairs)

    def collect(self) -> NonbondedResult:
        """Finish the outstanding evaluation: driver remainder, gather, reduce.

        The driver-side remainder — the scaled 1-4 pass and, with Ewald
        enabled, the real-space/self/background/exclusion components —
        overlaps with the workers, which are evaluating the pair blocks
        plus any distributed bonded groups and k-space shards.

        Worker death, hang, or error during the wait is *recovered*, not
        fatal: the supervisor respawns or reassigns (see module docstring)
        and this call still returns the bit-identical result.  Only when the
        whole ladder is exhausted does the pool close and the evaluation
        complete on the sequential fallback.
        """
        if self._pending is None:
            if self._degraded_dispatch:
                # dispatch() found the pool unhealable; honor the
                # dispatch/collect pairing by serving sequentially
                self._degraded_dispatch = False
                return self._fallback_compute()
            raise RuntimeError("collect() called without a dispatch()")
        n = self.system.n_atoms
        forces = np.zeros((n, 3), dtype=np.float64)
        # overlap with the workers: the scaled 1-4 pass (and the Ewald
        # remainder) runs on the driver
        t_d0 = time.monotonic()
        e_lj14, e_el14, n14 = nonbonded_14(
            self.system, self.options, forces, backend=self.backend,
            coulomb=self._coulomb,
        )
        ew_rem = None
        if self.ewald is not None:
            # recip=False with distributed shards: the workers are summing
            # the reciprocal component right now
            ew_rem = compute_ewald(
                self.system, self.ewald, backend=self.backend,
                recip=not self.kspace_tasks,
            )
        driver_s = time.monotonic() - t_d0

        if not self._await_workers():
            # degraded to sequential mid-step: recompute the whole
            # evaluation on the fallback path (includes the driver terms)
            self._pending = None
            self._deadline = None
            return self._fallback_compute()
        step_wall = time.monotonic() - self._t_dispatch
        self._pending = None
        self._deadline = None
        self._t_dispatch = None
        if self._recovery_rounds == 0:
            # hang detection calibrates on clean steps only — a recovered
            # step's wall time includes backoff sleeps and re-execution
            self._step_wall_ewma = (
                step_wall
                if self._step_wall_ewma <= 0.0
                else 0.2 * step_wall + 0.8 * self._step_wall_ewma
            )
        if self._dead_workers:
            self.resilience.degraded_steps += 1

        # task-ordered segment-sum reduction: bitwise independent of the
        # task→worker assignment (see module docstring)
        t_r0 = time.monotonic()
        used = int(self._offsets[-1])
        scratch = self._scratch_view[:used]
        for k in range(3):
            forces[:, k] += np.bincount(
                self._gather, weights=scratch[:, k], minlength=n
            )
        stats = self._stats_view[: self._n_total]
        n_nb = self._n_nb
        e_lj = float(stats[:n_nb, _STAT_E_LJ].sum())
        e_el = float(stats[:n_nb, _STAT_E_EL].sum())
        n_pairs = int(round(float(stats[:n_nb, _STAT_N_PAIRS].sum())))
        if self.bonded_tasks:
            self.last_bonded = BondedEnergies(
                **{
                    name: float(
                        stats[self._bonded_ids[kind], _STAT_E_LJ].sum()
                    )
                    if kind in self._bonded_ids
                    else 0.0
                    for kind, name in enumerate(BONDED_KINDS)
                }
            )
        e_el_total = e_el + e_el14
        if ew_rem is not None:
            e_recip = (
                float(stats[self._kspace_ids, _STAT_E_EL].sum())
                if len(self._kspace_ids)
                else ew_rem.energy_recip
            )
            forces += ew_rem.forces
            self.last_ewald = EwaldResult(
                energy_real=ew_rem.energy_real,
                energy_recip=e_recip,
                energy_self=ew_rem.energy_self,
                energy_background=ew_rem.energy_background,
                energy_exclusion=ew_rem.energy_exclusion,
                forces=ew_rem.forces,
            )
            e_el_total += self.last_ewald.energy

        # feed the measurement database and run the LB schedule
        self.workdb.record_many(
            range(self._n_total),
            stats[:, _STAT_TIME_NS] * 1e-9,
            self._assignment,
        )
        self.workdb.mark_step()
        if self.rebalance_every > 0 and self._seq % self.rebalance_every == 0:
            self._plan_rebalance()
        t_red = time.monotonic() - t_r0
        driver_s += t_red
        self.driver_compute_s += driver_s
        # the reduction runs after the await that ends step_wall; fold it
        # into the wall too so driver_share stays a true fraction (<= 1)
        self.pool_wall_s += step_wall + t_red
        self.n_evals += 1
        return NonbondedResult(
            e_lj + e_lj14, e_el_total, forces, n_pairs + n14
        )

    # ------------------------------------------------------------------ #
    # supervision: detection, respawn, reassignment, degradation
    # ------------------------------------------------------------------ #
    def _await_workers(self) -> bool:
        """Wait until every live worker acked the pending evaluation.

        Returns False only when the pool degraded all the way to the
        sequential fallback (the caller then recomputes sequentially).
        """
        policy = self.policy
        while True:
            if not self.active:
                return False
            live = self._live_workers()
            unacked = [w for w in live if w not in self._acked]
            if not unacked:
                return True
            now = time.monotonic()
            if self._injector is not None:
                self._injector.poll()
            if self._deadline is not None and now >= self._deadline:
                if not self._recover_worker(
                    unacked[0],
                    "hung",
                    f"no ack within the {self.timeout:.0f}s timeout",
                ):
                    return False
                continue
            hang_t = policy.hang_threshold(self._step_wall_ewma, self.timeout)
            if (
                self._t_dispatch is not None
                and now - self._t_dispatch > hang_t
                and self._procs[unacked[0]] is not None
                and self._procs[unacked[0]].is_alive()
            ):
                if not self._recover_worker(
                    unacked[0],
                    "hung",
                    f"silent for {now - self._t_dispatch:.2f}s "
                    f"(threshold {hang_t:.2f}s)",
                ):
                    return False
                continue
            wait_objs = []
            for w in unacked:
                if self._res_conns[w] is not None:
                    wait_objs.append(self._res_conns[w])
                if self._procs[w] is not None:
                    wait_objs.append(self._procs[w].sentinel)
            budget = min(
                policy.poll_interval_s,
                max(self._deadline - now, 1e-3),
                max(hang_t - (now - self._t_dispatch), 1e-3),
            )
            try:
                mp_connection.wait(wait_objs, timeout=budget)
            except OSError:  # pragma: no cover - closed handle race
                pass
            # liveness is checked on EVERY iteration: a SIGKILL'd worker is
            # detected within one poll interval, not at timeout expiry
            recovered = False
            for w in list(unacked):
                proc = self._procs[w]
                if proc is not None and not proc.is_alive():
                    if not self._recover_worker(w, "died", "process exited"):
                        return False
                    recovered = True
            if recovered:
                continue
            for w in list(unacked):
                conn = self._res_conns[w]
                if conn is None:
                    continue
                drained_dead = False
                while True:
                    try:
                        if not conn.poll():
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        drained_dead = True
                        break
                    if not self._handle_ack(w, msg):
                        return False
                    if self._res_conns[w] is not conn:
                        break  # worker was respawned; old conn is gone
                if drained_dead:
                    if not self._recover_worker(w, "died", "result pipe EOF"):
                        return False

    def _handle_ack(self, w: int, msg) -> bool:
        tag, wid, seq, epoch = msg[0], msg[1], msg[2], msg[3]
        if seq != self._pending or epoch != self._worker_epoch[wid]:
            return True  # stale ack from before a recovery re-issue
        if tag == "error":
            return self._recover_worker(
                wid, "error", f"worker raised:\n{msg[4]}"
            )
        self._acked.add(wid)
        return True

    def _recover_worker(self, w: int, kind: str, detail: str = "") -> bool:
        """Heal a failed worker: respawn → reassign → degrade.

        Returns False only when the pool degraded to sequential.
        """
        t0 = time.monotonic()
        detection = (
            t0 - self._t_dispatch if self._t_dispatch is not None else 0.0
        )
        self._recovery_rounds += 1
        if self._recovery_rounds > self.policy.max_recovery_rounds:
            return self._degrade_to_sequential(
                f"recovery limit reached ({self.policy.max_recovery_rounds} "
                f"rounds in one evaluation); last failure: worker {w} {kind}"
            )
        # counters live in ResilienceStats.note_event (called below); the
        # WorkDB mirror feeds the timeline/utilization renders
        if kind == "died":
            self.workdb.note_recovery("kills")
        elif kind == "hung":
            self.workdb.note_recovery("hangs")
        else:
            self.workdb.note_recovery("errors")
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            # hung or errored: SIGKILL works on stopped processes too
            proc.kill()
            proc.join(timeout=5.0)
        for conn in (self._cmd_conns[w], self._res_conns[w]):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._cmd_conns[w] = None
        self._res_conns[w] = None
        self._procs[w] = None
        self._acked.discard(w)

        attempts = self._respawn_counts.get(w, 0)
        action = None
        tasks_moved = 0
        if attempts < self.policy.max_respawns:
            time.sleep(self.policy.backoff(attempts))
            self._respawn_counts[w] = attempts + 1
            try:
                self._spawn_worker(w)
            except Exception:  # pragma: no cover - spawn failure is rare
                self.resilience.respawn_failures += 1
            else:
                self.resilience.respawns += 1
                self.workdb.note_recovery("respawns")
                action = "respawned"
                if self._pending is not None:
                    # re-issue under a fresh epoch; rebuild=True makes the
                    # replacement reconstruct lists from the reference
                    # positions (NOT the live ones), so its task blocks are
                    # bitwise those the dead worker would have written
                    self._worker_epoch[w] += 1
                    self.resilience.steps_redone += 1
                    if not self._send_step(w, True, self._assignment):
                        # died again before the re-issue landed; next loop
                        # iteration recovers it (bounded by recovery rounds)
                        pass
        if action is None:
            degraded = not self._reassign_dead(w)
            if degraded:
                return False
            action = "reassigned"
            tasks_moved = self._last_reassign_moved
        dt = time.monotonic() - t0
        event = RecoveryEventLog(
            step=self._seq,
            worker=w,
            kind=kind,
            action=action,
            detection_s=detection,
            recovery_s=dt,
            tasks_moved=tasks_moved,
            detail=detail,
        )
        self.resilience.note_event(event)
        # a successful recovery earns a fresh wait budget: the re-issued
        # evaluation should not inherit a nearly expired deadline
        if self._pending is not None:
            self._t_dispatch = time.monotonic()
            self._deadline = self._t_dispatch + self.timeout
        return True

    def _reassign_dead(self, w: int) -> bool:
        """Permanent death: move ``w``'s tasks to survivors via the LB path.

        Returns False when no survivors remain (degraded to sequential).
        """
        self._dead_workers.add(w)
        survivors = self._live_workers()
        if not survivors:
            return self._degrade_to_sequential("no workers left")
        orphans = np.flatnonzero(self._assignment == w)
        new_assignment = self._assignment.copy()
        if len(orphans):
            placed = None
            try:
                from repro.balancer.strategies import solve
                from repro.instrument import build_lb_problem

                patch_home = {
                    c: int(self._assignment[t])
                    for c, t in self._self_task_of.items()
                }
                background = np.zeros(self.n_workers)
                loads = self.workdb.owner_loads(self.n_workers)
                for s in survivors:
                    background[s] = loads[s]
                problem = build_lb_problem(
                    self.workdb,
                    self.n_workers,
                    patch_home,
                    background=background,
                    dead_procs=frozenset(self._dead_workers),
                    task_ids=orphans.tolist(),
                )
                placed = solve(problem, "greedy")
            except Exception:  # pragma: no cover - LB path must not be fatal
                placed = None
            if placed:
                for tid, proc in placed.items():
                    new_assignment[tid] = proc
            # least-loaded greedy for whatever the LB path did not place
            # (all orphans when it failed outright) — every orphan MUST
            # leave the dead slot or its force block would silently never
            # be computed.  Fixed-owner bonded groups are reassigned here
            # too: their owner pin survives remaps, not death.
            leftovers = [
                tid for tid in orphans.tolist() if new_assignment[tid] == w
            ]
            if leftovers:
                loads = self.workdb.owner_loads(self.n_workers)
                load_of = {s: float(loads[s]) for s in survivors}
                for tid in leftovers:
                    tgt = min(survivors, key=lambda s: (load_of[s], s))
                    new_assignment[tid] = tgt
                    load_of[tgt] += max(float(self.workdb.load(tid)), 1e-12)
            for tid in orphans.tolist():
                rec = self.workdb.tasks.get(tid)
                kind = rec.kind if rec is not None else "cell"
                self.resilience.reassigned_by_kind[kind] = (
                    self.resilience.reassigned_by_kind.get(kind, 0) + 1
                )
                if rec is not None and not rec.migratable:
                    # the group is pinned to its (new) owner from here on
                    rec.owner = int(new_assignment[tid])
        self._assignment = new_assignment
        self.resilience.tasks_reassigned += int(len(orphans))
        self.workdb.note_recovery("reassigned", int(len(orphans)))
        self._last_reassign_moved = int(len(orphans))
        if self.resilience.mode == "full":
            self.resilience.mode = "degraded"
            self.resilience.degraded_since_step = self._seq
        if self._pending is not None:
            # survivors whose task set grew must redo the evaluation under
            # the new map; rebuild=True re-derives lists from the reference
            # positions so the redone blocks are bitwise unchanged
            gained = {
                int(new_assignment[t]) for t in orphans.tolist()
            } & set(survivors)
            for s in sorted(gained):
                self._worker_epoch[s] += 1
                self._acked.discard(s)
                self.resilience.steps_redone += 1
                self._send_step(s, True, self._assignment)
            # survivors that did not gain tasks still need the new map for
            # their *next* rebuild; it rides along at the next rebuild via
            # the normal assignment payload (their current blocks are valid)
        return True

    def _degrade_to_sequential(self, reason: str) -> bool:
        """Bottom rung of the ladder: close the pool, serve sequentially."""
        self.resilience.mode = "sequential"
        if self.resilience.degraded_since_step is None:
            self.resilience.degraded_since_step = self._seq
        self.workdb.note_recovery("degraded")
        self.resilience.note_event(
            RecoveryEventLog(
                step=self._seq,
                worker=-1,
                kind="died",
                action="degraded",
                detection_s=0.0,
                recovery_s=0.0,
                detail=reason,
            )
        )
        warnings.warn(
            f"parallel worker pool degraded to the sequential path: {reason}",
            RuntimeWarning,
            stacklevel=4,
        )
        pending = self._pending
        self.close()
        self._pending = pending  # close() clears it; collect() still owns it
        return False

    def compute(self) -> NonbondedResult:
        """One full force-task evaluation at the system's current positions."""
        if not self.active:
            return self._fallback_compute()
        self.dispatch()
        return self.collect()

    # ------------------------------------------------------------------ #
    # driver-share and k-space cache instrumentation
    # ------------------------------------------------------------------ #
    def note_driver_time(self, seconds: float) -> None:
        """Charge driver-side compute done *outside* collect() to the share.

        The engine calls this for work it performs between dispatch and
        collect (e.g. bonded terms when they are not distributed), so
        :meth:`driver_report` compares like with like across modes.
        """
        self.driver_compute_s += float(seconds)

    def driver_report(self) -> dict:
        """Cumulative driver-vs-pool wall-time split over all evaluations.

        ``driver_s`` is time the driver spent *computing* (1-4 pass, Ewald
        remainder, reduction, plus anything charged via
        :meth:`note_driver_time`); ``wall_s`` the total dispatch→collect
        wall time.  ``driver_share`` is their ratio — the serial fraction
        the distribution work is trying to kill.  On a one-core host the
        share stays high regardless (workers and driver time-slice one
        CPU); the number is meaningful on multi-core machines.
        """
        wall = self.pool_wall_s
        return {
            "n_evals": self.n_evals,
            "driver_s": self.driver_compute_s,
            "wall_s": wall,
            "driver_share": self.driver_compute_s / wall if wall > 0 else 0.0,
        }

    def kspace_cache_stats(self) -> dict:
        """Driver and per-worker k-space table cache counters.

        The driver counters are the process-global
        :func:`repro.md.ewald.kspace_cache_stats`; worker counters come
        from the shared stats rows each worker publishes after its step
        (cumulative since spawn, minus any :meth:`clear_kspace_cache`
        baseline).
        """
        from repro.md.ewald import kspace_cache_stats as _driver_stats

        out: dict = {
            "driver": _driver_stats(),
            "workers": {},
            "worker_builds": 0,
            "worker_hits": 0,
        }
        if (
            self.active
            and self._stats_view is not None
            and self.ewald is not None
        ):
            rows = self._stats_view[
                self._n_total : self._n_total + self.n_workers, :2
            ]
            if self._kspace_stat_base is not None:
                rows = np.maximum(rows - self._kspace_stat_base, 0.0)
            for w in range(self.n_workers):
                out["workers"][w] = {
                    "builds": int(rows[w, 0]),
                    "hits": int(rows[w, 1]),
                }
            out["worker_builds"] = int(rows[:, 0].sum())
            out["worker_hits"] = int(rows[:, 1].sum())
        return out

    def clear_kspace_cache(self) -> None:
        """Reset the k-space cache and counters as seen by this engine.

        Clears the driver process's memoized tables and zeroes the
        reported worker counters by snapshotting their current values as a
        baseline (worker process caches are bounded LRUs owned by each
        process; they are rebuilt on demand and dropped on respawn).
        """
        from repro.md.ewald import clear_kspace_cache as _clear

        _clear()
        if self.active and self._stats_view is not None:
            self._kspace_stat_base = self._stats_view[
                self._n_total : self._n_total + self.n_workers, :2
            ].copy()

    # ------------------------------------------------------------------ #
    # measurement-based load balancing
    # ------------------------------------------------------------------ #
    def build_lb_problem(self):
        """The strategy-facing problem at the current measurement state."""
        from repro.instrument import build_lb_problem

        patch_home = {
            c: int(self._assignment[t]) for c, t in self._self_task_of.items()
        }
        return build_lb_problem(
            self.workdb,
            self.n_workers,
            patch_home,
            # non-migratable bonded groups never move during a periodic
            # rebalance (the adapter's default task set filters them out),
            # but their measured cost is real — feed it in as per-worker
            # background so the balancer packs movable work around it
            background=self.workdb.fixed_owner_loads(self.n_workers),
            dead_procs=frozenset(self._dead_workers),
        )

    def _plan_rebalance(self) -> None:
        """One LB decision: build the problem, run the schedule, stage the map.

        The staged assignment is installed at the next dispatch (which it
        forces to rebuild), so remap points are step-indexed: every run with
        the same configuration remaps at the same steps even though the
        *content* of the map depends on noisy wall-clock measurements —
        and the assignment-independent reduction keeps forces bit-identical
        regardless of that content.
        """
        from repro.balancer.problem import placement_stats
        from repro.balancer.strategies import solve

        problem = self.build_lb_problem()
        schedule = self.lb_strategy or (
            "greedy" if self.n_rebalances == 0 else "refine"
        )
        placement = solve(problem, schedule)
        new_assignment = self._assignment.copy()
        for tid, proc in placement.items():
            new_assignment[tid] = proc
        current = {c.index: c.proc for c in problem.computes}
        before = placement_stats(problem, current)
        after = placement_stats(problem, placement)
        self.rebalance_log.append(
            {
                "step": self._seq,
                "strategy": schedule,
                "moved": int(np.count_nonzero(new_assignment != self._assignment)),
                "max_load_before": before["max_load"],
                "max_load_after": after["max_load"],
                "imbalance_ratio_before": before["imbalance_ratio"],
                "imbalance_ratio_after": after["imbalance_ratio"],
            }
        )
        self.n_rebalances += 1
        self._pending_assignment = new_assignment

    def worker_loads(self) -> np.ndarray:
        """Predicted per-worker load (seconds/step) under the current map."""
        if not self.active:
            return np.zeros(1)
        return self.workdb.owner_loads(self.n_workers)

    # ------------------------------------------------------------------ #
    # grainsize diagnostics
    # ------------------------------------------------------------------ #
    @property
    def n_parent_tasks(self) -> int:
        """Half-shell cell tasks before grainsize splitting (0 = fallback)."""
        return len(self._parents) if self.active else 0

    @property
    def n_subtasks(self) -> int:
        """Schedulable sub-tasks after grainsize splitting (0 = fallback)."""
        return len(self._tasks) if self.active else 0

    def split_report(self) -> dict:
        """Summary of the construction-time grainsize decision."""
        if not self.active:
            return {
                "grainsize_ms": self.grainsize_ms,
                "n_parent_tasks": 0,
                "n_subtasks": 0,
                "n_split_parents": 0,
                "max_parts": 0,
            }
        n_parts_of = [n_parts for (_a, _b, part, n_parts) in self._tasks if part == 0]
        return {
            "grainsize_ms": self.grainsize_ms,
            "n_parent_tasks": len(self._parents),
            "n_subtasks": len(self._tasks),
            "n_split_parents": sum(1 for p in n_parts_of if p > 1),
            "max_parts": max(n_parts_of) if n_parts_of else 0,
        }

    # ------------------------------------------------------------------ #
    _TEARDOWN_BUDGET_S = 5.0

    def _teardown(self) -> None:
        """Best-effort release of pool state, bounded in total latency.

        All workers are joined *concurrently* against one overall deadline
        (not 5 s serially per worker), escalating ``terminate`` and then
        ``kill`` for stragglers — so shutdown of an ``n``-worker pool with
        hung members costs O(budget), not O(n × budget).
        """
        if self._injector is not None:
            # never leave SIGSTOP'd children frozen behind a dead driver
            self._injector.release_all()
        for conn in self._cmd_conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + self._TEARDOWN_BUDGET_S
        procs = [p for p in self._procs if p is not None]
        pending = [p for p in procs if p.is_alive()]
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                mp_connection.wait(
                    [p.sentinel for p in pending],
                    timeout=min(remaining, 0.2),
                )
            except OSError:  # pragma: no cover - sentinel close race
                pass
            pending = [p for p in pending if p.is_alive()]
        for p in pending:
            p.terminate()
        if pending:
            grace = time.monotonic() + 0.5
            while any(p.is_alive() for p in pending):
                if time.monotonic() >= grace:
                    break
                time.sleep(0.01)
            for p in pending:
                if p.is_alive():  # pragma: no cover - terminate refused
                    p.kill()
        for p in procs:
            p.join(timeout=0.2)
        for conn in [*self._cmd_conns, *self._res_conns]:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = []
        self._cmd_conns = []
        self._res_conns = []
        # numpy views must drop their buffer exports before the mmap closes
        self._positions_view = None
        self._refpos_view = None
        self._scratch_view = None
        self._stats_view = None
        for seg in (
            self._pos_seg,
            self._refpos_seg,
            self._scratch_seg,
            self._stats_seg,
        ):
            if seg is None:
                continue
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            except Exception:  # pragma: no cover
                pass
        self._pos_seg = None
        self._refpos_seg = None
        self._scratch_seg = None
        self._stats_seg = None

    def close(self) -> None:
        """Stop the workers and release shared memory (idempotent).

        Safe under double-close and close-during-dispatch: an outstanding
        evaluation is dropped so a later :meth:`compute` routes straight to
        the sequential fallback instead of tripping the pairing guard.
        """
        if self._closed:
            return
        self._closed = True
        self._pending = None
        self._deadline = None
        self._t_dispatch = None
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass
        self._teardown()

    def __enter__(self) -> "ParallelNonbonded":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:
            pass


class ParallelEngine(SequentialEngine):
    """Wall-clock-parallel MD engine, API-compatible with the sequential one.

    Construction, stepping, reports, and the integrator contract are those
    of :class:`~repro.md.engine.SequentialEngine`; only the non-bonded
    evaluation differs — it runs on a persistent ``workers``-process pool
    with shared-memory positions and per-task force blocks (see the module
    docstring for the decomposition, measurement, and determinism
    guarantees).

    With ``workers <= 1`` (or when the platform cannot start the pool) the
    engine *is* the sequential engine: :meth:`compute_forces` falls through
    to the inherited implementation.  Use as a context manager — or call
    :meth:`close` — to stop the pool; it is also stopped at interpreter
    exit and by the finalizer, so stray engines never leak processes.
    """

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        integrator=None,
        workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
        rebalance_every: int = 0,
        lb_strategy: str | None = None,
        slowdown=None,
        grainsize_ms: float = 0.0,
        fault_plan: WorkerFaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        backend=None,
        ewald: EwaldOptions | None = None,
        distribute: bool = False,
    ) -> None:
        """``workers <= 0`` means one worker per CPU; ``skin`` is the Verlet
        margin of the per-worker pair lists (and of the sequential fallback's
        list); ``timeout`` bounds every wait on the pool.  ``rebalance_every``,
        ``lb_strategy``, ``slowdown`` and ``grainsize_ms`` configure
        measurement-based load balancing, fault injection and grainsize
        control; ``fault_plan``/``recovery`` configure real-process fault
        injection and the supervision ladder (see
        :class:`ParallelNonbonded`); ``checkpoint_every``/``checkpoint_path``
        enable periodic atomic run checkpoints (see
        :class:`~repro.md.engine.SequentialEngine`); ``backend`` selects the
        :mod:`repro.backend` kernel set for the driver and all workers.

        ``ewald`` replaces the cutoff point-charge electrostatics with full
        periodic Ewald summation (see :class:`SequentialEngine`).
        ``distribute=True`` moves the bonded terms — and, with ``ewald``,
        the reciprocal-space sum — onto the worker pool as additional force
        tasks; the driver keeps only the 1-4 pass, the Ewald remainder and
        the reduction.  Off by default: trajectories of existing
        configurations are bitwise unchanged."""
        super().__init__(
            system, options, integrator, pairlist=VerletPairList(
                (options or NonbondedOptions()).cutoff, skin=skin
            ) if skin > 0 else None,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            backend=backend,
            ewald=ewald,
        )
        self.distribute = bool(distribute)
        self._nb = ParallelNonbonded(
            system,
            self.options,
            n_workers=workers,
            skin=skin,
            timeout=timeout,
            cost_model=cost_model,
            rebalance_every=rebalance_every,
            lb_strategy=lb_strategy,
            slowdown=slowdown,
            grainsize_ms=grainsize_ms,
            fault_plan=fault_plan,
            recovery=recovery,
            backend=self.backend,
            bonded=self.distribute,
            ewald=ewald,
            kspace=self.distribute,
        )

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Live worker-process count (1 = sequential fallback)."""
        return self._nb.n_live if self._nb.active else 1

    @property
    def resilience(self) -> "ResilienceStats":
        """Recovery accounting: detections, respawns, reassignments, mode."""
        return self._nb.resilience

    def _checkpoint_invalidate(self) -> None:
        super()._checkpoint_invalidate()
        if self._nb.active:
            self._nb.force_rebuild_next()

    @property
    def parallel(self) -> bool:
        """True when forces are evaluated on the worker pool."""
        return self._nb.active

    @property
    def workdb(self):
        """The engine's measurement database (:class:`repro.instrument.WorkDB`)."""
        return self._nb.workdb

    @property
    def remap_steps(self) -> list[int]:
        """Evaluation indices at which a changed task→worker map took effect."""
        return self._nb.remap_steps

    @property
    def rebalance_log(self) -> list[dict]:
        """One record per LB decision: strategy, moves, predicted loads."""
        return self._nb.rebalance_log

    def driver_report(self) -> dict:
        """Driver-vs-pool wall-time split (see
        :meth:`ParallelNonbonded.driver_report`)."""
        return self._nb.driver_report()

    def kspace_cache_stats(self) -> dict:
        """K-space table cache counters, aggregated over driver and workers
        (see :meth:`ParallelNonbonded.kspace_cache_stats`)."""
        return self._nb.kspace_cache_stats()

    def clear_kspace_cache(self) -> None:
        """Reset this engine's view of the k-space cache counters (see
        :meth:`ParallelNonbonded.clear_kspace_cache`)."""
        self._nb.clear_kspace_cache()

    def compute_forces(self) -> np.ndarray:
        """Evaluate the force field; force tasks run on the worker pool."""
        if not self._nb.active:
            return super().compute_forces()
        self.system.wrap()
        self._nb.dispatch()
        if self.distribute:
            # bonded terms (and the k-space sum, with Ewald) arrive inside
            # the pool's reduced result; collect() separates their energies
            nb = self._nb.collect()
            forces = nb.forces
            self._last_bonded = self._nb.last_bonded
        else:
            # overlap: bonded terms run on the driver while the workers
            # evaluate the pair blocks; charge the time to the driver share
            t0 = time.monotonic()
            bonded_e, forces = compute_bonded(self.system, backend=self.backend)
            self._nb.note_driver_time(time.monotonic() - t0)
            nb = self._nb.collect()
            forces += nb.forces
            self._last_bonded = bonded_e
        self._last_nonbonded = nb
        self._last_ewald = self._nb.last_ewald
        return forces

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine stays usable —
        subsequent steps run on the sequential fallback path)."""
        self._nb.close()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
