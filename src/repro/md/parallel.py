"""Real shared-memory parallel MD: a patch-based multiprocessing engine.

Everything else in this repository *models* the paper's parallelism on a
simulated machine; this module actually runs it.  :class:`ParallelEngine`
is API-compatible with :class:`~repro.md.engine.SequentialEngine` (same
:class:`~repro.md.engine.StepReport`, same integrator contract) but
evaluates the non-bonded force field — "eighty percent or more" of a step,
paper §4.2.1 — across a persistent pool of worker *processes*.

Design, mirroring the paper's hybrid decomposition on real hardware:

* **Patches**: space is divided into the same half-shell cell grid the
  sequential pairlist uses (:mod:`repro.md.cells`), sized to
  ``cutoff + skin``; the compute *tasks* are the per-cell self blocks and
  the 13-per-cell neighbour pair blocks, exactly the paper's "one compute
  object per cube and per neighbouring-cube pair" (§3).
* **Static measurement-seeded assignment**: per-task costs come from exact
  in-cutoff pair counts (:func:`repro.costmodel.model.estimate_block_costs`,
  the measurement-based seeding of §2.2), and each worker owns a contiguous
  run of tasks with near-equal summed cost.
* **Pack-once multicast**: positions are packed once per step into a
  ``multiprocessing.shared_memory`` array that every worker maps — the
  §4.2.3 optimization realized by the operating system's shared pages
  instead of per-destination message copies.  Per-worker force slabs live in
  a second shared block, so the only per-step queue traffic is a tiny
  command/result envelope per worker.
* **Per-worker Verlet lists**: each worker keeps the pair list for *its*
  tasks, prefiltered at build time to ``r < cutoff + skin`` with exclusions
  and 1-4 pairs already removed (:func:`repro.md.nonbonded.filter_candidates`);
  between driver-coordinated rebuilds the hot loop is distance test + kernel
  only.  Rebuilds re-bucket atoms into the fixed task grid with
  :func:`repro.core.decomposition.bin_atoms`, in parallel, one worker's tasks
  each.
* **Deterministic reduction**: per-worker force slabs and energies are
  reduced in ascending worker rank — which, because assignments are
  contiguous, is ascending *task* order.  Repeated runs at a fixed worker
  count are bit-identical; across worker counts (and against
  :class:`SequentialEngine`) results agree to the reassociation level of
  floating-point addition, far inside 1e-9.

The driver overlaps its own work (bonded terms and the scaled 1-4 pass)
with the workers' non-bonded evaluation, then adds the reduced slabs.

Falls back to the sequential path when ``workers <= 1``, when the platform
lacks POSIX shared memory, or when the pool cannot start; ``close()`` (also
wired to a context manager, ``atexit``, and the finalizer) shuts the pool
down so tests never leak processes.  A configurable ``timeout`` makes a hung
worker fail fast instead of stalling the caller.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as queue_module
import time
import traceback
import warnings

import numpy as np

from repro.md.bonded import compute_bonded
from repro.md.cells import CellGrid
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import (
    NonbondedOptions,
    NonbondedResult,
    filter_candidates,
    nonbonded_14,
    nonbonded_kernel,
)
from repro.md.pairlist import VerletPairList

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shm

    HAS_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None
    HAS_SHARED_MEMORY = False

__all__ = ["ParallelEngine", "ParallelNonbonded", "HAS_SHARED_MEMORY"]


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _attach_shared(name: str):
    """Attach to an existing shared block without adopting ownership.

    Python < 3.13 registers every attach with the resource tracker; our
    workers are always children of the driver and therefore share *its*
    tracker (both fork and spawn inherit the tracker fd), where the extra
    register is an idempotent no-op.  Crucially the workers must NOT
    unregister — that would strip the driver's own registration and turn
    its later ``unlink()`` into tracker noise.
    """
    return _shm.SharedMemory(name=name)


def _build_task_pairlist(system, dims, tasks, r_list):
    """This worker's Verlet list: candidate pairs of its task blocks,
    prefiltered to ``r < r_list`` with exclusions/1-4 already removed."""
    # deferred: repro.core.decomposition imports repro.md at module scope
    from repro.core.decomposition import bin_atoms

    _, _, buckets = bin_atoms(system.positions, system.box, dims)
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    is_, js_ = [], []
    for a, b in tasks:
        atoms_a = buckets[a]
        if a == b:
            m = len(atoms_a)
            if m < 2:
                continue
            if m not in triu_cache:
                triu_cache[m] = np.triu_indices(m, k=1)
            iu, ju = triu_cache[m]
            is_.append(atoms_a[iu])
            js_.append(atoms_a[ju])
        else:
            atoms_b = buckets[b]
            if len(atoms_a) == 0 or len(atoms_b) == 0:
                continue
            is_.append(np.repeat(atoms_a, len(atoms_b)))
            js_.append(np.tile(atoms_b, len(atoms_a)))
    if not is_:
        empty = np.zeros(0, dtype=np.int32)
        return empty, empty.copy()
    i_cand = np.concatenate(is_).astype(np.int32)
    j_cand = np.concatenate(js_).astype(np.int32)
    return filter_candidates(system, i_cand, j_cand, r_list)


def _worker_main(
    worker_id,
    n_workers,
    cmd_q,
    res_q,
    pos_name,
    slab_name,
    system,
    options,
    dims,
    tasks,
    r_list,
):
    """Worker loop: attach shared arrays, then serve step/rebuild commands."""
    pos_seg = _attach_shared(pos_name)
    slab_seg = _attach_shared(slab_name)
    n = system.n_atoms
    positions = np.ndarray((n, 3), dtype=np.float64, buffer=pos_seg.buf)
    slab = np.ndarray((n_workers, n, 3), dtype=np.float64, buffer=slab_seg.buf)[
        worker_id
    ]
    # the worker's system aliases the shared positions; the driver owns the
    # contents and guarantees they are wrapped before each command
    system.positions = positions
    dims = np.asarray(dims, dtype=np.int64)
    i_list = j_list = None
    try:
        while True:
            cmd = cmd_q.get()
            if cmd[0] == "stop":
                break
            try:
                _, seq, rebuild, box = cmd
                system.box = np.asarray(box, dtype=np.float64)
                if rebuild or i_list is None:
                    i_list, j_list = _build_task_pairlist(
                        system, dims, tasks, r_list
                    )
                slab[...] = 0.0
                e_lj, e_el, n_pairs = nonbonded_kernel(
                    system, i_list, j_list, options, slab, prefiltered=True
                )
                res_q.put(("ok", worker_id, seq, e_lj, e_el, n_pairs))
            except Exception:
                res_q.put(("error", worker_id, traceback.format_exc()))
    finally:
        del positions, slab, system.positions
        system.positions = np.zeros((0, 3))
        pos_seg.close()
        slab_seg.close()


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
def _contiguous_partition(costs: np.ndarray, n_parts: int) -> np.ndarray:
    """Boundaries of ``n_parts`` contiguous, cost-balanced runs.

    Returns an int array ``bounds`` of length ``n_parts + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == len(costs)``; part ``k`` owns
    tasks ``bounds[k]:bounds[k+1]``.  Deterministic (prefix-sum splitting at
    equal cost targets).
    """
    n_tasks = len(costs)
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    total = float(prefix[-1])
    if total <= 0.0:
        bounds = np.linspace(0, n_tasks, n_parts + 1).round().astype(np.int64)
    else:
        targets = total * np.arange(1, n_parts) / n_parts
        cuts = np.searchsorted(prefix, targets, side="left")
        bounds = np.concatenate([[0], cuts, [n_tasks]]).astype(np.int64)
    bounds = np.maximum.accumulate(np.clip(bounds, 0, n_tasks))
    return bounds


class ParallelNonbonded:
    """Pool-backed non-bonded evaluator over one molecular system.

    Evaluates the same quantity as :func:`repro.md.nonbonded.compute_nonbonded`
    (main pair loop + scaled 1-4 pass) but distributes the pair work across
    ``n_workers`` processes.  Split :meth:`dispatch`/:meth:`collect` calls
    let the caller overlap its own work — the engine computes bonded terms
    while the workers run — or use :meth:`compute` for the one-shot form.

    Falls back to an in-process Verlet-pairlist evaluation when
    ``n_workers <= 1``, shared memory is unavailable, or pool startup fails;
    :attr:`active` tells which mode is live.
    """

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        n_workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
        start_method: str | None = None,
    ) -> None:
        """``n_workers <= 0`` means "one per CPU"; ``timeout`` (seconds)
        bounds every wait on the pool so a hung worker fails fast."""
        if skin < 0:
            raise ValueError("skin must be non-negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.system = system
        self.options = options or NonbondedOptions()
        self.skin = float(skin)
        self.timeout = float(timeout)
        self.n_workers = 1
        self.task_bounds: np.ndarray | None = None
        self.n_rebuilds = 0
        self.n_reuses = 0
        self._seq = 0
        self._pending: int | None = None
        self._ref_positions: np.ndarray | None = None
        self._ref_box: np.ndarray | None = None
        self._procs: list = []
        self._cmd_qs: list = []
        self._res_q = None
        self._pos_seg = None
        self._slab_seg = None
        self._positions_view: np.ndarray | None = None
        self._slabs_view: np.ndarray | None = None
        self._fallback_pairlist: VerletPairList | None = None
        self._closed = False

        requested = int(n_workers) if n_workers else (os.cpu_count() or 1)
        if requested > 1 and HAS_SHARED_MEMORY and system.n_atoms >= 2:
            try:
                self._start_pool(requested, cost_model, start_method)
            except Exception as exc:  # pragma: no cover - platform dependent
                self._teardown()
                warnings.warn(
                    f"parallel worker pool unavailable ({exc!r}); "
                    "falling back to the sequential non-bonded path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.n_workers = 1

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True when the worker pool is live (not fallback, not closed)."""
        return self.n_workers > 1 and not self._closed

    def _start_pool(self, requested, cost_model, start_method) -> None:
        system = self.system
        system.wrap()
        system.exclusions  # build once, before workers copy the system
        r_list = self.options.cutoff + self.skin
        grid = CellGrid.build(system.positions, system.box, r_list)
        self._dims = grid.dims.copy()
        self._init_box = np.asarray(system.box, dtype=np.float64).copy()
        ca, cb = grid.neighbor_cell_pair_arrays()
        tasks = list(zip(ca.tolist(), cb.tolist()))
        n_workers = min(requested, len(tasks))
        if n_workers <= 1:
            self.n_workers = 1
            return

        # static, measurement-seeded block assignment (paper §2.2): exact
        # in-cutoff pair counts per task, contiguous near-equal-cost runs
        from repro.core.decomposition import bin_atoms
        from repro.costmodel.model import estimate_block_costs

        _, _, buckets = bin_atoms(system.positions, system.box, self._dims)
        costs = estimate_block_costs(
            system.positions,
            system.box,
            self.options.cutoff,
            buckets,
            tasks,
            model=cost_model,
        )
        bounds = _contiguous_partition(costs, n_workers)

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        n = system.n_atoms
        self._pos_seg = _shm.SharedMemory(create=True, size=n * 3 * 8)
        self._slab_seg = _shm.SharedMemory(create=True, size=n_workers * n * 3 * 8)
        self._positions_view = np.ndarray(
            (n, 3), dtype=np.float64, buffer=self._pos_seg.buf
        )
        self._slabs_view = np.ndarray(
            (n_workers, n, 3), dtype=np.float64, buffer=self._slab_seg.buf
        )
        self._res_q = ctx.Queue()
        for w in range(n_workers):
            cmd_q = ctx.Queue()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    w,
                    n_workers,
                    cmd_q,
                    self._res_q,
                    self._pos_seg.name,
                    self._slab_seg.name,
                    system,
                    self.options,
                    tuple(int(d) for d in self._dims),
                    tasks[int(bounds[w]) : int(bounds[w + 1])],
                    r_list,
                ),
                daemon=True,
                name=f"repro-nb-worker-{w}",
            )
            proc.start()
            self._procs.append(proc)
            self._cmd_qs.append(cmd_q)
        self.n_workers = n_workers
        self.task_bounds = bounds
        atexit.register(self.close)

    # ------------------------------------------------------------------ #
    def _needs_rebuild(self) -> bool:
        pos = self.system.positions
        box = np.asarray(self.system.box, dtype=np.float64)
        if self._ref_positions is None:
            return True
        if not np.array_equal(box, self._ref_box):
            # the task grid is fixed at construction; a changed box is only
            # admissible while its patches still cover the list cutoff
            edge = box / self._dims
            r_list = self.options.cutoff + self.skin
            if np.any((self._dims > 1) & (edge < r_list)):
                raise RuntimeError(
                    f"box {box.tolist()} shrank below the task grid's "
                    f"coverage (edge {edge.tolist()} < cutoff+skin {r_list}); "
                    "recreate the parallel engine for the new box"
                )
            return True
        if len(pos) != len(self._ref_positions):
            raise RuntimeError(
                "atom count changed under a live worker pool; "
                "recreate the parallel engine"
            )
        from repro.util.pbc import minimum_image

        delta = minimum_image(pos - self._ref_positions, box)
        max_disp2 = float(np.einsum("ij,ij->i", delta, delta).max())
        return max_disp2 > (0.5 * self.skin) ** 2

    def dispatch(self) -> None:
        """Publish positions and start the workers on one evaluation.

        The caller must have wrapped positions into the primary cell (the
        engines do).  Exactly one :meth:`collect` must follow.
        """
        if not self.active:
            raise RuntimeError("worker pool is not active")
        if self._pending is not None:
            raise RuntimeError("dispatch() called with a collect() outstanding")
        rebuild = self._needs_rebuild()
        pos = self.system.positions
        self._positions_view[...] = pos  # pack once; every worker maps it
        if rebuild:
            self._ref_positions = pos.copy()
            self._ref_box = np.asarray(self.system.box, dtype=np.float64).copy()
            self.n_rebuilds += 1
        else:
            self.n_reuses += 1
        self._seq += 1
        cmd = (
            "step",
            self._seq,
            rebuild,
            tuple(float(x) for x in self.system.box),
        )
        for cmd_q in self._cmd_qs:
            cmd_q.put(cmd)
        self._pending = self._seq

    def collect(self) -> NonbondedResult:
        """Finish the outstanding evaluation: 1-4 pass, gather, reduce."""
        if self._pending is None:
            raise RuntimeError("collect() called without a dispatch()")
        n = self.system.n_atoms
        forces = np.zeros((n, 3), dtype=np.float64)
        # overlap with the workers: the scaled 1-4 pass runs on the driver
        e_lj14, e_el14, n14 = nonbonded_14(self.system, self.options, forces)

        results: dict[int, tuple[float, float, int]] = {}
        deadline = time.monotonic() + self.timeout
        while len(results) < self.n_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail(f"worker pool timed out after {self.timeout:.0f}s")
            try:
                msg = self._res_q.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    self._fail(f"worker(s) died: {', '.join(dead)}")
                continue
            if msg[0] == "error":
                self._fail(f"worker {msg[1]} raised:\n{msg[2]}")
            _, wid, seq, e_lj, e_el, n_pairs = msg
            if seq != self._pending:  # pragma: no cover - protocol guard
                self._fail(
                    f"worker {wid} answered step {seq}, "
                    f"expected {self._pending}"
                )
            results[wid] = (e_lj, e_el, n_pairs)
        self._pending = None

        # fixed reduction order: ascending worker rank == ascending task order
        forces += self._slabs_view.sum(axis=0)
        e_lj = 0.0
        e_el = 0.0
        n_pairs = 0
        for wid in range(self.n_workers):
            w_lj, w_el, w_np = results[wid]
            e_lj += w_lj
            e_el += w_el
            n_pairs += w_np
        return NonbondedResult(
            e_lj + e_lj14, e_el + e_el14, forces, n_pairs + n14
        )

    def compute(self) -> NonbondedResult:
        """One full non-bonded evaluation at the system's current positions."""
        if not self.active:
            if self._fallback_pairlist is None:
                self._fallback_pairlist = VerletPairList(
                    self.options.cutoff, skin=self.skin
                )
            from repro.md.nonbonded import compute_nonbonded

            return compute_nonbonded(
                self.system, self.options, pairlist=self._fallback_pairlist
            )
        self.dispatch()
        return self.collect()

    # ------------------------------------------------------------------ #
    def _fail(self, message: str):
        self.close()
        raise RuntimeError(f"parallel non-bonded evaluation failed: {message}")

    def _teardown(self) -> None:
        """Best-effort release of partially constructed pool state."""
        for cmd_q in self._cmd_qs:
            try:
                cmd_q.put(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in [*self._cmd_qs, self._res_q]:
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self._procs = []
        self._cmd_qs = []
        self._res_q = None
        # numpy views must drop their buffer exports before the mmap closes
        self._positions_view = None
        self._slabs_view = None
        for seg in (self._pos_seg, self._slab_seg):
            if seg is None:
                continue
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            except Exception:  # pragma: no cover
                pass
        self._pos_seg = None
        self._slab_seg = None

    def close(self) -> None:
        """Stop the workers and release shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass
        self._teardown()

    def __enter__(self) -> "ParallelNonbonded":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:
            pass


class ParallelEngine(SequentialEngine):
    """Wall-clock-parallel MD engine, API-compatible with the sequential one.

    Construction, stepping, reports, and the integrator contract are those
    of :class:`~repro.md.engine.SequentialEngine`; only the non-bonded
    evaluation differs — it runs on a persistent ``workers``-process pool
    with shared-memory positions and per-worker force slabs (see the module
    docstring for the decomposition and determinism guarantees).

    With ``workers <= 1`` (or when the platform cannot start the pool) the
    engine *is* the sequential engine: :meth:`compute_forces` falls through
    to the inherited implementation.  Use as a context manager — or call
    :meth:`close` — to stop the pool; it is also stopped at interpreter
    exit and by the finalizer, so stray engines never leak processes.
    """

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        integrator=None,
        workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
    ) -> None:
        """``workers <= 0`` means one worker per CPU; ``skin`` is the Verlet
        margin of the per-worker pair lists (and of the sequential fallback's
        list); ``timeout`` bounds every wait on the pool."""
        super().__init__(
            system, options, integrator, pairlist=VerletPairList(
                (options or NonbondedOptions()).cutoff, skin=skin
            ) if skin > 0 else None
        )
        self._nb = ParallelNonbonded(
            system,
            self.options,
            n_workers=workers,
            skin=skin,
            timeout=timeout,
            cost_model=cost_model,
        )

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Live worker-process count (1 = sequential fallback)."""
        return self._nb.n_workers if self._nb.active else 1

    @property
    def parallel(self) -> bool:
        """True when forces are evaluated on the worker pool."""
        return self._nb.active

    def compute_forces(self) -> np.ndarray:
        """Evaluate the force field; non-bonded terms on the worker pool."""
        if not self._nb.active:
            return super().compute_forces()
        self.system.wrap()
        self._nb.dispatch()
        # overlap: bonded terms run on the driver while the workers evaluate
        # the pair blocks
        bonded_e, forces = compute_bonded(self.system)
        nb = self._nb.collect()
        forces += nb.forces
        self._last_nonbonded = nb
        self._last_bonded = bonded_e
        return forces

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine stays usable —
        subsequent steps run on the sequential fallback path)."""
        self._nb.close()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
