"""Real shared-memory parallel MD: a patch-based multiprocessing engine.

Everything else in this repository *models* the paper's parallelism on a
simulated machine; this module actually runs it.  :class:`ParallelEngine`
is API-compatible with :class:`~repro.md.engine.SequentialEngine` but
evaluates the non-bonded force field — "eighty percent or more" of a step,
paper §4.2.1 — across a persistent pool of worker *processes*.

The implementation is layered (see DESIGN.md): :mod:`repro.pool` is the
generic supervised pool runtime (spawn/respawn, collision-free segments,
the epoch'd dispatch/collect protocol, the respawn → reassign → degrade
recovery ladder; MD-free by contract); :mod:`repro.md.tasks` holds the
MD force tasks behind the :class:`repro.pool.protocol.TaskProvider`
interface; :mod:`repro.md.lb_driver` makes the measurement-driven
placement decisions; this module is the orchestration — the cost-seeded
partition, WorkDB-fed load balancing (§2.2), the pack-once position
multicast (§4.2.3), the driver-overlapped remainder, and the
task-ordered assignment-independent reduction.

Determinism, in brief: task structure is fixed at construction from
deterministic priors only; both sides derive the task-ordered scratch
layout from the same published *reference* positions; the driver reduces
with a task-ordered segment-sum, so who computed a block never matters.
Recovery re-issues work against the same reference data and is therefore
bit-identical on the respawn and reassign rungs; only the sequential
fallback reduces in a different order and is equivalent to ~1e-9.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.backend import get_backend
from repro.md import lb_driver as _lb_driver
from repro.md.bonded import BondedEnergies, BONDED_KINDS, compute_bonded
from repro.md.engine import SequentialEngine
from repro.md.ewald import (
    EwaldOptions,
    EwaldResult,
    KspaceCacheView,
    compute_ewald,
)
from repro.md.nonbonded import (
    NonbondedOptions,
    NonbondedResult,
    nonbonded_14,
)
from repro.md.pairlist import VerletPairList
from repro.md.resilience import (
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
)
from repro.md.tasks import (
    KSHARD_MAX as _KSHARD_MAX,  # noqa: F401  (back-compat re-export)
    KSHARD_TARGET as _KSHARD_TARGET,  # noqa: F401
    MAX_SPLIT_PARTS as _MAX_SPLIT_PARTS,  # noqa: F401
    build_force_tasks,
    build_task_lists as _build_task_lists,  # noqa: F401
    build_xtask_entries as _build_xtask_entries,  # noqa: F401
    eval_xtask as _eval_xtask,  # noqa: F401
    kspace_shards as _kspace_shards,  # noqa: F401
    scratch_rows_bound as _scratch_rows_bound,  # noqa: F401
    task_kernel as _task_kernel,  # noqa: F401
    task_layout as _task_layout,  # noqa: F401
    xtask_rows as _xtask_rows,  # noqa: F401
)
from repro.pool import (
    HAS_SHARED_MEMORY,
    SupervisedPool,
    attach_segment as _attach_shared,  # noqa: F401
    contiguous_partition as _contiguous_partition,
    normalize_slowdown as _normalize_slowdown,
    slowdown_factor as _slowdown_factor,  # noqa: F401
)
from repro.pool.protocol import (
    STAT_TIME_NS as _STAT_TIME_NS,
    STAT_V0 as _STAT_E_LJ,
    STAT_V1 as _STAT_E_EL,
    STAT_V2 as _STAT_N_PAIRS,
)
from repro.util.cpus import available_cpu_count
from repro.util.pbc import minimum_image

__all__ = ["ParallelEngine", "ParallelNonbonded", "HAS_SHARED_MEMORY"]

# Back-compat note: the underscore aliases above re-export helpers that
# lived here before the pool/tasks split; external imports keep working.


class ParallelNonbonded:
    """Pool-backed non-bonded evaluator over one molecular system.

    Same quantity as :func:`repro.md.nonbonded.compute_nonbonded`, but the
    pair work is distributed across ``n_workers`` processes.  Split
    :meth:`dispatch`/:meth:`collect` calls let the caller overlap its own
    work; :meth:`compute` is the one-shot form.  Every evaluation feeds
    per-task timings into :attr:`workdb`, which drives the paper's
    balancers when ``rebalance_every > 0``.  Falls back to an in-process
    Verlet-pairlist evaluation when workers are unavailable;
    :attr:`active` tells which mode is live.
    """

    #: teardown latency bound, mirrored from the pool runtime
    _TEARDOWN_BUDGET_S = SupervisedPool._TEARDOWN_BUDGET_S

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        n_workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
        start_method: str | None = None,
        rebalance_every: int = 0,
        lb_strategy: str | None = None,
        slowdown=None,
        grainsize_ms: float = 0.0,
        fault_plan: WorkerFaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
        backend=None,
        bonded: bool = False,
        ewald: EwaldOptions | None = None,
        kspace: bool = True,
    ) -> None:
        """``n_workers <= 0`` means "one per CPU"; ``timeout`` (seconds)
        bounds every wait on the pool.  ``bonded=True`` distributes the
        bonded terms onto the pool as extra tasks; ``ewald`` makes this
        evaluator own the *full* electrostatics, with ``kspace=True``
        sharding the reciprocal sum over the pool.  ``rebalance_every=N``
        runs an LB decision every N evaluations; ``lb_strategy``
        overrides the greedy-then-refine schedule; ``slowdown`` injects
        per-worker slowdowns; ``grainsize_ms > 0`` splits expensive cell
        tasks into row stripes; ``fault_plan`` schedules deterministic
        fault injection (string form ``"kill=1@3,hang=0@2x1.5"``);
        ``recovery`` configures the supervision ladder; ``backend``
        names the kernel set for driver and workers alike.  All modes
        keep the task-ordered reduction, so trajectories stay
        bit-identical across repeats, remaps, worker counts and recovery.
        """
        from repro.balancer.strategies import STRATEGIES
        from repro.instrument import WorkDB

        if skin < 0:
            raise ValueError("skin must be non-negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if rebalance_every < 0:
            raise ValueError("rebalance_every must be >= 0")
        if grainsize_ms < 0:
            raise ValueError("grainsize_ms must be >= 0")
        if lb_strategy is not None:
            for part in lb_strategy.split("+"):
                if part not in STRATEGIES:
                    raise ValueError(
                        f"unknown LB strategy {part!r}; "
                        f"choose from {sorted(STRATEGIES)}"
                    )
        if isinstance(fault_plan, str):
            fault_plan = WorkerFaultPlan.parse(fault_plan)
        self.system = system
        self.options = options or NonbondedOptions()
        self.backend = get_backend(backend)
        self.skin = float(skin)
        self.timeout = float(timeout)
        self.rebalance_every = int(rebalance_every)
        self.lb_strategy = lb_strategy
        self.grainsize_ms = float(grainsize_ms)
        self._slow_windows = _normalize_slowdown(slowdown)
        if fault_plan is not None and fault_plan.slowdowns:
            for w in fault_plan.slowdowns:
                self._slow_windows.setdefault(int(w.proc), []).append(
                    (float(w.start), float(w.end), float(w.factor))
                )
        self.fault_plan = fault_plan
        self.policy = recovery or RecoveryPolicy()
        self.resilience = ResilienceStats()
        self.workdb = WorkDB()
        self.workdb.set_backend(self.backend.name)
        self.bonded_tasks = bool(bonded)
        self.ewald = ewald
        self.kspace_tasks = bool(kspace) and ewald is not None
        self._coulomb = ewald is None
        self.last_bonded: BondedEnergies | None = None
        self.last_ewald: EwaldResult | None = None
        self._pool: SupervisedPool | None = None
        self._provider = None
        self._n_nb = self._n_total = 0
        self._bonded_ids: dict[int, np.ndarray] = {}
        self._kspace_ids: np.ndarray = np.zeros(0, dtype=np.int64)
        self._kspace_stat_base: np.ndarray | None = None
        # per-engine driver-side builds/hits: isolated from other engines
        # (and their clear_kspace_cache) sharing the process-global LRU
        self._kspace_view = KspaceCacheView()
        self.driver_compute_s = self.pool_wall_s = 0.0
        self.n_evals = 0
        self.n_workers = 1
        self.task_bounds: np.ndarray | None = None
        self.n_rebuilds = self.n_reuses = self.n_rebalances = 0
        self.remap_steps: list[int] = []
        self.rebalance_log: list[dict] = []
        self._seq_fallback = 0
        self._pending_assignment = None
        self._ref_positions = self._ref_box = None
        self._force_rebuild = self._degraded_dispatch = False
        self._pending_box: tuple | None = None
        self._offsets = self._gather = None
        self._fallback_pairlist: VerletPairList | None = None
        self._closed = False

        # "one per CPU" must mean CPUs this process may *run on* — on
        # cgroup/affinity-restricted hosts os.cpu_count() oversubscribes
        requested = int(n_workers) if n_workers else available_cpu_count()
        if requested > 1 and HAS_SHARED_MEMORY and system.n_atoms >= 2:
            try:
                self._start_pool(requested, cost_model, start_method)
            except Exception as exc:  # pragma: no cover - platform dependent
                if self._pool is not None:
                    self._pool.close()
                    self._pool = None
                warnings.warn(
                    f"parallel worker pool unavailable ({exc!r}); "
                    "falling back to the sequential non-bonded path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.n_workers = 1
        if self.n_workers > 1 and self.fault_plan and self.fault_plan.active:
            if self.fault_plan.max_worker() >= self.n_workers:
                self.close()
                raise ValueError(
                    f"fault plan targets worker {self.fault_plan.max_worker()}"
                    f", but the pool has {self.n_workers} workers"
                )
            self._pool.arm_faults(self.fault_plan)

    @property
    def active(self) -> bool:
        """True when the worker pool is live (not fallback, not closed)."""
        return (
            not self._closed
            and self._pool is not None
            and self._pool.active
        )

    # --- supervised-pool state, exposed under the historical names ----- #
    @property
    def _pending(self) -> int | None:
        return self._pool.pending if self._pool is not None else None

    @property
    def _deadline(self) -> float | None:
        return self._pool.deadline if self._pool is not None else None

    @property
    def _procs(self) -> list:
        return self._pool.procs if self._pool is not None else []

    @property
    def _assignment(self) -> np.ndarray | None:
        return self._pool.assignment if self._pool is not None else None

    @property
    def _seq(self) -> int:
        return self._pool.seq if self._pool is not None else self._seq_fallback

    @_seq.setter
    def _seq(self, value: int) -> None:
        # checkpoint restore realigns the evaluation counter so
        # step-indexed events land on the same absolute steps
        if self._pool is not None:
            self._pool.seq = int(value)
        else:
            self._seq_fallback = int(value)

    def _start_pool(self, requested, cost_model, start_method) -> None:
        spec = build_force_tasks(
            self.system,
            self.options,
            skin=self.skin,
            grainsize_ms=self.grainsize_ms,
            cost_model=cost_model,
            bonded=self.bonded_tasks,
            ewald=self.ewald,
            kspace=self.kspace_tasks,
            backend=self.backend,
        )
        n_total = spec.n_total
        n_workers = min(requested, n_total)
        if n_workers <= 1:
            self.n_workers = 1
            return

        provider = spec.provider
        tasks = provider.tasks
        self._dims = spec.dims_array.copy()
        self._init_box = spec.box.copy()
        self._provider = provider
        self._tasks = tasks
        self._xtasks = provider.xtasks
        self._term_data = provider.term_data
        self._n_nb = len(tasks)
        self._n_total = n_total
        self._parents = spec.parents
        self._n_cells = spec.n_cells
        self._self_task_of = {
            a: t
            for t, (a, b, part, _np) in enumerate(tasks)
            if a == b and part == 0
        }

        # static, cost-model-seeded block assignment: contiguous
        # near-equal-cost runs over the deterministic prior
        bounds = _contiguous_partition(spec.all_costs, n_workers)
        assignment = np.repeat(
            np.arange(n_workers, dtype=np.int64), np.diff(bounds)
        )
        for t, (a, b, part, n_parts) in enumerate(tasks):
            patches = (a,) if a == b else (a, b)
            self.workdb.ensure_task(
                t,
                patches,
                prior=float(spec.sub_cost_arr[t]),
                owner=int(assignment[t]),
                parent=spec.sub_parents[t],
                part=part,
                n_parts=n_parts,
            )
        for x, xt in enumerate(provider.xtasks):
            t = self._n_nb + x
            if xt[0] == "kspace":
                self.workdb.ensure_task(
                    t, (), prior=float(spec.x_costs[x]),
                    owner=int(assignment[t]), kind="kspace",
                )
            else:
                _, kind, cell, intra = xt
                # inter-cell groups stay with their initial owner: the
                # balancer sees their load as background (fixed_owner_loads)
                self.workdb.ensure_task(
                    t, (cell,), prior=float(spec.x_costs[x]),
                    owner=int(assignment[t]), migratable=bool(intra),
                    kind="bonded",
                )
        self._bonded_ids = {
            k: np.asarray(v, dtype=np.int64)
            for k, v in spec.bonded_ids.items()
        }
        self._kspace_ids = np.asarray(spec.kspace_ids, dtype=np.int64)

        self._pool = SupervisedPool(
            provider,
            n_workers,
            assignment,
            timeout=self.timeout,
            policy=self.policy,
            slow_windows=self._slow_windows,
            start_method=start_method,
            reassign=self._reassign_orphans,
            on_recovery_note=self.workdb.note_recovery,
        )
        # the pool's accounting is the engine's accounting — one object,
        # surviving pool close so post-degrade reports still read it
        self.resilience = self._pool.resilience
        self.n_workers = n_workers
        self.task_bounds = bounds
        for w in range(n_workers):
            self.workdb.note_worker_backend(w, self.backend.name)

    def _needs_rebuild(self) -> bool:
        pos = self.system.positions
        box = np.asarray(self.system.box, dtype=np.float64)
        if self._ref_positions is None:
            return True
        if not np.array_equal(box, self._ref_box):
            # the task grid is fixed at construction; a changed box is only
            # admissible while its patches still cover the list cutoff
            edge = box / self._dims
            r_list = self.options.cutoff + self.skin
            if np.any((self._dims > 1) & (edge < r_list)):
                raise RuntimeError(
                    f"box {box.tolist()} shrank below the task grid's "
                    f"coverage (edge {edge.tolist()} < cutoff+skin {r_list}); "
                    "recreate the parallel engine for the new box"
                )
            return True
        if len(pos) != len(self._ref_positions):
            raise RuntimeError(
                "atom count changed under a live worker pool; "
                "recreate the parallel engine"
            )
        delta = minimum_image(pos - self._ref_positions, box)
        max_disp2 = float(np.einsum("ij,ij->i", delta, delta).max())
        return max_disp2 > (0.5 * self.skin) ** 2

    @property
    def n_live(self) -> int:
        """Workers still serving tasks (``n_workers`` minus permanent dead)."""
        return self._pool.n_live if self.active else 1

    def force_rebuild_next(self) -> None:
        """Force a pair-list rebuild at the next dispatch (checkpoint
        restore pins the rebuild schedule with this, keeping resumed
        trajectories bit-identical)."""
        self._force_rebuild = True

    def dispatch(self) -> None:
        """Publish positions and start the workers on one evaluation.

        The caller must have wrapped positions into the primary cell (the
        engines do).  Exactly one :meth:`collect` must follow.
        """
        if not self.active:
            raise RuntimeError("worker pool is not active")
        pool = self._pool
        if pool.pending is not None:
            raise RuntimeError("dispatch() called with a collect() outstanding")
        if not pool.begin_step():
            # pool degraded to sequential between steps; the paired
            # collect() serves the evaluation on the fallback path
            self._degraded_dispatch = True
            return
        rebuild = (
            self._needs_rebuild()
            or self._pending_assignment is not None
            or self._force_rebuild
        )
        self._force_rebuild = False
        pos = self.system.positions
        pool.view("pos")[...] = pos  # pack once; every worker maps it
        assignment_payload = None
        if rebuild:
            self._ref_positions = pos.copy()
            self._ref_box = np.asarray(self.system.box, dtype=np.float64).copy()
            pool.view("ref")[...] = pos  # workers bin/build from this
            self.n_rebuilds += 1
            if self._pending_assignment is not None:
                if not np.array_equal(self._pending_assignment, pool.assignment):
                    self.remap_steps.append(pool.seq + 1)
                assignment_payload = self._pending_assignment
                self._pending_assignment = None
            else:
                assignment_payload = pool.assignment
            # the driver's reduction layout must match the workers' blocks:
            # both bin the same published reference positions
            self._offsets, self._gather = self._provider.layout(
                pos, self.system.box
            )
        else:
            self.n_reuses += 1
        self._pending_box = tuple(float(x) for x in self.system.box)
        pool.dispatch(rebuild, self._pending_box, assignment_payload)

    def _fallback_compute(self) -> NonbondedResult:
        """One complete evaluation on the in-process path.

        Serves :meth:`collect`'s contract under the current configuration
        (bonded fold-in, full Ewald when enabled).  Equivalent to the pool
        result to ~1e-9 — the sequential reduction order differs, the
        documented caveat of the ladder's bottom rung.
        """
        from repro.md.nonbonded import compute_nonbonded

        if self._fallback_pairlist is None:
            self._fallback_pairlist = VerletPairList(
                self.options.cutoff, skin=self.skin
            )
        nb = compute_nonbonded(
            self.system, self.options,
            pairlist=self._fallback_pairlist, backend=self.backend,
            coulomb=self._coulomb,
        )
        forces = nb.forces
        e_el = nb.energy_elec
        if self.bonded_tasks:
            self.last_bonded, _ = compute_bonded(
                self.system, forces, backend=self.backend
            )
        if self.ewald is not None:
            ew = compute_ewald(
                self.system, self.ewald, backend=self.backend,
                kspace_stats=self._kspace_view.counters,
            )
            forces += ew.forces
            e_el += ew.energy
            self.last_ewald = ew
        return NonbondedResult(nb.energy_lj, e_el, forces, nb.n_pairs)

    def collect(self) -> NonbondedResult:
        """Finish the outstanding evaluation: driver remainder (1-4 pass,
        Ewald real-space — overlapped with the workers), gather, reduce.
        Worker death, hang, or error during the wait is *recovered*, not
        fatal — the result stays bit-identical; only when the whole
        ladder is exhausted does the evaluation complete on the
        sequential fallback."""
        pool = self._pool
        if pool is None or pool.pending is None:
            if self._degraded_dispatch:
                # dispatch() found the pool unhealable; honor the
                # dispatch/collect pairing by serving sequentially
                self._degraded_dispatch = False
                return self._fallback_compute()
            raise RuntimeError("collect() called without a dispatch()")
        n = self.system.n_atoms
        forces = np.zeros((n, 3), dtype=np.float64)
        # overlap with the workers: the scaled 1-4 pass (and the Ewald
        # remainder) runs on the driver
        t_d0 = time.monotonic()
        e_lj14, e_el14, n14 = nonbonded_14(
            self.system, self.options, forces, backend=self.backend,
            coulomb=self._coulomb,
        )
        ew_rem = None
        if self.ewald is not None:
            # recip=False with distributed shards: the workers are summing
            # the reciprocal component right now
            ew_rem = compute_ewald(
                self.system, self.ewald, backend=self.backend,
                recip=not self.kspace_tasks,
                kspace_stats=self._kspace_view.counters,
            )
        driver_s = time.monotonic() - t_d0

        if not pool.collect():
            # degraded to sequential mid-step: recompute the whole
            # evaluation on the fallback path (includes the driver terms)
            return self._fallback_compute()
        step_wall = pool.finish_step()

        # task-ordered segment-sum reduction: bitwise independent of the
        # task→worker assignment (see module docstring)
        t_r0 = time.monotonic()
        used = int(self._offsets[-1])
        scratch = pool.scratch[:used]
        for k in range(3):
            forces[:, k] += np.bincount(
                self._gather, weights=scratch[:, k], minlength=n
            )
        stats = pool.stats[: self._n_total]
        n_nb = self._n_nb
        e_lj = float(stats[:n_nb, _STAT_E_LJ].sum())
        e_el = float(stats[:n_nb, _STAT_E_EL].sum())
        n_pairs = int(round(float(stats[:n_nb, _STAT_N_PAIRS].sum())))
        if self.bonded_tasks:
            self.last_bonded = BondedEnergies(
                **{
                    name: float(
                        stats[self._bonded_ids[kind], _STAT_E_LJ].sum()
                    )
                    if kind in self._bonded_ids
                    else 0.0
                    for kind, name in enumerate(BONDED_KINDS)
                }
            )
        e_el_total = e_el + e_el14
        if ew_rem is not None:
            e_recip = (
                float(stats[self._kspace_ids, _STAT_E_EL].sum())
                if len(self._kspace_ids)
                else ew_rem.energy_recip
            )
            forces += ew_rem.forces
            self.last_ewald = EwaldResult(
                energy_real=ew_rem.energy_real,
                energy_recip=e_recip,
                energy_self=ew_rem.energy_self,
                energy_background=ew_rem.energy_background,
                energy_exclusion=ew_rem.energy_exclusion,
                forces=ew_rem.forces,
            )
            e_el_total += self.last_ewald.energy

        # feed the measurement database and run the LB schedule
        self.workdb.record_many(
            range(self._n_total),
            stats[:, _STAT_TIME_NS] * 1e-9,
            pool.assignment,
        )
        self.workdb.mark_step()
        if self.rebalance_every > 0 and self._seq % self.rebalance_every == 0:
            self._plan_rebalance()
        t_red = time.monotonic() - t_r0
        driver_s += t_red
        self.driver_compute_s += driver_s
        # the reduction runs after the await that ends step_wall; fold it
        # into the wall too so driver_share stays a true fraction (<= 1)
        self.pool_wall_s += step_wall + t_red
        self.n_evals += 1
        return NonbondedResult(
            e_lj + e_lj14, e_el_total, forces, n_pairs + n14
        )

    # -- recovery hook: permanent reassignment through the WorkDB → LB path -- #
    def _reassign_orphans(self, w, assignment, survivors) -> np.ndarray:
        """Pool callback on permanent death: place the dead worker's
        tasks on survivors (see :func:`repro.md.lb_driver.reassign_orphans`)."""
        return _lb_driver.reassign_orphans(
            self.workdb,
            self.resilience,
            self.n_workers,
            self._self_task_of,
            w,
            assignment,
            survivors,
        )

    def compute(self) -> NonbondedResult:
        """One full force-task evaluation at the system's current positions."""
        if not self.active:
            return self._fallback_compute()
        self.dispatch()
        return self.collect()

    # -- driver-share and k-space cache instrumentation -- #
    def note_driver_time(self, seconds: float) -> None:
        """Charge driver-side compute done *outside* collect() (e.g.
        non-distributed bonded terms) to the driver share, so
        :meth:`driver_report` compares like with like across modes."""
        self.driver_compute_s += float(seconds)

    def driver_report(self) -> dict:
        """Cumulative driver-vs-pool wall-time split: ``driver_s`` is
        driver *compute* time, ``wall_s`` the dispatch→collect wall time,
        ``driver_share`` their ratio — the serial fraction the
        distribution work is trying to kill."""
        wall = self.pool_wall_s
        return {
            "n_evals": self.n_evals,
            "driver_s": self.driver_compute_s,
            "wall_s": wall,
            "driver_share": self.driver_compute_s / wall if wall > 0 else 0.0,
        }

    def kspace_cache_stats(self) -> dict:
        """Driver (per-engine) and per-worker k-space cache counters;
        driver counts are this engine's own :class:`KspaceCacheView` (other
        engines sharing the process cannot perturb them), worker counters
        come from the shared stats rows each worker publishes after its
        step, minus any :meth:`clear_kspace_cache` baseline."""
        out: dict = {
            "driver": self._kspace_view.stats(),
            "workers": {},
            "worker_builds": 0,
            "worker_hits": 0,
        }
        if self.active and self.ewald is not None:
            rows = self._worker_stat_rows()
            if self._kspace_stat_base is not None:
                rows = np.maximum(rows - self._kspace_stat_base, 0.0)
            for w in range(self.n_workers):
                out["workers"][w] = {
                    "builds": int(rows[w, 0]),
                    "hits": int(rows[w, 1]),
                }
            out["worker_builds"] = int(rows[:, 0].sum())
            out["worker_hits"] = int(rows[:, 1].sum())
        return out

    def _worker_stat_rows(self) -> np.ndarray:
        """The per-worker (builds, hits) rows of the shared stats table."""
        return self._pool.stats[self._n_total : self._n_total + self.n_workers, :2]

    def clear_kspace_cache(self) -> None:
        """Reset the cache counters as seen by this engine: clear the
        driver's memoized tables (only this engine's counters reset — a
        concurrent engine's accounting is untouched) and snapshot the
        worker counters as a baseline (worker caches are per-process LRUs,
        rebuilt on demand and dropped on respawn)."""
        self._kspace_view.clear()
        if self.active:
            self._kspace_stat_base = self._worker_stat_rows().copy()

    # -- measurement-based load balancing -- #
    def build_lb_problem(self):
        """The strategy-facing problem at the current measurement state."""
        dead = (
            frozenset(self._pool._dead_workers)
            if self._pool is not None
            else frozenset()
        )
        return _lb_driver.build_driver_problem(
            self.workdb, self.n_workers, self._assignment, self._self_task_of, dead
        )

    def _plan_rebalance(self) -> None:
        """One LB decision: build the problem, run the schedule, stage the
        map.  The staged assignment installs at the next dispatch (which
        it forces to rebuild), so remap points are step-indexed even
        though the map *content* depends on noisy measurements — and the
        assignment-independent reduction keeps forces bit-identical
        regardless of that content."""
        schedule = self.lb_strategy or (
            "greedy" if self.n_rebalances == 0 else "refine"
        )
        new_assignment, record = _lb_driver.plan_rebalance(
            self.build_lb_problem(), self._assignment, self._seq, schedule
        )
        self.rebalance_log.append(record)
        self.n_rebalances += 1
        self._pending_assignment = new_assignment

    def worker_loads(self) -> np.ndarray:
        """Predicted per-worker load (seconds/step) under the current map."""
        if not self.active:
            return np.zeros(1)
        return self.workdb.owner_loads(self.n_workers)

    # -- grainsize diagnostics -- #
    @property
    def n_parent_tasks(self) -> int:
        """Half-shell cell tasks before grainsize splitting (0 = fallback)."""
        return len(self._parents) if self.active else 0

    @property
    def n_subtasks(self) -> int:
        """Schedulable sub-tasks after grainsize splitting (0 = fallback)."""
        return len(self._tasks) if self.active else 0

    def split_report(self) -> dict:
        """Summary of the construction-time grainsize decision."""
        parts = (
            [n for (_a, _b, part, n) in self._tasks if part == 0]
            if self.active
            else []
        )
        return {
            "grainsize_ms": self.grainsize_ms,
            "n_parent_tasks": len(self._parents) if self.active else 0,
            "n_subtasks": len(self._tasks) if self.active else 0,
            "n_split_parents": sum(1 for p in parts if p > 1),
            "max_parts": max(parts) if parts else 0,
        }

    def close(self) -> None:
        """Stop the workers and release shared memory (idempotent; safe
        under close-during-dispatch — an outstanding evaluation is
        dropped so a later :meth:`compute` routes to the fallback)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelNonbonded":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:
            pass


class ParallelEngine(SequentialEngine):
    """Wall-clock-parallel MD engine, API-compatible with the sequential one.

    Only the non-bonded evaluation differs — it runs on a persistent
    ``workers``-process pool (see the module docstring); with
    ``workers <= 1`` the engine *is* the sequential engine.  Use as a
    context manager — or call :meth:`close` — to stop the pool; it is
    also stopped at interpreter exit, so stray engines never leak.
    """

    def __init__(
        self,
        system,
        options: NonbondedOptions | None = None,
        integrator=None,
        workers: int = 0,
        skin: float = 1.5,
        timeout: float = 120.0,
        cost_model=None,
        rebalance_every: int = 0,
        lb_strategy: str | None = None,
        slowdown=None,
        grainsize_ms: float = 0.0,
        fault_plan: WorkerFaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        backend=None,
        ewald: EwaldOptions | None = None,
        distribute: bool = False,
    ) -> None:
        """``workers <= 0`` means one worker per CPU; the other knobs are
        those of :class:`ParallelNonbonded` / :class:`SequentialEngine`.
        ``distribute=True`` moves the bonded terms — and, with ``ewald``,
        the reciprocal-space sum — onto the pool as additional force
        tasks (off by default: existing configurations stay bitwise
        unchanged)."""
        super().__init__(
            system, options, integrator, pairlist=VerletPairList(
                (options or NonbondedOptions()).cutoff, skin=skin
            ) if skin > 0 else None,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            backend=backend,
            ewald=ewald,
        )
        self.distribute = bool(distribute)
        self._nb = ParallelNonbonded(
            system,
            self.options,
            n_workers=workers,
            skin=skin,
            timeout=timeout,
            cost_model=cost_model,
            rebalance_every=rebalance_every,
            lb_strategy=lb_strategy,
            slowdown=slowdown,
            grainsize_ms=grainsize_ms,
            fault_plan=fault_plan,
            recovery=recovery,
            backend=self.backend,
            bonded=self.distribute,
            ewald=ewald,
            kspace=self.distribute,
        )

    @property
    def workers(self) -> int:
        """Live worker-process count (1 = sequential fallback)."""
        return self._nb.n_live if self._nb.active else 1

    @property
    def resilience(self) -> "ResilienceStats":
        """Recovery accounting: detections, respawns, reassignments, mode."""
        return self._nb.resilience

    def _checkpoint_invalidate(self) -> None:
        super()._checkpoint_invalidate()
        if self._nb.active:
            self._nb.force_rebuild_next()

    @property
    def parallel(self) -> bool:
        """True when forces are evaluated on the worker pool."""
        return self._nb.active

    @property
    def workdb(self):
        """The engine's measurement database (:class:`repro.instrument.WorkDB`)."""
        return self._nb.workdb

    @property
    def remap_steps(self) -> list[int]:
        """Evaluation indices at which a changed task→worker map took effect."""
        return self._nb.remap_steps

    @property
    def rebalance_log(self) -> list[dict]:
        """One record per LB decision: strategy, moves, predicted loads."""
        return self._nb.rebalance_log

    def driver_report(self) -> dict:
        """See :meth:`ParallelNonbonded.driver_report`."""
        return self._nb.driver_report()

    def kspace_cache_stats(self) -> dict:
        """See :meth:`ParallelNonbonded.kspace_cache_stats`."""
        return self._nb.kspace_cache_stats()

    def clear_kspace_cache(self) -> None:
        """See :meth:`ParallelNonbonded.clear_kspace_cache`."""
        self._nb.clear_kspace_cache()

    def compute_forces(self) -> np.ndarray:
        """Evaluate the force field; force tasks run on the worker pool."""
        if not self._nb.active:
            return super().compute_forces()
        self.system.wrap()
        self._nb.dispatch()
        if self.distribute:
            # bonded terms (and the k-space sum, with Ewald) arrive inside
            # the pool's reduced result; collect() separates their energies
            nb = self._nb.collect()
            forces = nb.forces
            self._last_bonded = self._nb.last_bonded
        else:
            # overlap: bonded terms run on the driver while the workers
            # evaluate the pair blocks; charge the time to the driver share
            t0 = time.monotonic()
            bonded_e, forces = compute_bonded(self.system, backend=self.backend)
            self._nb.note_driver_time(time.monotonic() - t0)
            nb = self._nb.collect()
            forces += nb.forces
            self._last_bonded = bonded_e
        self._last_nonbonded = nb
        self._last_ewald = self._nb.last_ewald
        return forces

    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine stays usable —
        subsequent steps run on the sequential fallback path)."""
        self._nb.close()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
