"""The sequential MD engine.

:class:`SequentialEngine` is the single-processor reference implementation
the paper's speedups are measured against ("the impressive speedups were not
attained by using a 'bad sequential algorithm'", §4.3).  It evaluates the
full force field each step and advances with velocity Verlet.

It also serves as the ground truth the parallel decomposition is validated
against: tests compare forces/energies from the patch-wise parallel
evaluation to this engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.bonded import BondedEnergies, compute_bonded
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded
from repro.md.pairlist import VerletPairList
from repro.md.system import MolecularSystem

__all__ = ["SequentialEngine", "StepReport", "make_engine"]


@dataclass
class StepReport:
    """Energies after one step (all kcal/mol)."""

    step: int
    kinetic: float
    lj: float
    elec: float
    bonded: BondedEnergies
    n_pairs: int

    @property
    def potential(self) -> float:
        """Total potential energy (kcal/mol)."""
        return self.lj + self.elec + self.bonded.total

    @property
    def total(self) -> float:
        """Total energy: kinetic + potential (kcal/mol)."""
        return self.kinetic + self.potential


class SequentialEngine:
    """Full-force-field MD on one (real) processor.

    Parameters
    ----------
    system:
        The molecular system; advanced in place.
    options:
        Cutoff scheme; defaults to the paper's 12 Å cutoff.
    integrator:
        Any object with the :class:`~repro.md.integrator.VelocityVerlet`
        interface; defaults to velocity Verlet with ``dt = 1`` fs.
    """

    def __init__(
        self,
        system: MolecularSystem,
        options: NonbondedOptions | None = None,
        integrator: VelocityVerlet | None = None,
        pairlist="auto",
        checkpoint_every: int = 0,
        checkpoint_path=None,
        backend=None,
        ewald=None,
    ) -> None:
        """``pairlist`` may be a :class:`repro.md.pairlist.VerletPairList`
        (built for this engine's cutoff) to amortize pair enumeration.  The
        default ``"auto"`` constructs one with the standard skin — Verlet
        reuse is the production path; pass ``None`` to re-enumerate from the
        cell grid every step (reference behaviour for equivalence tests).

        ``checkpoint_every=N`` (with ``checkpoint_path``) writes an atomic
        run checkpoint every N completed steps; a run restarted with
        :func:`repro.runtime.checkpoint.restore_run_checkpoint` continues
        the original trajectory bit-identically (each checkpoint pins a
        pair-list rebuild at the following evaluation, in the writing run
        and the resumed run alike — see
        :func:`~repro.runtime.checkpoint.save_run_checkpoint`).

        ``backend`` selects the kernel backend (``"numpy"``/``"numba"``/
        ``"auto"``/instance); ``None`` uses the session default (see
        :mod:`repro.backend`).  Resolved once here so every evaluation of
        this engine runs the same kernels.

        ``ewald`` (an :class:`repro.md.ewald.EwaldOptions`) *replaces* the
        cutoff point-charge electrostatics with the full periodic Ewald sum:
        the pair kernel then computes LJ only, the scaled 1-4 electrostatic
        term is dropped (the Ewald sum includes those pairs at full
        strength), and the reported ``elec`` energy is the total over all
        Ewald components."""
        from repro.backend import get_backend
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        self.system = system
        self.options = options or NonbondedOptions()
        self.integrator = integrator or VelocityVerlet(dt=1.0)
        self.backend = get_backend(backend)
        if isinstance(pairlist, str):
            if pairlist != "auto":
                raise ValueError(f"unknown pairlist mode {pairlist!r}")
            pairlist = VerletPairList(self.options.cutoff)
        self.pairlist = pairlist
        self.ewald = ewald
        self._last_ewald = None
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_path = checkpoint_path
        self.n_checkpoints = 0
        self._step = 0
        self._forces: np.ndarray | None = None
        self._last_nonbonded = None
        self._last_bonded: BondedEnergies | None = None
        if ewald is not None:
            # per-engine accounting over the shared k-space LRU: another
            # engine in the same process clearing the cache must not zero
            # or negate this engine's builds/hits (the multi-job service
            # runs many engines side by side)
            from repro.md.ewald import KspaceCacheView

            self._kspace_view = KspaceCacheView()
        else:
            self._kspace_view = None

    # ------------------------------------------------------------------ #
    def compute_forces(self) -> np.ndarray:
        """Evaluate the full force field at the current positions."""
        self.system.wrap()
        nb = compute_nonbonded(
            self.system,
            self.options,
            pairlist=self.pairlist,
            backend=self.backend,
            coulomb=self.ewald is None,
        )
        bonded_e, forces = compute_bonded(self.system, backend=self.backend)
        forces += nb.forces
        if self.ewald is not None:
            from repro.md.ewald import compute_ewald

            ew = compute_ewald(
                self.system,
                self.ewald,
                backend=self.backend,
                kspace_stats=self._kspace_view.counters,
            )
            forces += ew.forces
            nb.energy_elec += ew.energy
            self._last_ewald = ew
        self._last_nonbonded = nb
        self._last_bonded = bonded_e
        return forces

    def report(self) -> StepReport:
        """Energy report for the most recent force evaluation."""
        if self._last_nonbonded is None or self._last_bonded is None:
            self.compute_forces()
        nb = self._last_nonbonded
        return StepReport(
            step=self._step,
            kinetic=self.system.kinetic_energy(),
            lj=nb.energy_lj,
            elec=nb.energy_elec,
            bonded=self._last_bonded,
            n_pairs=nb.n_pairs,
        )

    def step(self) -> StepReport:
        """Advance one timestep; returns the post-step energy report."""
        if self._forces is None:
            self._forces = self.compute_forces()
        sys = self.system

        def force_fn(positions: np.ndarray) -> np.ndarray:
            # Integrators may hand back a fresh array instead of mutating
            # the one we passed in; adopt it before evaluating, so the
            # forces actually correspond to the requested positions.
            if positions is not sys.positions:
                sys.positions[...] = positions
            return self.compute_forces()

        self._forces = self.integrator.step(
            sys.positions, sys.velocities, self._forces, sys.masses, force_fn
        )
        self._step += 1
        self._maybe_checkpoint()
        return self.report()

    # ------------------------------------------------------------------ #
    def _checkpoint_invalidate(self) -> None:
        """Pin a pair-list rebuild at the evaluation after a checkpoint.

        The writing run and any run resumed from the checkpoint both pass
        through this, so their rebuild schedules — and therefore their
        trajectories — stay bit-identical.  The parallel engine overrides
        this to force a rebuild on its worker pool as well.
        """
        if self.pairlist is not None:
            self.pairlist.invalidate()

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every <= 0:
            return
        if self._step % self.checkpoint_every != 0:
            return
        from repro.runtime.checkpoint import save_run_checkpoint

        self._checkpoint_invalidate()
        save_run_checkpoint(self.checkpoint_path, self)
        self.n_checkpoints += 1

    def kspace_cache_stats(self) -> dict:
        """Ewald k-space table cache counters (``builds``/``hits``) caused
        by *this* engine — robust to other engines in the same process
        clearing the shared cache.  Falls back to the process-wide view
        when the engine runs without Ewald.  The parallel engine overrides
        this to fold in per-worker counters from the shared stats segment."""
        if self._kspace_view is not None:
            return self._kspace_view.stats()
        from repro.md.ewald import kspace_cache_stats

        return kspace_cache_stats()

    def clear_kspace_cache(self) -> None:
        """Drop the memoized k-space tables and reset this engine's
        counters (other engines' accounting is unaffected)."""
        if self._kspace_view is not None:
            self._kspace_view.clear()
            return
        from repro.md.ewald import clear_kspace_cache

        clear_kspace_cache()

    def run(self, n_steps: int) -> list[StepReport]:
        """Advance ``n_steps`` and return the per-step reports."""
        return [self.step() for _ in range(n_steps)]

    @property
    def current_step(self) -> int:
        """Number of completed timesteps."""
        return self._step

    def close(self) -> None:
        """Release engine resources.  No-op here; the parallel engine
        overrides this to stop its worker pool, so callers can treat any
        engine uniformly (``with make_engine(...) as eng``)."""

    def __enter__(self) -> "SequentialEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_engine(
    system: MolecularSystem,
    options: NonbondedOptions | None = None,
    integrator: VelocityVerlet | None = None,
    workers: int = 1,
    backend=None,
    ewald=None,
    **parallel_kwargs,
) -> SequentialEngine:
    """Engine factory: sequential for ``workers == 1``, parallel otherwise.

    ``workers == 0`` requests one worker per CPU (respecting cgroup/affinity
    limits).  ``backend`` selects the kernel backend for either engine and
    ``ewald`` enables full periodic electrostatics on either engine.

    Keyword arguments both engines understand (``skin``,
    ``checkpoint_every``, ``checkpoint_path``) are honoured on the
    sequential path too — ``skin`` configures its Verlet pair list.
    Parallel-only keywords (``timeout``, ``cost_model``, ``fault_plan``,
    ``distribute``, ...) raise ``TypeError`` when ``workers == 1`` instead
    of being silently dropped, so a config typed for the pool cannot
    quietly change meaning on a one-worker run.  Both returned engines
    share the :class:`SequentialEngine` interface and work as context
    managers, so callers need no engine-specific cleanup logic.
    """
    if workers == 1:
        seq_kwargs = {}
        skin = parallel_kwargs.pop("skin", None)
        if skin is not None:
            opts = options or NonbondedOptions()
            seq_kwargs["pairlist"] = (
                VerletPairList(opts.cutoff, skin=skin) if skin > 0 else None
            )
        for key in ("pairlist", "checkpoint_every", "checkpoint_path"):
            if key in parallel_kwargs:
                seq_kwargs[key] = parallel_kwargs.pop(key)
        if parallel_kwargs:
            names = ", ".join(sorted(parallel_kwargs))
            raise TypeError(
                f"make_engine(workers=1) got parallel-only keyword "
                f"argument(s): {names}"
            )
        return SequentialEngine(
            system, options, integrator, backend=backend, ewald=ewald,
            **seq_kwargs
        )
    from repro.md.parallel import ParallelEngine

    return ParallelEngine(
        system, options, integrator, workers=workers, backend=backend,
        ewald=ewald, **parallel_kwargs
    )
