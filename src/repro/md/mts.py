"""Multiple timestepping (impulse/r-RESPA style).

The paper notes that grid-based long-range methods are typically "combined
with multiple timestepping methods" (§1); NAMD itself integrates bonded
forces every step and non-bonded forces on a longer cycle.  This module
implements the impulse (Verlet-I/r-RESPA) scheme for the cutoff engine:

* *fast* forces (bonded terms) are evaluated every inner step ``dt``,
* *slow* forces (non-bonded) are evaluated every ``n_inner`` steps and
  applied as impulses of weight ``n_inner * dt``.

Symplectic and time-reversible; energy conservation degrades gracefully as
``n_inner`` grows (resonance limits apply, as in real MD practice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.bonded import compute_bonded
from repro.md.constants import ACC_CONVERSION
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded
from repro.md.system import MolecularSystem

__all__ = ["MTSEngine", "MTSReport"]


@dataclass
class MTSReport:
    """Energies after one outer MTS cycle."""

    outer_step: int
    kinetic: float
    lj: float
    elec: float
    bonded: float

    @property
    def total(self) -> float:
        """Total energy of the outer step (kcal/mol)."""
        return self.kinetic + self.lj + self.elec + self.bonded


class MTSEngine:
    """Impulse multiple-timestep integrator over a molecular system.

    Parameters
    ----------
    system:
        Advanced in place.
    dt:
        Inner (bonded) timestep in fs.
    n_inner:
        Inner steps per non-bonded evaluation (1 = plain velocity Verlet
        with split force evaluation).
    options:
        Non-bonded cutoff scheme.
    nonbonded:
        Optional evaluator for the slow forces — any object with the
        :meth:`repro.md.parallel.ParallelNonbonded.compute` interface
        (returns a :class:`~repro.md.nonbonded.NonbondedResult` at the
        system's current positions).  Defaults to the in-process
        :func:`~repro.md.nonbonded.compute_nonbonded`; pass a
        ``ParallelNonbonded`` to evaluate the slow impulse on a worker
        pool.  The engine adopts it: :meth:`close` shuts it down.
    backend:
        Kernel backend spec for the in-process slow-force path (see
        :mod:`repro.backend`); ignored when an external ``nonbonded``
        evaluator is supplied (that evaluator carries its own backend).
    ewald:
        Optional :class:`repro.md.ewald.EwaldOptions`; replaces the cutoff
        point-charge electrostatics of the in-process slow path with the
        full periodic Ewald sum (as the slow component — standard r-RESPA
        practice).  Ignored when an external ``nonbonded`` evaluator is
        supplied: construct that evaluator with its own ``ewald``.
    """

    def __init__(
        self,
        system: MolecularSystem,
        dt: float = 1.0,
        n_inner: int = 2,
        options: NonbondedOptions | None = None,
        nonbonded=None,
        backend=None,
        ewald=None,
    ) -> None:
        from repro.backend import get_backend

        if n_inner < 1:
            raise ValueError("n_inner must be >= 1")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.system = system
        self.dt = float(dt)
        self.n_inner = int(n_inner)
        self.options = options or NonbondedOptions()
        self.nonbonded = nonbonded
        self.backend = get_backend(backend)
        self.ewald = ewald if nonbonded is None else None
        self._outer = 0
        self._slow_forces: np.ndarray | None = None
        self._last: MTSReport | None = None

    # ------------------------------------------------------------------ #
    def _fast_forces(self) -> tuple[float, np.ndarray]:
        energies, forces = compute_bonded(self.system)
        return energies.total, forces

    def _slow(self) -> tuple[float, float, np.ndarray]:
        self.system.wrap()
        if self.nonbonded is not None:
            res = self.nonbonded.compute()
            return res.energy_lj, res.energy_elec, res.forces
        res = compute_nonbonded(
            self.system,
            self.options,
            backend=self.backend,
            coulomb=self.ewald is None,
        )
        if self.ewald is not None:
            from repro.md.ewald import compute_ewald

            ew = compute_ewald(self.system, self.ewald, backend=self.backend)
            return res.energy_lj, ew.energy, res.forces + ew.forces
        return res.energy_lj, res.energy_elec, res.forces

    def _kick(self, forces: np.ndarray, dt: float) -> None:
        self.system.velocities += (
            (0.5 * dt * ACC_CONVERSION) * forces / self.system.masses[:, None]
        )

    def step(self) -> MTSReport:
        """One outer cycle: slow impulse, ``n_inner`` fast Verlet steps,
        slow impulse."""
        sys = self.system
        if self._slow_forces is None:
            _, _, self._slow_forces = self._slow()
        outer_dt = self.n_inner * self.dt

        # opening slow impulse (half of the outer kick)
        self._kick(self._slow_forces, outer_dt)

        e_fast = 0.0
        _, fast = self._fast_forces()
        for _ in range(self.n_inner):
            self._kick(fast, self.dt)
            sys.positions += self.dt * sys.velocities
            e_fast, fast = self._fast_forces()
            self._kick(fast, self.dt)

        # closing slow impulse with forces at the new positions
        e_lj, e_el, self._slow_forces = self._slow()
        self._kick(self._slow_forces, outer_dt)

        self._outer += 1
        self._last = MTSReport(
            outer_step=self._outer,
            kinetic=sys.kinetic_energy(),
            lj=e_lj,
            elec=e_el,
            bonded=e_fast,
        )
        return self._last

    def run(self, n_outer: int) -> list[MTSReport]:
        """Advance ``n_outer`` outer cycles; returns per-cycle reports."""
        return [self.step() for _ in range(n_outer)]

    @property
    def nonbonded_evaluations_saved(self) -> float:
        """Fraction of non-bonded evaluations avoided vs single stepping."""
        return 1.0 - 1.0 / self.n_inner

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the adopted non-bonded evaluator (worker pool), if any."""
        if self.nonbonded is not None and hasattr(self.nonbonded, "close"):
            self.nonbonded.close()

    def __enter__(self) -> "MTSEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
