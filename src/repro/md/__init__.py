"""Sequential molecular-dynamics engine (the paper's "good sequential algorithm").

This package is a real, vectorized cutoff MD engine: CHARMM-style force field
parameters, bonded terms that follow molecular topology (bonds, angles,
dihedrals, impropers), non-bonded Lennard-Jones + Coulomb interactions with a
switching function, 1-2/1-3 exclusions and modified 1-4 pairs, periodic cell
lists, and a velocity-Verlet integrator.

The SC 2000 paper parallelizes exactly this computation; the parallel layers
(:mod:`repro.core`, :mod:`repro.runtime`) reuse this package's pair-counting
and kernels to derive per-object loads, and the examples run it end-to-end.
"""

from repro.md.constants import (
    ACC_CONVERSION,
    COULOMB_CONSTANT,
    KCAL_PER_AMU_A2_FS2,
    BOLTZMANN_KCAL,
)
from repro.md.forcefield import (
    AtomType,
    BondType,
    AngleType,
    DihedralType,
    ImproperType,
    ForceField,
    default_forcefield,
)
from repro.md.topology import Topology, Exclusions
from repro.md.system import MolecularSystem
from repro.md.engine import SequentialEngine, StepReport, make_engine
from repro.md.parallel import ParallelEngine, ParallelNonbonded

__all__ = [
    "ACC_CONVERSION",
    "COULOMB_CONSTANT",
    "KCAL_PER_AMU_A2_FS2",
    "BOLTZMANN_KCAL",
    "AtomType",
    "BondType",
    "AngleType",
    "DihedralType",
    "ImproperType",
    "ForceField",
    "default_forcefield",
    "Topology",
    "Exclusions",
    "MolecularSystem",
    "SequentialEngine",
    "StepReport",
    "make_engine",
    "ParallelEngine",
    "ParallelNonbonded",
]
