"""Verlet neighbor lists with a skin margin.

NAMD (and every production MD code) avoids re-enumerating candidate pairs
each step: pairs within ``cutoff + skin`` are listed once and reused until
an atom has moved more than ``skin/2``, which bounds the error exactly (two
atoms can close the gap at most by twice the max displacement).  The paper's
cost model reflects this: candidate checks are far cheaper than full pair
enumeration.

:class:`VerletPairList` wraps the cell-grid enumeration of
:mod:`repro.md.cells` with that reuse logic; the sequential engine accepts
one via :class:`~repro.md.engine.SequentialEngine` composition in the
``pairlist_demo`` example, and tests assert exact equivalence with the
direct kernel.
"""

from __future__ import annotations

import numpy as np

from repro.md.cells import candidate_pairs
from repro.util.pbc import minimum_image

__all__ = ["VerletPairList"]


class VerletPairList:
    """Reusable candidate-pair list for one system.

    Parameters
    ----------
    cutoff:
        Interaction cutoff (Å).
    skin:
        Extra margin (Å); larger skin = fewer rebuilds but more candidate
        pairs per evaluation.
    """

    def __init__(self, cutoff: float, skin: float = 1.5) -> None:
        if cutoff <= 0 or skin < 0:
            raise ValueError("cutoff must be positive and skin non-negative")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self._pairs: tuple[np.ndarray, np.ndarray] | None = None
        self._ref_positions: np.ndarray | None = None
        self._ref_box: np.ndarray | None = None
        self.n_builds = 0
        self.n_reuses = 0

    # ------------------------------------------------------------------ #
    def needs_rebuild(self, positions: np.ndarray, box: np.ndarray) -> bool:
        """True when the box changed or any atom moved more than ``skin/2``.

        The box comparison matters for builder-resized systems: a cached
        list enumerated in the old box is geometrically meaningless in the
        new one, even if no atom "moved" in fractional terms.
        """
        if self._pairs is None or self._ref_positions is None:
            return True
        if self._ref_box is None or not np.array_equal(
            np.asarray(box, dtype=np.float64), self._ref_box
        ):
            return True
        if len(positions) != len(self._ref_positions):
            return True
        delta = minimum_image(positions - self._ref_positions, box)
        max_disp2 = float(np.einsum("ij,ij->i", delta, delta).max())
        return max_disp2 > (0.5 * self.skin) ** 2

    def pairs(
        self, positions: np.ndarray, box: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate pairs guaranteed to include every pair within cutoff.

        Rebuilds from the cell grid when stale, otherwise returns the cached
        list (callers still distance-filter, exactly as with fresh
        enumeration).  The returned arrays are read-only views of the cache;
        a caller that needs to mutate them must copy.
        """
        if self.needs_rebuild(positions, box):
            i_idx, j_idx = candidate_pairs(positions, box, self.cutoff + self.skin)
            i_idx.flags.writeable = False
            j_idx.flags.writeable = False
            self._pairs = (i_idx, j_idx)
            self._ref_positions = positions.copy()
            self._ref_box = np.asarray(box, dtype=np.float64).copy()
            self.n_builds += 1
        else:
            self.n_reuses += 1
        return self._pairs

    def invalidate(self) -> None:
        """Drop the cached list (e.g. after atom insertion/deletion)."""
        self._pairs = None
        self._ref_positions = None
        self._ref_box = None

    @property
    def reuse_fraction(self) -> float:
        """Fraction of queries served from the cache."""
        total = self.n_builds + self.n_reuses
        return self.n_reuses / total if total else 0.0
