"""Measurement-driven placement decisions for the parallel engine driver.

The driver makes two kinds of placement decision from the WorkDB's
per-task cost measurements, both of which only change *where* tasks run
(the assignment-independent reduction keeps forces bit-identical):

* **periodic rebalance** — on the engine's cadence, build an LBProblem
  at the current measurement state, run the configured schedule, and
  stage the new map for the next rebuilding dispatch;
* **death reassignment** — the pool's recovery ladder calls back here
  when a worker dies permanently; the dead worker's orphans are placed
  on survivors through the same LB machinery, with a least-loaded sweep
  for anything the strategy leaves behind.

Extracted from ``repro.md.parallel`` so the orchestration class stays a
thin conductor over the pool runtime, the task providers, and this
placement logic.
"""

from __future__ import annotations

import numpy as np


def build_driver_problem(workdb, n_workers, assignment, self_task_of, dead_procs):
    """The strategy-facing LBProblem at the current measurement state."""
    from repro.instrument import build_lb_problem

    patch_home = {c: int(assignment[t]) for c, t in self_task_of.items()}
    return build_lb_problem(
        workdb,
        n_workers,
        patch_home,
        # non-migratable bonded groups never move during a periodic
        # rebalance (the adapter's default task set filters them out),
        # but their measured cost is real — feed it in as per-worker
        # background so the balancer packs movable work around it
        background=workdb.fixed_owner_loads(n_workers),
        dead_procs=dead_procs,
    )


def plan_rebalance(problem, assignment, step, schedule):
    """One LB decision: run ``schedule`` on ``problem`` and return the
    new assignment plus a log record of the before/after placement."""
    from repro.balancer.problem import placement_stats
    from repro.balancer.strategies import solve

    placement = solve(problem, schedule)
    new_assignment = assignment.copy()
    for tid, proc in placement.items():
        new_assignment[tid] = proc
    current = {c.index: c.proc for c in problem.computes}
    before = placement_stats(problem, current)
    after = placement_stats(problem, placement)
    record = {
        "step": int(step),
        "strategy": schedule,
        "moved": int(np.count_nonzero(new_assignment != assignment)),
        "max_load_before": before["max_load"],
        "max_load_after": after["max_load"],
        "imbalance_ratio_before": before["imbalance_ratio"],
        "imbalance_ratio_after": after["imbalance_ratio"],
    }
    return new_assignment, record


def reassign_orphans(
    workdb, resilience, n_workers, self_task_of, w, assignment, survivors
):
    """Place dead worker ``w``'s tasks on survivors via the LB machinery.

    An LBProblem over the orphans with ``dead_procs`` marked,
    greedy-solved; a least-loaded sweep places whatever the LB path did
    not (every orphan MUST leave the dead slot).  Fixed-owner bonded
    groups are reassigned here too — their owner pin survives remaps,
    not death.
    """
    orphans = np.flatnonzero(assignment == w)
    new_assignment = assignment.copy()
    if len(orphans):
        placed = None
        try:
            from repro.balancer.strategies import solve
            from repro.instrument import build_lb_problem

            patch_home = {
                c: int(assignment[t]) for c, t in self_task_of.items()
            }
            background = np.zeros(n_workers)
            loads = workdb.owner_loads(n_workers)
            for s in survivors:
                background[s] = loads[s]
            dead = frozenset(set(range(n_workers)) - set(survivors))
            problem = build_lb_problem(
                workdb,
                n_workers,
                patch_home,
                background=background,
                dead_procs=dead,
                task_ids=orphans.tolist(),
            )
            placed = solve(problem, "greedy")
        except Exception:  # pragma: no cover - LB path must not be fatal
            placed = None
        if placed:
            for tid, proc in placed.items():
                new_assignment[tid] = proc
        leftovers = [
            tid for tid in orphans.tolist() if new_assignment[tid] == w
        ]
        if leftovers:
            loads = workdb.owner_loads(n_workers)
            load_of = {s: float(loads[s]) for s in survivors}
            for tid in leftovers:
                tgt = min(survivors, key=lambda s: (load_of[s], s))
                new_assignment[tid] = tgt
                load_of[tgt] += max(float(workdb.load(tid)), 1e-12)
        for tid in orphans.tolist():
            rec = workdb.tasks.get(tid)
            kind = rec.kind if rec is not None else "cell"
            resilience.reassigned_by_kind[kind] = (
                resilience.reassigned_by_kind.get(kind, 0) + 1
            )
            if rec is not None and not rec.migratable:
                # the group is pinned to its (new) owner from here on
                rec.owner = int(new_assignment[tid])
    return new_assignment
