"""The :class:`MolecularSystem` container.

A system bundles per-atom arrays (positions, velocities, masses, charges,
atom-type indices), the covalent :class:`~repro.md.topology.Topology`, the
force field, and the periodic box.  It is the single input object consumed by
both the sequential engine (:mod:`repro.md.engine`) and the parallel
decomposition (:mod:`repro.core.decomposition`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.constants import BOLTZMANN_KCAL, KCAL_PER_AMU_A2_FS2
from repro.md.forcefield import ForceField
from repro.md.topology import Exclusions, Topology
from repro.util.pbc import wrap_positions
from repro.util.rng import make_rng

__all__ = ["MolecularSystem"]


@dataclass
class MolecularSystem:
    """A complete simulatable molecular system.

    Attributes
    ----------
    positions:
        ``(n, 3)`` float64 coordinates in Å.
    velocities:
        ``(n, 3)`` float64 velocities in Å/fs.
    charges:
        ``(n,)`` partial charges in units of e.
    type_indices:
        ``(n,)`` integer indices into ``forcefield.atom_types``.
    topology:
        Covalent structure; see :class:`repro.md.topology.Topology`.
    forcefield:
        Parameter registry the type indices refer to.
    box:
        Orthorhombic box lengths ``(Lx, Ly, Lz)`` in Å.
    segment_labels:
        Optional per-atom component label (``"WAT"``, ``"PROT"``, ``"LIP"``)
        used by analysis and the density-aware builders.
    """

    positions: np.ndarray
    velocities: np.ndarray
    charges: np.ndarray
    type_indices: np.ndarray
    topology: Topology
    forcefield: ForceField
    box: np.ndarray
    segment_labels: list[str] = field(default_factory=list)
    name: str = "system"
    _exclusions: Exclusions | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.charges = np.ascontiguousarray(self.charges, dtype=np.float64)
        self.type_indices = np.ascontiguousarray(self.type_indices, dtype=np.int64)
        self.box = np.asarray(self.box, dtype=np.float64)
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (n, 3); got {self.positions.shape}")
        for label, arr, shape in (
            ("velocities", self.velocities, (n, 3)),
            ("charges", self.charges, (n,)),
            ("type_indices", self.type_indices, (n,)),
        ):
            if arr.shape != shape:
                raise ValueError(f"{label} must have shape {shape}; got {arr.shape}")
        if self.box.shape != (3,) or np.any(self.box <= 0):
            raise ValueError(f"box must be 3 positive lengths; got {self.box}")
        if self.type_indices.size and (
            self.type_indices.min() < 0
            or self.type_indices.max() >= self.forcefield.n_atom_types
        ):
            raise ValueError("type_indices reference unknown atom types")
        if self.segment_labels and len(self.segment_labels) != n:
            raise ValueError("segment_labels length must match atom count")
        self.topology.validate(n)

    # ------------------------------------------------------------------ #
    @property
    def n_atoms(self) -> int:
        """Number of atoms in the system."""
        return len(self.positions)

    @property
    def masses(self) -> np.ndarray:
        """Per-atom masses (amu), gathered from the force field."""
        mass_table, _, _ = self.forcefield.lj_tables()
        return mass_table[self.type_indices]

    @property
    def exclusions(self) -> Exclusions:
        """Exclusion data, built lazily from the topology and cached."""
        if self._exclusions is None:
            self._exclusions = self.topology.build_exclusions(self.n_atoms)
        return self._exclusions

    def invalidate_exclusions(self) -> None:
        """Drop the cached exclusion data (call after editing the topology)."""
        self._exclusions = None

    # ------------------------------------------------------------------ #
    def wrap(self) -> None:
        """Fold all positions into the primary periodic cell, in place."""
        self.positions = wrap_positions(self.positions, self.box)

    def kinetic_energy(self) -> float:
        """Total kinetic energy in kcal/mol."""
        v2 = np.einsum("ij,ij->i", self.velocities, self.velocities)
        return float(0.5 * KCAL_PER_AMU_A2_FS2 * np.dot(self.masses, v2))

    def temperature(self) -> float:
        """Instantaneous temperature in K (3N degrees of freedom)."""
        if self.n_atoms == 0:
            return 0.0
        dof = 3 * self.n_atoms
        return 2.0 * self.kinetic_energy() / (dof * BOLTZMANN_KCAL)

    def assign_velocities(self, temperature: float, seed: int | None = 0) -> None:
        """Draw Maxwell-Boltzmann velocities for ``temperature`` Kelvin.

        After sampling, the centre-of-mass momentum is removed so the system
        does not drift, and velocities are rescaled to hit ``temperature``
        exactly.
        """
        rng = make_rng(seed)
        masses = self.masses
        # sigma^2 = kB T / m in engine units: v in Å/fs
        sigma = np.sqrt(BOLTZMANN_KCAL * temperature / (masses * KCAL_PER_AMU_A2_FS2))
        self.velocities = rng.normal(size=(self.n_atoms, 3)) * sigma[:, None]
        # remove centre-of-mass drift
        total_mass = masses.sum()
        com_velocity = (masses[:, None] * self.velocities).sum(axis=0) / total_mass
        self.velocities -= com_velocity
        if temperature > 0 and self.n_atoms > 1:
            current = self.temperature()
            if current > 0:
                self.velocities *= np.sqrt(temperature / current)

    # ------------------------------------------------------------------ #
    def copy(self) -> "MolecularSystem":
        """Deep copy of arrays; topology and force field are shared."""
        return MolecularSystem(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            charges=self.charges.copy(),
            type_indices=self.type_indices.copy(),
            topology=self.topology,
            forcefield=self.forcefield,
            box=self.box.copy(),
            segment_labels=list(self.segment_labels),
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MolecularSystem(name={self.name!r}, n_atoms={self.n_atoms}, "
            f"box={self.box.tolist()}, {self.topology!r})"
        )
