"""Time integration: velocity Verlet (and a Langevin variant).

The paper's NAMD uses velocity-Verlet-family integrators designed by Skeel
and coworkers; integration is the per-patch work that the optimized multicast
of §4.2.3 shortens.  Here integration is a pure array transformation so both
the sequential engine and the per-patch parallel objects can call it.
"""

from __future__ import annotations

import numpy as np

from repro.md.constants import ACC_CONVERSION, BOLTZMANN_KCAL, KCAL_PER_AMU_A2_FS2
from repro.util.rng import make_rng

__all__ = ["VelocityVerlet", "LangevinIntegrator"]


class VelocityVerlet:
    """Symplectic velocity-Verlet integrator.

    The half-kick / drift / half-kick form::

        v += (dt/2) a(t)
        x += dt v
        (recompute forces)
        v += (dt/2) a(t+dt)

    exposed as two half steps so a message-driven caller can interleave the
    force computation between them.
    """

    def __init__(self, dt: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive (femtoseconds)")
        self.dt = float(dt)

    def half_kick(
        self, velocities: np.ndarray, forces: np.ndarray, masses: np.ndarray
    ) -> None:
        """``v += (dt/2) F/m`` in place (units handled via ACC_CONVERSION)."""
        velocities += (0.5 * self.dt * ACC_CONVERSION) * forces / masses[:, None]

    def drift(self, positions: np.ndarray, velocities: np.ndarray) -> None:
        """``x += dt v`` in place."""
        positions += self.dt * velocities

    def step(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces_old: np.ndarray,
        masses: np.ndarray,
        force_fn,
    ):
        """One full step; ``force_fn(positions)`` returns the new forces.

        Returns the forces at the end of the step so the caller can reuse
        them for the next step's first half kick.
        """
        self.half_kick(velocities, forces_old, masses)
        self.drift(positions, velocities)
        forces_new = force_fn(positions)
        self.half_kick(velocities, forces_new, masses)
        return forces_new


class LangevinIntegrator(VelocityVerlet):
    """Velocity Verlet with Langevin friction and noise (BBK-style).

    A light-touch thermostat used by the examples to keep synthetic systems
    near their target temperature; ``gamma`` is the friction in 1/fs.
    """

    def __init__(
        self,
        dt: float = 1.0,
        temperature: float = 300.0,
        gamma: float = 0.005,
        seed: int | None = 0,
    ) -> None:
        super().__init__(dt)
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        self.temperature = float(temperature)
        self.gamma = float(gamma)
        self.rng = make_rng(seed)

    def apply_thermostat(self, velocities: np.ndarray, masses: np.ndarray) -> None:
        """One dissipation + fluctuation substep (Euler-Maruyama form)."""
        if self.gamma == 0.0:
            return
        c1 = np.exp(-self.gamma * self.dt)
        # variance of the stationary Maxwell-Boltzmann distribution per axis
        sigma2 = BOLTZMANN_KCAL * self.temperature / (masses * KCAL_PER_AMU_A2_FS2)
        noise = self.rng.normal(size=velocities.shape)
        velocities *= c1
        velocities += np.sqrt(sigma2 * (1.0 - c1 * c1))[:, None] * noise

    def step(self, positions, velocities, forces_old, masses, force_fn):
        """One full velocity-Verlet step with a fresh force evaluation."""
        forces_new = super().step(positions, velocities, forces_old, masses, force_fn)
        self.apply_thermostat(velocities, masses)
        return forces_new
