"""MD force tasks for the supervised pool runtime.

This module is the *what* of the real parallel engine: it describes the
force-field work as a family of schedulable tasks behind the
:class:`repro.pool.protocol.TaskProvider` interface, leaving the *how*
(process supervision, shared memory, recovery) to the generic
:mod:`repro.pool` runtime.  Three task kinds share one global task order:

* **cell tasks** ``(a, b, part, n_parts)`` — the half-shell cell self
  blocks and 13-per-cell neighbour pair blocks of the paper's spatial
  decomposition, optionally split into row-stripe sub-tasks by grainsize
  control (§4.2.1–2); evaluated with per-task prefiltered Verlet lists
  and pre-combined Lorentz-Berthelot parameters;
* **bonded groups** ``("bonded", kind, cell, intra)`` — the bonded terms
  of one kind whose home cell (under the reference binning) is ``cell``,
  split into intra/inter groups that partition the term list exactly;
* **k-space shards** ``("kspace", lo, hi)`` — ranges of the Ewald
  reciprocal sum's k-vector table.

The construction (:func:`build_force_tasks`) is deterministic: task
structure derives from topology, grid, and the cost-model *prior* only —
never from the worker count or from noisy measurements — because the
scratch layout (and therefore the floating-point reduction order)
follows the task list.  That is what keeps trajectories bit-identical
across worker counts, remaps, and recovery.

Workers always bin and build their pair lists from the *reference*
positions segment (label ``"ref"``, written by the driver at each
rebuild), never from the live ``"pos"`` segment — so a respawned or
reassigned worker reconstructs exactly the lists every other worker
derived at the last rebuild.  The kernels, of course, evaluate at the
live positions.

Stats-column semantics for these tasks: ``STAT_V0`` carries the LJ
energy (bonded group energies land here too), ``STAT_V1`` the
electrostatic energy (k-space shard energies land here), ``STAT_V2`` the
pair/term/k-vector count; the driver separates them by task-id range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import get_backend
from repro.md.bonded import BONDED_KINDS, bonded_term_arrays
from repro.md.cells import CellGrid
from repro.md.constants import COULOMB_CONSTANT
from repro.md.ewald import EwaldOptions, _kspace_tables, kspace_cache_stats
from repro.md.nonbonded import (
    NonbondedOptions,
    _combined_params,
    filter_candidates,
)
from repro.core.grainsize import GrainsizeConfig, stripe_candidate_counts
from repro.util.pbc import wrap_positions

__all__ = [
    "KSHARD_MAX",
    "KSHARD_TARGET",
    "MAX_SPLIT_PARTS",
    "ForceTaskEvaluator",
    "ForceTaskProvider",
    "ForceTaskSpec",
    "build_force_tasks",
    "build_task_lists",
    "build_xtask_entries",
    "eval_xtask",
    "kspace_shards",
    "scratch_rows_bound",
    "task_kernel",
    "task_layout",
    "xtask_rows",
]

#: hard cap on grainsize slices per cell task in the real engine — real
#: sub-tasks carry per-part list/scatter overhead the simulated layer's
#: descriptors do not, so the engine caps lower than GrainsizeConfig's 64
MAX_SPLIT_PARTS = 16

#: Ewald k-space sharding: target k-vectors per shard and shard-count cap.
#: Both derive from the k-table size only — never from the worker count —
#: so the task structure (and with it the reduction order) is identical at
#: any pool size; that is what keeps trajectories bit-identical across
#: worker counts with k-space distribution on.
KSHARD_TARGET = 512
KSHARD_MAX = 8


def kspace_shards(nk: int) -> list[tuple[str, int, int]]:
    """Worker-count-independent ``("kspace", lo, hi)`` shard descriptors."""
    if nk <= 0:
        return []
    n_shards = min(KSHARD_MAX, max(1, -(-nk // KSHARD_TARGET)))
    bounds = np.linspace(0, nk, n_shards + 1).round().astype(np.int64)
    return [
        ("kspace", int(bounds[s]), int(bounds[s + 1]))
        for s in range(n_shards)
        if bounds[s + 1] > bounds[s]
    ]


def xtask_rows(
    xtasks: list[tuple],
    term_data: dict[int, tuple],
    flat: np.ndarray,
    n_atoms: int,
) -> tuple[list, list]:
    """Term selections and scatter rows of every extra task, one binning.

    Extra tasks ride after the cell tasks in the global task order:

    * ``("bonded", kind, cell, intra)`` — the bonded terms of ``kind``
      whose *home cell* (the cell of the term's first atom under the
      reference binning) is ``cell``, split into the intra group (every
      atom of the term in that cell, ``intra=1``) and the inter group
      (``intra=0``).  For each kind the groups partition the term list
      exactly, so energies and forces are independent of the binning; the
      block rows are the flattened global atom indices of the selected
      terms (duplicates are fine — the driver reduces with a segment sum).
    * ``("kspace", lo, hi)`` — a reciprocal-vector shard; its forces touch
      every atom, so the block is a full ``(n_atoms, 3)`` slab.

    Returns ``(sels, rows)`` aligned with ``xtasks``; ``sels[x]`` is None
    for k-space shards.  Driver and workers both call this on the same
    reference binning, so layouts agree without communicating.
    """
    sels: list = []
    rows: list = []
    all_rows = np.arange(n_atoms, dtype=np.int64)
    for xt in xtasks:
        if xt[0] == "kspace":
            sels.append(None)
            rows.append(all_rows)
            continue
        _, kind, cell, intra = xt
        idx = term_data[kind][0]
        home = flat[idx[:, 0]]
        same = np.all(flat[idx] == home[:, None], axis=1)
        sel = np.flatnonzero((home == cell) & (same == bool(intra)))
        sels.append(sel)
        rows.append(idx[sel].reshape(-1))
    return sels, rows


# --------------------------------------------------------------------------- #
# task layout: shared between driver (reduction) and workers (block writes)
# --------------------------------------------------------------------------- #
def task_layout(
    buckets: list[np.ndarray],
    tasks: list[tuple[int, int, int, int]],
    xrows: list[np.ndarray] = (),
) -> tuple[np.ndarray, np.ndarray]:
    """Task-ordered block layout of the shared force scratch.

    Tasks are grainsize sub-blocks ``(a, b, part, n_parts)`` — the unsplit
    case is ``(a, b, 0, 1)``.  Block ``t`` holds the force rows its kernel
    can touch: for a *self* sub-task every row of cell ``a`` (a stripe's
    pairs ``(i, j)``, ``i`` in the stripe, scatter onto arbitrary ``j``);
    for a *pair* sub-task the stripe ``part::n_parts`` of cell ``a``'s rows
    followed by all of cell ``b``'s.  Returns ``(offsets, gather)`` where
    ``offsets`` has ``n_tasks + 1`` entries and
    ``gather[offsets[t]:offsets[t+1]]`` are the *global* atom indices of
    block ``t``'s rows.  Both driver and workers derive this from the same
    deterministic binning of the same published positions, so they agree
    without communicating; because the layout (and the driver's
    segment-sum over it) is in task order, the reduced forces are bitwise
    independent of the task→worker assignment.

    ``xrows`` appends extra-task blocks (bonded term groups and k-space
    shards, see :func:`xtask_rows`) after the cell blocks: extra task
    ``x`` occupies global task slot ``len(tasks) + x`` and its block rows
    are exactly ``xrows[x]``.
    """
    n_nb = len(tasks)
    n_tasks = n_nb + len(xrows)
    sizes = np.zeros(n_tasks, dtype=np.int64)
    for t, (a, b, part, n_parts) in enumerate(tasks):
        na = len(buckets[a])
        if b == a:
            sizes[t] = na
        else:
            sizes[t] = len(buckets[a][part::n_parts]) + len(buckets[b])
    for x, rows in enumerate(xrows):
        sizes[n_nb + x] = len(rows)
    offsets = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    gather = np.empty(int(offsets[-1]), dtype=np.int64)
    for t, (a, b, part, n_parts) in enumerate(tasks):
        lo = int(offsets[t])
        if b == a:
            atoms_a = buckets[a]
            gather[lo : lo + len(atoms_a)] = atoms_a
        else:
            rows_a = buckets[a][part::n_parts]
            atoms_b = buckets[b]
            gather[lo : lo + len(rows_a)] = rows_a
            gather[lo + len(rows_a) : lo + len(rows_a) + len(atoms_b)] = atoms_b
    for x, rows in enumerate(xrows):
        lo = int(offsets[n_nb + x])
        gather[lo : lo + len(rows)] = rows
    return offsets, gather


def scratch_rows_bound(
    tasks: list[tuple[int, int, int, int]], n_cells: int, n_atoms: int
) -> int:
    """Upper bound on scratch rows any future layout of ``tasks`` can need.

    Counts, per cell, how many block rows it can contribute: a self parent
    split ``n`` ways keeps *all* of cell ``a``'s rows in each slice
    (``n`` full blocks); a pair parent contributes cell ``a`` once (its
    stripes partition the rows exactly) and cell ``b`` once per slice.
    The bound is topology-only — independent of where atoms sit — so the
    shared segment sized at construction stays valid across rebuilds.
    """
    if not n_cells:
        return 1
    mult = np.zeros(n_cells, dtype=np.int64)
    for a, b, part, n_parts in tasks:
        if part != 0:  # count each parent task once
            continue
        if b == a:
            mult[a] += n_parts
        else:
            mult[a] += 1
            mult[b] += n_parts
    return max(n_atoms * int(mult.max()), 1)


# --------------------------------------------------------------------------- #
# worker-side kernels
# --------------------------------------------------------------------------- #
def build_task_lists(
    system, tasks, my_tasks, buckets, r_list, backend=None, coulomb=True
):
    """Per-task prefiltered pair lists with local scatter indices.

    For each owned sub-task ``(a, b, part, n_parts)``: global candidate
    index arrays filtered to ``r < r_list`` minus exclusions/1-4, the
    matching *local* block-row indices, and the pre-combined LJ/charge
    parameters (position-independent, so combined once per rebuild instead
    of every step).  A self sub-task keeps the triu pairs whose row ``i``
    lands in the stripe (rows ``0..na-1`` of the block, so all slices of
    one self cell share scatter indexing); a pair sub-task enumerates its
    stripe's rows (block rows ``0..ns-1``) against all of cell ``b``
    (rows ``ns..``).  The slices are an exact partition of the parent
    task's candidate set.

    ``coulomb=False`` zeroes the combined charge products so the pair
    kernel runs LJ-only — the Ewald path owns the full electrostatics and
    the shifted point-charge term must not double count it.
    """
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    lists: dict[int, tuple | None] = {}
    for t in my_tasks:
        a, b, part, n_parts = tasks[t]
        atoms_a = buckets[a]
        na = len(atoms_a)
        if a == b:
            if na < 2:
                lists[t] = None
                continue
            if na not in triu_cache:
                triu_cache[na] = np.triu_indices(na, k=1)
            si, sj = triu_cache[na]
            if n_parts > 1:
                keep = si % n_parts == part
                si = np.ascontiguousarray(si[keep])
                sj = np.ascontiguousarray(sj[keep])
                if len(si) == 0:
                    lists[t] = None
                    continue
            i_g = atoms_a[si]
            j_g = atoms_a[sj]
        else:
            atoms_b = buckets[b]
            nb = len(atoms_b)
            rows_a = np.arange(part, na, n_parts, dtype=np.int64)
            ns = len(rows_a)
            if ns == 0 or nb == 0:
                lists[t] = None
                continue
            i_g = np.repeat(atoms_a[rows_a], nb)
            j_g = np.tile(atoms_b, ns)
            si = np.repeat(np.arange(ns, dtype=np.int64), nb)
            sj = np.tile(np.arange(nb, dtype=np.int64) + ns, ns)
        i_f, j_f, kept = filter_candidates(
            system, i_g.astype(np.int32), j_g.astype(np.int32), r_list,
            return_kept=True, backend=backend,
        )
        if len(i_f) == 0:
            lists[t] = None
            continue
        eps, rmin, qq = _combined_params(system, i_f, j_f)
        if not coulomb:
            qq = np.zeros_like(qq)
        lists[t] = (
            i_f,
            j_f,
            np.ascontiguousarray(si[kept], dtype=np.int64),
            np.ascontiguousarray(sj[kept], dtype=np.int64),
            eps,
            rmin,
            qq,
        )
    return lists


def task_kernel(system, entry, options, block, backend) -> tuple[float, float, int]:
    """One task's switched LJ + shifted Coulomb into its compact block.

    Identical per-pair arithmetic to :func:`repro.md.nonbonded.
    nonbonded_kernel` (same fused ``backend.nb_pairs`` kernel, same
    segment-sum scatter), but over a prefiltered list with pre-combined
    parameters and local scatter indices — the parallel hot loop.
    """
    i_g, j_g, si, sj, eps, rmin, qq = entry
    return backend.nb_pairs(
        system.positions, system.box, i_g, j_g, eps, rmin, qq,
        options.cutoff, options.switch, block, si, sj,
    )


def build_xtask_entries(xtasks, xsels, term_data, my_tasks, n_nb):
    """Kernel-ready entries for this worker's extra tasks, one rebuild.

    Bonded entries pre-slice the kind's term arrays to the group's
    selection and carry local scatter indices (block row ``r`` of a group
    with terms of arity ``m`` holds atom ``idx[r // m, r % m]`` — exactly
    the row order of :func:`xtask_rows`).  K-space entries are just the
    shard descriptor; the tables are memoized per process.
    """
    entries: dict[int, tuple] = {}
    for t in my_tasks:
        if t < n_nb:
            continue
        xt = xtasks[t - n_nb]
        if xt[0] == "kspace":
            entries[t] = xt
            continue
        _, kind, _cell, _intra = xt
        idx, kpar, p1, p2 = term_data[kind]
        sel = xsels[t - n_nb]
        arity = idx.shape[1]
        sidx = np.arange(len(sel) * arity, dtype=np.int64).reshape(-1, arity)
        entries[t] = (
            "bonded", kind, idx[sel], kpar[sel], p1[sel], p2[sel], sidx
        )
    return entries


def eval_xtask(system, entry, ewald_cfg, block, backend):
    """One extra task into its block; returns ``(energy, n_items)``.

    Bonded groups report their term count, k-space shards their k-vector
    count — measurement context for the WorkDB, never added to the pair
    total.  The shard prefactor uses the *current* box (the driver forces a
    rebuild on any box change, so tables and volume always agree).
    """
    if entry[0] == "kspace":
        _, lo, hi = entry
        alpha, kmax = ewald_cfg
        box = np.asarray(system.box, dtype=np.float64)
        k_tab, _k2, ak = _kspace_tables(box, kmax, alpha)
        if hi <= lo or len(k_tab) == 0:
            return 0.0, 0
        pref = COULOMB_CONSTANT * 2.0 * np.pi / float(np.prod(box))
        energy = backend.ewald_recip_shard(
            system.positions, system.charges, k_tab[lo:hi], ak[lo:hi],
            pref, block,
        )
        return float(energy), hi - lo
    _, kind, idx, kpar, p1, p2, sidx = entry
    if len(idx) == 0:
        return 0.0, 0
    energy = backend.bonded_terms(
        system.positions, system.box, kind, idx, kpar, p1, p2, block, sidx
    )
    return float(energy), len(idx)


# --------------------------------------------------------------------------- #
# the TaskProvider / TaskEvaluator pair
# --------------------------------------------------------------------------- #
class ForceTaskEvaluator:
    """Worker-process-side evaluator of the MD force tasks.

    Built by :meth:`ForceTaskProvider.make_evaluator` inside each worker.
    The worker's system aliases the shared ``"pos"`` segment (the driver
    owns the contents and guarantees they are wrapped before each
    command); :meth:`rebuild` temporarily aliases the ``"ref"`` segment so
    binning and pair-list construction are independent of *when* this
    worker (re)built.  Bonded group energies land in the first stats
    column, shard energies in the second; the per-worker stats row gets
    the process-local k-space table cache counters (as deltas from the
    spawn-time baseline — under fork the child inherits the parent's
    cumulative counters).
    """

    def __init__(self, provider: "ForceTaskProvider", worker_id, n_workers, views):
        # resolve the kernel backend once per worker process; forked
        # workers inherit the parent's compiled state, spawned ones
        # recompile from the on-disk JIT cache — either way every task of
        # this worker runs the same kernels for its whole life
        self.backend = get_backend(provider.backend_name)
        self.provider = provider
        self.system = provider.system
        self.positions = views["pos"]
        self.ref_positions = views["ref"]
        self.system.positions = self.positions
        self.dims = np.asarray(provider.dims, dtype=np.int64)
        self.n_nb = len(provider.tasks)
        self.lists: dict[int, tuple | None] = {}
        self.xentries: dict[int, tuple] = {}
        # cache counters are cumulative per process; under fork the child
        # inherits the parent's, so report deltas from this baseline
        self.cache_base = (
            kspace_cache_stats() if provider.ewald_cfg is not None else None
        )

    def begin_step(self, payload) -> None:
        self.system.box = np.asarray(payload, dtype=np.float64)

    def rebuild(self, my_tasks: list[int]) -> np.ndarray:
        from repro.core.decomposition import bin_atoms

        p = self.provider
        # derive everything from the reference positions so the result is
        # independent of when this worker (re)built
        self.system.positions = self.ref_positions
        try:
            _, flat, buckets = bin_atoms(
                self.ref_positions, self.system.box, self.dims
            )
            xsels, xrows = xtask_rows(
                p.xtasks, p.term_data, flat, len(self.positions)
            )
            offsets, _ = task_layout(buckets, p.tasks, xrows)
            self.lists = build_task_lists(
                self.system, p.tasks,
                [t for t in my_tasks if t < self.n_nb],
                buckets, p.r_list,
                backend=self.backend, coulomb=p.coulomb,
            )
            self.xentries = build_xtask_entries(
                p.xtasks, xsels, p.term_data, my_tasks, self.n_nb
            )
        finally:
            self.system.positions = self.positions
        return offsets

    def eval_task(self, t: int, block) -> tuple[float, float, float]:
        p = self.provider
        if t >= self.n_nb:
            energy, n_items = eval_xtask(
                self.system, self.xentries[t], p.ewald_cfg, block, self.backend
            )
            if self.xentries[t][0] == "kspace":
                return 0.0, energy, n_items
            return energy, 0.0, n_items
        entry = self.lists[t]
        if entry is None:
            return 0.0, 0.0, 0
        return task_kernel(
            self.system, entry, p.options, block, self.backend
        )

    def end_step(self, out_row) -> None:
        if self.cache_base is not None:
            cs = kspace_cache_stats()
            out_row[0] = cs["builds"] - self.cache_base["builds"]
            out_row[1] = cs["hits"] - self.cache_base["hits"]

    def close(self) -> None:
        system = self.system
        self.positions = None
        self.ref_positions = None
        self.lists = {}
        self.xentries = {}
        del system.positions
        system.positions = np.zeros((0, 3))


@dataclass
class ForceTaskProvider:
    """Driver-side description of one system's force tasks for the pool.

    Shipped to every worker (fork inheritance or spawn pickle); holds only
    plain data — the backend travels by *name* so a respawned worker
    rebuilds the identical kernels.  ``dims`` is the cell-grid shape the
    tasks were constructed for; the grid (and hence the task structure) is
    fixed for the provider's life.
    """

    system: object
    options: NonbondedOptions
    dims: tuple[int, ...]
    tasks: list[tuple[int, int, int, int]]
    xtasks: list[tuple]
    term_data: dict[int, tuple]
    r_list: float
    backend_name: str
    ewald_cfg: tuple[float, int] | None
    coulomb: bool
    scratch_rows: int

    @property
    def n_tasks(self) -> int:
        return len(self.tasks) + len(self.xtasks)

    def scratch_shape(self) -> tuple[int, int]:
        return (self.scratch_rows, 3)

    def segments(self) -> dict[str, tuple[tuple[int, ...], str]]:
        n = self.system.n_atoms
        return {
            "pos": ((n, 3), "float64"),
            # reference positions: the coordinates the pair lists were
            # last built from.  Workers always bin/build from this
            # segment, so a respawned replacement reconstructs the dead
            # worker's lists exactly, mid-skin-window, without touching
            # the rebuild schedule.
            "ref": ((n, 3), "float64"),
        }

    def make_evaluator(self, worker_id, n_workers, views) -> ForceTaskEvaluator:
        return ForceTaskEvaluator(self, worker_id, n_workers, views)

    # ------------------------------------------------------------------ #
    def layout(self, positions, box) -> tuple[np.ndarray, np.ndarray]:
        """Driver-side reduction layout for the given reference positions.

        Must match the workers' blocks: both bin the same published
        reference positions with the same grid.
        """
        from repro.core.decomposition import bin_atoms

        _, flat, buckets = bin_atoms(
            positions,
            np.asarray(box, dtype=np.float64),
            np.asarray(self.dims, dtype=np.int64),
        )
        xrows: list = []
        if self.xtasks:
            _, xrows = xtask_rows(
                self.xtasks, self.term_data, flat, len(positions)
            )
        return task_layout(buckets, self.tasks, xrows)


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #
@dataclass
class ForceTaskSpec:
    """Everything :func:`build_force_tasks` decides, for the orchestrator.

    ``provider`` is the pool-facing product; the remaining fields are the
    construction by-products the engine needs for the static partition,
    WorkDB registration, and diagnostics.
    """

    provider: ForceTaskProvider
    box: np.ndarray
    dims_array: np.ndarray
    parents: list[tuple[int, int]]
    n_cells: int
    sub_cost_arr: np.ndarray
    sub_parents: list[int]
    x_costs: list[float]
    all_costs: np.ndarray
    bonded_ids: dict[int, list[int]] = field(default_factory=dict)
    kspace_ids: list[int] = field(default_factory=list)

    @property
    def n_total(self) -> int:
        return self.provider.n_tasks


def build_force_tasks(
    system,
    options: NonbondedOptions,
    *,
    skin: float,
    grainsize_ms: float = 0.0,
    cost_model=None,
    bonded: bool = False,
    ewald: EwaldOptions | None = None,
    kspace: bool = True,
    backend=None,
) -> ForceTaskSpec:
    """Deterministic construction of the force-task family.

    Builds the half-shell cell grid sized to ``cutoff + skin``, seeds
    per-task costs from the cost model (the paper's "before the first
    measurement" rule), applies grainsize splitting from the deterministic
    prior, and appends the bonded groups and k-space shards.  Everything
    is decided here, once — the structure never depends on the worker
    count or on measurements.  Construction must not mutate the caller's
    system (the sequential engine's does not): the grid build and cost
    model see a wrapped *copy*; the engines wrap before every dispatch as
    usual.
    """
    from repro.core.decomposition import bin_atoms
    from repro.costmodel.model import estimate_block_costs

    backend = get_backend(backend)
    system.exclusions  # build once, before workers copy the system
    r_list = options.cutoff + skin
    box = np.asarray(system.box, dtype=np.float64)
    wrapped = wrap_positions(system.positions, box)
    grid = CellGrid.build(wrapped, box, r_list)
    dims = grid.dims.copy()
    ca, cb = grid.neighbor_cell_pair_arrays()
    parents = list(zip(ca.tolist(), cb.tolist()))

    _, flat0, buckets = bin_atoms(wrapped, box, dims)
    model = cost_model
    if model is None and grainsize_ms > 0:
        # grainsize_ms is a physical target: need real (reference-
        # machine) seconds, not the unitless pair-count default
        from repro.core.simulation import DEFAULT_COST_MODEL

        model = DEFAULT_COST_MODEL
    costs = estimate_block_costs(
        wrapped,
        box,
        options.cutoff,
        buckets,
        parents,
        model=model,
    )

    # grainsize control (§4.2.1–2): split oversized parents into row
    # stripes — structure decided here, once, from the deterministic
    # prior (never from noisy measurements: the scratch layout follows
    # the task list, so a measurement-driven split would break bitwise
    # repeatability).  Priors are handed down pro-rata by stripe
    # candidate count.
    cfg = GrainsizeConfig(
        target_load_s=grainsize_ms * 1e-3, max_parts=MAX_SPLIT_PARTS
    )
    tasks: list[tuple[int, int, int, int]] = []
    sub_costs: list[float] = []
    sub_parents: list[int] = []
    for pt, (a, b) in enumerate(parents):
        na = len(buckets[a])
        if grainsize_ms > 0:
            enabled = cfg.split_self if a == b else cfg.split_pairs
            n_parts = min(cfg.parts_for(float(costs[pt]), enabled), max(na, 1))
        else:
            n_parts = 1
        weights = stripe_candidate_counts(
            na, None if a == b else len(buckets[b]), n_parts
        )
        wsum = float(weights.sum())
        for part in range(n_parts):
            frac = float(weights[part]) / wsum if wsum > 0 else 1.0 / n_parts
            tasks.append((a, b, part, n_parts))
            sub_costs.append(float(costs[pt]) * frac)
            sub_parents.append(pt)
    sub_cost_arr = np.asarray(sub_costs, dtype=np.float64)

    # extra force tasks: bonded term groups and Ewald k-space shards.
    # Their structure is fixed here, once, from topology/grid/kmax only
    # (never from the worker count or measurements), so the scratch
    # layout — and the reduction order — is identical at any pool size.
    n_cells = int(np.prod(dims))
    xtasks: list[tuple] = []
    x_costs: list[float] = []
    term_data: dict[int, tuple] = {}
    mean_nb = float(sub_cost_arr.mean()) if len(sub_costs) else 1.0
    if bonded:
        for kind in range(len(BONDED_KINDS)):
            idx, kpar, p1, p2 = bonded_term_arrays(system, kind)
            if len(idx) == 0:
                continue
            term_data[kind] = (idx, kpar, p1, p2)
            home = flat0[idx[:, 0]]
            same = np.all(flat0[idx] == home[:, None], axis=1)
            for cell in range(n_cells):
                in_cell = home == cell
                for intra in (1, 0):
                    n_terms = int(
                        np.count_nonzero(in_cell & (same == bool(intra)))
                    )
                    xtasks.append(("bonded", kind, cell, intra))
                    # heuristic prior (a bonded term is far cheaper than a
                    # cell block); measurements take over after the first
                    # step
                    x_costs.append(mean_nb * (n_terms / 64.0) + mean_nb * 1e-3)
    kspace_tasks = bool(kspace) and ewald is not None
    if kspace_tasks:
        nk = (2 * ewald.kmax + 1) ** 3 - 1
        for lo_hi in kspace_shards(nk):
            xtasks.append(lo_hi)
            x_costs.append(mean_nb)
    all_costs = (
        np.concatenate([sub_cost_arr, np.asarray(x_costs)])
        if x_costs
        else sub_cost_arr
    )

    n = system.n_atoms
    # extra-task scratch bound is topology-only too: per kind, each term
    # lands in exactly one group under any binning (idx.size rows in
    # total), and each k-shard always writes one full (n, 3) slab
    n_kshards = sum(1 for xt in xtasks if xt[0] == "kspace")
    x_rows = sum(td[0].size for td in term_data.values())
    x_rows += n_kshards * n
    scratch_rows = scratch_rows_bound(tasks, n_cells, n) + x_rows

    ewald_cfg = (
        (ewald.alpha_value(), int(ewald.kmax)) if kspace_tasks else None
    )
    provider = ForceTaskProvider(
        system=system,
        options=options,
        dims=tuple(int(d) for d in dims),
        tasks=tasks,
        xtasks=xtasks,
        term_data=term_data,
        r_list=r_list,
        backend_name=backend.name,
        ewald_cfg=ewald_cfg,
        coulomb=ewald is None,
        scratch_rows=scratch_rows,
    )
    bonded_ids: dict[int, list[int]] = {}
    kspace_ids: list[int] = []
    for x, xt in enumerate(xtasks):
        t = len(tasks) + x
        if xt[0] == "kspace":
            kspace_ids.append(t)
        else:
            bonded_ids.setdefault(xt[1], []).append(t)
    return ForceTaskSpec(
        provider=provider,
        box=box.copy(),
        dims_array=dims,
        parents=parents,
        n_cells=n_cells,
        sub_cost_arr=sub_cost_arr,
        sub_parents=sub_parents,
        x_costs=x_costs,
        all_costs=all_costs,
        bonded_ids=bonded_ids,
        kspace_ids=kspace_ids,
    )
