"""Physical constants in the engine's unit system.

Units follow the AKMA-like convention common to biomolecular MD codes:

* length — Angstrom (Å)
* energy — kcal/mol
* mass — atomic mass unit (amu, g/mol)
* charge — elementary charge (e)
* time — femtosecond (fs)

With these choices velocities are Å/fs and forces kcal/(mol·Å).
"""

from __future__ import annotations

#: Coulomb's constant, kcal·Å/(mol·e²):  E = COULOMB_CONSTANT * q1*q2 / r.
COULOMB_CONSTANT: float = 332.0636

#: Boltzmann constant in kcal/(mol·K).
BOLTZMANN_KCAL: float = 0.0019872041

#: Conversion from force/mass to acceleration:
#: a [Å/fs²] = ACC_CONVERSION * F [kcal/(mol·Å)] / m [amu].
ACC_CONVERSION: float = 4.184e-4

#: Conversion from amu·(Å/fs)² to kcal/mol (inverse of ACC_CONVERSION):
#: KE [kcal/mol] = 0.5 * m * |v|² * KCAL_PER_AMU_A2_FS2.
KCAL_PER_AMU_A2_FS2: float = 1.0 / ACC_CONVERSION
