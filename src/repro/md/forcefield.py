"""CHARMM-style force-field parameter model.

The paper's benchmarks (ApoA-I, BC1, bR) use the CHARMM force field, whose
functional forms we reproduce exactly:

* bond:       ``E = k (r - r0)^2``
* angle:      ``E = k (theta - theta0)^2``
* dihedral:   ``E = k (1 + cos(n*phi - delta))``
* improper:   ``E = k (psi - psi0)^2``
* van der Waals (Lennard-Jones, CHARMM Rmin convention):
  ``E = eps [ (Rmin/r)^12 - 2 (Rmin/r)^6 ]`` with
  ``Rmin_ij = rmin_half_i + rmin_half_j`` and ``eps_ij = sqrt(eps_i eps_j)``
* electrostatics: ``E = C q_i q_j / r`` with a switching function near the
  cutoff (see :mod:`repro.md.nonbonded`).

Parameter values here are *representative* rather than copied from the CHARMM
distribution (which we do not have offline); they are in physically sensible
ranges so that synthetic systems are mechanically stable, which is all the
parallelization study requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AtomType",
    "BondType",
    "AngleType",
    "DihedralType",
    "ImproperType",
    "ForceField",
    "default_forcefield",
]


@dataclass(frozen=True)
class AtomType:
    """A non-bonded atom type: mass plus Lennard-Jones well parameters."""

    name: str
    mass: float  # amu
    epsilon: float  # kcal/mol, well depth (stored positive)
    rmin_half: float  # Å, half of Rmin at the LJ minimum

    def __post_init__(self) -> None:
        if self.mass <= 0:
            raise ValueError(f"atom type {self.name!r}: mass must be positive")
        if self.epsilon < 0:
            raise ValueError(f"atom type {self.name!r}: epsilon must be >= 0")
        if self.rmin_half < 0:
            raise ValueError(f"atom type {self.name!r}: rmin_half must be >= 0")


@dataclass(frozen=True)
class BondType:
    """Harmonic 2-body bond: ``E = k (r - r0)^2`` (CHARMM convention, no 1/2)."""

    k: float  # kcal/(mol Å²)
    r0: float  # Å


@dataclass(frozen=True)
class AngleType:
    """Harmonic 3-body angle: ``E = k (theta - theta0)^2`` with theta in radians."""

    k: float  # kcal/(mol rad²)
    theta0: float  # radians


@dataclass(frozen=True)
class DihedralType:
    """Cosine 4-body torsion: ``E = k (1 + cos(n phi - delta))``."""

    k: float  # kcal/mol
    n: int  # periodicity (>= 1)
    delta: float  # radians


@dataclass(frozen=True)
class ImproperType:
    """Harmonic improper torsion: ``E = k (psi - psi0)^2``."""

    k: float  # kcal/(mol rad²)
    psi0: float  # radians


@dataclass
class ForceField:
    """A registry of atom and bonded-term types.

    Atom types are registered by name and referenced from systems by integer
    index (the order of registration), so kernels can gather per-type LJ
    parameter arrays with plain fancy indexing.
    """

    atom_types: list[AtomType] = field(default_factory=list)
    _atom_index: dict[str, int] = field(default_factory=dict)
    scale14_lj: float = 1.0
    scale14_elec: float = 1.0

    def add_atom_type(self, atom_type: AtomType) -> int:
        """Register ``atom_type``; returns its integer index.

        Re-registering an identical type is idempotent; a conflicting
        redefinition raises ``ValueError``.
        """
        existing = self._atom_index.get(atom_type.name)
        if existing is not None:
            if self.atom_types[existing] != atom_type:
                raise ValueError(
                    f"atom type {atom_type.name!r} already registered with "
                    "different parameters"
                )
            return existing
        index = len(self.atom_types)
        self.atom_types.append(atom_type)
        self._atom_index[atom_type.name] = index
        return index

    def atom_type_index(self, name: str) -> int:
        """Index of a registered atom type, raising ``KeyError`` if unknown."""
        return self._atom_index[name]

    def __contains__(self, name: str) -> bool:
        return name in self._atom_index

    @property
    def n_atom_types(self) -> int:
        """Number of registered atom types."""
        return len(self.atom_types)

    def lj_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-type arrays ``(mass, epsilon, rmin_half)`` indexed by type id."""
        mass = np.array([t.mass for t in self.atom_types], dtype=np.float64)
        eps = np.array([t.epsilon for t in self.atom_types], dtype=np.float64)
        rmin = np.array([t.rmin_half for t in self.atom_types], dtype=np.float64)
        return mass, eps, rmin


def default_forcefield() -> ForceField:
    """A CHARMM-like parameter set covering water, protein and lipid types.

    The type names mirror CHARMM22/27 conventions loosely:

    * ``OT``/``HT`` — TIP3P-like water oxygen/hydrogen
    * ``C``/``CA``/``CT``/``N``/``NH``/``O``/``OH``/``H``/``HA``/``S`` —
      protein backbone and side-chain types
    * ``CTL``/``CL``/``PL``/``OSL``/``O2L``/``NTL`` — lipid tail/head types
    """
    ff = ForceField()
    for at in (
        # water (TIP3P-like)
        AtomType("OT", 15.9994, 0.1521, 1.7682),
        AtomType("HT", 1.008, 0.0460, 0.2245),
        # protein
        AtomType("C", 12.011, 0.1100, 2.0000),  # carbonyl carbon
        AtomType("CA", 12.011, 0.0700, 1.9924),  # alpha carbon
        AtomType("CT", 12.011, 0.0800, 2.0600),  # aliphatic carbon
        AtomType("N", 14.007, 0.2000, 1.8500),  # amide nitrogen
        AtomType("NH", 14.007, 0.2000, 1.8500),  # amine nitrogen
        AtomType("O", 15.9994, 0.1200, 1.7000),  # carbonyl oxygen
        AtomType("OH", 15.9994, 0.1521, 1.7700),  # hydroxyl oxygen
        AtomType("H", 1.008, 0.0460, 0.2245),  # polar hydrogen
        AtomType("HA", 1.008, 0.0220, 1.3200),  # nonpolar hydrogen
        AtomType("S", 32.06, 0.4500, 2.0000),  # sulfur
        # lipid
        AtomType("CTL", 12.011, 0.0780, 2.0500),  # lipid tail carbon
        AtomType("CL", 12.011, 0.0700, 2.0000),  # lipid glycerol carbon
        AtomType("PL", 30.9738, 0.5850, 2.1500),  # phosphorus
        AtomType("OSL", 15.9994, 0.1000, 1.6500),  # ester oxygen
        AtomType("O2L", 15.9994, 0.1200, 1.7000),  # phosphate oxygen
        AtomType("NTL", 14.007, 0.2000, 1.8500),  # choline nitrogen
    ):
        ff.add_atom_type(at)
    return ff


#: Representative bonded parameter types used by the synthetic builders.
STANDARD_BOND = BondType(k=340.0, r0=1.53)
BACKBONE_BOND = BondType(k=370.0, r0=1.45)
CARBONYL_BOND = BondType(k=620.0, r0=1.23)
WATER_OH_BOND = BondType(k=450.0, r0=0.9572)
XH_BOND = BondType(k=340.0, r0=1.09)

STANDARD_ANGLE = AngleType(k=50.0, theta0=np.deg2rad(111.0))
WATER_ANGLE = AngleType(k=55.0, theta0=np.deg2rad(104.52))
BACKBONE_ANGLE = AngleType(k=60.0, theta0=np.deg2rad(117.0))

STANDARD_DIHEDRAL = DihedralType(k=0.20, n=3, delta=0.0)
BACKBONE_DIHEDRAL = DihedralType(k=1.0, n=2, delta=np.pi)

STANDARD_IMPROPER = ImproperType(k=20.0, psi0=0.0)
