"""Periodic cell lists for cutoff pair enumeration.

The engine's non-bonded kernel needs every atom pair within the cutoff,
each counted once (Newton's third law halves the work, exactly as the paper
emphasizes in §1).  Space is divided into a grid of cells at least one cutoff
wide; an atom then interacts only with atoms in its own cell and the 26
neighbours, and enumerating *half* of those neighbour offsets yields each
pair once.

This is the same geometric construction the parallel layer uses for patches
(:mod:`repro.core.decomposition`) — there the cells are Charm++ objects; here
they are just index buckets.

Wrapped-positions contract
--------------------------
:meth:`CellGrid.build` wraps positions into the primary cell ``[0, L)``
internally (via :func:`repro.util.pbc.wrap_positions`), so callers may pass
raw, unwrapped coordinates — including negative ones — and still get correct
cell assignments.  Distance filtering downstream must always go through
:func:`repro.util.pbc.minimum_image`, which is exact for any image choice,
so the enumeration layer as a whole is wrapping-agnostic.  (Earlier versions
*clamped* out-of-box positions into edge cells, silently dropping
cross-boundary pairs for unwrapped input; the regression tests in
``tests/test_md/test_cells.py`` pin the fixed behaviour.)

Performance notes
-----------------
Enumeration is fully vectorized: the half-shell neighbour map is built with
array ops over all cells at once, and pair blocks are emitted from the CSR
cell buckets in bounded chunks (``_PAIR_CHUNK`` elements) so the int32
working set stays cache-resident.  The per-cell Python loop this replaced is
kept as :func:`_candidate_pairs_reference` — the readable specification the
exact-match tests and the hot-path benchmark
(``benchmarks/test_kernel_hotpath.py``) compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.pbc import minimum_image, wrap_positions

__all__ = [
    "CellGrid",
    "HALF_SHELL_OFFSETS",
    "candidate_pairs",
    "count_pairs_within",
]


def _half_shell_offsets() -> np.ndarray:
    """The 13 neighbour offsets of a half shell, plus implicit self.

    An offset ``(dx, dy, dz)`` is in the half shell when it is
    lexicographically positive; pairing each cell with its half-shell
    neighbours (and itself) enumerates every neighbouring cell pair exactly
    once.  These are the paper's "upstream" neighbours restricted to 13 of
    the 26 (§3: 26/2 + 1 self = 14 objects per cube).
    """
    offsets = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) > (0, 0, 0):
                    offsets.append((dx, dy, dz))
    return np.array(offsets, dtype=np.int64)


#: The 13 lexicographically-positive neighbour offsets.
HALF_SHELL_OFFSETS: np.ndarray = _half_shell_offsets()

#: Pair-emission chunk size (elements).  Chosen so the int32 index working
#: set of one chunk (a few MB) stays cache-resident; measured fastest in the
#: 2^17–2^19 range on commodity hardware.
_PAIR_CHUNK = 1 << 18


@dataclass
class CellGrid:
    """A periodic grid of cells covering an orthorhombic box.

    Attributes
    ----------
    dims:
        Number of cells along each axis (each >= 1).
    box:
        Box lengths.
    cell_of_atom:
        Flat cell index per atom.
    order:
        Atom indices sorted by cell, so ``order[start[c]:start[c+1]]`` are
        the atoms of cell ``c``.
    start:
        CSR-style offsets of length ``n_cells + 1``.
    """

    dims: np.ndarray
    box: np.ndarray
    cell_of_atom: np.ndarray
    order: np.ndarray
    start: np.ndarray

    @classmethod
    def build(
        cls, positions: np.ndarray, box: np.ndarray, cutoff: float
    ) -> "CellGrid":
        """Bucket ``positions`` into cells at least ``cutoff`` wide.

        Positions are wrapped into ``[0, L)`` here, so unwrapped or negative
        coordinates are binned into their true periodic cell (see the
        module-level wrapped-positions contract).  When an axis is shorter
        than ``2 * cutoff`` the grid degenerates to a single cell along that
        axis, which stays correct (all pairs checked) but loses the pruning
        benefit.
        """
        box = np.asarray(box, dtype=np.float64)
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        dims = np.maximum(np.floor(box / cutoff).astype(np.int64), 1)
        cell_len = box / dims
        frac = wrap_positions(np.asarray(positions, dtype=np.float64), box) / cell_len
        # guard against frac rounding up to exactly dims at the box edge
        idx3 = np.minimum(frac.astype(np.int64), dims - 1)
        flat = (idx3[:, 0] * dims[1] + idx3[:, 1]) * dims[2] + idx3[:, 2]
        order = np.argsort(flat, kind="stable")
        n_cells = int(np.prod(dims))
        counts = np.bincount(flat, minlength=n_cells)
        start = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=start[1:])
        return cls(dims=dims, box=box, cell_of_atom=flat, order=order, start=start)

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self.dims))

    def atoms_in_cell(self, flat_index: int) -> np.ndarray:
        """Atom indices in cell ``flat_index``."""
        return self.order[self.start[flat_index] : self.start[flat_index + 1]]

    def cell_coords(self, flat_index: int) -> tuple[int, int, int]:
        """Convert a flat cell index to ``(ix, iy, iz)``."""
        dy, dz = int(self.dims[1]), int(self.dims[2])
        ix, rem = divmod(int(flat_index), dy * dz)
        iy, iz = divmod(rem, dz)
        return ix, iy, iz

    def flat_index(self, ix: int, iy: int, iz: int) -> int:
        """Convert (periodic) cell coordinates to a flat index."""
        dims = self.dims
        return int(
            ((ix % dims[0]) * dims[1] + (iy % dims[1])) * dims[2] + (iz % dims[2])
        )

    def neighbor_cell_pair_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized neighbour map: arrays ``(a, b)`` with ``a <= b``.

        Every (cell, neighbour-cell) pair to examine, each exactly once,
        including the self pair ``(c, c)``, sorted lexicographically.  With
        periodic wrapping and small grids the same neighbour is reachable
        through several offsets (for example ``dims == 1`` along an axis);
        encoding pairs as scalar keys and taking ``np.unique`` removes the
        duplicates without any per-cell Python loop.
        """
        n_cells = self.n_cells
        dims = self.dims
        cells = np.arange(n_cells, dtype=np.int64)
        dyz = dims[1] * dims[2]
        ix = cells // dyz
        rem = cells - ix * dyz
        iy = rem // dims[2]
        iz = rem - iy * dims[2]
        off = HALF_SHELL_OFFSETS
        nx = (ix[:, None] + off[:, 0]) % dims[0]
        ny = (iy[:, None] + off[:, 1]) % dims[1]
        nz = (iz[:, None] + off[:, 2]) % dims[2]
        nbr = (nx * dims[1] + ny) * dims[2] + nz
        a = np.repeat(cells, off.shape[0])
        b = nbr.ravel()
        distinct = a != b
        lo = np.minimum(a[distinct], b[distinct])
        hi = np.maximum(a[distinct], b[distinct])
        # self pairs (c, c) carried alongside, encoded with the same key
        keys = np.unique(
            np.concatenate([cells * (n_cells + 1), lo * n_cells + hi])
        )
        return keys // n_cells, keys % n_cells

    def neighbor_cell_pairs(self) -> list[tuple[int, int]]:
        """:meth:`neighbor_cell_pair_arrays` as a sorted list of tuples."""
        a, b = self.neighbor_cell_pair_arrays()
        return list(zip(a.tolist(), b.tolist()))

    def _pair_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR rows of the candidate enumeration.

        Each *row* is one atom of cell ``a`` in one neighbour-cell pair
        ``(a, b)``; its partners are a contiguous slice of :attr:`order`.
        Returns ``(row_pos, partner_start, partner_count)`` where ``row_pos``
        indexes :attr:`order` for the row atom and the partners are
        ``order[partner_start : partner_start + partner_count]``.  Self pairs
        ``(c, c)`` emit only the suffix after the row atom, so every atom
        pair appears exactly once.  Rows with no partners are dropped.
        """
        ca, cb = self.neighbor_cell_pair_arrays()
        start = self.start
        cnt = start[1:] - start[:-1]
        cnt_a = cnt[ca]
        n_rows = int(cnt_a.sum())
        if n_rows == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        block_of_row = np.repeat(np.arange(len(ca)), cnt_a)
        row_local = np.arange(n_rows) - (np.cumsum(cnt_a) - cnt_a)[block_of_row]
        row_pos = start[ca][block_of_row] + row_local
        is_self = (ca == cb)[block_of_row]
        p_start = np.where(is_self, row_pos + 1, start[cb][block_of_row])
        p_count = np.where(
            is_self, cnt_a[block_of_row] - row_local - 1, cnt[cb][block_of_row]
        )
        nonzero = p_count > 0
        return row_pos[nonzero], p_start[nonzero], p_count[nonzero]


def candidate_pairs(
    positions: np.ndarray, box: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate atom pairs ``(i, j)`` whose cells are within one cutoff.

    Pairs are returned once each (``i`` and ``j`` int32 arrays of equal
    length, unordered within a pair).  Distances are *not* checked here;
    callers filter by actual ``r < cutoff``.  Positions may be unwrapped
    (see the module contract); int32 indices halve the memory traffic of the
    enumeration, which is DRAM-bound at large pair counts.
    """
    grid = CellGrid.build(positions, box, cutoff)
    row_pos, p_start, p_count = grid._pair_rows()
    total = int(p_count.sum())
    i_out = np.empty(total, dtype=np.int32)
    j_out = np.empty(total, dtype=np.int32)
    if total == 0:
        return i_out, j_out
    order32 = grid.order.astype(np.int32)
    out_off = np.concatenate([[0], np.cumsum(p_count)])
    row_vals = order32[row_pos]
    # per-row constant: first partner slot minus the row's output offset, so
    # a chunk's j-indices are repeat(constant) + arange (all SIMD-friendly;
    # no serial cumsum on the hot path)
    j_const = p_start - out_off[:-1]
    n_rows = len(p_count)
    arange_buf = np.arange(
        max(_PAIR_CHUNK, int(p_count.max())), dtype=np.int32
    )
    r0 = 0
    while r0 < n_rows:
        # largest r1 with out_off[r1] <= out_off[r0] + chunk (at least one
        # row per chunk: a single row may exceed the chunk size)
        r1 = int(
            np.searchsorted(out_off, out_off[r0] + _PAIR_CHUNK, side="right") - 1
        )
        r1 = min(max(r1, r0 + 1), n_rows)
        o0, o1 = int(out_off[r0]), int(out_off[r1])
        span = o1 - o0
        pc = p_count[r0:r1]
        i_out[o0:o1] = np.repeat(row_vals[r0:r1], pc)
        j_idx = np.repeat((j_const[r0:r1] + o0).astype(np.int32), pc)
        j_idx += arange_buf[:span]
        np.take(order32, j_idx, out=j_out[o0:o1])
        r0 = r1
    return i_out, j_out


def count_pairs_within(
    positions: np.ndarray, box: np.ndarray, cutoff: float
) -> int:
    """Number of atom pairs with minimum-image distance below ``cutoff``.

    Grid-based equivalent of summing
    :func:`repro.md.nonbonded.count_interacting_pairs` over all patch
    blocks: each unordered pair is examined once via the half-shell cell
    enumeration, and distance evaluation streams over the same bounded
    chunks as :func:`candidate_pairs` so memory stays O(chunk) even for
    the 206,617-atom BC1 system.
    """
    positions = np.asarray(positions, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    grid = CellGrid.build(positions, box, cutoff)
    row_pos, p_start, p_count = grid._pair_rows()
    n_rows = len(p_count)
    if n_rows == 0:
        return 0
    out_off = np.concatenate([[0], np.cumsum(p_count)])
    j_const = p_start - out_off[:-1]
    arange_buf = np.arange(
        max(_PAIR_CHUNK, int(p_count.max())), dtype=np.int64
    )
    cutoff2 = cutoff * cutoff
    total = 0
    r0 = 0
    while r0 < n_rows:
        r1 = int(
            np.searchsorted(out_off, out_off[r0] + _PAIR_CHUNK, side="right") - 1
        )
        r1 = min(max(r1, r0 + 1), n_rows)
        o0, o1 = int(out_off[r0]), int(out_off[r1])
        span = o1 - o0
        pc = p_count[r0:r1]
        i_idx = grid.order[np.repeat(row_pos[r0:r1], pc)]
        j_idx = grid.order[
            np.repeat(j_const[r0:r1] + o0, pc) + arange_buf[:span]
        ]
        delta = minimum_image(positions[j_idx] - positions[i_idx], box)
        r2 = np.einsum("ij,ij->i", delta, delta)
        total += int(np.count_nonzero(r2 < cutoff2))
        r0 = r1
    return total


def _candidate_pairs_reference(
    positions: np.ndarray, box: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """Readable per-cell-loop specification of :func:`candidate_pairs`.

    Retained as the ground truth for the exact-match tests and as the
    baseline the hot-path benchmark measures speedup against.  Produces the
    same pair *set* as :func:`candidate_pairs` (ordering may differ).
    """
    grid = CellGrid.build(positions, box, cutoff)
    is_, js_ = [], []
    for ca, cb in grid.neighbor_cell_pairs():
        atoms_a = grid.atoms_in_cell(ca)
        if len(atoms_a) == 0:
            continue
        if ca == cb:
            if len(atoms_a) < 2:
                continue
            iu, ju = np.triu_indices(len(atoms_a), k=1)
            is_.append(atoms_a[iu])
            js_.append(atoms_a[ju])
        else:
            atoms_b = grid.atoms_in_cell(cb)
            if len(atoms_b) == 0:
                continue
            ii, jj = np.meshgrid(atoms_a, atoms_b, indexing="ij")
            is_.append(ii.ravel())
            js_.append(jj.ravel())
    if not is_:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(is_), np.concatenate(js_)
