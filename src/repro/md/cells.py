"""Periodic cell lists for cutoff pair enumeration.

The engine's non-bonded kernel needs every atom pair within the cutoff,
each counted once (Newton's third law halves the work, exactly as the paper
emphasizes in §1).  Space is divided into a grid of cells at least one cutoff
wide; an atom then interacts only with atoms in its own cell and the 26
neighbours, and enumerating *half* of those neighbour offsets yields each
pair once.

This is the same geometric construction the parallel layer uses for patches
(:mod:`repro.core.decomposition`) — there the cells are Charm++ objects; here
they are just index buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CellGrid", "HALF_SHELL_OFFSETS", "candidate_pairs"]


def _half_shell_offsets() -> np.ndarray:
    """The 13 neighbour offsets of a half shell, plus implicit self.

    An offset ``(dx, dy, dz)`` is in the half shell when it is
    lexicographically positive; pairing each cell with its half-shell
    neighbours (and itself) enumerates every neighbouring cell pair exactly
    once.  These are the paper's "upstream" neighbours restricted to 13 of
    the 26 (§3: 26/2 + 1 self = 14 objects per cube).
    """
    offsets = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) > (0, 0, 0):
                    offsets.append((dx, dy, dz))
    return np.array(offsets, dtype=np.int64)


#: The 13 lexicographically-positive neighbour offsets.
HALF_SHELL_OFFSETS: np.ndarray = _half_shell_offsets()


@dataclass
class CellGrid:
    """A periodic grid of cells covering an orthorhombic box.

    Attributes
    ----------
    dims:
        Number of cells along each axis (each >= 1).
    box:
        Box lengths.
    cell_of_atom:
        Flat cell index per atom.
    order:
        Atom indices sorted by cell, so ``order[start[c]:start[c+1]]`` are
        the atoms of cell ``c``.
    start:
        CSR-style offsets of length ``n_cells + 1``.
    """

    dims: np.ndarray
    box: np.ndarray
    cell_of_atom: np.ndarray
    order: np.ndarray
    start: np.ndarray

    @classmethod
    def build(
        cls, positions: np.ndarray, box: np.ndarray, cutoff: float
    ) -> "CellGrid":
        """Bucket wrapped ``positions`` into cells at least ``cutoff`` wide.

        When an axis is shorter than ``2 * cutoff`` the grid degenerates to a
        single cell along that axis, which stays correct (all pairs checked)
        but loses the pruning benefit.
        """
        box = np.asarray(box, dtype=np.float64)
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        dims = np.maximum(np.floor(box / cutoff).astype(np.int64), 1)
        cell_len = box / dims
        # wrapped positions assumed; guard against == box edge
        frac = positions / cell_len
        idx3 = np.minimum(frac.astype(np.int64), dims - 1)
        idx3 = np.maximum(idx3, 0)
        flat = (idx3[:, 0] * dims[1] + idx3[:, 1]) * dims[2] + idx3[:, 2]
        order = np.argsort(flat, kind="stable")
        n_cells = int(np.prod(dims))
        counts = np.bincount(flat, minlength=n_cells)
        start = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=start[1:])
        return cls(dims=dims, box=box, cell_of_atom=flat, order=order, start=start)

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self.dims))

    def atoms_in_cell(self, flat_index: int) -> np.ndarray:
        """Atom indices in cell ``flat_index``."""
        return self.order[self.start[flat_index] : self.start[flat_index + 1]]

    def cell_coords(self, flat_index: int) -> tuple[int, int, int]:
        """Convert a flat cell index to ``(ix, iy, iz)``."""
        dy, dz = int(self.dims[1]), int(self.dims[2])
        ix, rem = divmod(int(flat_index), dy * dz)
        iy, iz = divmod(rem, dz)
        return ix, iy, iz

    def flat_index(self, ix: int, iy: int, iz: int) -> int:
        """Convert (periodic) cell coordinates to a flat index."""
        dims = self.dims
        return int(
            ((ix % dims[0]) * dims[1] + (iy % dims[1])) * dims[2] + (iz % dims[2])
        )

    def neighbor_cell_pairs(self) -> list[tuple[int, int]]:
        """Every (cell, neighbour-cell) pair to examine, each once.

        Includes the self pair ``(c, c)``.  With periodic wrapping and small
        grids the same neighbour can be reached through several offsets (for
        example ``dims == 1`` along an axis); duplicates are removed so pairs
        are never double counted.
        """
        pairs: set[tuple[int, int]] = set()
        dims = self.dims
        for flat in range(self.n_cells):
            ix, iy, iz = self.cell_coords(flat)
            pairs.add((flat, flat))
            for dx, dy, dz in HALF_SHELL_OFFSETS:
                other = self.flat_index(ix + int(dx), iy + int(dy), iz + int(dz))
                if other == flat:
                    continue
                pairs.add((min(flat, other), max(flat, other)))
        return sorted(pairs)


def candidate_pairs(
    positions: np.ndarray, box: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate atom pairs ``(i, j)`` whose cells are within one cutoff.

    Pairs are returned once each (``i`` and ``j`` arrays of equal length,
    unordered within a pair).  Distances are *not* checked here; callers
    filter by actual ``r < cutoff``.
    """
    grid = CellGrid.build(positions, box, cutoff)
    is_, js_ = [], []
    for ca, cb in grid.neighbor_cell_pairs():
        atoms_a = grid.atoms_in_cell(ca)
        if len(atoms_a) == 0:
            continue
        if ca == cb:
            if len(atoms_a) < 2:
                continue
            iu, ju = np.triu_indices(len(atoms_a), k=1)
            is_.append(atoms_a[iu])
            js_.append(atoms_a[ju])
        else:
            atoms_b = grid.atoms_in_cell(cb)
            if len(atoms_b) == 0:
                continue
            ii, jj = np.meshgrid(atoms_a, atoms_b, indexing="ij")
            is_.append(ii.ravel())
            js_.append(jj.ravel())
    if not is_:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(is_), np.concatenate(js_)
