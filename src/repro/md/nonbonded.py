"""Cutoff non-bonded kernel: Lennard-Jones + Coulomb with switching.

This is the computation that dominates an MD timestep ("eighty percent or
more", paper §4.2.1) and the one the hybrid decomposition parallelizes.  The
functional forms follow NAMD's cutoff mode:

* Lennard-Jones is multiplied by the CHARMM switching function ``S(r)``,
  which is 1 below ``switch_dist``, 0 at ``cutoff``, and C¹ smooth between.
* Electrostatics use the shifting function ``(1 - r²/c²)²`` so the energy
  and force both vanish at the cutoff.
* 1-2 and 1-3 pairs are excluded; 1-4 pairs are computed separately with
  configurable scale factors (paper §3: "Non-bonded interactions are
  excluded or modified between atoms connected by one, two, or three
  bonds").

All kernels are fully vectorized over pair arrays per the HPC guide: no
Python loop touches individual atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import KernelBackend, get_backend
from repro.backend import reference as _reference
from repro.md.cells import candidate_pairs
from repro.md.system import MolecularSystem
from repro.util.pbc import minimum_image

__all__ = [
    "NonbondedOptions",
    "NonbondedResult",
    "switching_function",
    "pair_interactions",
    "filter_candidates",
    "nonbonded_kernel",
    "nonbonded_14",
    "compute_nonbonded",
    "count_interacting_pairs",
]


@dataclass(frozen=True)
class NonbondedOptions:
    """Cutoff scheme parameters.

    ``switch_dist`` defaults to ``0.85 * cutoff`` (NAMD's conventional 10 Å
    switch for a 12 Å cutoff is close to this ratio).
    """

    cutoff: float = 12.0
    switch_dist: float | None = None

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        sd = self.switch_dist
        if sd is not None and not (0 < sd < self.cutoff):
            raise ValueError("switch_dist must lie in (0, cutoff)")

    @property
    def switch(self) -> float:
        """Effective switching distance (explicit or 0.85 * cutoff)."""
        return self.switch_dist if self.switch_dist is not None else 0.85 * self.cutoff


@dataclass
class NonbondedResult:
    """Energies (kcal/mol) and forces (kcal/mol/Å) from one evaluation."""

    energy_lj: float
    energy_elec: float
    forces: np.ndarray
    n_pairs: int  # pairs actually within the cutoff (after exclusions)

    @property
    def energy(self) -> float:
        """Total non-bonded energy: LJ + electrostatics."""
        return self.energy_lj + self.energy_elec


def switching_function(
    r2: np.ndarray, switch: float, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """CHARMM switching function and its derivative w.r.t. ``r²``.

    Returns ``(S, dS_dr2)`` evaluated elementwise on squared distances.
    ``S`` is 1 for ``r <= switch`` and 0 for ``r >= cutoff``.  The math
    lives in :mod:`repro.backend.reference` (shared with the compiled
    backends); this is the md-facing name.
    """
    return _reference.switching_terms(r2, switch, cutoff)


def pair_interactions(
    delta: np.ndarray,
    r2: np.ndarray,
    eps_ij: np.ndarray,
    rmin_ij: np.ndarray,
    qq: np.ndarray,
    options: NonbondedOptions,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Core LJ + Coulomb math for pre-combined pair parameters.

    Parameters are per-pair arrays: displacement vectors ``delta`` (shape
    ``(m, 3)``), squared distances ``r2``, combined LJ well depth and
    ``Rmin``, and charge products ``qq`` (already multiplied together, *not*
    including the Coulomb constant).

    Returns ``(e_lj, e_elec, fvec)`` where ``fvec[p]`` is the force on atom
    ``i`` of pair ``p`` (atom ``j`` receives ``-fvec[p]``), consistent with
    ``delta = x_j - x_i``.  The math lives in
    :mod:`repro.backend.reference` (shared with the compiled backends).
    """
    return _reference.pair_terms(
        delta, r2, eps_ij, rmin_ij, qq, options.cutoff, options.switch
    )


def _combined_params(
    system: MolecularSystem, i: np.ndarray, j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lorentz-Berthelot-combined ``(eps_ij, rmin_ij, qq)`` for pair arrays."""
    _, eps_t, rmin_t = system.forcefield.lj_tables()
    ti = system.type_indices[i]
    tj = system.type_indices[j]
    eps_ij = np.sqrt(eps_t[ti] * eps_t[tj])
    rmin_ij = rmin_t[ti] + rmin_t[tj]
    qq = system.charges[i] * system.charges[j]
    return eps_ij, rmin_ij, qq


def filter_candidates(
    system: MolecularSystem,
    i_cand: np.ndarray,
    j_cand: np.ndarray,
    cutoff: float,
    return_kept: bool = False,
    backend: KernelBackend | str | None = None,
):
    """Reduce candidate pairs to those within ``cutoff``, minus exclusions.

    Applies exactly the filters of the main loop of :func:`nonbonded_kernel`
    (distance, 1-2/1-3 exclusions, 1-4 removal) but returns only the
    surviving index arrays.  The parallel engine uses this at pairlist-build
    time — with ``cutoff + skin`` — so the per-step hot loop touches only
    pairs that can actually interact during the list's lifetime.

    ``return_kept=True`` additionally returns the positions (into the input
    candidate arrays) of the surviving pairs, so callers carrying parallel
    per-pair metadata (e.g. the parallel engine's local scatter indices) can
    subset it identically.
    """
    excl = system.exclusions
    pos = system.positions
    if len(i_cand) == 0:
        empty = i_cand[:0].copy(), j_cand[:0].copy()
        if return_kept:
            return (*empty, np.zeros(0, dtype=np.int64))
        return empty
    within = get_backend(backend).pair_mask(pos, system.box, i_cand, j_cand, cutoff)
    i_c, j_c = i_cand[within], j_cand[within]
    mask = ~excl.is_excluded(i_c, j_c)
    if len(excl.pairs14):
        keys14 = np.sort(excl.pair_key(excl.pairs14[:, 0], excl.pairs14[:, 1]))
        keys = excl.pair_key(i_c, j_c)
        pos14 = np.minimum(np.searchsorted(keys14, keys), len(keys14) - 1)
        mask &= keys14[pos14] != keys
    out = np.ascontiguousarray(i_c[mask]), np.ascontiguousarray(j_c[mask])
    if return_kept:
        kept = np.flatnonzero(within)[mask]
        return (*out, kept)
    return out


def nonbonded_kernel(
    system: MolecularSystem,
    i_cand: np.ndarray,
    j_cand: np.ndarray,
    options: NonbondedOptions,
    forces: np.ndarray,
    prefiltered: bool = False,
    scatter_i: np.ndarray | None = None,
    scatter_j: np.ndarray | None = None,
    backend: KernelBackend | str | None = None,
    coulomb: bool = True,
) -> tuple[float, float, int]:
    """Main-loop LJ + electrostatics over candidate pairs.

    ``coulomb=False`` zeroes the charge products so the kernel evaluates
    the switched LJ term only — the mode used when full electrostatics come
    from the Ewald sum instead of the shifted-Coulomb cutoff form.

    Distance-filters ``(i_cand, j_cand)`` to the cutoff, removes excluded
    (1-2/1-3) and modified (1-4) pairs, evaluates the switched/shifted
    kernel, and scatters the pair forces into ``forces`` (in place).
    Returns ``(e_lj, e_elec, n_pairs)``.

    ``prefiltered=True`` declares that exclusions and 1-4 pairs were already
    removed from the candidate arrays (see :func:`filter_candidates`), so
    only the distance test remains — the per-step path of the parallel
    engine's per-worker Verlet lists.  The per-pair arithmetic is identical
    either way, which is what keeps sequential and parallel energies within
    mutual rounding error.

    ``scatter_i``/``scatter_j`` (parallel to the candidate arrays) redirect
    the force scatter: positions and parameters are still read through the
    global ``i_cand``/``j_cand`` indices, but forces accumulate at the
    scatter indices instead.  The parallel engine passes per-task *local*
    indices so each task writes a compact block of a shared buffer.

    The distance test, pair math, and force scatter are fused in
    ``backend.nb_pairs``; exclusion bookkeeping (searchsorted over pair
    keys) stays vectorized numpy here.  Kept pairs and their evaluation
    order are identical to the historical inline code, so the numpy
    backend reproduces it bit-for-bit.
    """
    excl = system.exclusions
    be = get_backend(backend)
    if len(i_cand) == 0:
        return 0.0, 0.0, 0
    i_c, j_c = i_cand, j_cand
    s_i, s_j = scatter_i, scatter_j
    if not prefiltered:
        # remove excluded (1-2, 1-3) and modified (1-4) pairs from main loop
        mask = ~excl.is_excluded(i_c, j_c)
        if len(excl.pairs14):
            keys14 = excl.pair_key(excl.pairs14[:, 0], excl.pairs14[:, 1])
            keys14 = np.sort(keys14)
            keys = excl.pair_key(i_c, j_c)
            pos14 = np.searchsorted(keys14, keys)
            pos14 = np.minimum(pos14, len(keys14) - 1)
            mask &= keys14[pos14] != keys
        i_c, j_c = i_c[mask], j_c[mask]
        if s_i is not None:
            s_i, s_j = s_i[mask], s_j[mask]
    if len(i_c) == 0:
        return 0.0, 0.0, 0
    eps_ij, rmin_ij, qq = _combined_params(system, i_c, j_c)
    if not coulomb:
        qq = np.zeros_like(qq)
    return be.nb_pairs(
        system.positions, system.box, i_c, j_c, eps_ij, rmin_ij, qq,
        options.cutoff, options.switch, forces,
        s_i if s_i is not None else i_c,
        s_j if s_j is not None else j_c,
    )


def nonbonded_14(
    system: MolecularSystem,
    options: NonbondedOptions,
    forces: np.ndarray,
    backend: KernelBackend | str | None = None,
    coulomb: bool = True,
) -> tuple[float, float, int]:
    """Scaled 1-4 pass: modified pairs with the ``scale14_*`` factors.

    ``coulomb=False`` drops the scaled 1-4 electrostatics (the Ewald sum
    covers 1-4 pairs at full strength); the scaled 1-4 LJ term remains.

    Always computed with the plain (unswitched at short range, but the
    switching/shift factors still apply) kernel; scatters into ``forces``
    in place and returns ``(e_lj, e_elec, n_pairs_14)``.  Scaling folds
    into the pre-combined parameters, so the backend kernel is the same
    one the main loop uses.
    """
    excl = system.exclusions
    ff = system.forcefield
    if not len(excl.pairs14) or (ff.scale14_lj == 0.0 and ff.scale14_elec == 0.0):
        return 0.0, 0.0, 0
    i14 = excl.pairs14[:, 0]
    j14 = excl.pairs14[:, 1]
    eps_ij, rmin_ij, qq = _combined_params(system, i14, j14)
    scale_el = ff.scale14_elec if coulomb else 0.0
    return get_backend(backend).nb_pairs(
        system.positions, system.box, i14, j14,
        eps_ij * ff.scale14_lj, rmin_ij, qq * scale_el,
        options.cutoff, options.switch, forces, i14, j14,
    )


def compute_nonbonded(
    system: MolecularSystem,
    options: NonbondedOptions | None = None,
    pairlist=None,
    backend: KernelBackend | str | None = None,
    coulomb: bool = True,
) -> NonbondedResult:
    """Full non-bonded evaluation for a system (cell-list based).

    ``coulomb=False`` evaluates the LJ terms only (main loop and scaled
    1-4 pass) — the pairing mode for engines whose electrostatics come
    from :func:`repro.md.ewald.compute_ewald`.

    Handles exclusions (1-2/1-3 removed entirely) and modified 1-4 pairs
    (computed with the force field's ``scale14_*`` factors regardless of
    whether they currently fall inside the cutoff — they always do for sane
    geometries, but the unconditional treatment matches CHARMM).

    ``pairlist`` may be a :class:`repro.md.pairlist.VerletPairList`; the
    candidate enumeration is then served from (and maintained in) the list
    instead of rebuilding the cell grid every call.
    """
    options = options or NonbondedOptions()
    n = system.n_atoms
    forces = np.zeros((n, 3), dtype=np.float64)
    if n < 2:
        return NonbondedResult(0.0, 0.0, forces, 0)

    pos = system.positions
    box = system.box

    if pairlist is not None:
        i_cand, j_cand = pairlist.pairs(pos, box)
    else:
        i_cand, j_cand = candidate_pairs(pos, box, options.cutoff)
    e_lj_total, e_el_total, n_pairs = nonbonded_kernel(
        system, i_cand, j_cand, options, forces, backend=backend, coulomb=coulomb
    )
    e_lj14, e_el14, n14 = nonbonded_14(
        system, options, forces, backend=backend, coulomb=coulomb
    )
    return NonbondedResult(
        e_lj_total + e_lj14, e_el_total + e_el14, forces, n_pairs + n14
    )


def count_interacting_pairs(
    pos_a: np.ndarray,
    pos_b: np.ndarray | None,
    box: np.ndarray,
    cutoff: float,
) -> int:
    """Number of atom pairs within ``cutoff`` (minimum image).

    With ``pos_b is None`` counts unordered pairs within ``pos_a``; otherwise
    counts cross pairs between the two groups.  This is the quantity the cost
    model (:mod:`repro.costmodel`) uses to assign loads to non-bonded compute
    objects — the grainsize structure in the paper's Figures 1–2 is exactly
    the distribution of this count over objects.
    """
    if pos_b is None:
        m = len(pos_a)
        if m < 2:
            return 0
        delta = minimum_image(
            pos_a[np.newaxis, :, :] - pos_a[:, np.newaxis, :], box
        )
        r2 = np.einsum("ijk,ijk->ij", delta, delta)
        within = r2 < cutoff * cutoff
        return int((np.count_nonzero(within) - m) // 2)
    if len(pos_a) == 0 or len(pos_b) == 0:
        return 0
    delta = minimum_image(pos_b[np.newaxis, :, :] - pos_a[:, np.newaxis, :], box)
    r2 = np.einsum("ijk,ijk->ij", delta, delta)
    return int(np.count_nonzero(r2 < cutoff * cutoff))
