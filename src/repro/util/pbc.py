"""Orthorhombic periodic-boundary-condition helpers.

All routines operate on an orthorhombic box described by a length-3 array
``box = (Lx, Ly, Lz)``.  Positions live in the half-open cell ``[0, L)`` on
each axis after wrapping.  The minimum-image convention is valid whenever the
interaction cutoff is at most half the smallest box edge, which the patch
decomposition in :mod:`repro.core.decomposition` enforces.

Contract: callers may hold positions arbitrarily far outside the primary
cell (e.g. unwrapped trajectories); consumers that index spatial structures
must fold them with :func:`wrap_positions` first — clamping is never correct,
because a coordinate just below ``0`` belongs near ``L``, not near ``0``.
:meth:`repro.md.cells.CellGrid.build` applies this wrap itself, so cell
assignment is image-invariant.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minimum_image", "wrap_positions", "box_volume", "displacement_table"]


def minimum_image(delta: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    Parameters
    ----------
    delta:
        Array of shape ``(..., 3)`` of raw displacements ``r_j - r_i``.
    box:
        Orthorhombic box lengths, shape ``(3,)``.

    Returns
    -------
    numpy.ndarray
        Displacements folded into ``[-L/2, L/2)`` per axis (same shape).
    """
    box = np.asarray(box, dtype=np.float64)
    return delta - box * np.round(delta / box)


def wrap_positions(positions: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Fold positions into the primary cell ``[0, L)`` on each axis."""
    box = np.asarray(box, dtype=np.float64)
    wrapped = np.mod(positions, box)
    # np.mod can return exactly L for tiny negative inputs due to rounding;
    # fold those onto 0 so downstream cell indexing stays in range.
    wrapped[wrapped >= box] = 0.0
    return wrapped


def box_volume(box: np.ndarray) -> float:
    """Volume of an orthorhombic box in cubic Angstroms."""
    box = np.asarray(box, dtype=np.float64)
    if box.shape != (3,):
        raise ValueError(f"box must have shape (3,), got {box.shape}")
    return float(np.prod(box))


def displacement_table(
    pos_a: np.ndarray, pos_b: np.ndarray, box: np.ndarray | None
) -> np.ndarray:
    """All-pairs displacement vectors ``pos_b[j] - pos_a[i]``.

    Returns an array of shape ``(len(pos_a), len(pos_b), 3)``.  When ``box``
    is given, the minimum-image convention is applied.  Intended for small
    blocks (patch-sized groups of atoms); the memory cost is ``O(n*m)``.
    """
    delta = pos_b[np.newaxis, :, :] - pos_a[:, np.newaxis, :]
    if box is not None:
        delta = minimum_image(delta, np.asarray(box, dtype=np.float64))
    return delta
