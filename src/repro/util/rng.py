"""Deterministic random-number-generator construction.

Every stochastic component of the reproduction (structure builders, velocity
initialisation, baseline load-balancing strategies) accepts a ``seed`` and
routes it through :func:`make_rng` so that benchmark tables are bit-for-bit
repeatable across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged) so that helpers can be
    composed without reseeding, an integer seed, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
