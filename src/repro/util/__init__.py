"""Shared utilities: periodic boundary helpers and seeded randomness."""

from repro.util.pbc import (
    minimum_image,
    wrap_positions,
    box_volume,
    displacement_table,
)
from repro.util.rng import make_rng

__all__ = [
    "minimum_image",
    "wrap_positions",
    "box_volume",
    "displacement_table",
    "make_rng",
]
