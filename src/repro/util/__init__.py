"""Shared utilities: periodic boundaries, seeded randomness, crash-safe IO."""

from repro.util.cpus import available_cpu_count
from repro.util.fileio import atomic_write_bytes, atomic_write_text
from repro.util.pbc import (
    minimum_image,
    wrap_positions,
    box_volume,
    displacement_table,
)
from repro.util.rng import make_rng

__all__ = [
    "available_cpu_count",
    "minimum_image",
    "wrap_positions",
    "box_volume",
    "displacement_table",
    "make_rng",
    "atomic_write_bytes",
    "atomic_write_text",
]
