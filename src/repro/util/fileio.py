"""Crash-safe file writes.

A process killed mid-``write_text`` leaves a truncated file — exactly the
failure mode the resilience layer injects on purpose.  Every artifact the
driver persists while workers may be dying around it (WorkDB dumps, run
checkpoints, benchmark payloads) goes through :func:`atomic_write_bytes`:
write to a temporary file in the *same directory*, flush + fsync, then
``os.replace`` onto the destination.  POSIX rename atomicity guarantees a
reader sees either the old complete file or the new complete file, never a
torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (tmp file + fsync + rename)."""
    atomic_write_bytes(path, text.encode(encoding))
