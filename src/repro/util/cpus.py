"""CPU-count detection that respects cgroup/affinity limits.

``os.cpu_count()`` reports the *machine's* cores; in containers and CI
runners pinned to a subset (cpusets, ``taskset``, cgroup quotas surfaced
as affinity masks) that oversubscribes any pool sized from it — every
worker beyond the allowed set just timeslices the same cores and inflates
per-task time measurements.  ``os.sched_getaffinity(0)`` reports the CPUs
this process may actually run on, where the platform provides it.
"""

from __future__ import annotations

import os

__all__ = ["available_cpu_count"]


def available_cpu_count() -> int:
    """Number of CPUs available to *this process* (>= 1).

    Prefers the scheduling affinity mask (cgroup/cpuset aware); falls back
    to ``os.cpu_count()`` on platforms without ``sched_getaffinity``
    (macOS, Windows).
    """
    try:
        n = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        n = 0
    if n <= 0:
        n = os.cpu_count() or 1
    return n
