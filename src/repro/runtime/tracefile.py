"""Trace serialization: dump/load Projections-style logs.

The paper (§4.1) stresses that full traces are "stored in memory buffers
till the end of the program, and output only at the end" so instrumentation
does not perturb the timed steps.  This module is that output stage: a
compact JSON format for execution records plus summary statistics, loadable
for offline analysis (timelines, grainsize histograms) without re-running
the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.runtime.trace import TraceLog

__all__ = ["dump_trace", "load_trace", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def dump_trace(trace: TraceLog, path: str | Path) -> None:
    """Write a trace (records + summary counters) as JSON."""
    summary = trace.summary()
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "n_procs": trace.n_procs,
        "full": trace.full,
        "messages_sent": summary.messages_sent,
        "bytes_sent": summary.bytes_sent,
        "busy_time_per_proc": summary.busy_time_per_proc.tolist(),
        "work_per_proc": summary.work_per_proc.tolist(),
        "send_overhead_per_proc": summary.send_overhead_per_proc.tolist(),
        "recv_overhead_per_proc": summary.recv_overhead_per_proc.tolist(),
        "records": [
            {
                "proc": r.proc,
                "object_id": r.object_id,
                "label": r.label,
                "category": r.category,
                "start": r.start,
                "duration": r.duration,
                "work": r.work,
                "send_overhead": r.send_overhead,
                "recv_overhead": r.recv_overhead,
            }
            for r in trace.records
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: str | Path) -> TraceLog:
    """Reconstruct a :class:`TraceLog` from a JSON dump.

    Records are replayed through ``record_execution`` so the summary
    counters rebuild consistently; the per-proc overhead vectors are then
    overwritten with the stored values (they may include executions recorded
    while ``full`` tracing was off).
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {payload.get('version')!r}"
        )
    trace = TraceLog(int(payload["n_procs"]), full=bool(payload["full"]))
    for r in payload["records"]:
        trace.record_execution(
            r["proc"],
            r["object_id"],
            r["label"],
            r["category"],
            r["start"],
            r["duration"],
            work=r["work"],
            send_overhead=r["send_overhead"],
            recv_overhead=r["recv_overhead"],
        )
    trace._busy = np.array(payload["busy_time_per_proc"])
    trace._work = np.array(payload["work_per_proc"])
    trace._send_overhead = np.array(payload["send_overhead_per_proc"])
    trace._recv_overhead = np.array(payload["recv_overhead_per_proc"])
    trace.messages_sent = int(payload["messages_sent"])
    trace.bytes_sent = float(payload["bytes_sent"])
    return trace
