"""The chare base class: a migratable, message-driven object.

Concrete chares (patches and computes in :mod:`repro.core`) subclass
:class:`Chare` and implement entry methods — ordinary Python methods that the
scheduler invokes when a message for them is dequeued.  An entry method
returns the *modeled CPU cost* of its execution in reference-machine seconds
(usually from :mod:`repro.costmodel`); the scheduler scales it by the machine
model and advances the simulated clock.

Within an entry method a chare communicates only through :meth:`send` /
:meth:`multicast` (asynchronous, costed) or :meth:`local_call` (synchronous
invocation of a co-located object, the analog of Charm++ ``[inline]``
methods).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.runtime.message import Priority

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.scheduler import Scheduler

__all__ = ["Chare"]


class Chare:
    """Base class for data-driven objects.

    Attributes assigned by :meth:`Scheduler.register`:

    * ``object_id`` — runtime-wide id,
    * ``runtime`` — the owning scheduler,
    * ``migratable`` — whether the load balancer may move it (§3.1: bulk
      non-bonded work is migratable; multi-patch bonded work is not).
    """

    #: human-readable category used in traces ("nonbonded", "integrate", ...)
    category: str = "chare"
    migratable: bool = False

    def __init__(self) -> None:
        self.object_id: int = -1
        self.runtime: "Scheduler | None" = None

    # ------------------------------------------------------------------ #
    # communication helpers (valid only during entry-method execution)
    # ------------------------------------------------------------------ #
    @property
    def proc(self) -> int:
        """The processor this chare currently lives on."""
        return self.runtime.location_of(self.object_id)

    def send(
        self,
        dest_object: int,
        method: str,
        data: dict | None = None,
        size_bytes: float = 64.0,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Asynchronously invoke ``method`` on another chare."""
        self.runtime.post_send(
            self.object_id, dest_object, method, data or {}, size_bytes, priority
        )

    def multicast(
        self,
        dest_objects: Iterable[int],
        method: str,
        data: dict | None = None,
        size_bytes: float = 64.0,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Send identical data to many chares.

        With the runtime's ``optimized_multicast`` flag set, the message body
        is packed once and only per-destination header costs repeat — the
        §4.2.3 optimization.  Otherwise each destination pays the full
        allocation + packing cost, as NAMD originally did.
        """
        self.runtime.post_multicast(
            self.object_id, list(dest_objects), method, data or {}, size_bytes, priority
        )

    def local_call(self, dest_object: int, method: str, **kwargs) -> object:
        """Synchronously invoke a method on a co-located chare (zero cost).

        The analog of calling a local C++ object directly; used for force
        deposition from a compute into a patch/proxy on the same processor.
        Raises if the target lives on a different processor.
        """
        return self.runtime.invoke_local(self.object_id, dest_object, method, kwargs)

    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """Display name for traces; subclasses override."""
        return f"{type(self).__name__}#{self.object_id}"
