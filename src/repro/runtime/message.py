"""Messages: remote entry-method invocations in flight.

A Charm++ method invocation is a message carrying the target object, the
entry-method name, and parameters.  Here the payload is a plain dict; the
``size_bytes`` field (what the real message would occupy on the wire) drives
the machine model's packing and transit costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

__all__ = ["Message", "MulticastPayload", "Priority"]


class Priority(IntEnum):
    """Message priorities for the per-processor scheduler queue.

    Lower values run first, mirroring Charm++'s prioritized queue.  NAMD
    prioritizes position delivery and remote-force work so the critical path
    (data for off-processor computes) is served before local work.
    """

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass
class Message:
    """One in-flight entry-method invocation."""

    dest_object: int  # runtime object id
    method: str  # entry-method name on the target chare
    data: dict = field(default_factory=dict)
    size_bytes: float = 64.0  # wire size; headers make even empty msgs cost
    priority: int = Priority.NORMAL
    #: source object id (for the LB communication graph); -1 = runtime
    src_object: int = -1
    #: set by the scheduler when the message is injected / delivered
    send_time: float = 0.0
    arrival_time: float = 0.0
    seq: int = -1
    #: fault-injected duplicate delivery; the receiver suppresses the second
    #: copy (at-most-once semantics) but still pays receive overhead
    is_duplicate: bool = False

    def sort_key(self) -> tuple[int, int]:
        """Queue ordering: priority first, then FIFO by sequence number."""
        return (self.priority, self.seq)


@dataclass
class MulticastPayload:
    """One multicast body, packed once and shared by every destination.

    The paper's §4.2.3 optimization: the runtime serializes the multicast
    data a single time, then fans out lightweight per-destination envelopes
    that all reference this payload.  :meth:`envelope` mints one such
    envelope — a plain :class:`Message` whose ``data`` *is* this payload's
    dict (shared identity, never copied).
    """

    method: str
    data: dict = field(default_factory=dict)
    size_bytes: float = 64.0
    priority: int = Priority.NORMAL
    src_object: int = -1

    def envelope(self, dest_object: int) -> Message:
        """A per-destination envelope referencing the shared payload."""
        return Message(
            dest_object=dest_object,
            method=self.method,
            data=self.data,
            size_bytes=self.size_bytes,
            priority=self.priority,
            src_object=self.src_object,
        )
