"""Machine models: the simulated analog of the Converse machine layer.

Each model captures the handful of parameters that determine parallel MD
performance at the message level:

* ``cpu_factor`` — compute speed relative to one ASCI-Red processor (the
  cost model's reference machine; smaller is faster),
* per-message CPU overheads for sending/receiving (the "overhead" and
  "receives" columns of the paper's Table 1),
* per-byte packing cost (what the optimized multicast of §4.2.3 eliminates
  for all but one copy),
* network latency and bandwidth.

Values are representative of the era's published MPI micro-benchmarks; the
reproduction's claims rest on the *shape* they induce, not the exact
microseconds (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineModel", "ASCI_RED", "T3E_900", "ORIGIN_2000", "GENERIC_CLUSTER", "MACHINES"]


@dataclass(frozen=True)
class MachineModel:
    """Parameters of a simulated message-passing machine."""

    name: str
    #: execution-time multiplier relative to the ASCI-Red reference CPU
    cpu_factor: float
    #: CPU seconds to initiate one remote send (allocation, header, driver)
    send_overhead_s: float
    #: CPU seconds to receive/dispatch one remote message
    recv_overhead_s: float
    #: CPU seconds per byte to pack/copy an outgoing message body
    pack_per_byte_s: float
    #: one-way network latency, seconds
    latency_s: float
    #: network bandwidth, bytes/second
    bandwidth_Bps: float
    #: CPU seconds to enqueue a message for a co-located object
    local_send_overhead_s: float = 1.0e-6
    #: maximum processor count the real machine offered (for table sweeps)
    max_procs: int = 4096

    def __post_init__(self) -> None:
        if self.cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")
        for fld in ("send_overhead_s", "recv_overhead_s", "pack_per_byte_s", "latency_s"):
            if getattr(self, fld) < 0:
                raise ValueError(f"{fld} must be non-negative")

    def transit_time(self, size_bytes: float) -> float:
        """Network time for a message body of ``size_bytes``."""
        return self.latency_s + size_bytes / self.bandwidth_Bps

    def pack_time(self, size_bytes: float) -> float:
        """CPU time to pack/copy a message body once."""
        return size_bytes * self.pack_per_byte_s

    def with_overrides(self, **kwargs) -> "MachineModel":
        """A copy with selected fields replaced (for ablation studies)."""
        return replace(self, **kwargs)


#: Sandia ASCI-Red: 333 MHz Pentium II Xeon, custom mesh network.  The cost
#: model's reference machine (cpu_factor = 1).
ASCI_RED = MachineModel(
    name="ASCI-Red",
    cpu_factor=1.0,
    send_overhead_s=22e-6,
    recv_overhead_s=15e-6,
    # effective marshalling rate ~45 MB/s: allocation + copy + header
    # construction on a 333 MHz Pentium II, calibrated so the Table 1 audit's
    # Overhead column lands near the paper's 7.97 ms at 1024 procs
    pack_per_byte_s=22e-9,
    latency_s=20e-6,
    bandwidth_Bps=310e6,
    max_procs=4096,
)

#: PSC Cray T3E-900: 450 MHz Alpha EV5, very low-latency torus.  Per-CPU
#: speed from Table 5 (ApoA-I at 4 procs: 10.7 s vs 14.7 s on ASCI-Red).
T3E_900 = MachineModel(
    name="T3E-900",
    cpu_factor=0.73,
    send_overhead_s=8e-6,
    recv_overhead_s=6e-6,
    pack_per_byte_s=12e-9,
    latency_s=9e-6,
    bandwidth_Bps=330e6,
    max_procs=512,
)

#: NCSA SGI Origin 2000: 250 MHz R10000, ccNUMA.  Per-CPU speed from
#: Table 6 (ApoA-I at 1 proc: 24.4 s vs 57.1 s on ASCI-Red).
ORIGIN_2000 = MachineModel(
    name="Origin-2000",
    cpu_factor=0.427,
    send_overhead_s=10e-6,
    recv_overhead_s=8e-6,
    pack_per_byte_s=10e-9,
    latency_s=10e-6,
    bandwidth_Bps=160e6,
    max_procs=128,
)

#: A generic commodity cluster, for examples that are not reproducing a
#: specific table.
GENERIC_CLUSTER = MachineModel(
    name="generic-cluster",
    cpu_factor=0.5,
    send_overhead_s=25e-6,
    recv_overhead_s=20e-6,
    pack_per_byte_s=10e-9,
    latency_s=50e-6,
    bandwidth_Bps=100e6,
    max_procs=1024,
)

MACHINES: dict[str, MachineModel] = {
    m.name: m for m in (ASCI_RED, T3E_900, ORIGIN_2000, GENERIC_CLUSTER)
}
