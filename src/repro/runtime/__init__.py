"""A Charm++/Converse-style runtime on a simulated parallel machine.

The paper's NAMD is built on Charm++: collections of C++ objects ("chares")
that communicate by remote method invocation, scheduled from per-processor
prioritized queues, with migration and measurement-based load balancing
provided by the runtime (paper §2.2).

This package reproduces that programming model in Python, executing on a
*discrete-event simulation* of a message-passing machine instead of real
hardware (see DESIGN.md §2 for why this substitution preserves the paper's
results).  The mapping is one-to-one:

=====================  ==========================================
Charm++ concept        Here
=====================  ==========================================
chare                  :class:`repro.runtime.chare.Chare`
entry method           a method invoked via :meth:`Chare.send`
prioritized scheduler  :class:`repro.runtime.scheduler.Scheduler`
Converse machine layer :class:`repro.runtime.machine.MachineModel`
Projections traces     :class:`repro.runtime.trace.TraceLog`
LB database            :class:`repro.runtime.stats.LBDatabase`
multicast utility      :meth:`Chare.multicast` (§4.2.3)
object migration       :meth:`Scheduler.migrate`
=====================  ==========================================
"""

from repro.runtime.machine import MachineModel, MACHINES, ASCI_RED, T3E_900, ORIGIN_2000
from repro.runtime.message import Message, Priority
from repro.runtime.chare import Chare
from repro.runtime.faults import (
    FaultPlan,
    MessageFaults,
    ProcessorFailure,
    SlowdownWindow,
)
from repro.runtime.checkpoint import (
    Checkpoint,
    DoubleCheckpointStore,
    RecoveryEvent,
    RecoveryStats,
    UnrecoverableFailure,
    restore_chare,
    snapshot_chare,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import TraceLog, ExecutionRecord
from repro.runtime.stats import LBDatabase, ObjectStats

__all__ = [
    "MachineModel",
    "MACHINES",
    "ASCI_RED",
    "T3E_900",
    "ORIGIN_2000",
    "Message",
    "Priority",
    "Chare",
    "FaultPlan",
    "MessageFaults",
    "ProcessorFailure",
    "SlowdownWindow",
    "Checkpoint",
    "DoubleCheckpointStore",
    "RecoveryEvent",
    "RecoveryStats",
    "UnrecoverableFailure",
    "snapshot_chare",
    "restore_chare",
    "Scheduler",
    "TraceLog",
    "ExecutionRecord",
    "LBDatabase",
    "ObjectStats",
]
