"""Deterministic fault injection for the simulated runtime.

The paper motivates the adaptive runtime with machines that *misbehave*
(externally loaded workstation clusters, §2.1); this module extends the
simulation beyond slowdowns to outright failures, in the direction the
Charm++ lineage later took with in-memory double checkpointing.

A :class:`FaultPlan` is a fully deterministic schedule of faults:

* **fail-stop processor death** at a given simulated time
  (:class:`ProcessorFailure`),
* **transient slowdown windows** during which a processor's CPU time is
  multiplied by a factor (:class:`SlowdownWindow`),
* **per-message drop / delay / duplicate** faults, decided per message from
  a counter-based RNG stream (:class:`MessageFaults`).

Determinism is the load-bearing property: every message decision is drawn
from ``default_rng((seed, message_seq, attempt))``, so two runs with the
same plan see byte-identical fault sequences regardless of wall-clock or
Python hash state — which is what makes fault-injection tests (and the
recovery-equivalence invariant) reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import NamedTuple

import numpy as np

__all__ = [
    "ProcessorFailure",
    "SlowdownWindow",
    "MessageFaults",
    "MessageFate",
    "FaultPlan",
    "MAX_RETRANSMITS",
]

#: Retransmit attempts before a dropped message is assumed delivered (the
#: modeled sender keeps retrying with exponential backoff; bounding the
#: count guarantees liveness of the simulation itself).
MAX_RETRANSMITS = 6


@dataclass(frozen=True)
class ProcessorFailure:
    """Fail-stop death of processor ``proc`` at simulated time ``time``."""

    proc: int
    time: float


@dataclass(frozen=True)
class SlowdownWindow:
    """CPU on ``proc`` runs ``factor`` times slower during [start, end)."""

    proc: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if self.end <= self.start:
            raise ValueError("slowdown window must have positive length")


@dataclass(frozen=True)
class MessageFaults:
    """Rates of per-message communication faults.

    ``drop_rate`` messages are lost and retransmitted with exponential
    backoff (``retry_base_s * 2^attempt``); ``delay_rate`` messages arrive
    late by up to ``delay_s``; ``duplicate_rate`` messages arrive twice
    (the duplicate is suppressed by the receiver — at-most-once delivery).
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 1e-4
    duplicate_rate: float = 0.0
    retry_base_s: float = 5e-5

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")

    @property
    def active(self) -> bool:
        """True when any fault rate is nonzero."""
        return bool(self.drop_rate or self.delay_rate or self.duplicate_rate)


class MessageFate(NamedTuple):
    """Outcome of the fault draw for one scheduled message."""

    drops: int  # number of transmissions lost before one got through
    extra_delay: float  # seconds added on top of normal transit
    duplicated: bool  # a second (suppressed) copy also arrives


_CLEAN = MessageFate(0, 0.0, False)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded schedule of runtime faults."""

    seed: int = 0
    failures: tuple[ProcessorFailure, ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()
    message_faults: MessageFaults = field(default_factory=MessageFaults)

    # ------------------------------------------------------------------ #
    def message_fate(self, message_seq: int) -> MessageFate:
        """Deterministic fate of the message scheduled with ``message_seq``.

        A dropped transmission is retried (each retry gets its own draw), so
        the returned fate folds the whole retransmit episode into one drop
        count plus the backoff delay computed by the caller.
        """
        mf = self.message_faults
        if not mf.active:
            return _CLEAN
        drops = 0
        while drops < MAX_RETRANSMITS:
            rng = np.random.default_rng((self.seed, message_seq, drops))
            u_drop, u_delay, u_dup, u_jitter = rng.random(4)
            if u_drop < mf.drop_rate:
                drops += 1
                continue
            extra = mf.delay_s * (0.5 + u_jitter) if u_delay < mf.delay_rate else 0.0
            return MessageFate(drops, extra, u_dup < mf.duplicate_rate)
        return MessageFate(drops, 0.0, False)

    def retransmit_delay(self, drops: int) -> float:
        """Total backoff delay for ``drops`` lost transmissions."""
        base = self.message_faults.retry_base_s
        return float(base * (2.0**drops - 1.0))  # sum of base * 2^k

    def slowdown_factor(self, proc: int, time: float) -> float:
        """Combined slowdown multiplier for ``proc`` at ``time``."""
        factor = 1.0
        for w in self.slowdowns:
            if w.proc == proc and w.start <= time < w.end:
                factor *= w.factor
        return factor

    @property
    def has_slowdowns(self) -> bool:
        """True when any slowdown window is scheduled."""
        return bool(self.slowdowns)

    # ------------------------------------------------------------------ #
    def shifted(self, offset: float) -> "FaultPlan":
        """The plan in a clock that starts ``offset`` seconds later.

        Used by the multi-phase driver: each phase's scheduler clock starts
        at zero, so the global plan is re-expressed in phase-local time.
        Failures whose time has already passed are dropped (the driver
        carries the resulting dead-processor set forward explicitly).
        """
        if offset == 0.0:
            return self
        return replace(
            self,
            failures=tuple(
                ProcessorFailure(f.proc, f.time - offset)
                for f in self.failures
                if f.time - offset >= 0.0
            ),
            slowdowns=tuple(
                SlowdownWindow(w.proc, w.start - offset, w.end - offset, w.factor)
                for w in self.slowdowns
                if w.end - offset > 0.0
            ),
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI string.

        Comma-separated clauses::

            seed=<int>
            kill=<proc>@<time>
            slow=<proc>@<start>-<end>x<factor>
            drop=<rate>          delay=<rate>@<seconds>
            dup=<rate>           retry=<seconds>

        Example: ``"seed=7,kill=2@0.004,drop=0.01,delay=0.02@1e-4"``.
        """
        seed = 0
        failures: list[ProcessorFailure] = []
        slowdowns: list[SlowdownWindow] = []
        mf: dict[str, float] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(f"bad fault clause {clause!r} (expected key=value)")
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = int(value)
            elif key == "kill":
                proc, _, t = value.partition("@")
                failures.append(ProcessorFailure(int(proc), float(t)))
            elif key == "slow":
                proc, _, rest = value.partition("@")
                window, _, factor = rest.partition("x")
                start, _, end = window.partition("-")
                slowdowns.append(
                    SlowdownWindow(int(proc), float(start), float(end), float(factor))
                )
            elif key == "drop":
                mf["drop_rate"] = float(value)
            elif key == "delay":
                rate, _, secs = value.partition("@")
                mf["delay_rate"] = float(rate)
                if secs:
                    mf["delay_s"] = float(secs)
            elif key == "dup":
                mf["duplicate_rate"] = float(value)
            elif key == "retry":
                mf["retry_base_s"] = float(value)
            else:
                raise ValueError(f"unknown fault clause key {key!r}")
        return cls(
            seed=seed,
            failures=tuple(failures),
            slowdowns=tuple(slowdowns),
            message_faults=MessageFaults(**mf),
        )
