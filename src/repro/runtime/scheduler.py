"""The data-driven scheduler on a simulated machine.

This is the reproduction's analog of Charm++/Converse execution (paper
§2.2): every processor keeps a prioritized queue of entry-method invocations;
the scheduler "repeatedly picks the next available message, and invokes the
indicated method on the indicated object with the message parameters".

Because the machine is simulated, *work* and *time* are decoupled: entry
methods run as ordinary Python (mutating chare state, posting sends) but
declare their modeled CPU cost, expressed in reference-machine seconds, as
their return value.  The scheduler scales costs by the machine model, charges
per-message send/receive/packing overheads, and advances per-processor
clocks through a global event heap — a classic conservative discrete-event
simulation whose event ordering is deterministic (ties broken by sequence
number).

Key behaviours reproduced from the paper:

* prioritized per-processor queues (§2.2),
* adaptive overlap of communication and computation — a processor executes
  whatever is ready while messages for other objects are in flight,
* the optimized multicast (§4.2.3): pack once vs. pack per destination,
* object migration (§3.2) with location-transparent addressing,
* always-on load instrumentation feeding the LB database, and optional full
  traces feeding Projections-style analysis (§4.1).
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.runtime.chare import Chare
from repro.runtime.faults import FaultPlan
from repro.runtime.machine import MachineModel
from repro.runtime.message import Message, MulticastPayload, Priority
from repro.runtime.stats import LBDatabase, MulticastStats
from repro.runtime.trace import TraceLog

__all__ = ["Scheduler"]

_ARRIVE = 0
_COMPLETE = 1
_CONTROL = 2
_FAULT = 3


class Scheduler:
    """Simulated Charm++ runtime over ``n_procs`` processors."""

    def __init__(
        self,
        n_procs: int,
        machine: MachineModel,
        trace_full: bool = False,
        optimized_multicast: bool = True,
        proc_speed_factors: "np.ndarray | None" = None,
        fault_plan: "FaultPlan | None" = None,
        initially_dead: "set[int] | None" = None,
        start_time: float = 0.0,
        record_events: bool = False,
    ) -> None:
        """``proc_speed_factors`` models a heterogeneous or externally
        loaded machine (paper §2.1 / ref [3] "Adapting to load on
        workstation clusters"): all CPU time on processor ``p`` is
        multiplied by ``proc_speed_factors[p]`` (>1 = slower).  The cost
        model cannot know these factors — only runtime *measurement* can,
        which is the paper's case for measurement-based balancing.

        ``fault_plan`` injects deterministic faults (processor death,
        slowdown windows, message drop/delay/duplicate).  ``initially_dead``
        marks processors already lost before this scheduler started (a
        recovery continuation on a degraded machine); ``start_time`` offsets
        the clock so recovery timelines stay contiguous.  ``record_events``
        keeps an execution trace for determinism checks."""
        if n_procs < 1:
            raise ValueError("need at least one processor")
        self.n_procs = n_procs
        self.machine = machine
        self.optimized_multicast = optimized_multicast
        self.fault_plan = fault_plan
        self.dead_procs: set[int] = set(initially_dead or ())
        if any(not (0 <= p < n_procs) for p in self.dead_procs):
            raise ValueError("initially_dead processor out of range")
        if len(self.dead_procs) >= n_procs:
            raise ValueError("at least one processor must survive")
        self.start_time = start_time
        self.failure_times: dict[int, float] = {}
        self.fault_stats = {
            "drops": 0,
            "delays": 0,
            "duplicates": 0,
            "dead_dropped": 0,
            "suppressed_duplicates": 0,
        }
        self.event_log: list[tuple] | None = [] if record_events else None
        if proc_speed_factors is None:
            self._speed = np.ones(n_procs)
        else:
            self._speed = np.asarray(proc_speed_factors, dtype=np.float64)
            if self._speed.shape != (n_procs,) or np.any(self._speed <= 0):
                raise ValueError("proc_speed_factors must be positive, one per proc")
        self.trace = TraceLog(n_procs, full=trace_full)
        self.lb_db = LBDatabase()
        self.multicast_stats = MulticastStats()

        self._objects: dict[int, Chare] = {}
        self._location: dict[int, int] = {}
        self._next_object_id = 0

        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._pending: list[list[tuple[tuple[int, int], Message]]] = [
            [] for _ in range(n_procs)
        ]
        self._busy = np.zeros(n_procs, dtype=bool)
        self._clock = start_time  # time of the event being processed
        self._instrument = True
        self._has_slowdowns = fault_plan is not None and fault_plan.has_slowdowns
        self._message_faults_active = (
            fault_plan is not None and fault_plan.message_faults.active
        )
        # schedule the plan's fail-stop events; deaths scheduled before this
        # scheduler's epoch but not yet acknowledged take effect immediately
        if fault_plan is not None:
            for f in fault_plan.failures:
                if not (0 <= f.proc < n_procs):
                    raise ValueError(f"fault plan kills unknown processor {f.proc}")
                if f.proc in self.dead_procs:
                    continue
                if f.time < start_time:
                    self.dead_procs.add(f.proc)
                    self.failure_times[f.proc] = start_time
                else:
                    self._push(f.time, _FAULT, f.proc)

        # set during an entry-method execution
        self._current: Chare | None = None
        self._current_sends: list[tuple[Message, int]] = []  # (msg, dest_proc)
        # (shared payload, destination object ids); envelopes are minted at
        # delivery time so the body exists exactly once per multicast
        self._current_multicasts: list[tuple[MulticastPayload, list[int]]] = []
        self._current_controls: list[object] = []
        self._control_handler: Callable[[float, object], None] | None = None

    # ------------------------------------------------------------------ #
    # object management
    # ------------------------------------------------------------------ #
    def register(self, chare: Chare, proc: int) -> int:
        """Place a chare on ``proc``; returns its object id."""
        if not (0 <= proc < self.n_procs):
            raise ValueError(f"processor {proc} out of range 0..{self.n_procs - 1}")
        if proc in self.dead_procs:
            raise ValueError(f"cannot place object on dead processor {proc}")
        oid = self._next_object_id
        self._next_object_id += 1
        chare.object_id = oid
        chare.runtime = self
        self._objects[oid] = chare
        self._location[oid] = proc
        return oid

    def object(self, object_id: int) -> Chare:
        """The chare registered under ``object_id``."""
        return self._objects[object_id]

    def location_of(self, object_id: int) -> int:
        """Current processor of an object (location manager lookup)."""
        return self._location[object_id]

    def migrate(self, object_id: int, new_proc: int) -> None:
        """Move an object (between steps; migration latency is not modeled
        because the paper's steady-state step times exclude LB pauses)."""
        if not (0 <= new_proc < self.n_procs):
            raise ValueError(f"processor {new_proc} out of range")
        if new_proc in self.dead_procs:
            raise ValueError(
                f"cannot migrate object {object_id} onto dead processor {new_proc}"
            )
        if not self._objects[object_id].migratable:
            raise ValueError(f"object {object_id} is not migratable")
        self._location[object_id] = new_proc

    def objects_on(self, proc: int) -> list[int]:
        """Ids of all objects currently living on ``proc``."""
        return [oid for oid, p in self._location.items() if p == proc]

    # ------------------------------------------------------------------ #
    # time and instrumentation
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time (of the event being processed)."""
        return self._clock

    def set_instrumentation(self, enabled: bool) -> None:
        """Gate LB-database and trace accumulation (e.g. during warmup)."""
        self._instrument = enabled

    def set_control_handler(self, handler: Callable[[float, object], None]) -> None:
        """Install the driver callback for control notifications."""
        self._control_handler = handler

    # ------------------------------------------------------------------ #
    # sending (called by chares during entry-method execution)
    # ------------------------------------------------------------------ #
    def post_send(
        self,
        src_object: int,
        dest_object: int,
        method: str,
        data: dict,
        size_bytes: float,
        priority: int = Priority.NORMAL,
    ) -> None:
        msg = Message(
            dest_object=dest_object,
            method=method,
            data=data,
            size_bytes=size_bytes,
            priority=priority,
            src_object=src_object,
        )
        self._current_sends.append((msg, self._location[dest_object]))

    def post_multicast(
        self,
        src_object: int,
        dest_objects: list[int],
        method: str,
        data: dict,
        size_bytes: float,
        priority: int = Priority.NORMAL,
    ) -> None:
        payload = MulticastPayload(
            method=method,
            data=data,
            size_bytes=size_bytes,
            priority=priority,
            src_object=src_object,
        )
        self._current_multicasts.append((payload, list(dest_objects)))

    def post_control(self, payload: object) -> None:
        """Zero-cost notification delivered to the driver at completion time.

        Stands in for NAMD's asynchronous reductions (energies, step
        counting), which do not gate the timestep critical path.
        """
        self._current_controls.append(payload)

    def invoke_local(
        self, src_object: int, dest_object: int, method: str, kwargs: dict
    ) -> object:
        """Synchronous local invocation (Charm++ ``[inline]`` analog)."""
        if self._location[dest_object] != self._location[src_object]:
            raise RuntimeError(
                f"local_call from {src_object} to {dest_object}: objects are on "
                f"different processors"
            )
        return getattr(self._objects[dest_object], method)(**kwargs)

    def inject(
        self,
        dest_object: int,
        method: str,
        data: dict | None = None,
        size_bytes: float = 64.0,
        priority: int = Priority.NORMAL,
        at_time: float | None = None,
    ) -> None:
        """Driver-level message injection (e.g. "start step" broadcasts)."""
        msg = Message(
            dest_object=dest_object,
            method=method,
            data=data or {},
            size_bytes=size_bytes,
            priority=priority,
        )
        self._schedule_arrival(msg, self._location[dest_object],
                               self._clock if at_time is None else at_time)

    # ------------------------------------------------------------------ #
    # event machinery
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def _schedule_arrival(self, msg: Message, dest_proc: int, at: float) -> None:
        msg.seq = self._seq
        if self._message_faults_active and not msg.is_duplicate:
            at = self._apply_message_faults(msg, dest_proc, at)
        msg.arrival_time = at
        self._push(at, _ARRIVE, (msg, dest_proc))

    def _apply_message_faults(self, msg: Message, dest_proc: int, at: float) -> float:
        """Perturb one delivery per the fault plan; returns the arrival time.

        Drops are modeled as delivered-after-retransmit: the sender retries
        with exponential backoff until a copy gets through (bounded by
        ``MAX_RETRANSMITS``), so the protocol stays live and the fault shows
        up purely as latency.  Duplicates enqueue a second, flagged copy
        that the receive path suppresses (at-most-once delivery).
        """
        plan = self.fault_plan
        fate = plan.message_fate(msg.seq)
        if fate.drops:
            self.fault_stats["drops"] += fate.drops
            at += plan.retransmit_delay(fate.drops)
        if fate.extra_delay:
            self.fault_stats["delays"] += 1
            at += fate.extra_delay
        if fate.duplicated:
            self.fault_stats["duplicates"] += 1
            dup = Message(
                dest_object=msg.dest_object,
                method=msg.method,
                data=msg.data,
                size_bytes=msg.size_bytes,
                priority=msg.priority,
                src_object=msg.src_object,
                send_time=msg.send_time,
                is_duplicate=True,
            )
            # distinct seq so the pending-queue sort key never ties with the
            # original (ties would compare unorderable Message objects)
            dup.seq = self._seq + 1
            dup.arrival_time = at + self.machine.latency_s
            self._push(dup.arrival_time, _ARRIVE, (dup, dest_proc))
        return at

    def run(self, until: float | None = None) -> float:
        """Process events to quiescence (or ``until``); returns final time."""
        while self._heap:
            time, _seq, kind, payload = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._clock = time
            if kind == _ARRIVE:
                msg, proc = payload
                if proc in self.dead_procs:
                    self.fault_stats["dead_dropped"] += 1
                    continue
                heapq.heappush(self._pending[proc], (msg.sort_key(), msg))
                if not self._busy[proc]:
                    self._start_next(proc, time)
            elif kind == _COMPLETE:
                proc = payload
                if proc in self.dead_procs:
                    continue
                self._busy[proc] = False
                if self._pending[proc]:
                    self._start_next(proc, time)
            elif kind == _FAULT:
                self._kill_processor(payload, time)
            else:  # _CONTROL
                if self._control_handler is not None:
                    self._control_handler(time, payload)
        return self._clock

    def _kill_processor(self, proc: int, time: float) -> None:
        """Fail-stop death: queued work vanishes, nothing further runs.

        Entry-method executions are atomic in this simulation, so a death
        takes effect at entry-method boundaries: an execution that already
        started still delivers its sends (its completion event is simply
        ignored).  Recovery restores from the last checkpoint regardless, so
        the coarser crash granularity does not leak into recovered state.
        """
        if proc in self.dead_procs:
            return
        self.dead_procs.add(proc)
        self.failure_times[proc] = time
        self._busy[proc] = False
        self.fault_stats["dead_dropped"] += len(self._pending[proc])
        self._pending[proc].clear()

    def _start_next(self, proc: int, time: float) -> None:
        _key, msg = heapq.heappop(self._pending[proc])
        chare = self._objects.get(msg.dest_object)
        if chare is None:
            raise KeyError(f"message for unknown object {msg.dest_object}")
        # If the object migrated after the message was routed, forward it
        # (NAMD's location manager does the same transparently).
        actual_proc = self._location[msg.dest_object]
        if actual_proc != proc:
            self._schedule_arrival(msg, actual_proc, time + self.machine.latency_s)
            if self._pending[proc]:
                self._start_next(proc, time)
            return

        m = self.machine
        slow = self._speed[proc]
        if self._has_slowdowns:
            slow *= self.fault_plan.slowdown_factor(proc, time)

        if msg.is_duplicate:
            # at-most-once delivery: the runtime detects the redundant copy
            # and discards it, paying only the receive overhead
            self.fault_stats["suppressed_duplicates"] += 1
            self._busy[proc] = True
            self._push(time + m.recv_overhead_s * slow, _COMPLETE, proc)
            return

        if self.event_log is not None:
            self.event_log.append(
                (round(time, 15), proc, msg.dest_object, msg.method, msg.seq)
            )

        self._current = chare
        self._current_sends = []
        self._current_multicasts = []
        self._current_controls = []
        cost = getattr(chare, msg.method)(**msg.data)
        base_cost = float(cost) if cost else 0.0

        work = base_cost * m.cpu_factor * slow
        recv_ovh = (
            m.recv_overhead_s * slow
            if (msg.src_object >= 0 or msg.size_bytes > 0)
            else 0.0
        )

        # charge CPU for every send issued by this execution
        send_cpu, outgoing = self._cost_sends(proc)
        send_cpu *= slow
        duration = work + recv_ovh + send_cpu
        completion = time + duration

        # inject outgoing messages at completion
        for out_msg, dest_proc, remote in outgoing:
            out_msg.send_time = completion
            delay = m.transit_time(out_msg.size_bytes) if remote else 0.0
            self._schedule_arrival(out_msg, dest_proc, completion + delay)
            if self._instrument:
                self.trace.record_send(out_msg.size_bytes)
                self.lb_db.record_send(
                    out_msg.src_object, out_msg.dest_object, out_msg.size_bytes
                )

        for payload in self._current_controls:
            self._push(completion, _CONTROL, payload)

        if self._instrument:
            self.trace.record_execution(
                proc,
                chare.object_id,
                chare.label(),
                chare.category,
                time,
                duration,
                work=work,
                send_overhead=send_cpu,
                recv_overhead=recv_ovh,
            )
            self.lb_db.record_execution(
                chare.object_id, chare.migratable, proc, duration
            )

        self._busy[proc] = True
        self._push(completion, _COMPLETE, proc)
        self._current = None

    def _cost_sends(self, proc: int) -> tuple[float, list[tuple[Message, int, bool]]]:
        """CPU cost of all sends posted by the current execution.

        Returns ``(cpu_seconds, [(message, dest_proc, is_remote), ...])``.
        Multicasts pay packing once (optimized) or per destination (naive);
        point-to-point sends always pay pack + overhead.
        """
        m = self.machine
        cpu = 0.0
        outgoing: list[tuple[Message, int, bool]] = []

        for msg, dest_proc in self._current_sends:
            remote = dest_proc != proc
            if remote:
                cpu += m.send_overhead_s + m.pack_time(msg.size_bytes)
            else:
                cpu += m.local_send_overhead_s
            outgoing.append((msg, dest_proc, remote))

        for payload, dests in self._current_multicasts:
            dest_procs = [self._location[d] for d in dests]
            remote_count = sum(1 for dp in dest_procs if dp != proc)
            local_count = len(dests) - remote_count
            self.multicast_stats.multicasts += 1
            if self.optimized_multicast:
                if remote_count:
                    cpu += m.pack_time(payload.size_bytes)  # pack the body once
                    cpu += remote_count * m.send_overhead_s
                    self.multicast_stats.packs += 1
            else:
                cpu += remote_count * (
                    m.send_overhead_s + m.pack_time(payload.size_bytes)
                )
                self.multicast_stats.packs += remote_count
            cpu += local_count * m.local_send_overhead_s
            # fan out lightweight envelopes, all referencing the one payload
            for dest, dest_proc in zip(dests, dest_procs):
                outgoing.append(
                    (payload.envelope(dest), dest_proc, dest_proc != proc)
                )
                self.multicast_stats.envelopes += 1
        return cpu, outgoing

    # ------------------------------------------------------------------ #
    def quiescent(self) -> bool:
        """True when no events or pending messages remain."""
        return not self._heap and all(len(q) == 0 for q in self._pending)
