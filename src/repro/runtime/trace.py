"""Projections-style tracing (paper §4.1).

Three levels of instrumentation, mirroring the paper:

1. step times — produced by the driver in :mod:`repro.core.simulation`;
2. *summary profiles* — per-entry-method accumulated execution time and
   per-processor busy time, cheap enough to keep always-on;
3. *full traces* — every execution record (processor, object, category,
   start, duration), the data behind the paper's Figures 1–4.

Full traces are buffered in memory and never written during the timed steps,
matching the paper's note that Projections buffers trace data "in memory
buffers till the end of the program".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

__all__ = ["ExecutionRecord", "TraceLog", "SummaryProfile"]


@dataclass
class ExecutionRecord:
    """One entry-method execution on the simulated machine.

    ``duration`` is total busy time; ``work`` is the modeled computation
    alone, with ``send_overhead``/``recv_overhead`` the messaging CPU charged
    to this execution (the "Overhead" and "Receives" columns of Table 1).
    """

    proc: int
    object_id: int
    label: str
    category: str
    start: float
    duration: float
    work: float = 0.0
    send_overhead: float = 0.0
    recv_overhead: float = 0.0

    @property
    def end(self) -> float:
        """Execution end time (start + duration)."""
        return self.start + self.duration


@dataclass
class SummaryProfile:
    """Always-on aggregate statistics (the paper's "summary profile")."""

    busy_time_per_proc: np.ndarray
    work_per_proc: np.ndarray
    send_overhead_per_proc: np.ndarray
    recv_overhead_per_proc: np.ndarray
    time_per_category: dict[str, float]
    count_per_category: dict[str, int]
    messages_sent: int
    bytes_sent: float

    def utilization(self, makespan: float) -> np.ndarray:
        """Per-processor busy fraction over ``makespan`` seconds."""
        if makespan <= 0:
            return np.zeros_like(self.busy_time_per_proc)
        return self.busy_time_per_proc / makespan


class TraceLog:
    """Collects execution records and summary statistics.

    ``full`` enables per-execution records (needed for timelines and
    grainsize histograms); summary accumulation is always on.
    """

    def __init__(self, n_procs: int, full: bool = False) -> None:
        self.n_procs = n_procs
        self.full = full
        self.records: list[ExecutionRecord] = []
        self._busy = np.zeros(n_procs)
        self._work = np.zeros(n_procs)
        self._send_overhead = np.zeros(n_procs)
        self._recv_overhead = np.zeros(n_procs)
        self._cat_time: dict[str, float] = defaultdict(float)
        self._cat_count: dict[str, int] = defaultdict(int)
        self.messages_sent = 0
        self.bytes_sent = 0.0

    # ------------------------------------------------------------------ #
    def record_execution(
        self,
        proc: int,
        object_id: int,
        label: str,
        category: str,
        start: float,
        duration: float,
        work: float = 0.0,
        send_overhead: float = 0.0,
        recv_overhead: float = 0.0,
    ) -> None:
        """Accumulate one entry-method execution into the log."""
        self._busy[proc] += duration
        self._work[proc] += work
        self._send_overhead[proc] += send_overhead
        self._recv_overhead[proc] += recv_overhead
        self._cat_time[category] += work
        self._cat_count[category] += 1
        if self.full:
            self.records.append(
                ExecutionRecord(
                    proc,
                    object_id,
                    label,
                    category,
                    start,
                    duration,
                    work,
                    send_overhead,
                    recv_overhead,
                )
            )

    def record_send(self, size_bytes: float) -> None:
        """Count one outgoing message."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes

    def reset(self) -> None:
        """Clear everything (e.g. after warmup steps)."""
        self.records.clear()
        self._busy[:] = 0.0
        self._work[:] = 0.0
        self._send_overhead[:] = 0.0
        self._recv_overhead[:] = 0.0
        self._cat_time.clear()
        self._cat_count.clear()
        self.messages_sent = 0
        self.bytes_sent = 0.0

    # ------------------------------------------------------------------ #
    def summary(self) -> SummaryProfile:
        """Aggregate statistics snapshot (copies the counters)."""
        return SummaryProfile(
            busy_time_per_proc=self._busy.copy(),
            work_per_proc=self._work.copy(),
            send_overhead_per_proc=self._send_overhead.copy(),
            recv_overhead_per_proc=self._recv_overhead.copy(),
            time_per_category=dict(self._cat_time),
            count_per_category=dict(self._cat_count),
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
        )

    def records_in_window(self, t0: float, t1: float) -> list[ExecutionRecord]:
        """Records overlapping the time window ``[t0, t1)``."""
        return [r for r in self.records if r.end > t0 and r.start < t1]

    def durations_by_category(self, category: str) -> np.ndarray:
        """All execution durations of one category (grainsize data)."""
        return np.array(
            [r.duration for r in self.records if r.category == category], dtype=float
        )

    def proc_timeline(self, proc: int) -> list[ExecutionRecord]:
        """Chronological records of one processor (a Projections timeline)."""
        return sorted(
            (r for r in self.records if r.proc == proc), key=lambda r: r.start
        )
