"""The load-balancing database (paper §2.2).

"The framework automatically instruments all Charm++ objects, collects their
timing and communication data at runtime (in a 'database'), and provides a
standard interface to different load balancing strategies."

The scheduler feeds this database on every entry-method execution and every
send; strategies (:mod:`repro.balancer`) read a :class:`LBSnapshot` — they
never touch the live runtime, mirroring the strategy/framework split the
paper emphasizes.

Since the measurement layer was unified, the per-object timing state lives
in a shared :class:`repro.instrument.WorkDB` (the same class the real
``ParallelEngine`` records into); :class:`LBDatabase` keeps its historical
interface — ``record_execution``/``snapshot``/``reset`` and the
communication graph, which is simulated-runtime-specific — as a thin client
of that database, exposed as :attr:`LBDatabase.workdb`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.instrument import WorkDB

__all__ = ["ObjectStats", "CommEdge", "LBSnapshot", "LBDatabase", "MulticastStats"]


@dataclass
class ObjectStats:
    """Measured data for one object since the last reset."""

    object_id: int
    load: float = 0.0  # accumulated execution time (reference seconds)
    invocations: int = 0
    migratable: bool = False
    proc: int = -1


@dataclass(frozen=True)
class CommEdge:
    """Aggregated communication between two objects."""

    src: int
    dst: int
    messages: int
    bytes: float


@dataclass
class LBSnapshot:
    """A consistent copy of the database handed to a strategy.

    ``background_load`` is the per-processor time spent in non-migratable
    objects — the paper's "background load" that strategies must balance
    migratable objects around.
    """

    objects: dict[int, ObjectStats]
    edges: list[CommEdge]
    background_load: dict[int, float]
    measured_steps: int

    def migratable_objects(self) -> list[ObjectStats]:
        """Stats of migratable objects only (what strategies may move)."""
        return [o for o in self.objects.values() if o.migratable]

    def per_step(self, load: float) -> float:
        """Convert an accumulated load to a per-step load."""
        return load / max(self.measured_steps, 1)


@dataclass
class MulticastStats:
    """Packing accounting for :meth:`Scheduler.post_multicast` (paper §4.2.3).

    ``packs`` counts payload serializations actually performed; with the
    optimized multicast that is exactly one per multicast that reaches at
    least one remote destination, with the naive scheme it is one per remote
    destination.  ``envelopes`` counts per-destination deliveries fanned out
    (local and remote alike).
    """

    multicasts: int = 0
    packs: int = 0
    envelopes: int = 0

    def reset(self) -> None:
        self.multicasts = 0
        self.packs = 0
        self.envelopes = 0


class LBDatabase:
    """Accumulates object loads and the communication graph.

    Timing state is held in :attr:`workdb` (one
    :class:`~repro.instrument.WorkDB`, the measurement layer shared with the
    real parallel engine); this class adds the communication graph and the
    :class:`LBSnapshot` view the simulated runtime's strategies consume.
    ``prior_blend_samples=1`` keeps the simulated runtime's historical
    semantics: one measured phase fully replaces the cost-model prior.
    """

    def __init__(self, workdb: WorkDB | None = None) -> None:
        self.workdb = workdb or WorkDB(
            prior_blend_samples=1, calibrate_prior=False
        )
        self._edges: dict[tuple[int, int], list[float]] = defaultdict(lambda: [0, 0.0])

    @property
    def measured_steps(self) -> int:
        """Steps recorded since the last reset (lives in the WorkDB)."""
        return self.workdb.measured_steps

    def record_execution(
        self, object_id: int, migratable: bool, proc: int, duration: float
    ) -> None:
        self.workdb.record(
            object_id, duration, owner=proc, migratable=migratable
        )

    def record_send(self, src: int, dst: int, size_bytes: float) -> None:
        cell = self._edges[(src, dst)]
        cell[0] += 1
        cell[1] += size_bytes

    def mark_step(self) -> None:
        """Note that one simulation step's worth of data has been recorded."""
        self.workdb.mark_step()

    def reset(self) -> None:
        self.workdb.reset()
        self._edges.clear()

    def snapshot(self) -> LBSnapshot:
        """The copy a centralized strategy receives on processor 0."""
        return LBSnapshot(
            objects={
                oid: ObjectStats(
                    oid, rec.total, rec.n_samples, rec.migratable, rec.owner
                )
                for oid, rec in self.workdb.tasks.items()
            },
            edges=[
                CommEdge(src, dst, int(cnt), float(byt))
                for (src, dst), (cnt, byt) in self._edges.items()
            ],
            background_load=self.workdb.background_totals(),
            measured_steps=self.workdb.measured_steps,
        )
