"""The load-balancing database (paper §2.2).

"The framework automatically instruments all Charm++ objects, collects their
timing and communication data at runtime (in a 'database'), and provides a
standard interface to different load balancing strategies."

The scheduler feeds this database on every entry-method execution and every
send; strategies (:mod:`repro.balancer`) read a :class:`LBSnapshot` — they
never touch the live runtime, mirroring the strategy/framework split the
paper emphasizes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

__all__ = ["ObjectStats", "CommEdge", "LBSnapshot", "LBDatabase", "MulticastStats"]


@dataclass
class ObjectStats:
    """Measured data for one object since the last reset."""

    object_id: int
    load: float = 0.0  # accumulated execution time (reference seconds)
    invocations: int = 0
    migratable: bool = False
    proc: int = -1


@dataclass(frozen=True)
class CommEdge:
    """Aggregated communication between two objects."""

    src: int
    dst: int
    messages: int
    bytes: float


@dataclass
class LBSnapshot:
    """A consistent copy of the database handed to a strategy.

    ``background_load`` is the per-processor time spent in non-migratable
    objects — the paper's "background load" that strategies must balance
    migratable objects around.
    """

    objects: dict[int, ObjectStats]
    edges: list[CommEdge]
    background_load: dict[int, float]
    measured_steps: int

    def migratable_objects(self) -> list[ObjectStats]:
        """Stats of migratable objects only (what strategies may move)."""
        return [o for o in self.objects.values() if o.migratable]

    def per_step(self, load: float) -> float:
        """Convert an accumulated load to a per-step load."""
        return load / max(self.measured_steps, 1)


@dataclass
class MulticastStats:
    """Packing accounting for :meth:`Scheduler.post_multicast` (paper §4.2.3).

    ``packs`` counts payload serializations actually performed; with the
    optimized multicast that is exactly one per multicast that reaches at
    least one remote destination, with the naive scheme it is one per remote
    destination.  ``envelopes`` counts per-destination deliveries fanned out
    (local and remote alike).
    """

    multicasts: int = 0
    packs: int = 0
    envelopes: int = 0

    def reset(self) -> None:
        self.multicasts = 0
        self.packs = 0
        self.envelopes = 0


class LBDatabase:
    """Accumulates object loads and the communication graph."""

    def __init__(self) -> None:
        self._objects: dict[int, ObjectStats] = {}
        self._edges: dict[tuple[int, int], list[float]] = defaultdict(lambda: [0, 0.0])
        self._background: dict[int, float] = defaultdict(float)
        self.measured_steps = 0

    def record_execution(
        self, object_id: int, migratable: bool, proc: int, duration: float
    ) -> None:
        stats = self._objects.get(object_id)
        if stats is None:
            stats = self._objects[object_id] = ObjectStats(
                object_id, migratable=migratable
            )
        stats.load += duration
        stats.invocations += 1
        stats.migratable = migratable
        stats.proc = proc
        if not migratable:
            self._background[proc] += duration

    def record_send(self, src: int, dst: int, size_bytes: float) -> None:
        cell = self._edges[(src, dst)]
        cell[0] += 1
        cell[1] += size_bytes

    def mark_step(self) -> None:
        """Note that one simulation step's worth of data has been recorded."""
        self.measured_steps += 1

    def reset(self) -> None:
        self._objects.clear()
        self._edges.clear()
        self._background.clear()
        self.measured_steps = 0

    def snapshot(self) -> LBSnapshot:
        """The copy a centralized strategy receives on processor 0."""
        return LBSnapshot(
            objects={
                oid: ObjectStats(oid, s.load, s.invocations, s.migratable, s.proc)
                for oid, s in self._objects.items()
            },
            edges=[
                CommEdge(src, dst, int(cnt), float(byt))
                for (src, dst), (cnt, byt) in self._edges.items()
            ],
            background_load=dict(self._background),
            measured_steps=self.measured_steps,
        )
