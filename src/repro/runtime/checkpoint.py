"""Checkpointing and recovery accounting: in-memory (simulated runtime)
and on-disk (real MD engines).

**In-memory double checkpointing** follows the Charm++ lineage: at a
quiescent point every chare serializes its state twice — once kept on its
own processor, once sent to a *buddy* (the next live processor) — so that
any single fail-stop failure leaves at least one copy of every chare
alive.  Recovery restores lost chares from buddy copies onto surviving
processors and replays from the checkpointed step.

The chare snapshot is generic: a deep copy of ``__dict__`` minus the
runtime-wiring attributes (:data:`SKIP_ATTRS`) that the driver rebuilds
when it re-creates the chare graph on the degraded machine.  That keeps
the protocol counters, round numbers, and any numeric slices — everything
needed to resume — while staying agnostic to the concrete chare class.

**Disk run checkpoints** (:class:`RunCheckpoint`) serve the real engines:
an atomic ``.npz`` snapshot of the dynamical state (positions, velocities,
forces, box, step counter) written through
:func:`repro.util.atomic_write_bytes`, so a run killed mid-write never
corrupts its restart file.  The bit-identical-resume contract: writing a
checkpoint pins a pair-list rebuild at the *next* evaluation (the engine's
``_checkpoint_invalidate``), and :func:`restore_run_checkpoint` pins the
same rebuild in the resumed engine — so the original run past the
checkpoint and the resumed run share the rebuild schedule step for step,
which with the engines' deterministic reductions gives bit-identical
trajectories.
"""

from __future__ import annotations

import copy
import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.runtime.chare import Chare

__all__ = [
    "SKIP_ATTRS",
    "snapshot_chare",
    "restore_chare",
    "state_bytes",
    "ChareCheckpoint",
    "BackendState",
    "Checkpoint",
    "DoubleCheckpointStore",
    "UnrecoverableFailure",
    "RecoveryEvent",
    "RecoveryStats",
    "RunCheckpoint",
    "save_run_checkpoint",
    "load_run_checkpoint",
    "restore_run_checkpoint",
]

#: Attributes owned by the runtime graph, not the chare's logical state:
#: re-established by the driver when the graph is rebuilt after a failure
#: (object ids and wiring change when survivors take over lost work).
SKIP_ATTRS = frozenset(
    {
        "runtime",
        "backend",
        "object_id",
        "proxy_ids",
        "local_compute_ids",
        "deposit_ids",
        "home_id",
        "expected_contributions",
        "expected_deposits",
    }
)


def snapshot_chare(chare: Chare) -> dict:
    """Serializable copy of a chare's logical state (PUP analog)."""
    return {
        k: copy.deepcopy(v) for k, v in vars(chare).items() if k not in SKIP_ATTRS
    }


def restore_chare(chare: Chare, state: dict) -> None:
    """Write a snapshot back into a (freshly built) chare."""
    for k, v in state.items():
        setattr(chare, k, copy.deepcopy(v))


def state_bytes(state: dict) -> float:
    """Modeled wire size of a snapshot (what the buddy copy costs to send)."""
    total = 128.0  # envelope: ids, round counters, headers
    for v in state.values():
        if isinstance(v, np.ndarray):
            total += float(v.nbytes)
        elif isinstance(v, (int, float, bool)):
            total += 8.0
        elif isinstance(v, (list, tuple)):
            total += 8.0 * len(v)
        elif isinstance(v, dict):
            total += 16.0 * len(v)
    return total


@dataclass
class ChareCheckpoint:
    """One chare's checkpointed state and where its two copies live."""

    key: tuple  # stable identity, e.g. ("patch", 3) or ("compute", 17)
    state: dict
    owner: int  # processor holding the primary copy
    buddy: int  # processor holding the second copy

    @property
    def size_bytes(self) -> float:
        """Modeled size of the buddy copy on the wire."""
        return state_bytes(self.state)

    def survives(self, dead: set[int]) -> bool:
        """True if at least one copy is on a live processor."""
        return self.owner not in dead or self.buddy not in dead


@dataclass
class BackendState:
    """Numeric-mode global state captured at a checkpoint cut."""

    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray
    energy_by_step: dict[int, dict[str, float]]

    @classmethod
    def capture(cls, backend) -> "BackendState":
        return cls(
            positions=backend.positions.copy(),
            velocities=backend.velocities.copy(),
            forces=backend.forces.copy(),
            energy_by_step=copy.deepcopy(backend.energy_by_step),
        )

    def restore(self, backend) -> None:
        """Overwrite the backend arrays wholesale (partial rounds included:
        restoring must erase force contributions deposited after the cut)."""
        backend.positions[:] = self.positions
        backend.velocities[:] = self.velocities
        backend.forces[:] = self.forces
        backend.energy_by_step.clear()
        backend.energy_by_step.update(copy.deepcopy(self.energy_by_step))
        # positions jumped back to the cut: any Verlet-style candidate cache
        # keyed to post-cut reference positions is now meaningless
        if hasattr(backend, "invalidate_pair_caches"):
            backend.invalidate_pair_caches()


@dataclass
class Checkpoint:
    """A consistent global cut: all chares quiescent at round ``round``."""

    round: int
    time: float
    chares: dict[tuple, ChareCheckpoint]
    backend_state: BackendState | None = None

    def survives(self, dead: set[int]) -> bool:
        """True if every chare has a live copy."""
        return all(c.survives(dead) for c in self.chares.values())

    def bytes_sent_from(self, proc: int) -> float:
        """Checkpoint traffic originating on ``proc`` (buddy copies)."""
        return sum(
            c.size_bytes
            for c in self.chares.values()
            if c.owner == proc and c.buddy != proc
        )


class DoubleCheckpointStore:
    """Holds the two most recent global checkpoints.

    Keeping the previous checkpoint until the next one fully commits is the
    "double" in double checkpointing: a failure during checkpointing can
    always fall back to the older complete cut.  In this simulation commits
    are atomic at quiescence, so ``latest`` is always complete — but the
    previous cut is retained for the same reason real systems retain it.
    """

    def __init__(self, n_procs: int) -> None:
        self.n_procs = n_procs
        self.latest: Checkpoint | None = None
        self.previous: Checkpoint | None = None

    @staticmethod
    def buddy_of(owner: int, live: list[int]) -> int:
        """The next live processor after ``owner`` (cyclic)."""
        if len(live) < 2:
            return owner  # degenerate: no second copy possible
        order = sorted(live)
        if owner not in order:
            return order[0]
        return order[(order.index(owner) + 1) % len(order)]

    def commit(self, checkpoint: Checkpoint) -> None:
        """Atomically install a new complete checkpoint."""
        self.previous = self.latest
        self.latest = checkpoint

    def recovery_checkpoint(self, dead: set[int]) -> Checkpoint:
        """The newest checkpoint that fully survives ``dead``.

        Raises :class:`UnrecoverableFailure` when neither retained cut has a
        live copy of every chare (both buddies of some chare died).
        """
        for cp in (self.latest, self.previous):
            if cp is not None and cp.survives(dead):
                return cp
        raise UnrecoverableFailure(
            f"no retained checkpoint survives failures on processors {sorted(dead)}"
        )


class UnrecoverableFailure(RuntimeError):
    """Both copies of some chare's checkpoint were lost."""


@dataclass
class RecoveryEvent:
    """One detected-and-recovered failure episode."""

    procs: tuple[int, ...]  # processors that died in this episode
    failure_time: float  # simulated time of the (first) death
    detected_time: float  # failure_time + detection timeout
    checkpoint_round: int  # round restored from
    rounds_done_at_failure: int  # fully completed rounds when it died
    restore_cost_s: float  # modeled state-retrieval cost
    restart_time: float  # when replay resumed

    @property
    def steps_replayed(self) -> int:
        """Completed rounds whose work is redone after restore."""
        return max(0, self.rounds_done_at_failure - self.checkpoint_round)

    @property
    def detection_latency_s(self) -> float:
        return self.detected_time - self.failure_time

    @property
    def recovery_time_s(self) -> float:
        """Wall-clock from death to replay start (detection + restore)."""
        return self.restart_time - self.failure_time


@dataclass
class RecoveryStats:
    """Aggregate fault-tolerance accounting for a phase (or whole run)."""

    events: list[RecoveryEvent] = field(default_factory=list)
    checkpoints_taken: int = 0
    checkpoint_time_s: float = 0.0
    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    messages_lost_to_dead: int = 0

    @property
    def n_failures(self) -> int:
        return sum(len(e.procs) for e in self.events)

    @property
    def steps_replayed(self) -> int:
        return sum(e.steps_replayed for e in self.events)

    @property
    def detection_latency_s(self) -> float:
        return sum(e.detection_latency_s for e in self.events)

    @property
    def recovery_time_s(self) -> float:
        return sum(e.recovery_time_s for e in self.events)

    @property
    def dead_procs(self) -> tuple[int, ...]:
        return tuple(sorted({p for e in self.events for p in e.procs}))

    def merge(self, other: "RecoveryStats") -> "RecoveryStats":
        """Combine accounting across phases."""
        return RecoveryStats(
            events=self.events + other.events,
            checkpoints_taken=self.checkpoints_taken + other.checkpoints_taken,
            checkpoint_time_s=self.checkpoint_time_s + other.checkpoint_time_s,
            messages_dropped=self.messages_dropped + other.messages_dropped,
            messages_delayed=self.messages_delayed + other.messages_delayed,
            messages_duplicated=self.messages_duplicated + other.messages_duplicated,
            messages_lost_to_dead=self.messages_lost_to_dead
            + other.messages_lost_to_dead,
        )


# --------------------------------------------------------------------------- #
# disk run checkpoints for the real MD engines
# --------------------------------------------------------------------------- #
@dataclass
class RunCheckpoint:
    """Dynamical state of an MD engine run at a completed step.

    Captures everything the integrator needs to continue: positions,
    velocities, the post-step forces (so the resumed run skips the initial
    force evaluation, exactly like the continuing run does), the box, the
    step counter, and the parallel pool's evaluation counter ``nb_seq``
    (which pins step-indexed LB-remap points, themselves rebuild points,
    to the same absolute steps in the resumed run).
    """

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray | None
    box: np.ndarray
    nb_seq: int = 0

    def to_npz_bytes(self) -> bytes:
        arrays = {
            "step": np.asarray(self.step, dtype=np.int64),
            "positions": np.asarray(self.positions, dtype=np.float64),
            "velocities": np.asarray(self.velocities, dtype=np.float64),
            "box": np.asarray(self.box, dtype=np.float64),
            "nb_seq": np.asarray(self.nb_seq, dtype=np.int64),
        }
        if self.forces is not None:
            arrays["forces"] = np.asarray(self.forces, dtype=np.float64)
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @classmethod
    def from_npz_bytes(cls, data: bytes) -> "RunCheckpoint":
        with np.load(io.BytesIO(data)) as npz:
            return cls(
                step=int(npz["step"]),
                positions=npz["positions"].copy(),
                velocities=npz["velocities"].copy(),
                forces=npz["forces"].copy() if "forces" in npz else None,
                box=npz["box"].copy(),
                nb_seq=int(npz["nb_seq"]) if "nb_seq" in npz else 0,
            )


def save_run_checkpoint(path, engine) -> RunCheckpoint:
    """Atomically write ``engine``'s current state as a run checkpoint.

    The engine is any :class:`repro.md.engine.SequentialEngine` (including
    the parallel subclass).  The write is atomic (same-directory temp file,
    fsync, rename), so a crash mid-checkpoint leaves the previous complete
    checkpoint in place — the disk analog of keeping the older cut in
    double checkpointing.
    """
    from repro.util import atomic_write_bytes

    nb = getattr(engine, "_nb", None)
    cp = RunCheckpoint(
        step=int(engine.current_step),
        positions=np.asarray(engine.system.positions, dtype=np.float64).copy(),
        velocities=np.asarray(engine.system.velocities, dtype=np.float64).copy(),
        forces=(
            np.asarray(engine._forces, dtype=np.float64).copy()
            if engine._forces is not None
            else None
        ),
        box=np.asarray(engine.system.box, dtype=np.float64).copy(),
        nb_seq=int(nb._seq) if nb is not None and nb.active else 0,
    )
    atomic_write_bytes(path, cp.to_npz_bytes())
    return cp


def load_run_checkpoint(path) -> RunCheckpoint:
    """Read a checkpoint written by :func:`save_run_checkpoint`.

    Raises ``ValueError`` (naming the path) on a corrupt or truncated file.
    """
    path = Path(path)
    try:
        return RunCheckpoint.from_npz_bytes(path.read_bytes())
    except (OSError, ValueError, KeyError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise ValueError(f"corrupt run checkpoint {path}: {exc}") from exc


def restore_run_checkpoint(engine, cp: RunCheckpoint) -> None:
    """Load ``cp`` into ``engine`` so stepping continues the original run.

    Restores the dynamical state in place, resets the cached force-field
    results, and pins a pair-list rebuild at the next evaluation — the same
    rebuild the checkpoint-writing run performed right after saving — so
    the resumed trajectory is bit-identical to the original's continuation
    (see the module docstring for the argument).
    """
    system = engine.system
    pos = np.asarray(cp.positions, dtype=np.float64)
    vel = np.asarray(cp.velocities, dtype=np.float64)
    if system.positions.shape != pos.shape:
        raise ValueError(
            f"checkpoint holds {pos.shape[0]} atoms, "
            f"engine system has {system.positions.shape[0]}"
        )
    system.positions[...] = pos
    system.velocities[...] = vel
    system.box = np.asarray(cp.box, dtype=np.float64).copy()
    engine._step = int(cp.step)
    engine._forces = (
        np.asarray(cp.forces, dtype=np.float64).copy()
        if cp.forces is not None
        else None
    )
    engine._last_nonbonded = None
    engine._last_bonded = None
    engine._last_ewald = None
    nb = getattr(engine, "_nb", None)
    if nb is not None and nb.active:
        # align the pool's evaluation counter so step-indexed events
        # (LB remaps force rebuilds) land on the same absolute steps
        nb._seq = int(cp.nb_seq)
    engine._checkpoint_invalidate()
