"""Service-side job records: state machine, events, REST serialization.

A :class:`Job` wraps one :class:`repro.md.jobs.SimJob` (the MD adapter
owning the live engine) with everything the *service* cares about —
tenant, priority, lifecycle state, control requests, the worker lease,
and the cross-job-balancer task id.  The scheduler thread owns all state
transitions; HTTP threads only read snapshots and post control requests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.md.jobs import SimJob, SimSpec
    from repro.pool.lease import WorkerLease

__all__ = ["Job", "JobState", "TERMINAL_STATES"]


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job never leaves
TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED}
)


@dataclass
class Job:
    """One submitted simulation, as the service tracks it."""

    id: str
    tenant: str
    priority: int
    spec: "SimSpec"
    sim: "SimJob"
    state: JobState = JobState.QUEUED
    submit_seq: int = 0  # FIFO tiebreak within a priority class
    task_id: int = -1  # this job's task in the service-level WorkDB
    lane: int = 0  # balancer-assigned concurrency lane
    lease: "WorkerLease | None" = None
    control: str | None = None  # pending "suspend" | "cancel" request
    error: str | None = None
    step_seconds: float = 0.0  # measured EWMA seconds/step (0 = unmeasured)
    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def note_event(self, kind: str, **details) -> None:
        self.events.append({"event": kind, "state": self.state.value, **details})

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state.value,
            "steps_done": self.sim.steps_done,
            "steps_total": self.spec.steps,
            "workers": self.spec.workers,
            "lane": self.lane,
        }

    def detail(self) -> dict:
        out = self.summary()
        out["spec"] = self.spec.to_dict()
        out["error"] = self.error
        out["events"] = list(self.events)
        out["n_records"] = len(self.sim.records)
        out["step_seconds"] = self.step_seconds
        out.update(self.sim.backend_provenance())
        return out
