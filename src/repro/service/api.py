"""Stdlib REST front end for :class:`~repro.service.scheduler.SimulationService`.

No framework — a :class:`http.server.ThreadingHTTPServer` whose handler
threads only call the service's thread-safe surface.  Endpoints:

====== ============================== =======================================
GET    ``/healthz``                   liveness probe
GET    ``/stats``                     scheduler/budget/tenant counters
GET    ``/jobs[?tenant=t]``           job summaries
POST   ``/jobs``                      submit ``{"spec": {...}, "tenant",
                                      "priority"}`` → 201, 400 on a bad
                                      spec, 429 over quota
GET    ``/jobs/<id>``                 full job detail
GET    ``/jobs/<id>/stream``          NDJSON records; ``?from=N`` offsets,
                                      ``&follow=1`` long-polls until the
                                      job is terminal or suspended
POST   ``/jobs/<id>/suspend``         checkpoint-and-release at the next
                                      slice boundary
POST   ``/jobs/<id>/resume``          re-enqueue a suspended job
POST   ``/jobs/<id>/cancel``          stop and discard
POST   ``/shutdown``                  stop accepting work, stop the server
====== ============================== =======================================

Streaming writes one JSON object per line and flushes per record, so a
client following a live job sees steps as they complete.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobState
from repro.service.quotas import QuotaError
from repro.service.scheduler import SimulationService

__all__ = ["ServiceServer", "serve"]

#: follow-mode poll interval — bounds stream latency, not correctness
_STREAM_POLL_S = 0.05


class _Handler(BaseHTTPRequestHandler):
    """One request; ``server.service`` is the shared scheduler."""

    protocol_version = "HTTP/1.1"

    # quiet by default; the CLI flips this for --verbose
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    def _json(self, status: int, payload) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        data = json.loads(raw.decode())
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["healthz"]:
                self._json(200, {"ok": True})
            elif parts == ["stats"]:
                self._json(200, self.service.stats())
            elif parts == ["jobs"]:
                jobs = self.service.jobs(tenant=query.get("tenant"))
                self._json(200, {"jobs": [j.summary() for j in jobs]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._json(200, self.service.get(parts[1]).detail())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
                self._stream(parts[1], query)
            else:
                self._error(404, f"no such resource {url.path!r}")
        except KeyError as exc:
            self._error(404, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._submit()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
                "suspend",
                "resume",
                "cancel",
            ):
                getattr(self.service, parts[2])(parts[1])
                self._json(200, self.service.get(parts[1]).summary())
            elif parts == ["shutdown"]:
                self._json(200, {"stopping": True})
                # shut down off-thread: this handler *is* a server thread
                threading.Thread(
                    target=self.server.stop,  # type: ignore[attr-defined]
                    daemon=True,
                ).start()
            else:
                self._error(404, f"no such resource {self.path!r}")
        except KeyError as exc:
            self._error(404, str(exc))
        except QuotaError as exc:
            self._error(429, str(exc))
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))

    # ------------------------------------------------------------------ #
    def _submit(self) -> None:
        body = self._read_body()
        spec = body.get("spec")
        if spec is None:
            raise ValueError('body must carry a "spec" object')
        job = self.service.submit(
            spec,
            tenant=str(body.get("tenant", "default")),
            priority=int(body.get("priority", 0)),
        )
        self._json(201, job.summary())

    def _stream(self, job_id: str, query: dict) -> None:
        job = self.service.get(job_id)  # KeyError → 404 before headers
        start = int(query.get("from", 0))
        follow = query.get("follow", "0") not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # stream length is unknown up front; close delimits the body
        self.send_header("Connection", "close")
        self.end_headers()
        sent = start
        idle_states = TERMINAL_OR_SUSPENDED
        while True:
            records = self.service.records(job_id, start=sent)
            for rec in records:
                self.wfile.write((json.dumps(rec) + "\n").encode())
            if records:
                self.wfile.flush()
            sent += len(records)
            if not follow or job.state in idle_states:
                # one more drain so records landing while we checked state
                # are not lost
                tail = self.service.records(job_id, start=sent)
                for rec in tail:
                    self.wfile.write((json.dumps(rec) + "\n").encode())
                self.wfile.flush()
                break
            time.sleep(_STREAM_POLL_S)


#: stream follow-mode stops once the job can emit nothing more
TERMINAL_OR_SUSPENDED = frozenset(
    {
        JobState.COMPLETED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.SUSPENDED,
    }
)


class ServiceServer:
    """A :class:`SimulationService` behind a threading HTTP server."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.stop = self.stop  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — port is concrete even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the scheduler and serve requests on a background thread."""
        if self._thread is not None:
            return
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the HTTP listener, then the scheduler (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.shutdown()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`stop` ran (e.g. via POST /shutdown)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceServer:
    """Start a server for ``service``; returns it running."""
    server = ServiceServer(service, host=host, port=port, verbose=verbose)
    server.start()
    return server
