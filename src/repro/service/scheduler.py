"""The async multi-job scheduler behind ``repro serve``.

One :class:`SimulationService` multiplexes many concurrent simulations
onto shared machine capacity:

* **Admission** — submitted jobs queue per tenant (``max_queued``); the
  scheduler admits them by priority then FIFO, when the tenant's
  ``max_running``/``max_workers`` quota allows *and* the job's worker
  processes fit the shared :class:`~repro.pool.lease.WorkerBudget`.  A
  small job may be admitted past a big one that doesn't fit — packing,
  not head-of-line blocking.
* **Execution** — each running job is an asyncio coroutine stepping its
  engine in short slices on a thread-pool *lane* (``lanes`` threads).
  Slices of different jobs overlap in wall clock — a parallel engine's
  driver spends most of a slice blocked in ``connection.wait`` with the
  GIL released — while each job's own slices stay strictly serialized,
  so trajectories are bit-identical to solo runs (slicing only moves
  where slice boundaries fall, never what is computed).
* **Cross-job balancing** — every job is one task in a service-level
  :class:`~repro.instrument.workdb.WorkDB` (``kind="job"``, load =
  measured seconds/step).  The lane plan is recomputed through the same
  WorkDB → LBProblem → strategy path the engine uses for cells, so small
  jobs pack onto lanes around a long heavy run.
* **Suspend/resume** — a suspended job's engine (and worker lease) is
  released; progress rolls back to its last durable checkpoint and the
  replayed steps are suppressed from the stream (they are bit-identical).

Thread model: public methods are thread-safe (REST handler threads call
them); all job state transitions happen on the scheduler thread's event
loop.  The service is also usable without the background thread in tests
via :meth:`run_until_idle`.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.md.jobs import SimJob, SimSpec
from repro.pool.lease import WorkerBudget
from repro.service.balance import plan_lanes, slice_steps_for
from repro.service.jobs import Job, JobState
from repro.service.quotas import QuotaError, TenantQuota

__all__ = ["SimulationService"]

#: scheduler idle poll; wake events cut the latency, this only bounds it
_POLL_S = 0.05


class SimulationService:
    """Run many concurrent simulations on one shared worker budget."""

    def __init__(
        self,
        worker_slots: int = 4,
        lanes: int = 2,
        slice_steps: int = 5,
        target_slice_s: float = 0.0,
        workdir: str | Path | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        rebalance_every: int = 4,
        lb_strategy: str = "greedy",
    ) -> None:
        """``worker_slots`` bounds the total worker *processes* across all
        running jobs; ``lanes`` bounds how many jobs step concurrently.
        ``target_slice_s > 0`` scales each job's slice length to a
        comparable wall time from its measured seconds/step (see
        :func:`repro.service.balance.slice_steps_for`); 0 uses the fixed
        ``slice_steps``.  ``rebalance_every`` replans lanes every N
        completed slices (0 disables replanning)."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if slice_steps < 1:
            raise ValueError("slice_steps must be >= 1")
        if rebalance_every < 0:
            raise ValueError("rebalance_every must be >= 0")
        from repro.instrument.workdb import WorkDB

        self.budget = WorkerBudget(worker_slots)
        self.lanes = int(lanes)
        self.slice_steps = int(slice_steps)
        self.target_slice_s = float(target_slice_s)
        self.rebalance_every = int(rebalance_every)
        self.lb_strategy = str(lb_strategy)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.workdb = WorkDB()
        self._own_workdir = workdir is None
        self.workdir = Path(
            tempfile.mkdtemp(prefix="repro-service-")
            if workdir is None
            else workdir
        )
        self.workdir.mkdir(parents=True, exist_ok=True)

        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._submit_seq = 0
        self._next_task_id = 0
        self._slices_done = 0
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # submission and control (any thread)
    # ------------------------------------------------------------------ #
    def _quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def submit(
        self,
        spec: SimSpec | dict,
        tenant: str = "default",
        priority: int = 0,
        job_id: str | None = None,
    ) -> Job:
        """Queue one simulation; raises :class:`QuotaError` over quota."""
        if isinstance(spec, dict):
            spec = SimSpec.from_dict(spec)
        if spec.workers == 0:
            raise ValueError(
                "service jobs need an explicit worker count "
                "(workers=0 auto-sizing is a CLI-only convenience)"
            )
        if spec.worker_slots > self.budget.total:
            raise ValueError(
                f"job needs {spec.worker_slots} worker slots but the "
                f"service budget is {self.budget.total}"
            )
        with self._lock:
            n_queued = sum(
                1
                for j in self._jobs.values()
                if j.tenant == tenant and j.state is JobState.QUEUED
            )
            self._quota(tenant).check_submit(tenant, n_queued)
            if job_id is None:
                job_id = f"job-{len(self._jobs):04d}"
            if job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already exists")
            self._submit_seq += 1
            task_id = self._next_task_id
            self._next_task_id += 1
            job = Job(
                id=job_id,
                tenant=tenant,
                priority=int(priority),
                spec=spec,
                sim=SimJob(spec, self.workdir / "jobs" / job_id),
                submit_seq=self._submit_seq,
                task_id=task_id,
                lane=task_id % self.lanes,
            )
            self.workdb.ensure_task(
                task_id, owner=job.lane, kind="job"
            )
            self._jobs[job_id] = job
            job.note_event("submitted", tenant=tenant, priority=priority)
        self._kick()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"no such job {job_id!r}") from None

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._lock:
            out = list(self._jobs.values())
        if tenant is not None:
            out = [j for j in out if j.tenant == tenant]
        return sorted(out, key=lambda j: j.submit_seq)

    def records(self, job_id: str, start: int = 0) -> list[dict]:
        """Snapshot of a job's NDJSON records from index ``start``."""
        sim = self.get(job_id).sim
        return sim.records[int(start):]

    def suspend(self, job_id: str) -> None:
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise ValueError(f"job {job_id!r} is {job.state.value}")
            if job.state is JobState.QUEUED:
                job.state = JobState.SUSPENDED
                job.note_event("suspended")
                self._cond.notify_all()
            elif job.state is JobState.RUNNING:
                job.control = "suspend"
        self._kick()

    def resume(self, job_id: str) -> None:
        with self._lock:
            job = self.get(job_id)
            if job.state is not JobState.SUSPENDED:
                raise ValueError(
                    f"job {job_id!r} is {job.state.value}, not suspended"
                )
            job.state = JobState.QUEUED
            job.note_event("resumed")
        self._kick()

    def cancel(self, job_id: str) -> None:
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                return
            if job.state is JobState.RUNNING:
                job.control = "cancel"
            else:
                job.state = JobState.CANCELLED
                job.note_event("cancelled")
                self._cond.notify_all()
        self._kick()

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            tenants: dict[str, dict] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
                t = tenants.setdefault(
                    job.tenant, {"jobs": 0, "running": 0, "worker_slots": 0}
                )
                t["jobs"] += 1
                if job.state is JobState.RUNNING:
                    t["running"] += 1
                    t["worker_slots"] += job.spec.worker_slots
            return {
                "jobs": states,
                "tenants": tenants,
                "budget": {
                    "total": self.budget.total,
                    "leased": self.budget.leased,
                },
                "lanes": self.lanes,
                "slices_done": self._slices_done,
                "job_loads": self.workdb.kind_loads().get("job", 0.0),
            }

    # ------------------------------------------------------------------ #
    # waiting (any thread)
    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, states, timeout: float = 60.0) -> JobState:
        """Block until the job reaches one of ``states``; returns it."""
        states = {JobState(s) for s in states}
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs[job_id]
                if job.state in states:
                    return job.state
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id!r} still {job.state.value} "
                        f"after {timeout:.0f}s"
                    )
                self._cond.wait(min(remaining, _POLL_S * 4))

    def run_until_idle(self, timeout: float = 300.0) -> None:
        """Start if needed, then block until no job is queued or running."""
        self.start()
        deadline = time.monotonic() + timeout
        active = (JobState.QUEUED, JobState.RUNNING)
        with self._cond:
            while any(j.state in active for j in self._jobs.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"service still busy after {timeout:.0f}s")
                self._cond.wait(min(remaining, _POLL_S * 4))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stopping = False
            self._thread = threading.Thread(
                target=self._thread_main, name="repro-service", daemon=True
            )
            self._thread.start()

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop the scheduler and release every engine, lease, and segment."""
        with self._lock:
            self._stopping = True
            thread = self._thread
            self._thread = None
        self._kick()
        if thread is not None:
            thread.join(timeout=timeout)
        # belt-and-braces: close anything the scheduler didn't get to
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.sim.close()
            self._release_lease(job)
        self.budget.release_all()
        if self._own_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)
        with self._cond:
            self._cond.notify_all()

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # scheduler internals (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _kick(self) -> None:
        with self._lock:
            loop, wake = self._loop, self._wake
            self._cond.notify_all()
        if loop is not None and wake is not None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:  # loop already closed
                pass

    def _release_lease(self, job: Job) -> None:
        if job.lease is not None:
            job.lease.release()
            job.lease = None

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        executor = ThreadPoolExecutor(
            max_workers=self.lanes, thread_name_prefix="repro-lane"
        )
        with self._lock:
            self._loop = loop
            self._wake = asyncio.Event()
            self._executor = executor
        self._lane_locks = [asyncio.Lock() for _ in range(self.lanes)]
        tasks: dict[str, asyncio.Task] = {}
        try:
            while True:
                with self._lock:
                    if self._stopping:
                        break
                self._admit_ready()
                with self._lock:
                    runnable = [
                        j
                        for j in self._jobs.values()
                        if j.state is JobState.RUNNING and j.id not in tasks
                    ]
                for job in runnable:
                    tasks[job.id] = loop.create_task(self._run_job(job))
                for jid in [j for j, t in tasks.items() if t.done()]:
                    tasks.pop(jid)
                wake = self._wake
                wake.clear()
                try:
                    await asyncio.wait_for(wake.wait(), timeout=_POLL_S)
                except asyncio.TimeoutError:
                    pass
        finally:
            for t in tasks.values():
                t.cancel()
            if tasks:
                await asyncio.gather(*tasks.values(), return_exceptions=True)
            with self._lock:
                jobs = [
                    j for j in self._jobs.values() if j.sim.active
                ]
            for job in jobs:
                # in-flight slices already drained (gather above); close
                # engines off-loop so pool teardown can't wedge the loop
                await loop.run_in_executor(executor, job.sim.close)
                with self._lock:
                    self._release_lease(job)
            executor.shutdown(wait=True)
            with self._lock:
                self._loop = None
                self._wake = None
                self._executor = None
                self._cond.notify_all()

    def _admit_ready(self) -> None:
        with self._lock:
            queued = sorted(
                (
                    j
                    for j in self._jobs.values()
                    if j.state is JobState.QUEUED
                ),
                key=lambda j: (-j.priority, j.submit_seq),
            )
            for job in queued:
                quota = self._quota(job.tenant)
                running = [
                    x
                    for x in self._jobs.values()
                    if x.state is JobState.RUNNING and x.tenant == job.tenant
                ]
                slots = job.spec.worker_slots
                if not quota.admits(
                    len(running),
                    sum(x.spec.worker_slots for x in running),
                    slots,
                ):
                    continue  # tenant-full; other tenants may still admit
                lease = self.budget.try_acquire(slots, label=job.id)
                if lease is None:
                    continue  # doesn't fit now; a smaller job might
                job.lease = lease
                job.state = JobState.RUNNING
                job.note_event("admitted", worker_slots=slots)
                self._cond.notify_all()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        executor = self._executor
        try:
            while True:
                with self._lock:
                    if self._stopping:
                        return
                    control, job.control = job.control, None
                    lane = job.lane % self.lanes
                if control == "cancel":
                    await self._finish(job, JobState.CANCELLED)
                    return
                if control == "suspend":
                    await loop.run_in_executor(executor, job.sim.suspend)
                    with self._lock:
                        self._release_lease(job)
                        job.state = JobState.SUSPENDED
                        job.note_event(
                            "suspended", checkpoint_step=job.sim.steps_done
                        )
                        self._cond.notify_all()
                    self._kick()
                    return
                if not job.sim.active:
                    await loop.run_in_executor(executor, job.sim.open)
                steps = slice_steps_for(
                    job.step_seconds, self.slice_steps, self.target_slice_s
                )
                before = job.sim.steps_done
                async with self._lane_locks[lane]:
                    t0 = time.perf_counter()
                    await loop.run_in_executor(
                        executor, job.sim.step_slice, steps
                    )
                    dt = time.perf_counter() - t0
                self._note_slice(job, job.sim.steps_done - before, dt)
                if job.sim.done:
                    await self._finish(job, JobState.COMPLETED)
                    return
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            raise
        except Exception:
            with self._lock:
                job.error = traceback.format_exc()
            await self._finish(job, JobState.FAILED)

    async def _finish(self, job: Job, state: JobState) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, job.sim.close)
        with self._lock:
            self._release_lease(job)
            job.state = state
            job.note_event("finished", steps_done=job.sim.steps_done)
            self._cond.notify_all()
        self._kick()

    def _note_slice(self, job: Job, steps: int, wall_s: float) -> None:
        """Feed the cross-job WorkDB and replan lanes periodically."""
        if steps <= 0:
            return
        per_step = wall_s / steps
        with self._lock:
            self.workdb.record(job.task_id, per_step, owner=job.lane)
            job.step_seconds = self.workdb.tasks[job.task_id].ewma
            self._slices_done += 1
            if (
                self.rebalance_every > 0
                and self._slices_done % self.rebalance_every == 0
            ):
                live = {
                    j.task_id: j
                    for j in self._jobs.values()
                    if j.state is JobState.RUNNING
                }
                plan = plan_lanes(
                    self.workdb, live.keys(), self.lanes, self.lb_strategy
                )
                for tid, lane in plan.items():
                    live[tid].lane = lane
                    self.workdb.tasks[tid].owner = lane
                self.workdb.mark_step()
