"""Simulation-as-a-service: many concurrent jobs on shared worker capacity.

The paper's core bet is many-objects-per-processor virtualization — one
set of processors time-shares many migratable work objects, packed around
each other by measurement-based balancing.  This package applies that bet
at the *job* level: an async scheduler (:class:`SimulationService`) runs
many concurrent simulations, each an engine-as-job adapter
(:class:`repro.md.jobs.SimJob`) stepped in slices, multiplexed onto a
shared :class:`~repro.pool.lease.WorkerBudget` with per-tenant quotas and
priorities.  Cross-job balancing reuses the WorkDB → LBProblem path at
job granularity (one task per job, measured seconds/step as its load) so
bursts of small jobs pack around a long run instead of queuing behind it.

Front ends: a stdlib-``http.server`` REST API (:mod:`repro.service.api`)
with NDJSON metric/trajectory streaming, and the ``repro serve`` CLI.
"""

from repro.service.api import ServiceServer, serve
from repro.service.jobs import Job, JobState
from repro.service.quotas import QuotaError, TenantQuota
from repro.service.scheduler import SimulationService

__all__ = [
    "Job",
    "JobState",
    "QuotaError",
    "ServiceServer",
    "SimulationService",
    "TenantQuota",
    "serve",
]
