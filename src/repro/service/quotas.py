"""Per-tenant admission limits for the simulation service.

Quotas are two-phase, matching the scheduler's structure: ``max_queued``
is checked at *submission* (a tenant cannot flood the queue), while
``max_running`` and ``max_workers`` are checked at *admission* (a tenant's
jobs wait in the queue — without blocking other tenants — until its own
running set shrinks).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QuotaError", "TenantQuota"]


class QuotaError(Exception):
    """A submission or admission would exceed the tenant's quota."""


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant.

    ``max_workers`` caps the tenant's summed *worker-process slots*
    (sequential jobs count 0), so one tenant cannot monopolize the shared
    :class:`~repro.pool.lease.WorkerBudget` even within its running limit.
    """

    max_running: int = 4
    max_queued: int = 16
    max_workers: int = 8

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ValueError("max_running must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0")

    def check_submit(self, tenant: str, n_queued: int) -> None:
        if n_queued >= self.max_queued:
            raise QuotaError(
                f"tenant {tenant!r} has {n_queued} queued jobs "
                f"(max_queued={self.max_queued})"
            )

    def admits(self, n_running: int, running_slots: int, new_slots: int) -> bool:
        """May a job needing ``new_slots`` worker slots start now?"""
        if n_running >= self.max_running:
            return False
        return running_slots + new_slots <= self.max_workers
