"""Cross-job balancing: pack concurrent jobs onto concurrency lanes.

The scheduler runs at most one slice per *lane* at a time (lanes map
one-to-one onto executor threads), so lane assignment decides which jobs
contend with each other.  This module reuses the measurement-based
WorkDB → LBProblem → strategy path at job granularity: each live job is
one migratable task whose load is its measured seconds/step, and the
greedy strategy packs them so every lane carries a similar predicted
load — a burst of small jobs lands together on one lane while a long
heavy run keeps a lane to itself, instead of strict round-robin making
the small jobs wait behind the big one's slices.
"""

from __future__ import annotations

from repro.instrument.adapter import build_job_lb_problem
from repro.instrument.workdb import WorkDB

__all__ = ["plan_lanes", "slice_steps_for"]


def plan_lanes(
    db: WorkDB,
    task_ids,
    n_lanes: int,
    strategy: str = "greedy",
) -> dict[int, int]:
    """Assign each live job's task id to a lane; deterministic per inputs."""
    from repro.balancer.strategies import solve

    task_ids = sorted(int(t) for t in task_ids)
    if not task_ids or n_lanes < 1:
        return {}
    if n_lanes == 1:
        return {tid: 0 for tid in task_ids}
    problem = build_job_lb_problem(db, n_lanes, task_ids)
    placement = solve(problem, strategy)
    out = {}
    for tid in task_ids:
        lane = int(placement.get(tid, -1))
        out[tid] = lane if 0 <= lane < n_lanes else tid % n_lanes
    return out


def slice_steps_for(
    step_seconds: float,
    default_steps: int,
    target_slice_s: float,
    max_steps: int = 200,
) -> int:
    """Measurement-scaled slice length: cheap jobs take more steps per
    visit, expensive jobs fewer, so every slice costs a comparable wall
    time and a long job cannot starve its lane-mates for whole seconds.

    Unmeasured jobs (``step_seconds <= 0``) get the configured default.
    Slice length only moves *where slice boundaries fall*, never the
    trajectory — stepping an engine 3+2 steps equals stepping it 5.
    """
    if step_seconds <= 0.0 or target_slice_s <= 0.0:
        return max(1, int(default_steps))
    return max(1, min(int(max_steps), round(target_slice_s / step_seconds)))
