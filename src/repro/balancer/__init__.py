"""Measurement-based load balancing framework and strategies (paper §2.2, §3.2).

The framework/strategy split mirrors Charm++: the runtime accumulates object
loads and the communication graph into a database
(:class:`repro.runtime.stats.LBDatabase`); a *strategy* is a pure function
from a problem description to a new object→processor map, pluggable without
touching the runtime.

Strategies provided:

* :func:`repro.balancer.greedy.greedy_strategy` — the paper's §3.2
  algorithm: biggest compute first, to the processor that avoids overload,
  maximizes co-located patches, minimizes new proxies, and is least loaded.
* :func:`repro.balancer.refine.refine_strategy` — the §3.2 refinement pass:
  only objects on overloaded processors move, only to underloaded ones.
* baselines in :mod:`repro.balancer.strategies` — random, round-robin and a
  communication-oblivious greedy, used by the ablation benchmarks.
* :func:`repro.balancer.rcb.recursive_coordinate_bisection` — the static
  initial patch placement.
"""

from repro.balancer.problem import LBProblem, ComputeItem, placement_stats
from repro.balancer.rcb import recursive_coordinate_bisection
from repro.balancer.greedy import greedy_strategy
from repro.balancer.refine import refine_strategy
from repro.balancer.diffusion import diffusion_strategy
from repro.balancer.phase_aware import phase_aware_strategy
from repro.balancer.strategies import (
    STRATEGIES,
    solve,
    keep_strategy,
    random_strategy,
    round_robin_strategy,
    greedy_load_only_strategy,
)

__all__ = [
    "solve",
    "LBProblem",
    "ComputeItem",
    "placement_stats",
    "recursive_coordinate_bisection",
    "greedy_strategy",
    "refine_strategy",
    "diffusion_strategy",
    "phase_aware_strategy",
    "STRATEGIES",
    "keep_strategy",
    "random_strategy",
    "round_robin_strategy",
    "greedy_load_only_strategy",
]
