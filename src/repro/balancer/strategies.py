"""Baseline strategies and the strategy registry.

"The strategies themselves are independent of the framework and can be
plugged in and out easily" (§2.2).  Besides the paper's greedy/refine pair
we provide baselines used by the ablation benchmarks:

* ``keep`` — no load balancing (objects stay where static placement put
  them): the paper's observation that patchless processors then do nothing,
* ``random`` — communication- and load-oblivious scatter,
* ``round_robin`` — load-oblivious but even object counts,
* ``greedy_load_only`` — balances load while ignoring communication
  (maximizing proxies), isolating the value of the paper's proxy-aware
  criteria.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.balancer.diffusion import diffusion_strategy
from repro.balancer.greedy import greedy_strategy
from repro.balancer.phase_aware import phase_aware_strategy
from repro.balancer.problem import ComputeItem, LBProblem
from repro.balancer.refine import refine_strategy
from repro.util.rng import make_rng

__all__ = [
    "STRATEGIES",
    "solve",
    "keep_strategy",
    "random_strategy",
    "round_robin_strategy",
    "greedy_load_only_strategy",
]

Strategy = Callable[[LBProblem], dict[int, int]]


def solve(problem: LBProblem, schedule: str) -> dict[int, int]:
    """Run one LB decision: a strategy name or a ``"+"``-combo.

    The pure-function entry point both runtimes use — it depends only on the
    :class:`LBProblem`, never on the simulated machine.  ``"greedy+refine"``
    runs greedy then refines its output, exactly the paper's first LB cycle;
    each stage sees the previous stage's placement as the current one.
    Returns the full placement map (compute index → processor); ``problem``
    is left unmodified.
    """
    placement = {item.index: item.proc for item in problem.computes}
    parts = schedule.split("+")
    for b in parts:
        if b not in STRATEGIES:
            raise ValueError(
                f"unknown LB strategy {b!r}; choose from {sorted(STRATEGIES)}"
            )
    current = problem
    for i, part in enumerate(parts):
        placement.update(STRATEGIES[part](current))
        if i + 1 < len(parts):
            current = LBProblem(
                n_procs=problem.n_procs,
                computes=[
                    ComputeItem(c.index, c.load, c.patches, placement[c.index])
                    for c in problem.computes
                ],
                background=problem.background,
                patch_home=problem.patch_home,
                existing_proxies=problem.existing_proxies,
                dead_procs=problem.dead_procs,
            )
    return placement


def keep_strategy(problem: LBProblem) -> dict[int, int]:
    """Leave every object where it is."""
    return {item.index: item.proc for item in problem.computes}


def random_strategy(problem: LBProblem, seed: int = 0) -> dict[int, int]:
    """Uniformly random placement (ablation baseline)."""
    rng = make_rng(seed)
    return {
        item.index: int(rng.integers(problem.n_procs)) for item in problem.computes
    }


def round_robin_strategy(problem: LBProblem) -> dict[int, int]:
    """Cyclic placement by descending load (even counts, uneven loads)."""
    ordered = sorted(problem.computes, key=lambda c: -c.load)
    return {item.index: i % problem.n_procs for i, item in enumerate(ordered)}


def greedy_load_only_strategy(problem: LBProblem) -> dict[int, int]:
    """Largest-first onto least-loaded processor, ignoring communication.

    The classic LPT bin-balancing heuristic: near-perfect load balance but
    no locality, so every assignment tends to need fresh proxies — the
    counterpoint motivating the paper's criteria 2 and 3.
    """
    loads = problem.background.astype(np.float64).copy()
    placement: dict[int, int] = {}
    for item in sorted(problem.computes, key=lambda c: -c.load):
        proc = int(np.argmin(loads))
        placement[item.index] = proc
        loads[proc] += item.load
    return placement


STRATEGIES: dict[str, Strategy] = {
    "keep": keep_strategy,
    "random": random_strategy,
    "round_robin": round_robin_strategy,
    "greedy_load_only": greedy_load_only_strategy,
    "greedy": greedy_strategy,
    "refine": refine_strategy,
    "diffusion": diffusion_strategy,
    "phase_aware": phase_aware_strategy,
}
