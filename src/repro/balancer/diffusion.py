"""A distributed neighbor-diffusion strategy (paper §2.2).

"Some of the strategies supported are centralized whereas others are
distributed. ... A distributed strategy does not collect all information in
one place; instead it may choose to communicate with neighboring
processors, to exchange information and then to exchange objects."

This implements classic load diffusion on a processor ring: in each sweep,
every processor compares its load with its ``radius`` nearest ring
neighbors only (the information a distributed implementation would have)
and offloads its smallest migratable objects to the least-loaded neighbor
until it no longer exceeds the neighborhood average.  Several sweeps let
load flow across the machine without any processor ever seeing the global
state.

Compared to the paper's centralized greedy strategy, diffusion converges
more slowly and tolerates residual imbalance — the trade the paper
describes: "There is clearly a higher overhead for centralized strategies.
However, in many applications, including molecular dynamics, the load
balance does not change significantly for a long period of time", which is
why NAMD chooses the centralized route.  Diffusion is provided for the
comparison and for workloads where a central collection is impractical.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.balancer.problem import LBProblem

__all__ = ["diffusion_strategy"]


def diffusion_strategy(
    problem: LBProblem,
    sweeps: int = 10,
    radius: int = 2,
    tolerance: float = 0.05,
) -> dict[int, int]:
    """Iterative nearest-neighbor load diffusion.

    Parameters
    ----------
    problem:
        The standard strategy input.
    sweeps:
        Number of relaxation sweeps over all processors.
    radius:
        Ring-neighborhood half-width each processor may talk to.
    tolerance:
        A processor offloads only while its load exceeds the neighborhood
        average by more than this fraction.
    """
    if sweeps < 1 or radius < 1:
        raise ValueError("sweeps and radius must be positive")
    n = problem.n_procs
    loads = problem.background.astype(np.float64).copy()
    on_proc: dict[int, list] = defaultdict(list)
    placement: dict[int, int] = {}
    for item in problem.computes:
        placement[item.index] = item.proc
        loads[item.proc] += item.load
        on_proc[item.proc].append(item)

    if n == 1:
        return placement

    for _ in range(sweeps):
        moved_any = False
        for proc in range(n):
            neighbors = [
                (proc + d) % n
                for d in range(-radius, radius + 1)
                if d != 0
            ]
            neighborhood = [proc, *neighbors]
            local_avg = float(loads[neighborhood].mean())
            if loads[proc] <= local_avg * (1.0 + tolerance):
                continue
            # offload smallest objects first: fine-grained flow diffuses
            # without overshooting (big objects would slosh back and forth)
            movable = sorted(on_proc[proc], key=lambda c: c.load)
            for item in movable:
                if loads[proc] <= local_avg * (1.0 + tolerance):
                    break
                dest = min(neighbors, key=lambda q: loads[q])
                if loads[dest] + item.load >= loads[proc]:
                    continue  # the move would just swap the imbalance
                on_proc[proc].remove(item)
                on_proc[dest].append(item)
                loads[proc] -= item.load
                loads[dest] += item.load
                placement[item.index] = dest
                item.proc = dest
                moved_any = True
        if not moved_any:
            break
    return placement
