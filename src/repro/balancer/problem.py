"""The strategy-facing problem description.

A strategy sees exactly what the paper's centralized strategies see after
the framework gathers the database on one processor: per-object loads (from
measurement or, before the first measurement, from the cost model),
per-processor background load from non-migratable work, the home processor
of every patch, and which proxies already exist.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ComputeItem", "LBProblem", "placement_stats"]


@dataclass
class ComputeItem:
    """One migratable compute object as the balancer sees it."""

    index: int  # stable descriptor index
    load: float  # per-step execution time
    patches: tuple[int, ...]  # patches whose data it needs
    proc: int  # current processor


@dataclass
class LBProblem:
    """Everything a strategy may consult."""

    n_procs: int
    computes: list[ComputeItem]
    #: per-processor non-migratable load (integration, inter-patch bonded
    #: work, proxy handling) — the paper's "background load"
    background: np.ndarray
    #: home processor of each patch
    patch_home: dict[int, int]
    #: (patch, proc) pairs where a proxy already exists (e.g. required by
    #: non-migratable computes); strategies may use these for free
    existing_proxies: set[tuple[int, int]] = field(default_factory=set)
    #: processors lost to fail-stop failures: strategies must evacuate any
    #: objects still placed there and never choose them as destinations
    dead_procs: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.background = np.asarray(self.background, dtype=np.float64)
        if self.background.shape != (self.n_procs,):
            raise ValueError("background load must have one entry per processor")
        if len(self.dead_procs) >= self.n_procs:
            raise ValueError("at least one processor must be live")

    def patch_available(self, patch: int, proc: int) -> bool:
        """True when ``patch`` data is already on ``proc`` (home or proxy)."""
        return self.patch_home.get(patch) == proc or (patch, proc) in self.existing_proxies

    def patch_locations(
        self, include_compute_residency: bool = False
    ) -> dict[int, set[int]]:
        """Patch → processors that already hold its data (home + proxies).

        ``include_compute_residency`` also counts processors where a compute
        needing the patch currently runs — its proxy must already exist even
        if the runtime didn't report it.  Both the greedy and refinement
        strategies grow this map as their assignments create new proxies.
        """
        locations: dict[int, set[int]] = defaultdict(set)
        for patch, proc in self.patch_home.items():
            locations[patch].add(proc)
        for patch, proc in self.existing_proxies:
            locations[patch].add(proc)
        if include_compute_residency:
            for item in self.computes:
                for patch in item.patches:
                    locations[patch].add(item.proc)
        return locations

    @property
    def n_live(self) -> int:
        """Processors still available for placement."""
        return self.n_procs - len(self.dead_procs)

    def average_load(self) -> float:
        """Mean per-*live*-processor load if migratables were spread
        perfectly (dead processors cannot absorb any)."""
        total = float(self.background.sum()) + sum(c.load for c in self.computes)
        return total / self.n_live


def placement_stats(
    problem: LBProblem, placement: dict[int, int]
) -> dict[str, float]:
    """Quality metrics of a placement: max/avg load, imbalance, proxy count.

    ``placement`` maps compute index → processor.  Proxies are counted the
    way the runtime will create them: one per (patch, proc) with a compute
    needing the patch away from its home processor (plus pre-existing ones).
    """
    loads = problem.background.copy()
    proxies: set[tuple[int, int]] = set(problem.existing_proxies)
    for c in problem.computes:
        proc = placement.get(c.index, c.proc)
        loads[proc] += c.load
        for patch in c.patches:
            if problem.patch_home.get(patch) != proc:
                proxies.add((patch, proc))
    max_load = float(loads.max())
    avg_load = float(loads.mean())
    return {
        "max_load": max_load,
        "avg_load": avg_load,
        "imbalance": max_load - avg_load,
        "imbalance_ratio": max_load / avg_load if avg_load > 0 else 1.0,
        "n_proxies": float(len(proxies)),
    }
