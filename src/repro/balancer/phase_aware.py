"""Phase-aware load balancing (the paper's §5 future-work item).

"Further progress on improving scalability will require strategies that
consider the dependency chains, and load-balance within distinct phases of
a single time step."

A timestep is not one flat pool of work: self computes and bonded intra
objects can fire as soon as their *single* home patch distributes positions
(the early phase), while pair computes must wait for a second patch's data
to cross the network (the late phase).  A placement that is balanced in
total but piles one processor's share into the same phase still stalls the
critical path.

This strategy partitions compute objects by phase — objects needing one
patch vs. objects needing several — and runs the paper's greedy criteria
*within each phase*, carrying the accumulated per-processor load across
phases so the total stays balanced too.  Late-phase (multi-patch) objects
are placed first because they sit deeper in the dependency chain and their
placement determines the proxy pattern; early-phase objects then fill the
remaining capacity.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.balancer.greedy import DEFAULT_OVERLOAD
from repro.balancer.problem import LBProblem

__all__ = ["phase_aware_strategy"]


def _phase_of(patches: tuple[int, ...]) -> int:
    """0 = late phase (multi-patch, waits on communication), 1 = early."""
    return 0 if len(patches) > 1 else 1


def phase_aware_strategy(
    problem: LBProblem, overload_threshold: float = DEFAULT_OVERLOAD
) -> dict[int, int]:
    """Greedy placement balanced per dependency phase.

    Within each phase the per-processor *phase load* may not exceed the
    phase average by more than the overload threshold (subject to the same
    feasibility relaxation as the global greedy), while candidate scoring
    keeps the paper's patch/proxy criteria.
    """
    n_procs = problem.n_procs
    total_loads = problem.background.astype(np.float64).copy()

    procs_with_patch: dict[int, set[int]] = defaultdict(set)
    for patch, proc in problem.patch_home.items():
        procs_with_patch[patch].add(proc)
    for patch, proc in problem.existing_proxies:
        procs_with_patch[patch].add(proc)

    by_phase: dict[int, list] = defaultdict(list)
    for item in problem.computes:
        by_phase[_phase_of(item.patches)].append(item)

    placement: dict[int, int] = {}
    for phase in sorted(by_phase):  # late phase (0) first
        items = by_phase[phase]
        phase_loads = np.zeros(n_procs)
        phase_avg = sum(c.load for c in items) / n_procs
        phase_limit = phase_avg * (1.0 + overload_threshold)

        for item in sorted(items, key=lambda c: -c.load):
            candidates = set()
            for patch in item.patches:
                candidates.update(procs_with_patch[patch])
            least_total = int(np.argmin(total_loads))
            least_phase = int(np.argmin(phase_loads))
            candidates.add(least_total)
            candidates.add(least_phase)

            effective_phase_limit = max(
                phase_limit, float(phase_loads[least_phase]) + item.load
            )

            best_proc = -1
            best_key: tuple | None = None
            for proc in candidates:
                if phase_loads[proc] + item.load > effective_phase_limit:
                    continue
                home_hits = sum(
                    1
                    for patch in item.patches
                    if problem.patch_home.get(patch) == proc
                )
                new_proxies = sum(
                    1
                    for patch in item.patches
                    if proc not in procs_with_patch[patch]
                )
                key = (-home_hits, new_proxies, total_loads[proc])
                if best_key is None or key < best_key:
                    best_key = key
                    best_proc = proc
            if best_proc < 0:
                best_proc = least_phase

            placement[item.index] = best_proc
            phase_loads[best_proc] += item.load
            total_loads[best_proc] += item.load
            for patch in item.patches:
                procs_with_patch[patch].add(best_proc)
    return placement
