"""The paper's greedy initial load-balancing strategy (§3.2, verbatim):

    * Select the biggest (longest-executing) compute object.
    * Select a destination processor for the compute object such that:
        - Adding this compute object will not overload the processor much
          (an overload threshold permits some overload).
        - The compute object will utilize as many home patches as possible.
        - The assignment will create as few new proxy patches as possible.
        - Among multiple processors selected by the above criteria, select
          the least loaded processor as the destination processor.
    * Assign the compute object to the selected processor
        - Add the compute object load to the processor's total load
        - Record the creation of new proxies, so that future compute
          objects may also use the proxy.
    * Repeat until all compute objects are assigned.

The candidate set examined per object is the processors already holding at
least one of the object's patches (home or proxy) plus the globally
least-loaded processor — any other processor scores zero on the patch/proxy
criteria and cannot beat the least-loaded one, so the restriction is exact,
not a heuristic, and keeps the strategy fast at 2048 processors.
"""

from __future__ import annotations

import numpy as np

from repro.balancer.problem import LBProblem

__all__ = ["greedy_strategy"]

#: "an overload threshold permits some overload"
DEFAULT_OVERLOAD = 0.10


def greedy_strategy(
    problem: LBProblem, overload_threshold: float = DEFAULT_OVERLOAD
) -> dict[int, int]:
    """Compute a fresh placement for every migratable compute object."""
    n_procs = problem.n_procs
    loads = problem.background.astype(np.float64).copy()
    # dead processors can never win any load comparison
    loads[list(problem.dead_procs)] = np.inf
    avg = problem.average_load()
    limit = avg * (1.0 + overload_threshold)

    # patch availability: home patches + pre-existing proxies, extended as
    # assignments create proxies
    procs_with_patch = problem.patch_locations()

    placement: dict[int, int] = {}
    for item in sorted(problem.computes, key=lambda c: -c.load):
        candidates = set()
        for patch in item.patches:
            candidates.update(procs_with_patch[patch])
        least = int(np.argmin(loads))
        candidates.add(least)

        # an assignment is never "overloading" when even the least-loaded
        # processor would end up at that load — without this, any object
        # bigger than the average (common at large P) would defeat the
        # patch/proxy criteria entirely
        effective_limit = max(limit, float(loads[least]) + item.load)

        best_proc = -1
        best_key: tuple | None = None
        for proc in candidates:
            if loads[proc] + item.load > effective_limit:
                continue
            home_hits = sum(
                1 for patch in item.patches if problem.patch_home.get(patch) == proc
            )
            new_proxies = sum(
                1
                for patch in item.patches
                if proc not in procs_with_patch[patch]
            )
            # maximize home hits, minimize new proxies, minimize load
            key = (-home_hits, new_proxies, loads[proc])
            if best_key is None or key < best_key:
                best_key = key
                best_proc = proc
        if best_proc < 0:
            # every candidate would overload: fall back to least loaded
            best_proc = int(np.argmin(loads))

        placement[item.index] = best_proc
        loads[best_proc] += item.load
        for patch in item.patches:
            procs_with_patch[patch].add(best_proc)
    return placement
