"""Recursive coordinate bisection for initial patch placement (paper §3.2).

"When a simulation begins, patches are distributed according to a recursive
coordinate bisection scheme, so that each processor receives a number of
neighboring patches.  When there are more processors than patches, this
method reduces to a simple round-robin distribution."
"""

from __future__ import annotations

import numpy as np

__all__ = ["recursive_coordinate_bisection"]


def recursive_coordinate_bisection(
    coords: np.ndarray, weights: np.ndarray, n_procs: int
) -> np.ndarray:
    """Assign weighted points to processors by recursive bisection.

    Parameters
    ----------
    coords:
        ``(n, 3)`` point coordinates (patch grid coordinates or centers).
    weights:
        ``(n,)`` non-negative work weights (atom counts).
    n_procs:
        Processor count; need not be a power of two — the split ratio
        follows the processor split.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` processor index per point, in ``0..n_procs-1``.

    With more processors than points the scheme degenerates to spreading
    points evenly over the processor range (the paper's round-robin case),
    leaving the remaining processors patchless.
    """
    coords = np.asarray(coords, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n = len(coords)
    if coords.shape != (n, 3):
        raise ValueError("coords must be (n, 3)")
    if weights.shape != (n,):
        raise ValueError("weights must be (n,)")
    if n_procs < 1:
        raise ValueError("need at least one processor")
    result = np.zeros(n, dtype=np.int64)
    if n == 0:
        return result
    if n_procs >= n:
        # evenly spread points across the processor range
        result[:] = (np.arange(n) * n_procs) // n
        return result
    _rcb(coords, weights, np.arange(n), 0, n_procs, result)
    return result


def _rcb(
    coords: np.ndarray,
    weights: np.ndarray,
    items: np.ndarray,
    proc0: int,
    n_procs: int,
    result: np.ndarray,
) -> None:
    if n_procs == 1 or len(items) <= 1:
        result[items] = proc0
        # more processors than items in this branch: spread what we have
        if n_procs > 1 and len(items) > 1:
            result[items] = proc0 + (np.arange(len(items)) * n_procs) // len(items)
        return
    pts = coords[items]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    order = items[np.argsort(pts[:, axis], kind="stable")]

    left_procs = n_procs // 2
    right_procs = n_procs - left_procs
    target = weights[order].sum() * (left_procs / n_procs)
    cum = np.cumsum(weights[order])
    # split at the weight boundary closest to the target, keeping both
    # halves non-empty
    split = int(np.searchsorted(cum, target))
    split = max(1, min(split, len(order) - 1))
    _rcb(coords, weights, order[:split], proc0, left_procs, result)
    _rcb(coords, weights, order[split:], proc0 + left_procs, right_procs, result)
