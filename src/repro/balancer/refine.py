"""The paper's refinement strategy (§3.2):

"Immediately after assigning the compute objects with this strategy, a
refinement algorithm further reduces the load imbalance, by tolerating the
creation of additional proxy patches.  The refinement algorithm is almost
identical to the initial procedure, except that the overload threshold is
smaller, only compute objects from overloaded processors are considered for
migration, and only underloaded processors are considered as destinations."

Refinement also runs alone on later LB cycles ("This time, only the
refinement procedure is used, resulting in only a few additional object
migrations").
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.balancer.problem import LBProblem

__all__ = ["refine_strategy"]

#: tighter threshold than the greedy pass
DEFAULT_OVERLOAD = 0.03


def refine_strategy(
    problem: LBProblem, overload_threshold: float = DEFAULT_OVERLOAD
) -> dict[int, int]:
    """Move objects off overloaded processors; returns the *full* placement
    map (unmoved objects keep their current processor)."""
    n_procs = problem.n_procs
    loads = problem.background.astype(np.float64).copy()
    # dead processors are infinitely overloaded: everything still placed on
    # one must move, and none may be chosen as a destination
    loads[list(problem.dead_procs)] = np.inf
    on_proc: dict[int, list] = defaultdict(list)
    for item in problem.computes:
        loads[item.proc] += item.load
        on_proc[item.proc].append(item)

    avg = problem.average_load()
    limit = avg * (1.0 + overload_threshold)

    procs_with_patch = problem.patch_locations(include_compute_residency=True)

    placement = {item.index: item.proc for item in problem.computes}

    overloaded = sorted(
        (p for p in range(n_procs) if loads[p] > limit),
        key=lambda p: -loads[p],
    )
    for proc in overloaded:
        # biggest objects first, as in the greedy pass
        movable = sorted(on_proc[proc], key=lambda c: -c.load)
        for item in movable:
            if loads[proc] <= limit:
                break
            best_proc = -1
            best_key: tuple | None = None
            for dest in _underloaded(loads, avg):
                if loads[dest] + item.load > limit:
                    continue
                # a move's communication cost is the *new* proxies it forces:
                # patches already on the destination — home OR existing proxy
                # (procs_with_patch carries both) — are free.  Home hits only
                # break ties among equally-proxied destinations.
                avail_hits = sum(
                    1 for patch in item.patches if dest in procs_with_patch[patch]
                )
                home_hits = sum(
                    1 for patch in item.patches if problem.patch_home.get(patch) == dest
                )
                key = (-avail_hits, -home_hits, loads[dest])
                if best_key is None or key < best_key:
                    best_key = key
                    best_proc = dest
            if best_proc < 0:
                continue
            placement[item.index] = best_proc
            loads[proc] -= item.load
            loads[best_proc] += item.load
            for patch in item.patches:
                procs_with_patch[patch].add(best_proc)

    # evacuation guarantee: anything left on a dead processor (every live
    # destination exceeded the limit) goes to the least-loaded live one
    if problem.dead_procs:
        for item in problem.computes:
            if placement[item.index] in problem.dead_procs:
                dest = int(np.argmin(loads))
                placement[item.index] = dest
                loads[dest] += item.load
                for patch in item.patches:
                    procs_with_patch[patch].add(dest)
    return placement


def _underloaded(loads: np.ndarray, avg: float) -> list[int]:
    """Processors below the average load, least-loaded first."""
    below = np.flatnonzero(loads < avg)
    return below[np.argsort(loads[below])].tolist()
