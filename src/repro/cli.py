"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the benchmark specs and machine models.
``md``
    Run real sequential MD on a water box and print the energy ledger.
``scaling``
    Run the parallel simulation across processor counts and print a
    Table-2-style scaling table.
``audit``
    Print a Table-1-style performance audit for one configuration.
``grainsize``
    Print Figure-1/2-style grainsize histograms (before/after splitting).
``backends``
    Print the kernel backend inventory (numpy reference / numba JIT) and
    which one the session resolves to.
``serve``
    Run the simulation service: a REST front end multiplexing many
    concurrent jobs onto one shared worker budget (see README "Running
    as a service").

The heavyweight paper systems (``apoa1``, ``bc1``) build in seconds to
minutes; ``br`` and ``mini`` are fast.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

_SYSTEMS = ("mini", "br", "apoa1", "bc1")


def _load_system(name: str):
    from repro.builder.benchmarks import apoa1_like, bc1_like, br_like, mini_assembly

    return {
        "mini": mini_assembly,
        "br": br_like,
        "apoa1": apoa1_like,
        "bc1": bc1_like,
    }[name]()


def _machine(name: str):
    from repro.runtime.machine import MACHINES

    try:
        return MACHINES[name]
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )


def _build_problem(system):
    from repro.core.problem import DecomposedProblem
    from repro.core.simulation import DEFAULT_COST_MODEL

    return DecomposedProblem.build(system, DEFAULT_COST_MODEL)


def cmd_info(_args) -> int:
    """Print the benchmark-system and machine-model inventory."""
    from repro.builder.benchmarks import BENCHMARK_SPECS
    from repro.runtime.machine import MACHINES

    print("Benchmark systems (paper §4.2-4.3):")
    for spec in BENCHMARK_SPECS.values():
        g = spec.patch_grid
        print(
            f"  {spec.name:>6}: {spec.n_atoms:>8} atoms, "
            f"{g[0]}x{g[1]}x{g[2]} patches at {spec.cutoff} A cutoff — "
            f"{spec.description}"
        )
    print("\nMachine models:")
    for m in MACHINES.values():
        print(
            f"  {m.name:>15}: cpu x{m.cpu_factor:<5} latency "
            f"{m.latency_s * 1e6:.0f} us, bw {m.bandwidth_Bps / 1e6:.0f} MB/s, "
            f"<= {m.max_procs} procs"
        )
    return 0


def cmd_backends(_args) -> int:
    """Print the kernel backend inventory and the resolved default."""
    from repro.backend import ENV_VAR, backend_status

    status = backend_status()
    print("Kernel backends (repro.backend):")
    print(f"  available: {', '.join(status['available'])}")
    env = status["env"]
    print(
        f"  default:   {status['default']}"
        + (f"  (from {ENV_VAR}={env})" if env else "  (auto)")
    )
    if status["numba_ok"]:
        print("  numba:     ok (passed parity self-check vs numpy)")
    else:
        print(f"  numba:     unavailable — {status['numba_error']}")
    return 0


def cmd_md(args) -> int:
    """Run MD on a water box and print the energy ledger."""
    from repro.backend import set_default_backend
    from repro.builder import skewed_water_box, small_water_box
    from repro.md.engine import SequentialEngine, make_engine
    from repro.md.integrator import VelocityVerlet
    from repro.md.nonbonded import NonbondedOptions
    from repro.md.pairlist import VerletPairList

    if args.pairlist_skin < 0:
        raise SystemExit("--pairlist-skin must be >= 0")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = one per CPU)")
    if args.rebalance_every < 0:
        raise SystemExit("--rebalance-every must be >= 0 (0 = static)")
    if args.grainsize_ms < 0:
        raise SystemExit("--grainsize-ms must be >= 0 (0 = no splitting)")
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be >= 0 (0 = off)")
    if args.checkpoint_every > 0 and not args.checkpoint_path:
        raise SystemExit("--checkpoint-every needs --checkpoint-path")
    if args.resume and not args.checkpoint_path:
        raise SystemExit("--resume needs --checkpoint-path")
    fault_plan = None
    if args.fault_plan:
        if args.workers == 1:
            raise SystemExit(
                "--fault-plan needs --workers > 1 (faults are injected "
                "into live worker processes)"
            )
        from repro.md.resilience import WorkerFaultPlan

        try:
            fault_plan = WorkerFaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            raise SystemExit(f"bad --fault-plan: {exc}")
    backend = set_default_backend(args.backend)
    if args.backend != "auto" or backend.name != "numpy":
        print(f"kernel backend: {backend.name}")
    ewald = None
    if args.kmax < 0:
        raise SystemExit("--kmax must be >= 0")
    if args.ewald:
        from repro.md.ewald import EwaldOptions

        ewald = EwaldOptions(cutoff=args.cutoff, kmax=args.kmax)
        print(
            f"electrostatics: Ewald (alpha {ewald.alpha_value():.4f}, "
            f"kmax {ewald.kmax})"
        )
    distribute = not args.no_distribute
    if args.skew > 0:
        system = skewed_water_box(args.waters, seed=args.seed, skew=args.skew)
    else:
        system = small_water_box(args.waters, seed=args.seed)
    system.assign_velocities(args.temperature, seed=args.seed)
    if args.workers == 1:
        if args.rebalance_every or args.lb_strategy or args.grainsize_ms:
            raise SystemExit(
                "--rebalance-every/--lb-strategy/--grainsize-ms need "
                "--workers > 1 (load balancing happens on the worker pool)"
            )
        pairlist = (
            VerletPairList(args.cutoff, skin=args.pairlist_skin)
            if args.pairlist_skin > 0
            else None
        )
        engine = SequentialEngine(
            system,
            NonbondedOptions(cutoff=args.cutoff),
            VelocityVerlet(dt=args.dt),
            pairlist=pairlist,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
            ewald=ewald,
        )
    else:
        pairlist = None
        try:
            engine = make_engine(
                system,
                NonbondedOptions(cutoff=args.cutoff),
                VelocityVerlet(dt=args.dt),
                workers=args.workers,
                skin=args.pairlist_skin,
                rebalance_every=args.rebalance_every,
                lb_strategy=args.lb_strategy,
                grainsize_ms=args.grainsize_ms,
                fault_plan=fault_plan,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint_path,
                ewald=ewald,
                distribute=distribute,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(
            f"parallel engine: {engine.workers} worker processes"
            if engine.parallel
            else "parallel pool unavailable; running sequentially"
        )
        if engine.parallel and distribute:
            extra = " and Ewald k-space shards" if ewald is not None else ""
            print(f"distributing bonded term groups{extra} onto the pool")
        if engine.parallel and args.grainsize_ms:
            rep = engine._nb.split_report()
            print(
                f"grainsize {args.grainsize_ms:g} ms: "
                f"{rep['n_parent_tasks']} cell tasks -> "
                f"{rep['n_subtasks']} sub-tasks "
                f"({rep['n_split_parents']} split, "
                f"largest {rep['max_parts']} parts)"
            )
    with engine:
        if args.resume:
            from repro.runtime.checkpoint import (
                load_run_checkpoint,
                restore_run_checkpoint,
            )

            try:
                cp = load_run_checkpoint(args.checkpoint_path)
            except FileNotFoundError:
                raise SystemExit(
                    f"--resume: no checkpoint at {args.checkpoint_path}"
                )
            except ValueError as exc:
                raise SystemExit(f"--resume: {exc}")
            restore_run_checkpoint(engine, cp)
            print(f"resumed from checkpoint at step {cp.step}")
        print(
            f"{'step':>5} {'kinetic':>10} {'potential':>12} {'total':>12} {'T':>7}"
        )
        for rep in engine.run(args.steps):
            print(
                f"{rep.step:>5} {rep.kinetic:>10.2f} {rep.potential:>12.2f} "
                f"{rep.total:>12.4f} {system.temperature():>7.1f}"
            )
        if pairlist is not None:
            print(
                f"pairlist: {pairlist.n_builds} builds, "
                f"reuse fraction {pairlist.reuse_fraction:.2f} "
                f"(skin {pairlist.skin:.1f} A)"
            )
        elif getattr(engine, "parallel", False):
            nb = engine._nb
            print(
                f"pairlist: {nb.n_rebuilds} rebuilds, {nb.n_reuses} reuses "
                f"across {nb.n_workers} workers (skin {nb.skin:.1f} A)"
            )
            for rec in engine.rebalance_log:
                print(
                    f"rebalance @step {rec['step']} ({rec['strategy']}): "
                    f"moved {rec['moved']} tasks, predicted max load "
                    f"{rec['max_load_before'] * 1e3:.2f} -> "
                    f"{rec['max_load_after'] * 1e3:.2f} ms/step"
                )
            if args.rebalance_every:
                from repro.analysis.timeline import render_workdb_timeline

                print(
                    render_workdb_timeline(
                        engine.workdb, engine.workers, width=72
                    )
                )
            drep = engine.driver_report()
            if drep["n_evals"]:
                print(
                    f"driver share: {drep['driver_share'] * 100:.1f}% "
                    f"({drep['driver_s'] * 1e3:.1f} ms driver compute of "
                    f"{drep['wall_s'] * 1e3:.1f} ms force wall; "
                    "one-core hosts time-slice, so only multi-core "
                    "numbers are meaningful)"
                )
            if ewald is not None:
                ks = engine.kspace_cache_stats()
                print(
                    f"k-space cache: driver {ks['driver']['builds']} builds/"
                    f"{ks['driver']['hits']} hits, workers "
                    f"{ks['worker_builds']} builds/{ks['worker_hits']} hits"
                )
        res = getattr(engine, "resilience", None)
        if res is not None and (res.events or res.mode != "full"):
            print(
                f"resilience: mode {res.mode}; "
                f"{res.kills_detected} killed, {res.hangs_detected} hung, "
                f"{res.errors_detected} errored; {res.respawns} respawned, "
                f"{res.tasks_reassigned} tasks reassigned, "
                f"{res.degraded_steps} degraded steps, "
                f"{res.recovery_time_s * 1e3:.1f} ms recovering"
            )
            if res.reassigned_by_kind:
                kinds = ", ".join(
                    f"{k} {v}"
                    for k, v in sorted(res.reassigned_by_kind.items())
                )
                print(f"  reassigned by kind: {kinds}")
            for ev in res.events:
                who = f"worker {ev.worker}" if ev.worker >= 0 else "pool"
                print(
                    f"  step {ev.step}: {who} {ev.kind} -> {ev.action} "
                    f"(detected in {ev.detection_s * 1e3:.0f} ms"
                    + (f", {ev.tasks_moved} tasks moved" if ev.tasks_moved else "")
                    + ")"
                )
        if args.checkpoint_every:
            print(
                f"checkpoints: {engine.n_checkpoints} written to "
                f"{args.checkpoint_path} (every {args.checkpoint_every} steps)"
            )
        if args.workdb_dump:
            db = getattr(engine, "workdb", None)
            if db is None or not db.tasks:
                print(
                    "no WorkDB to dump (measurements need --workers > 1)",
                    file=sys.stderr,
                )
            else:
                db.dump(args.workdb_dump)
                print(f"WorkDB written to {args.workdb_dump}")
    return 0


def cmd_serve(args) -> int:
    """Run the simulation service behind its REST front end."""
    import signal

    from repro.service import ServiceServer, SimulationService, TenantQuota

    if args.worker_slots < 0:
        raise SystemExit("--worker-slots must be >= 0")
    if args.lanes < 1:
        raise SystemExit("--lanes must be >= 1")
    if args.slice_steps < 1:
        raise SystemExit("--slice-steps must be >= 1")
    try:
        quota = TenantQuota(
            max_running=args.max_running,
            max_queued=args.max_queued,
            max_workers=args.max_workers,
        )
        service = SimulationService(
            worker_slots=args.worker_slots,
            lanes=args.lanes,
            slice_steps=args.slice_steps,
            target_slice_s=args.target_slice_s,
            workdir=args.workdir,
            default_quota=quota,
            lb_strategy=args.lb_strategy,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    server = ServiceServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    server.start()
    print(f"serving at {server.url}", flush=True)
    print(
        f"  budget: {args.worker_slots} worker slots, {args.lanes} lanes; "
        f"quota per tenant: {quota.max_running} running / "
        f"{quota.max_queued} queued / {quota.max_workers} worker slots",
        flush=True,
    )

    def _stop(_signum, _frame):
        # handler must not block; stop on a thread and let wait() return
        import threading

        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    server.wait()
    print("service stopped", flush=True)
    return 0


def cmd_scaling(args) -> int:
    """Run a processor-count sweep and print the scaling table."""
    from repro.analysis.speedup import format_scaling_table, scaling_sweep
    from repro.core.simulation import SimulationConfig

    system = _load_system(args.system)
    problem = _build_problem(system)
    procs = [int(p) for p in args.procs.split(",")]
    cfg = SimulationConfig(n_procs=procs[0], machine=_machine(args.machine))
    rows = scaling_sweep(problem, cfg, procs, baseline_procs=args.baseline)
    print(
        format_scaling_table(
            rows, title=f"{args.system} on {args.machine} (simulated)"
        )
    )
    return 0


def cmd_audit(args) -> int:
    """Run one configuration and print the Table-1-style audit."""
    from repro.analysis.audit import performance_audit
    from repro.core.simulation import ParallelSimulation, SimulationConfig
    from repro.runtime.faults import FaultPlan

    system = _load_system(args.system)
    problem = _build_problem(system)
    try:
        plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
        if plan:
            for f in plan.failures:
                if not 0 <= f.proc < args.procs:
                    raise ValueError(
                        f"kill targets processor {f.proc}, "
                        f"but --procs is {args.procs}"
                    )
    except ValueError as exc:
        raise SystemExit(f"bad --fault-plan: {exc}")
    try:
        cfg = SimulationConfig(
            n_procs=args.procs,
            machine=_machine(args.machine),
            fault_plan=plan,
            checkpoint_interval=args.checkpoint_interval,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    from repro.runtime.checkpoint import UnrecoverableFailure

    try:
        result = ParallelSimulation(system, cfg, problem=problem).run()
    except UnrecoverableFailure as exc:
        raise SystemExit(f"unrecoverable: {exc}")
    print(performance_audit(result).format())
    return 0


def cmd_grainsize(args) -> int:
    """Print grainsize histograms before/after pair splitting."""
    from repro.analysis.grainsize import format_histogram, histogram_from_descriptors
    from repro.core.computes import GrainsizeConfig, build_nonbonded_computes
    from repro.core.decomposition import SpatialDecomposition
    from repro.core.simulation import DEFAULT_COST_MODEL

    system = _load_system(args.system)
    decomposition = SpatialDecomposition(system, cutoff=12.0)
    for split_pairs, title in ((False, "before pair splitting"),
                               (True, "after pair splitting")):
        descs = build_nonbonded_computes(
            decomposition,
            DEFAULT_COST_MODEL,
            GrainsizeConfig(split_self=True, split_pairs=split_pairs),
        )
        print(format_histogram(histogram_from_descriptors(descs), title=title))
        print()
    return 0


def cmd_report(args) -> int:
    """Concatenate every regenerated table/figure under benchmarks/results."""
    from pathlib import Path

    results = Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        print(
            f"no results in {results}; run `pytest benchmarks/` first",
            file=sys.stderr,
        )
        return 1
    for f in files:
        print("=" * 72)
        print(f"== {f.stem}")
        print("=" * 72)
        print(f.read_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC 2000 NAMD parallelization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="benchmark and machine inventory")

    p_rep = sub.add_parser(
        "report", help="print all regenerated tables/figures from the bench run"
    )
    p_rep.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory of regenerated artifacts",
    )

    p_md = sub.add_parser("md", help="run MD on a water box")
    p_md.add_argument("--waters", type=int, default=216)
    p_md.add_argument("--steps", type=int, default=20)
    p_md.add_argument("--dt", type=float, default=1.0)
    p_md.add_argument("--cutoff", type=float, default=8.0)
    p_md.add_argument("--temperature", type=float, default=300.0)
    p_md.add_argument("--seed", type=int, default=7)
    p_md.add_argument(
        "--pairlist-skin", type=float, default=1.5, metavar="ANGSTROM",
        help="Verlet pairlist skin; 0 disables list reuse and re-enumerates "
             "candidate pairs from the cell grid every step",
    )
    p_md.add_argument(
        "--backend", choices=("auto", "numpy", "numba"), default="auto",
        help="kernel backend for the hot loops: 'numpy' is the always-"
             "available reference, 'numba' the JIT-compiled loops (falls "
             "back to numpy with a warning when unavailable), 'auto' "
             "prefers numba silently; see `repro backends`",
    )
    p_md.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the non-bonded forces (1 = sequential "
             "engine, 0 = one worker per CPU); see README 'Running in "
             "parallel'",
    )
    p_md.add_argument(
        "--skew", type=float, default=0.0, metavar="RATIO",
        help="build a skewed-density water box instead of a uniform one: "
             "the left half holds RATIO times the waters of the right half "
             "(0 = uniform); the load-balancing stress case",
    )
    p_md.add_argument(
        "--rebalance-every", type=int, default=0, metavar="STEPS",
        help="run a measurement-based load-balancing decision every N "
             "steps on the worker pool (0 = keep the static assignment); "
             "greedy seeds the first cycle, refine runs thereafter",
    )
    p_md.add_argument(
        "--lb-strategy", default=None, metavar="NAME",
        help="override the greedy-then-refine schedule with one strategy "
             "(or '+'-combo) from repro.balancer.STRATEGIES for every "
             "rebalance decision",
    )
    p_md.add_argument(
        "--grainsize-ms", type=float, default=0.0, metavar="MS",
        help="grainsize target for the worker pool in cost-model "
             "milliseconds: cell tasks whose prior time exceeds MS are "
             "split into row-stripe sub-tasks before load balancing "
             "(0 = whole-cell tasks; the paper suggests ~5 ms)",
    )
    p_md.add_argument(
        "--workdb-dump", default=None, metavar="PATH",
        help="write the engine's measurement database (per-task timings, "
             "affinity, owners) as JSON on exit; reload with "
             "repro.instrument.WorkDB.load_file",
    )
    p_md.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="real-process fault injection on the worker pool, e.g. "
             "'kill=1@3,hang=0@5x2,slow=1@2-6x8' (SIGKILL worker 1 at "
             "step 3, SIGSTOP worker 0 for 2 s at step 5, slow worker 1 "
             "8x over steps 2-6); needs --workers > 1 — the supervisor "
             "recovers and the trajectory stays bit-identical",
    )
    p_md.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="STEPS",
        help="write an atomic run checkpoint every N completed steps "
             "(0 = off); needs --checkpoint-path",
    )
    p_md.add_argument(
        "--checkpoint-path", default=None, metavar="PATH",
        help="checkpoint file (.npz) for --checkpoint-every / --resume",
    )
    p_md.add_argument(
        "--resume", action="store_true",
        help="restore --checkpoint-path before stepping; the resumed "
             "trajectory is bit-identical to the original run's "
             "continuation",
    )
    p_md.add_argument(
        "--ewald", action="store_true",
        help="replace the cutoff point-charge electrostatics with full "
             "periodic Ewald summation (real-space within --cutoff, "
             "reciprocal sum to --kmax); with --workers > 1 the k-space "
             "sum runs as sharded tasks on the pool unless "
             "--no-distribute",
    )
    p_md.add_argument(
        "--kmax", type=int, default=8, metavar="K",
        help="Ewald reciprocal-space extent: k-vectors with |m| <= K per "
             "axis (only with --ewald)",
    )
    p_md.add_argument(
        "--no-distribute", action="store_true",
        help="keep bonded terms (and the Ewald k-space sum) on the driver "
             "instead of distributing them onto the worker pool; only "
             "meaningful with --workers > 1",
    )

    p_sc = sub.add_parser("scaling", help="scaling table for one system")
    p_sc.add_argument("--system", choices=_SYSTEMS, default="br")
    p_sc.add_argument("--machine", default="ASCI-Red")
    p_sc.add_argument("--procs", default="1,2,4,8,32,64,128,256")
    p_sc.add_argument("--baseline", type=int, default=1)

    p_au = sub.add_parser("audit", help="Table-1-style performance audit")
    p_au.add_argument("--system", choices=_SYSTEMS, default="br")
    p_au.add_argument("--machine", default="ASCI-Red")
    p_au.add_argument("--procs", type=int, default=32)
    p_au.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="fault injection spec, e.g. 'seed=7,kill=2@0.5,drop=0.01' "
             "(see repro.runtime.faults.FaultPlan.parse)",
    )
    p_au.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="STEPS",
        help="double-checkpoint every N steps (0 = baseline cut only)",
    )

    p_gs = sub.add_parser("grainsize", help="Figure-1/2-style histograms")
    p_gs.add_argument("--system", choices=_SYSTEMS, default="br")

    sub.add_parser(
        "backends", help="kernel backend inventory (numpy / numba JIT)"
    )

    p_sv = sub.add_parser(
        "serve", help="run the simulation service (REST + shared pool)"
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    p_sv.add_argument(
        "--worker-slots", type=int, default=4, metavar="N",
        help="total worker processes leasable across all running jobs "
             "(sequential jobs lease 0)",
    )
    p_sv.add_argument(
        "--lanes", type=int, default=2, metavar="N",
        help="concurrency lanes: how many jobs step at the same time; "
             "cross-job balancing packs jobs onto lanes by measured cost",
    )
    p_sv.add_argument(
        "--slice-steps", type=int, default=5, metavar="N",
        help="steps per scheduling slice (a job yields its lane between "
             "slices; slicing never changes the trajectory)",
    )
    p_sv.add_argument(
        "--target-slice-s", type=float, default=0.0, metavar="SECONDS",
        help="scale each job's slice length so a slice costs about this "
             "much wall time (0 = fixed --slice-steps)",
    )
    p_sv.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="directory for per-job checkpoints (default: a temp dir "
             "removed at shutdown)",
    )
    p_sv.add_argument(
        "--max-running", type=int, default=4, metavar="N",
        help="per-tenant cap on concurrently running jobs",
    )
    p_sv.add_argument(
        "--max-queued", type=int, default=16, metavar="N",
        help="per-tenant cap on queued jobs (submission returns 429 over)",
    )
    p_sv.add_argument(
        "--max-workers", type=int, default=8, metavar="N",
        help="per-tenant cap on summed leased worker slots",
    )
    p_sv.add_argument(
        "--lb-strategy", default="greedy", metavar="NAME",
        help="cross-job lane-packing strategy (repro.balancer.STRATEGIES)",
    )
    p_sv.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "md": cmd_md,
        "scaling": cmd_scaling,
        "audit": cmd_audit,
        "grainsize": cmd_grainsize,
        "report": cmd_report,
        "backends": cmd_backends,
        "serve": cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
