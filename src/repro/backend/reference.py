"""Pure-numpy reference kernels — the ground truth every backend must match.

These are the exact vectorized implementations the md modules ran inline
before the backend layer existed, factored out unchanged: the numpy backend
is bit-for-bit identical to the historical code paths, which is what keeps
default-path trajectories (and checkpoint resume) bit-identical across this
refactor.  Compiled backends must agree to 1e-9 (enforced by
:func:`repro.backend.base.parity_selfcheck` and the parity-sweep tests).

Import discipline: numpy and :mod:`repro.util` only.  ``repro.md`` modules
import :mod:`repro.backend` at module scope, so importing md back from here
would be circular.  The two constants below are duplicated for that reason
and guarded by tests against their ``repro.md`` counterparts.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import KernelBackend
from repro.util.pbc import minimum_image

__all__ = ["build_backend"]

#: Duplicated from :data:`repro.md.constants.COULOMB_CONSTANT` (circular
#: import — see module docstring); tests assert the two stay equal.
COULOMB_CONSTANT = 332.0636

#: Below this many contributions per output row (on average), the bincount
#: pass over the whole output array costs more than the generic scatter.
#: Duplicated from the historical ``repro.md.scatter`` value (guarded by
#: tests) so the scatter heuristic — and therefore the exact rounding of
#: accumulated forces — is unchanged.
_BINCOUNT_MIN_FILL = 0.25


def segment_add(out: np.ndarray, idx: np.ndarray, contrib: np.ndarray) -> None:
    """Accumulate ``contrib[p]`` into ``out[idx[p]]`` (duplicates summed).

    ``out`` has shape ``(n, k)`` and ``contrib`` shape ``(m, k)`` for small
    ``k``.  Uses one ``np.bincount`` per component; falls back to
    ``np.add.at`` when the contribution count is small relative to ``n``
    (bincount would be dominated by its O(n) output pass).  Raw kernel:
    indices must already be validated (see ``repro.md.scatter``).
    """
    if len(idx) == 0:
        return
    n = out.shape[0]
    if len(idx) < _BINCOUNT_MIN_FILL * n:
        np.add.at(out, idx, contrib)
        return
    for k in range(out.shape[1]):
        out[:, k] += np.bincount(idx, weights=contrib[:, k], minlength=n)


def pair_mask(
    pos: np.ndarray,
    box: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    cutoff: float,
) -> np.ndarray:
    """Minimum-image distance test: ``|x_j - x_i| < cutoff`` per pair."""
    delta = minimum_image(pos[j_idx] - pos[i_idx], box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    return r2 < cutoff * cutoff


def switching_terms(
    r2: np.ndarray, switch: float, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """CHARMM switching function and its derivative w.r.t. ``r²``.

    Returns ``(S, dS_dr2)`` elementwise; ``S`` is 1 for ``r <= switch`` and
    0 for ``r >= cutoff``.
    """
    c2 = cutoff * cutoff
    s2 = switch * switch
    denom = (c2 - s2) ** 3
    S = np.ones_like(r2)
    dS = np.zeros_like(r2)
    mid = (r2 > s2) & (r2 < c2)
    rm = r2[mid]
    S[mid] = (c2 - rm) ** 2 * (c2 + 2.0 * rm - 3.0 * s2) / denom
    dS[mid] = 6.0 * (c2 - rm) * (s2 - rm) / denom
    S[r2 >= c2] = 0.0
    return S, dS


def pair_terms(
    delta: np.ndarray,
    r2: np.ndarray,
    eps_ij: np.ndarray,
    rmin_ij: np.ndarray,
    qq: np.ndarray,
    cutoff: float,
    switch: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Switched-LJ + shifted-Coulomb math for pre-combined pair parameters.

    Returns ``(e_lj, e_elec, fvec)`` where ``fvec[p]`` is the force on atom
    ``i`` of pair ``p`` (atom ``j`` receives ``-fvec[p]``), consistent with
    ``delta = x_j - x_i``.  ``qq`` excludes the Coulomb constant.
    """
    r = np.sqrt(r2)
    inv_r = 1.0 / r
    inv_r2 = inv_r * inv_r

    # Lennard-Jones with switching
    sr2 = (rmin_ij * rmin_ij) * inv_r2
    sr6 = sr2 * sr2 * sr2
    sr12 = sr6 * sr6
    e_lj_raw = eps_ij * (sr12 - 2.0 * sr6)
    # dE/dr = -12 eps/r (sr12 - sr6)
    dE_lj_dr = -12.0 * eps_ij * inv_r * (sr12 - sr6)
    S, dS_dr2 = switching_terms(r2, switch, cutoff)
    e_lj = e_lj_raw * S
    dE_lj_total_dr = dE_lj_dr * S + e_lj_raw * dS_dr2 * 2.0 * r

    # shifted electrostatics
    c2 = cutoff * cutoff
    shift = 1.0 - r2 / c2
    e_el_raw = COULOMB_CONSTANT * qq * inv_r
    e_elec = e_el_raw * shift * shift
    # d/dr [ (C qq / r)(1 - r²/c²)² ]
    dE_el_dr = COULOMB_CONSTANT * qq * (
        -inv_r2 * shift * shift + inv_r * 2.0 * shift * (-2.0 * r / c2)
    )

    dE_dr = dE_lj_total_dr + dE_el_dr
    # force on i = -dE/dx_i = +dE/dr * (delta / r)  given  delta = x_j - x_i
    # (since dr/dx_i = -delta/r).  Repulsive pair (dE/dr < 0) pushes i away
    # from j, i.e. along -delta. ✓
    fvec = (dE_dr * inv_r)[:, None] * delta
    return e_lj, e_elec, fvec


def nb_pairs(
    pos: np.ndarray,
    box: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    eps: np.ndarray,
    rmin: np.ndarray,
    qq: np.ndarray,
    cutoff: float,
    switch: float,
    forces: np.ndarray,
    si: np.ndarray,
    sj: np.ndarray,
) -> tuple[float, float, int]:
    """Fused distance filter + pair kernel + Newton's-third-law scatter."""
    if len(i_idx) == 0:
        return 0.0, 0.0, 0
    delta = minimum_image(pos[j_idx] - pos[i_idx], box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    within = r2 < cutoff * cutoff
    n_pairs = int(np.count_nonzero(within))
    if n_pairs == 0:
        return 0.0, 0.0, 0
    e_lj, e_el, fvec = pair_terms(
        delta[within], r2[within], eps[within], rmin[within], qq[within],
        cutoff, switch,
    )
    segment_add(forces, si[within], fvec)
    segment_add(forces, sj[within], -fvec)
    return float(e_lj.sum()), float(e_el.sum()), n_pairs


def ewald_real(
    pos: np.ndarray,
    box: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    qq: np.ndarray,
    alpha: float,
    cutoff: float,
    forces: np.ndarray,
) -> float:
    """Ewald real-space sum (``qq`` includes the Coulomb constant)."""
    from scipy.special import erfc

    if len(i_idx) == 0:
        return 0.0
    delta = minimum_image(pos[j_idx] - pos[i_idx], box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    within = (r2 < cutoff * cutoff) & (r2 > 1e-12)
    if not np.any(within):
        return 0.0
    delta, r2, qq_w = delta[within], r2[within], qq[within]
    r = np.sqrt(r2)
    erfc_term = erfc(alpha * r)
    energy = float(np.sum(qq_w * erfc_term / r))
    # dE/dr = -qq [ erfc(ar)/r^2 + 2a/sqrt(pi) exp(-a^2 r^2)/r ]
    dE_dr = -qq_w * (
        erfc_term / r2 + (2.0 * alpha / np.sqrt(np.pi)) * np.exp(-(alpha * r) ** 2) / r
    )
    fvec = (dE_dr / r)[:, None] * delta
    segment_add(forces, i_idx[within], fvec)
    segment_add(forces, j_idx[within], -fvec)
    return energy


_MIN_SIN = 1e-8  # collinear-angle guard, duplicated from repro.md.bonded


def _torsion_geometry(pos, box, idx):
    """Shared dihedral/improper geometry (see ``repro.md.bonded``)."""
    b1 = minimum_image(pos[idx[:, 1]] - pos[idx[:, 0]], box)
    b2 = minimum_image(pos[idx[:, 2]] - pos[idx[:, 1]], box)
    b3 = minimum_image(pos[idx[:, 3]] - pos[idx[:, 2]], box)
    m = np.cross(b1, b2)
    n = np.cross(b2, b3)
    nb2 = np.linalg.norm(b2, axis=1)
    # phi = atan2((m × n)·b̂2, m·n)
    mxn = np.cross(m, n)
    sin_term = np.einsum("ij,ij->i", mxn, b2) / np.maximum(nb2, 1e-12)
    cos_term = np.einsum("ij,ij->i", m, n)
    phi = np.arctan2(sin_term, cos_term)
    m2 = np.maximum(np.einsum("ij,ij->i", m, m), 1e-12)
    n2 = np.maximum(np.einsum("ij,ij->i", n, n), 1e-12)
    return phi, m, n, b1, b2, b3, nb2, m2, n2


def _torsion_forces(dE_dphi, m, n, b1, b2, b3, nb2, m2, n2):
    """Cartesian torsion forces from ``dE/dφ`` (Bekker analytic gradient)."""
    b2sq = np.maximum(nb2 * nb2, 1e-12)
    dphi_dri = (-nb2 / m2)[:, None] * m
    dphi_drl = (nb2 / n2)[:, None] * n
    t = (np.einsum("ij,ij->i", b1, b2) / b2sq)[:, None]
    s = (np.einsum("ij,ij->i", b3, b2) / b2sq)[:, None]
    dphi_drj = -(1.0 + t) * dphi_dri + s * dphi_drl
    dphi_drk = -(1.0 + s) * dphi_drl + t * dphi_dri
    scale = (-dE_dphi)[:, None]
    return scale * dphi_dri, scale * dphi_drj, scale * dphi_drk, scale * dphi_drl


def bonded_terms(
    pos: np.ndarray,
    box: np.ndarray,
    kind: int,
    idx: np.ndarray,
    kpar: np.ndarray,
    p1: np.ndarray,
    p2: np.ndarray,
    forces: np.ndarray,
    sidx: np.ndarray,
) -> float:
    """Vectorized bonded-term kernel for one kind (0 bond, 1 angle, 2
    dihedral, 3 improper); scatters at ``sidx`` rows, returns the energy.

    The math is the historical ``repro.md.bonded`` code moved here verbatim
    (same operations in the same order, scattering through
    :func:`segment_add`), so routing the md wrappers through this kernel is
    bit-for-bit neutral on the numpy backend.
    """
    if len(idx) == 0:
        return 0.0
    if kind == 0:  # harmonic bond: E = k (r - r0)^2
        delta = minimum_image(pos[idx[:, 1]] - pos[idx[:, 0]], box)
        r = np.linalg.norm(delta, axis=1)
        stretch = r - p1
        energy = float(np.dot(kpar, stretch * stretch))
        fmag = (2.0 * kpar * stretch / np.maximum(r, 1e-12))[:, None]
        fvec = fmag * delta
        segment_add(forces, sidx[:, 0], fvec)
        segment_add(forces, sidx[:, 1], -fvec)
        return energy
    if kind == 1:  # harmonic angle: E = k (theta - theta0)^2
        a = minimum_image(pos[idx[:, 0]] - pos[idx[:, 1]], box)
        b = minimum_image(pos[idx[:, 2]] - pos[idx[:, 1]], box)
        na = np.linalg.norm(a, axis=1)
        nb = np.linalg.norm(b, axis=1)
        ah = a / na[:, None]
        bh = b / nb[:, None]
        cos_t = np.clip(np.einsum("ij,ij->i", ah, bh), -1.0, 1.0)
        theta = np.arccos(cos_t)
        sin_t = np.maximum(np.sqrt(1.0 - cos_t * cos_t), _MIN_SIN)
        diff = theta - p1
        energy = float(np.dot(kpar, diff * diff))
        dE_dtheta = 2.0 * kpar * diff
        fi = (-dE_dtheta / (na * sin_t))[:, None] * (cos_t[:, None] * ah - bh)
        fk = (-dE_dtheta / (nb * sin_t))[:, None] * (cos_t[:, None] * bh - ah)
        fj = -(fi + fk)
        segment_add(forces, sidx[:, 0], fi)
        segment_add(forces, sidx[:, 1], fj)
        segment_add(forces, sidx[:, 2], fk)
        return energy
    if kind == 2:  # cosine torsion: E = k (1 + cos(n phi - delta))
        phi, m, n, b1, b2, b3, nb2, m2, n2 = _torsion_geometry(pos, box, idx)
        arg = p1 * phi - p2
        energy = float(np.dot(kpar, 1.0 + np.cos(arg)))
        dE_dphi = -kpar * p1 * np.sin(arg)
    elif kind == 3:  # harmonic improper: E = k (psi - psi0)^2, wrapped
        phi, m, n, b1, b2, b3, nb2, m2, n2 = _torsion_geometry(pos, box, idx)
        diff = phi - p1
        diff = (diff + np.pi) % (2.0 * np.pi) - np.pi
        energy = float(np.dot(kpar, diff * diff))
        dE_dphi = 2.0 * kpar * diff
    else:
        raise ValueError(f"unknown bonded term kind {kind!r}")
    fi, fj, fk, fl = _torsion_forces(dE_dphi, m, n, b1, b2, b3, nb2, m2, n2)
    segment_add(forces, sidx[:, 0], fi)
    segment_add(forces, sidx[:, 1], fj)
    segment_add(forces, sidx[:, 2], fk)
    segment_add(forces, sidx[:, 3], fl)
    return energy


def ewald_recip(
    pos: np.ndarray,
    q: np.ndarray,
    kvecs: np.ndarray,
    ak: np.ndarray,
    pref: np.ndarray,
    forces: np.ndarray,
) -> float:
    """Ewald reciprocal-space sum over precomputed ``(kvecs, ak)`` tables."""
    if len(kvecs) == 0:
        return 0.0
    phase = pos @ kvecs.T  # (n, nk)
    cos_p = np.cos(phase)
    sin_p = np.sin(phase)
    S_re = q @ cos_p  # (nk,)
    S_im = q @ sin_p
    energy = float(pref * np.sum(ak * (S_re * S_re + S_im * S_im)))
    # F_i = (4 pi C q_i / V) sum_k ak k [ sin(k.r_i) S_re - cos(k.r_i) S_im ]
    coeff = (sin_p * S_re[None, :] - cos_p * S_im[None, :]) * ak[None, :]
    fvec = 2.0 * pref * (coeff @ kvecs)  # (n, 3)
    forces += q[:, None] * fvec
    return energy


#: Reciprocal-sum shard: every k-vector contributes independently, so the
#: reference shard kernel *is* the full kernel applied to sliced tables.
ewald_recip_shard = ewald_recip


def build_backend() -> KernelBackend:
    """The numpy reference backend instance."""
    return KernelBackend(
        name="numpy",
        compiled=False,
        nb_pairs=nb_pairs,
        pair_mask=pair_mask,
        segment_add=segment_add,
        ewald_real=ewald_real,
        ewald_recip=ewald_recip,
        bonded_terms=bonded_terms,
        ewald_recip_shard=ewald_recip_shard,
    )
