"""Pluggable kernel backends for the hot paths (non-bonded, scatter, Ewald).

The md modules run their inner loops through a :class:`KernelBackend` — a
bundle of five kernels (see :mod:`repro.backend.base`).  Two implementations
ship:

* ``numpy`` — the vectorized reference, bit-for-bit identical to the
  historical inline code.  Always available.
* ``numba`` — serial JIT-compiled loops (:mod:`repro.backend.numba_backend`).
  Loaded lazily; on first use it must pass a parity self-check against the
  reference (1e-9 on energies/forces, exact pair masks).  If numba is
  missing, fails to compile, or fails the self-check, the registry falls
  back to numpy — with a warning when ``numba`` was requested explicitly,
  silently under ``auto``.

Selection:

* ``get_backend(spec)`` with ``spec`` one of ``None`` (session default),
  ``"auto"``, ``"numpy"``, ``"numba"``, or an existing
  :class:`KernelBackend` (passed through).
* The session default resolves once from the ``REPRO_BACKEND`` environment
  variable (``auto`` when unset) and can be overridden with
  :func:`set_default_backend` (the CLI ``--backend`` flag does this).

Determinism: each backend is individually deterministic (serial compiled
loops, fixed numpy reduction order), so repeat runs on one backend are
bit-identical; *across* backends results agree to 1e-9, not bitwise.  The
parallel engine records the backend name per run in WorkDB so timing
measurements from different backends are never blended.
"""

from __future__ import annotations

import os
import warnings

from repro.backend import reference as _reference
from repro.backend.base import KernelBackend, parity_selfcheck, synthetic_problem

__all__ = [
    "KernelBackend",
    "ENV_VAR",
    "available_backends",
    "backend_status",
    "default_backend",
    "get_backend",
    "parity_selfcheck",
    "set_default_backend",
    "synthetic_problem",
]

ENV_VAR = "REPRO_BACKEND"

_instances: dict[str, KernelBackend] = {"numpy": _reference.build_backend()}
_numba_error: str | None = None
_default: KernelBackend | None = None


def available_backends() -> tuple[str, ...]:
    """Backend names that could be requested (numba listed if importable)."""
    import importlib.util

    names = ["numpy"]
    try:
        if importlib.util.find_spec("numba") is not None:
            names.append("numba")
    except (ImportError, ValueError):  # pragma: no cover - broken installs
        pass
    return tuple(names)


def _try_numba() -> KernelBackend | None:
    """Load + self-check the numba backend once; None (cached) on failure."""
    global _numba_error
    cached = _instances.get("numba")
    if cached is not None:
        return cached
    if _numba_error is not None:
        return None
    try:
        from repro.backend.numba_backend import build_backend

        candidate = build_backend()
        ok, detail = parity_selfcheck(candidate, _instances["numpy"])
        if not ok:
            raise RuntimeError(f"parity self-check failed: {detail}")
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _numba_error = f"{type(exc).__name__}: {exc}"
        return None
    _instances["numba"] = candidate
    return candidate


def get_backend(spec: KernelBackend | str | None = None) -> KernelBackend:
    """Resolve a backend spec to a concrete :class:`KernelBackend`.

    ``None`` → the session default; ``"auto"`` → numba when it loads and
    passes its self-check, else numpy; ``"numpy"``/``"numba"`` by name
    (an unavailable numba falls back to numpy with a warning); an existing
    instance is returned unchanged.
    """
    if spec is None:
        return default_backend()
    if isinstance(spec, KernelBackend):
        return spec
    name = str(spec).strip().lower()
    if name in ("", "auto"):
        loaded = _try_numba()
        return loaded if loaded is not None else _instances["numpy"]
    if name == "numpy":
        return _instances["numpy"]
    if name == "numba":
        loaded = _try_numba()
        if loaded is None:
            warnings.warn(
                f"numba backend unavailable ({_numba_error}); "
                "falling back to the numpy reference backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return _instances["numpy"]
        return loaded
    raise ValueError(
        f"unknown kernel backend {spec!r}; choose 'auto', 'numpy', or 'numba'"
    )


def default_backend() -> KernelBackend:
    """The session default, resolved once from ``REPRO_BACKEND``/auto."""
    global _default
    if _default is None:
        _default = get_backend(os.environ.get(ENV_VAR) or "auto")
    return _default


def set_default_backend(spec: KernelBackend | str | None) -> KernelBackend:
    """Override the session default (``None`` re-resolves from the env)."""
    global _default
    if spec is None:
        _default = None
        return default_backend()
    _default = get_backend(spec)
    return _default


def backend_status() -> dict[str, object]:
    """Diagnostic snapshot for the CLI: availability, errors, default."""
    avail = available_backends()
    status: dict[str, object] = {
        "available": list(avail),
        "default": default_backend().name,
        "env": os.environ.get(ENV_VAR),
    }
    if "numba" in avail:
        loaded = _try_numba()
        status["numba_ok"] = loaded is not None
        if loaded is None:
            status["numba_error"] = _numba_error
    else:
        status["numba_ok"] = False
        status["numba_error"] = "numba is not installed"
    return status


def _reset_for_testing() -> None:
    """Drop cached default/numba state so selection logic re-runs."""
    global _default, _numba_error
    _default = None
    _numba_error = None
    _instances.pop("numba", None)


# Import-time smoke check: the reference backend must produce finite,
# momentum-conserving results on the synthetic problem.  A broken numpy
# stack is unrecoverable, so surface it immediately (but don't block
# import — the tier-1 suite gives a better error message).
_smoke_ok, _smoke_detail = parity_selfcheck(_instances["numpy"])
if not _smoke_ok:  # pragma: no cover - only on a broken numpy install
    warnings.warn(
        f"numpy reference backend failed its import-time smoke check: "
        f"{_smoke_detail}",
        RuntimeWarning,
    )
del _smoke_ok, _smoke_detail
