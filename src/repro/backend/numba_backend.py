"""Numba-JIT kernels: serial compiled loops behind the backend contract.

Design notes:

* Kernels are **serial** ``@njit`` loops with ``fastmath`` off — no
  ``prange``.  A parallel reduction would make the floating-point
  summation order nondeterministic across runs, breaking the engine's
  bit-identical-repeat guarantee; process-level parallelism already comes
  from the ``ParallelEngine`` worker pool, so each compiled kernel only
  needs to be fast on one core.
* The minimum-image fold reproduces numpy's round-half-to-even exactly
  (see :func:`_round_half_even`): lattice systems (rock salt in the tests)
  place atom pairs at exactly half a box length, where round-half-up would
  flip the image — and with it the force direction.
* ``cache=True`` persists compiled machine code next to this module so
  pool workers and repeat runs skip recompilation.
* Wrappers coerce index arrays to contiguous ``int64`` and floats to
  ``float64`` so each kernel compiles one specialization.

This module is only imported by the registry's lazy ``numba`` loader;
``build_backend()`` raises ``ImportError`` when numba is missing, and any
compilation failure surfaces during the registry's parity self-check (the
first real call), which falls back to the numpy reference backend.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import KernelBackend
from repro.backend.reference import COULOMB_CONSTANT

__all__ = ["HAS_NUMBA", "build_backend"]

try:
    from numba import njit

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - exercised only without numba
    HAS_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        raise ImportError("numba is not installed")


def _as_i8(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _as_f8(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


if HAS_NUMBA:

    @njit(cache=True, inline="always")
    def _round_half_even(t):
        # floor + exact fractional part, then round ties to even — matches
        # np.round bit-for-bit (t - floor(t) is exact for |t| < 2^52).
        rt = float(math.floor(t))
        frac = t - rt
        if frac > 0.5:
            rt += 1.0
        elif frac == 0.5:
            up = rt + 1.0
            if up % 2.0 == 0.0:
                rt = up
        return rt

    @njit(cache=True, inline="always")
    def _min_image_1d(d, length):
        return d - length * _round_half_even(d / length)

    @njit(cache=True)
    def _nb_pairs_jit(pos, box, i_idx, j_idx, eps, rmin, qq, cutoff, switch,
                      coulomb, forces, si, sj):
        c2 = cutoff * cutoff
        s2 = switch * switch
        denom = (c2 - s2) ** 3
        bx, by, bz = box[0], box[1], box[2]
        e_lj_tot = 0.0
        e_el_tot = 0.0
        n_pairs = 0
        for p in range(i_idx.shape[0]):
            i = i_idx[p]
            j = j_idx[p]
            dx = _min_image_1d(pos[j, 0] - pos[i, 0], bx)
            dy = _min_image_1d(pos[j, 1] - pos[i, 1], by)
            dz = _min_image_1d(pos[j, 2] - pos[i, 2], bz)
            r2 = dx * dx + dy * dy + dz * dz
            if r2 >= c2:
                continue
            n_pairs += 1
            r = math.sqrt(r2)
            inv_r = 1.0 / r
            inv_r2 = inv_r * inv_r

            rm = rmin[p]
            sr2 = (rm * rm) * inv_r2
            sr6 = sr2 * sr2 * sr2
            sr12 = sr6 * sr6
            e_lj_raw = eps[p] * (sr12 - 2.0 * sr6)
            dE_lj_dr = -12.0 * eps[p] * inv_r * (sr12 - sr6)
            if r2 > s2:
                S = (c2 - r2) ** 2 * (c2 + 2.0 * r2 - 3.0 * s2) / denom
                dS_dr2 = 6.0 * (c2 - r2) * (s2 - r2) / denom
            else:
                S = 1.0
                dS_dr2 = 0.0
            e_lj = e_lj_raw * S
            dE_lj_total_dr = dE_lj_dr * S + e_lj_raw * dS_dr2 * 2.0 * r

            shift = 1.0 - r2 / c2
            e_el_raw = coulomb * qq[p] * inv_r
            e_el = e_el_raw * shift * shift
            dE_el_dr = coulomb * qq[p] * (
                -inv_r2 * shift * shift + inv_r * 2.0 * shift * (-2.0 * r / c2)
            )

            f = (dE_lj_total_dr + dE_el_dr) * inv_r
            fx = f * dx
            fy = f * dy
            fz = f * dz
            a = si[p]
            b = sj[p]
            forces[a, 0] += fx
            forces[a, 1] += fy
            forces[a, 2] += fz
            forces[b, 0] -= fx
            forces[b, 1] -= fy
            forces[b, 2] -= fz
            e_lj_tot += e_lj
            e_el_tot += e_el
        return e_lj_tot, e_el_tot, n_pairs

    @njit(cache=True)
    def _pair_mask_jit(pos, box, i_idx, j_idx, cutoff, out):
        c2 = cutoff * cutoff
        bx, by, bz = box[0], box[1], box[2]
        for p in range(i_idx.shape[0]):
            i = i_idx[p]
            j = j_idx[p]
            dx = _min_image_1d(pos[j, 0] - pos[i, 0], bx)
            dy = _min_image_1d(pos[j, 1] - pos[i, 1], by)
            dz = _min_image_1d(pos[j, 2] - pos[i, 2], bz)
            out[p] = (dx * dx + dy * dy + dz * dz) < c2

    @njit(cache=True)
    def _segment_add_jit(out, idx, contrib):
        for p in range(idx.shape[0]):
            t = idx[p]
            for k in range(contrib.shape[1]):
                out[t, k] += contrib[p, k]

    @njit(cache=True)
    def _ewald_real_jit(pos, box, i_idx, j_idx, qq, alpha, cutoff, forces):
        c2 = cutoff * cutoff
        bx, by, bz = box[0], box[1], box[2]
        two_a_rtpi = 2.0 * alpha / math.sqrt(math.pi)
        energy = 0.0
        for p in range(i_idx.shape[0]):
            i = i_idx[p]
            j = j_idx[p]
            dx = _min_image_1d(pos[j, 0] - pos[i, 0], bx)
            dy = _min_image_1d(pos[j, 1] - pos[i, 1], by)
            dz = _min_image_1d(pos[j, 2] - pos[i, 2], bz)
            r2 = dx * dx + dy * dy + dz * dz
            if r2 >= c2 or r2 <= 1e-12:
                continue
            r = math.sqrt(r2)
            erfc_term = math.erfc(alpha * r)
            energy += qq[p] * erfc_term / r
            dE_dr = -qq[p] * (
                erfc_term / r2 + two_a_rtpi * math.exp(-(alpha * r) ** 2) / r
            )
            f = dE_dr / r
            fx = f * dx
            fy = f * dy
            fz = f * dz
            forces[i, 0] += fx
            forces[i, 1] += fy
            forces[i, 2] += fz
            forces[j, 0] -= fx
            forces[j, 1] -= fy
            forces[j, 2] -= fz
        return energy

    @njit(cache=True)
    def _bonds_jit(pos, box, idx, kpar, p1, forces, sidx):
        bx, by, bz = box[0], box[1], box[2]
        energy = 0.0
        for p in range(idx.shape[0]):
            i = idx[p, 0]
            j = idx[p, 1]
            dx = _min_image_1d(pos[j, 0] - pos[i, 0], bx)
            dy = _min_image_1d(pos[j, 1] - pos[i, 1], by)
            dz = _min_image_1d(pos[j, 2] - pos[i, 2], bz)
            r = math.sqrt(dx * dx + dy * dy + dz * dz)
            stretch = r - p1[p]
            energy += kpar[p] * stretch * stretch
            rsafe = r if r > 1e-12 else 1e-12
            fmag = 2.0 * kpar[p] * stretch / rsafe
            fx = fmag * dx
            fy = fmag * dy
            fz = fmag * dz
            a = sidx[p, 0]
            b = sidx[p, 1]
            forces[a, 0] += fx
            forces[a, 1] += fy
            forces[a, 2] += fz
            forces[b, 0] -= fx
            forces[b, 1] -= fy
            forces[b, 2] -= fz
        return energy

    @njit(cache=True)
    def _angles_jit(pos, box, idx, kpar, p1, forces, sidx):
        bx, by, bz = box[0], box[1], box[2]
        energy = 0.0
        for p in range(idx.shape[0]):
            i = idx[p, 0]
            j = idx[p, 1]
            k3 = idx[p, 2]
            ax = _min_image_1d(pos[i, 0] - pos[j, 0], bx)
            ay = _min_image_1d(pos[i, 1] - pos[j, 1], by)
            az = _min_image_1d(pos[i, 2] - pos[j, 2], bz)
            cx = _min_image_1d(pos[k3, 0] - pos[j, 0], bx)
            cy = _min_image_1d(pos[k3, 1] - pos[j, 1], by)
            cz = _min_image_1d(pos[k3, 2] - pos[j, 2], bz)
            na = math.sqrt(ax * ax + ay * ay + az * az)
            nc = math.sqrt(cx * cx + cy * cy + cz * cz)
            ahx = ax / na
            ahy = ay / na
            ahz = az / na
            chx = cx / nc
            chy = cy / nc
            chz = cz / nc
            cos_t = ahx * chx + ahy * chy + ahz * chz
            if cos_t > 1.0:
                cos_t = 1.0
            elif cos_t < -1.0:
                cos_t = -1.0
            theta = math.acos(cos_t)
            sin_t = math.sqrt(1.0 - cos_t * cos_t)
            if sin_t < 1e-8:  # _MIN_SIN collinearity guard
                sin_t = 1e-8
            diff = theta - p1[p]
            energy += kpar[p] * diff * diff
            dE = 2.0 * kpar[p] * diff
            ci = -dE / (na * sin_t)
            ck = -dE / (nc * sin_t)
            fix = ci * (cos_t * ahx - chx)
            fiy = ci * (cos_t * ahy - chy)
            fiz = ci * (cos_t * ahz - chz)
            fkx = ck * (cos_t * chx - ahx)
            fky = ck * (cos_t * chy - ahy)
            fkz = ck * (cos_t * chz - ahz)
            a = sidx[p, 0]
            b = sidx[p, 1]
            c = sidx[p, 2]
            forces[a, 0] += fix
            forces[a, 1] += fiy
            forces[a, 2] += fiz
            forces[b, 0] -= fix + fkx
            forces[b, 1] -= fiy + fky
            forces[b, 2] -= fiz + fkz
            forces[c, 0] += fkx
            forces[c, 1] += fky
            forces[c, 2] += fkz
        return energy

    @njit(cache=True)
    def _torsions_jit(pos, box, improper, idx, kpar, p1, p2, forces, sidx):
        bx, by, bz = box[0], box[1], box[2]
        energy = 0.0
        for p in range(idx.shape[0]):
            i = idx[p, 0]
            j = idx[p, 1]
            k3 = idx[p, 2]
            ll = idx[p, 3]
            b1x = _min_image_1d(pos[j, 0] - pos[i, 0], bx)
            b1y = _min_image_1d(pos[j, 1] - pos[i, 1], by)
            b1z = _min_image_1d(pos[j, 2] - pos[i, 2], bz)
            b2x = _min_image_1d(pos[k3, 0] - pos[j, 0], bx)
            b2y = _min_image_1d(pos[k3, 1] - pos[j, 1], by)
            b2z = _min_image_1d(pos[k3, 2] - pos[j, 2], bz)
            b3x = _min_image_1d(pos[ll, 0] - pos[k3, 0], bx)
            b3y = _min_image_1d(pos[ll, 1] - pos[k3, 1], by)
            b3z = _min_image_1d(pos[ll, 2] - pos[k3, 2], bz)
            mx = b1y * b2z - b1z * b2y
            my = b1z * b2x - b1x * b2z
            mz = b1x * b2y - b1y * b2x
            nx = b2y * b3z - b2z * b3y
            ny = b2z * b3x - b2x * b3z
            nz = b2x * b3y - b2y * b3x
            nb2 = math.sqrt(b2x * b2x + b2y * b2y + b2z * b2z)
            mxnx = my * nz - mz * ny
            mxny = mz * nx - mx * nz
            mxnz = mx * ny - my * nx
            nb2safe = nb2 if nb2 > 1e-12 else 1e-12
            sin_term = (mxnx * b2x + mxny * b2y + mxnz * b2z) / nb2safe
            cos_term = mx * nx + my * ny + mz * nz
            phi = math.atan2(sin_term, cos_term)
            m2 = mx * mx + my * my + mz * mz
            if m2 < 1e-12:
                m2 = 1e-12
            n2 = nx * nx + ny * ny + nz * nz
            if n2 < 1e-12:
                n2 = 1e-12
            if improper:
                diff = phi - p1[p]
                diff = (diff + math.pi) % (2.0 * math.pi) - math.pi
                energy += kpar[p] * diff * diff
                dE = 2.0 * kpar[p] * diff
            else:
                arg = p1[p] * phi - p2[p]
                energy += kpar[p] * (1.0 + math.cos(arg))
                dE = -kpar[p] * p1[p] * math.sin(arg)
            b2sq = nb2 * nb2
            if b2sq < 1e-12:
                b2sq = 1e-12
            sm = -nb2 / m2
            sn = nb2 / n2
            drix = sm * mx
            driy = sm * my
            driz = sm * mz
            drlx = sn * nx
            drly = sn * ny
            drlz = sn * nz
            t = (b1x * b2x + b1y * b2y + b1z * b2z) / b2sq
            s = (b3x * b2x + b3y * b2y + b3z * b2z) / b2sq
            drjx = -(1.0 + t) * drix + s * drlx
            drjy = -(1.0 + t) * driy + s * drly
            drjz = -(1.0 + t) * driz + s * drlz
            drkx = -(1.0 + s) * drlx + t * drix
            drky = -(1.0 + s) * drly + t * driy
            drkz = -(1.0 + s) * drlz + t * driz
            scale = -dE
            a = sidx[p, 0]
            b = sidx[p, 1]
            c = sidx[p, 2]
            d = sidx[p, 3]
            forces[a, 0] += scale * drix
            forces[a, 1] += scale * driy
            forces[a, 2] += scale * driz
            forces[b, 0] += scale * drjx
            forces[b, 1] += scale * drjy
            forces[b, 2] += scale * drjz
            forces[c, 0] += scale * drkx
            forces[c, 1] += scale * drky
            forces[c, 2] += scale * drkz
            forces[d, 0] += scale * drlx
            forces[d, 1] += scale * drly
            forces[d, 2] += scale * drlz
        return energy

    @njit(cache=True)
    def _ewald_recip_jit(pos, q, kvecs, ak, pref, forces):
        n = pos.shape[0]
        nk = kvecs.shape[0]
        S_re = np.zeros(nk)
        S_im = np.zeros(nk)
        cos_p = np.empty((n, nk))
        sin_p = np.empty((n, nk))
        for a in range(n):
            for kk in range(nk):
                ph = (pos[a, 0] * kvecs[kk, 0] + pos[a, 1] * kvecs[kk, 1]
                      + pos[a, 2] * kvecs[kk, 2])
                c = math.cos(ph)
                s = math.sin(ph)
                cos_p[a, kk] = c
                sin_p[a, kk] = s
                S_re[kk] += q[a] * c
                S_im[kk] += q[a] * s
        energy = 0.0
        for kk in range(nk):
            energy += ak[kk] * (S_re[kk] * S_re[kk] + S_im[kk] * S_im[kk])
        energy *= pref
        for a in range(n):
            fx = 0.0
            fy = 0.0
            fz = 0.0
            for kk in range(nk):
                coeff = (sin_p[a, kk] * S_re[kk] - cos_p[a, kk] * S_im[kk]) * ak[kk]
                fx += coeff * kvecs[kk, 0]
                fy += coeff * kvecs[kk, 1]
                fz += coeff * kvecs[kk, 2]
            scale = 2.0 * pref * q[a]
            forces[a, 0] += scale * fx
            forces[a, 1] += scale * fy
            forces[a, 2] += scale * fz
        return energy


def _nb_pairs(pos, box, i_idx, j_idx, eps, rmin, qq, cutoff, switch,
              forces, si, sj):
    if len(i_idx) == 0:
        return 0.0, 0.0, 0
    e_lj, e_el, n_pairs = _nb_pairs_jit(
        _as_f8(pos), _as_f8(box), _as_i8(i_idx), _as_i8(j_idx),
        _as_f8(eps), _as_f8(rmin), _as_f8(qq),
        float(cutoff), float(switch), COULOMB_CONSTANT,
        forces, _as_i8(si), _as_i8(sj),
    )
    return float(e_lj), float(e_el), int(n_pairs)


def _pair_mask(pos, box, i_idx, j_idx, cutoff):
    out = np.empty(len(i_idx), dtype=np.bool_)
    if len(i_idx):
        _pair_mask_jit(_as_f8(pos), _as_f8(box), _as_i8(i_idx), _as_i8(j_idx),
                       float(cutoff), out)
    return out


def _segment_add(out, idx, contrib):
    if len(idx) == 0:
        return
    contrib = np.ascontiguousarray(np.atleast_2d(contrib), dtype=np.float64)
    _segment_add_jit(out, _as_i8(idx), contrib)


def _ewald_real(pos, box, i_idx, j_idx, qq, alpha, cutoff, forces):
    if len(i_idx) == 0:
        return 0.0
    return float(_ewald_real_jit(
        _as_f8(pos), _as_f8(box), _as_i8(i_idx), _as_i8(j_idx), _as_f8(qq),
        float(alpha), float(cutoff), forces,
    ))


def _ewald_recip(pos, q, kvecs, ak, pref, forces):
    if len(kvecs) == 0:
        return 0.0
    return float(_ewald_recip_jit(
        _as_f8(pos), _as_f8(q), _as_f8(kvecs), _as_f8(ak), float(pref), forces,
    ))


#: Every k-vector contributes independently, so the shard kernel is the
#: full reciprocal kernel applied to sliced tables (same as the reference).
_ewald_recip_shard = _ewald_recip


def _bonded_terms(pos, box, kind, idx, kpar, p1, p2, forces, sidx):
    if len(idx) == 0:
        return 0.0
    pos8, box8 = _as_f8(pos), _as_f8(box)
    idx8, sidx8 = _as_i8(idx), _as_i8(sidx)
    kpar8, p18 = _as_f8(kpar), _as_f8(p1)
    if kind == 0:
        return float(_bonds_jit(pos8, box8, idx8, kpar8, p18, forces, sidx8))
    if kind == 1:
        return float(_angles_jit(pos8, box8, idx8, kpar8, p18, forces, sidx8))
    if kind == 2:
        return float(_torsions_jit(
            pos8, box8, False, idx8, kpar8, p18, _as_f8(p2), forces, sidx8
        ))
    if kind == 3:
        return float(_torsions_jit(
            pos8, box8, True, idx8, kpar8, p18, _as_f8(p2), forces, sidx8
        ))
    raise ValueError(f"unknown bonded term kind {kind!r}")


def build_backend() -> KernelBackend:
    """The numba backend instance (raises ``ImportError`` without numba)."""
    if not HAS_NUMBA:
        raise ImportError("numba is not installed")
    return KernelBackend(
        name="numba",
        compiled=True,
        nb_pairs=_nb_pairs,
        pair_mask=_pair_mask,
        segment_add=_segment_add,
        ewald_real=_ewald_real,
        ewald_recip=_ewald_recip,
        bonded_terms=_bonded_terms,
        ewald_recip_shard=_ewald_recip_shard,
    )
