"""Kernel-backend contract and the parity self-check.

A :class:`KernelBackend` bundles the five hot-path kernels every backend
must provide.  The contract is deliberately scalar/array-only (no dataclass
options, no ``repro.md`` types) so this package never imports from
``repro.md`` at module scope — the md modules import :mod:`repro.backend`
themselves, and a module-level import back into md would be circular.

Kernel contract (all arrays are numpy, ``forces`` is accumulated in place):

``nb_pairs(pos, box, i_idx, j_idx, eps, rmin, qq, cutoff, switch, forces,
si, sj) -> (e_lj, e_elec, n_pairs)``
    Fused distance test + switched-LJ/shifted-Coulomb pair kernel with
    Newton's-third-law scatter.  ``qq`` is the raw charge product (the
    kernel applies the Coulomb constant); positions are read through
    ``i_idx``/``j_idx`` while forces accumulate at ``si``/``sj``.

``pair_mask(pos, box, i_idx, j_idx, cutoff) -> bool[m]``
    Minimum-image distance test only.

``segment_add(out, idx, contrib) -> None``
    Raw segment-sum scatter (duplicates summed); index validation happens
    once in :func:`repro.md.scatter.segment_add`, not here.

``ewald_real(pos, box, i_idx, j_idx, qq, alpha, cutoff, forces) -> energy``
    Ewald real-space sum.  ``qq`` here *includes* the Coulomb constant
    (matching the historical call site).

``ewald_recip(pos, q, kvecs, ak, pref, forces) -> energy``
    Ewald reciprocal-space sum over precomputed ``(kvecs, ak)`` tables
    with prefactor ``pref = C * 2π / V``.

``bonded_terms(pos, box, kind, idx, kpar, p1, p2, forces, sidx) -> energy``
    Vectorized bonded-term kernel for one term kind: ``kind`` is 0 (bond),
    1 (angle), 2 (dihedral), or 3 (improper).  ``idx`` is ``(m, w)`` atom
    indices (``w`` = 2/3/4), ``kpar`` the force constants, ``p1`` the
    equilibrium parameter (``r0`` / ``theta0`` / periodicity ``n`` /
    ``psi0``) and ``p2`` the dihedral phase ``delta`` (zeros for other
    kinds).  Positions are read through ``idx``; forces accumulate at the
    parallel ``sidx`` rows (pass ``sidx=idx`` for a plain in-place
    evaluation) so the parallel engine can scatter each task into a
    compact slab of a shared buffer.

``ewald_recip_shard(pos, q, kvecs, ak, pref, forces) -> energy``
    Same contract as ``ewald_recip`` evaluated over a contiguous *shard*
    of the tables (the caller slices ``kvecs``/``ak``).  Because every
    k-vector's contribution is independent, summing shard results over a
    partition of the tables must reproduce ``ewald_recip`` of the full
    tables to rounding error — the parity self-check enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["KernelBackend", "bonded_cases", "parity_selfcheck", "synthetic_problem"]


@dataclass(frozen=True)
class KernelBackend:
    """One named implementation of the hot-path kernels.

    ``bonded_terms`` and ``ewald_recip_shard`` default to ``None`` so
    hand-built test doubles predating them still construct; a candidate
    that omits a kernel the reference provides fails the parity
    self-check (missing kernels are a contract violation, not a feature).
    """

    name: str
    compiled: bool
    nb_pairs: Callable[..., tuple[float, float, int]]
    pair_mask: Callable[..., np.ndarray]
    segment_add: Callable[..., None]
    ewald_real: Callable[..., float]
    ewald_recip: Callable[..., float]
    bonded_terms: Callable[..., float] | None = None
    ewald_recip_shard: Callable[..., float] | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "compiled" if self.compiled else "interpreted"
        return f"KernelBackend({self.name!r}, {kind})"


def synthetic_problem(seed: int = 2026) -> dict[str, Any]:
    """Small deterministic problem exercising every kernel of the contract.

    Self-contained on purpose: no builder systems, no md imports, cheap
    enough to run at import time (~100 pairs, 24 atoms, 124 k-vectors).
    """
    rng = np.random.default_rng(seed)
    n = 24
    box = np.array([7.0, 8.5, 9.25])
    pos = rng.uniform(0.0, 1.0, size=(n, 3)) * box
    m = 96
    i_idx = rng.integers(0, n, size=m)
    j_idx = (i_idx + rng.integers(1, n, size=m)) % n  # i != j guaranteed
    eps = rng.uniform(0.05, 0.25, size=m)
    rmin = rng.uniform(2.5, 4.2, size=m)
    charges = rng.normal(0.0, 0.4, size=n)
    qq = charges[i_idx] * charges[j_idx]

    kmax = 2
    grid = np.arange(-kmax, kmax + 1)
    mx, my, mz = np.meshgrid(grid, grid, grid, indexing="ij")
    mvec = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1).astype(np.float64)
    mvec = mvec[np.any(mvec != 0, axis=1)]
    kvecs = 2.0 * np.pi * mvec / box[None, :]
    k2 = np.einsum("ij,ij->i", kvecs, kvecs)
    alpha = 0.45
    ak = np.exp(-k2 / (4.0 * alpha * alpha)) / k2
    pref = 332.0636 * 2.0 * np.pi / float(np.prod(box))

    scatter_idx = rng.integers(0, n, size=m)  # duplicates on purpose
    contrib = rng.normal(0.0, 1.0, size=(m, 3))

    # bonded terms: sliding windows over fresh permutations so every term's
    # atoms are distinct (degenerate geometry would divide by ~0 lengths)
    permb = rng.permutation(n).astype(np.int64)
    bond_idx = np.stack([permb[:-1], permb[1:]], axis=1)[:16]
    bond_k = rng.uniform(100.0, 400.0, size=len(bond_idx))
    bond_r0 = rng.uniform(0.9, 1.6, size=len(bond_idx))
    perma = rng.permutation(n).astype(np.int64)
    angle_idx = np.stack([perma[:-2], perma[1:-1], perma[2:]], axis=1)[:12]
    angle_k = rng.uniform(20.0, 80.0, size=len(angle_idx))
    angle_t0 = rng.uniform(1.5, 2.4, size=len(angle_idx))
    permd = rng.permutation(n).astype(np.int64)
    dih_idx = np.stack(
        [permd[:-3], permd[1:-2], permd[2:-1], permd[3:]], axis=1
    )[:10]
    dih_k = rng.uniform(0.5, 3.0, size=len(dih_idx))
    dih_n = rng.integers(1, 4, size=len(dih_idx)).astype(np.float64)
    dih_delta = rng.uniform(0.0, np.pi, size=len(dih_idx))
    permi = rng.permutation(n).astype(np.int64)
    imp_idx = np.stack(
        [permi[:-3], permi[1:-2], permi[2:-1], permi[3:]], axis=1
    )[:8]
    imp_k = rng.uniform(5.0, 30.0, size=len(imp_idx))
    imp_psi0 = rng.uniform(-0.6, 0.6, size=len(imp_idx))

    return {
        "n": n,
        "box": box,
        "pos": pos,
        "i_idx": i_idx,
        "j_idx": j_idx,
        "eps": eps,
        "rmin": rmin,
        "qq": qq,
        "charges": charges,
        "cutoff": 5.0,
        "switch": 4.0,
        "alpha": alpha,
        "kvecs": kvecs,
        "ak": ak,
        "pref": pref,
        "scatter_idx": scatter_idx,
        "contrib": contrib,
        "bond_idx": bond_idx,
        "bond_k": bond_k,
        "bond_r0": bond_r0,
        "angle_idx": angle_idx,
        "angle_k": angle_k,
        "angle_t0": angle_t0,
        "dih_idx": dih_idx,
        "dih_k": dih_k,
        "dih_n": dih_n,
        "dih_delta": dih_delta,
        "imp_idx": imp_idx,
        "imp_k": imp_k,
        "imp_psi0": imp_psi0,
        "shard_split": 17,  # shard boundary exercised by the self-check
    }


def bonded_cases(p: dict[str, Any]) -> list[tuple]:
    """The ``(kind, idx, kpar, p1, p2)`` tuples of a synthetic problem.

    ``p2`` is the dihedral phase ``delta``; zeros for the other kinds per
    the ``bonded_terms`` contract.
    """
    return [
        (0, p["bond_idx"], p["bond_k"], p["bond_r0"], np.zeros(len(p["bond_k"]))),
        (1, p["angle_idx"], p["angle_k"], p["angle_t0"], np.zeros(len(p["angle_k"]))),
        (2, p["dih_idx"], p["dih_k"], p["dih_n"], p["dih_delta"]),
        (3, p["imp_idx"], p["imp_k"], p["imp_psi0"], np.zeros(len(p["imp_k"]))),
    ]


def _close(a, b, tol: float) -> bool:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return False
    if a.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(a))), float(np.max(np.abs(b))))
    diff = np.abs(a - b)
    return bool(np.all(np.isfinite(a)) and np.all(diff <= tol * scale))


def parity_selfcheck(
    candidate: KernelBackend,
    reference: KernelBackend | None = None,
    tol: float = 1e-9,
) -> tuple[bool, str]:
    """Check ``candidate`` against ``reference`` on the synthetic problem.

    Returns ``(ok, detail)``; never raises — any exception inside a kernel
    (including JIT compilation failures, since compilation is lazy) is
    folded into a ``(False, ...)`` result so callers can fall back.
    Checking a backend against itself still catches NaNs, crashes, and
    Newton's-third-law violations.
    """
    if reference is None:
        reference = candidate
    p = synthetic_problem()
    try:
        # nb_pairs
        f_c = np.zeros((p["n"], 3))
        f_r = np.zeros((p["n"], 3))
        args = (p["pos"], p["box"], p["i_idx"], p["j_idx"], p["eps"], p["rmin"],
                p["qq"], p["cutoff"], p["switch"])
        out_c = candidate.nb_pairs(*args, f_c, p["i_idx"], p["j_idx"])
        out_r = reference.nb_pairs(*args, f_r, p["i_idx"], p["j_idx"])
        if out_c[2] == 0:
            return False, "nb_pairs: synthetic problem produced no pairs"
        if out_c[2] != out_r[2]:
            return False, f"nb_pairs: pair count {out_c[2]} != {out_r[2]}"
        if not _close(out_c[:2], out_r[:2], tol):
            return False, f"nb_pairs: energies {out_c[:2]} != {out_r[:2]}"
        if not _close(f_c, f_r, tol):
            return False, "nb_pairs: forces disagree"
        net = np.abs(f_c.sum(axis=0))
        if not np.all(net <= 1e-8 * max(1.0, float(np.max(np.abs(f_c))))):
            return False, f"nb_pairs: Newton's third law violated (net {net})"

        # pair_mask
        mask_c = candidate.pair_mask(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                     p["cutoff"])
        mask_r = reference.pair_mask(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                     p["cutoff"])
        if not np.array_equal(np.asarray(mask_c, bool), np.asarray(mask_r, bool)):
            return False, "pair_mask: masks disagree"

        # segment_add
        s_c = np.zeros((p["n"], 3))
        s_r = np.zeros((p["n"], 3))
        candidate.segment_add(s_c, p["scatter_idx"], p["contrib"])
        reference.segment_add(s_r, p["scatter_idx"], p["contrib"])
        if not _close(s_c, s_r, tol):
            return False, "segment_add: sums disagree"

        # ewald_real (qq including the Coulomb factor, per contract)
        qq_c = 332.0636 * p["qq"]
        fe_c = np.zeros((p["n"], 3))
        fe_r = np.zeros((p["n"], 3))
        e_c = candidate.ewald_real(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                   qq_c, p["alpha"], p["cutoff"], fe_c)
        e_r = reference.ewald_real(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                   qq_c, p["alpha"], p["cutoff"], fe_r)
        if not _close(e_c, e_r, tol) or not _close(fe_c, fe_r, tol):
            return False, "ewald_real: results disagree"

        # ewald_recip
        fk_c = np.zeros((p["n"], 3))
        fk_r = np.zeros((p["n"], 3))
        ek_c = candidate.ewald_recip(p["pos"], p["charges"], p["kvecs"], p["ak"],
                                     p["pref"], fk_c)
        ek_r = reference.ewald_recip(p["pos"], p["charges"], p["kvecs"], p["ak"],
                                     p["pref"], fk_r)
        if not _close(ek_c, ek_r, tol) or not _close(fk_c, fk_r, tol):
            return False, "ewald_recip: results disagree"

        # newer contract entries: a candidate missing a kernel the
        # reference provides is a contract violation, not a degraded mode
        for kern in ("bonded_terms", "ewald_recip_shard"):
            if getattr(reference, kern) is not None and getattr(candidate, kern) is None:
                return False, f"{kern}: kernel missing from candidate"

        # bonded_terms (all four kinds)
        if reference.bonded_terms is not None and candidate.bonded_terms is not None:
            kind_names = ("bond", "angle", "dihedral", "improper")
            for kind, idx, kpar, p1, p2 in bonded_cases(p):
                fb_c = np.zeros((p["n"], 3))
                fb_r = np.zeros((p["n"], 3))
                eb_c = candidate.bonded_terms(
                    p["pos"], p["box"], kind, idx, kpar, p1, p2, fb_c, idx
                )
                eb_r = reference.bonded_terms(
                    p["pos"], p["box"], kind, idx, kpar, p1, p2, fb_r, idx
                )
                label = f"bonded_terms[{kind_names[kind]}]"
                if not _close(eb_c, eb_r, tol):
                    return False, f"{label}: energies {eb_c} != {eb_r}"
                if not _close(fb_c, fb_r, tol):
                    return False, f"{label}: forces disagree"
                # bonded terms are translation invariant: net force ~ 0
                net = np.abs(fb_c.sum(axis=0))
                if not np.all(net <= 1e-8 * max(1.0, float(np.max(np.abs(fb_c))))):
                    return False, f"{label}: net force nonzero ({net})"

        # ewald_recip_shard: two shards must reproduce the full recip sum
        if (
            reference.ewald_recip_shard is not None
            and candidate.ewald_recip_shard is not None
        ):
            lo = int(p["shard_split"])
            fs_c = np.zeros((p["n"], 3))
            es_c = 0.0
            for sl in (slice(0, lo), slice(lo, len(p["kvecs"]))):
                es_c += candidate.ewald_recip_shard(
                    p["pos"], p["charges"], p["kvecs"][sl], p["ak"][sl],
                    p["pref"], fs_c,
                )
            if not _close(es_c, ek_r, tol) or not _close(fs_c, fk_r, tol):
                return False, "ewald_recip_shard: sharded sum != full recip sum"
    except Exception as exc:  # noqa: BLE001 - fold any kernel failure into fallback
        return False, f"{type(exc).__name__}: {exc}"
    return True, "ok"
