"""Kernel-backend contract and the parity self-check.

A :class:`KernelBackend` bundles the five hot-path kernels every backend
must provide.  The contract is deliberately scalar/array-only (no dataclass
options, no ``repro.md`` types) so this package never imports from
``repro.md`` at module scope — the md modules import :mod:`repro.backend`
themselves, and a module-level import back into md would be circular.

Kernel contract (all arrays are numpy, ``forces`` is accumulated in place):

``nb_pairs(pos, box, i_idx, j_idx, eps, rmin, qq, cutoff, switch, forces,
si, sj) -> (e_lj, e_elec, n_pairs)``
    Fused distance test + switched-LJ/shifted-Coulomb pair kernel with
    Newton's-third-law scatter.  ``qq`` is the raw charge product (the
    kernel applies the Coulomb constant); positions are read through
    ``i_idx``/``j_idx`` while forces accumulate at ``si``/``sj``.

``pair_mask(pos, box, i_idx, j_idx, cutoff) -> bool[m]``
    Minimum-image distance test only.

``segment_add(out, idx, contrib) -> None``
    Raw segment-sum scatter (duplicates summed); index validation happens
    once in :func:`repro.md.scatter.segment_add`, not here.

``ewald_real(pos, box, i_idx, j_idx, qq, alpha, cutoff, forces) -> energy``
    Ewald real-space sum.  ``qq`` here *includes* the Coulomb constant
    (matching the historical call site).

``ewald_recip(pos, q, kvecs, ak, pref, forces) -> energy``
    Ewald reciprocal-space sum over precomputed ``(kvecs, ak)`` tables
    with prefactor ``pref = C * 2π / V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["KernelBackend", "parity_selfcheck", "synthetic_problem"]


@dataclass(frozen=True)
class KernelBackend:
    """One named implementation of the five hot-path kernels."""

    name: str
    compiled: bool
    nb_pairs: Callable[..., tuple[float, float, int]]
    pair_mask: Callable[..., np.ndarray]
    segment_add: Callable[..., None]
    ewald_real: Callable[..., float]
    ewald_recip: Callable[..., float]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "compiled" if self.compiled else "interpreted"
        return f"KernelBackend({self.name!r}, {kind})"


def synthetic_problem(seed: int = 2026) -> dict[str, Any]:
    """Small deterministic problem exercising every kernel of the contract.

    Self-contained on purpose: no builder systems, no md imports, cheap
    enough to run at import time (~100 pairs, 24 atoms, 124 k-vectors).
    """
    rng = np.random.default_rng(seed)
    n = 24
    box = np.array([7.0, 8.5, 9.25])
    pos = rng.uniform(0.0, 1.0, size=(n, 3)) * box
    m = 96
    i_idx = rng.integers(0, n, size=m)
    j_idx = (i_idx + rng.integers(1, n, size=m)) % n  # i != j guaranteed
    eps = rng.uniform(0.05, 0.25, size=m)
    rmin = rng.uniform(2.5, 4.2, size=m)
    charges = rng.normal(0.0, 0.4, size=n)
    qq = charges[i_idx] * charges[j_idx]

    kmax = 2
    grid = np.arange(-kmax, kmax + 1)
    mx, my, mz = np.meshgrid(grid, grid, grid, indexing="ij")
    mvec = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1).astype(np.float64)
    mvec = mvec[np.any(mvec != 0, axis=1)]
    kvecs = 2.0 * np.pi * mvec / box[None, :]
    k2 = np.einsum("ij,ij->i", kvecs, kvecs)
    alpha = 0.45
    ak = np.exp(-k2 / (4.0 * alpha * alpha)) / k2
    pref = 332.0636 * 2.0 * np.pi / float(np.prod(box))

    scatter_idx = rng.integers(0, n, size=m)  # duplicates on purpose
    contrib = rng.normal(0.0, 1.0, size=(m, 3))

    return {
        "n": n,
        "box": box,
        "pos": pos,
        "i_idx": i_idx,
        "j_idx": j_idx,
        "eps": eps,
        "rmin": rmin,
        "qq": qq,
        "charges": charges,
        "cutoff": 5.0,
        "switch": 4.0,
        "alpha": alpha,
        "kvecs": kvecs,
        "ak": ak,
        "pref": pref,
        "scatter_idx": scatter_idx,
        "contrib": contrib,
    }


def _close(a, b, tol: float) -> bool:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return False
    if a.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(a))), float(np.max(np.abs(b))))
    diff = np.abs(a - b)
    return bool(np.all(np.isfinite(a)) and np.all(diff <= tol * scale))


def parity_selfcheck(
    candidate: KernelBackend,
    reference: KernelBackend | None = None,
    tol: float = 1e-9,
) -> tuple[bool, str]:
    """Check ``candidate`` against ``reference`` on the synthetic problem.

    Returns ``(ok, detail)``; never raises — any exception inside a kernel
    (including JIT compilation failures, since compilation is lazy) is
    folded into a ``(False, ...)`` result so callers can fall back.
    Checking a backend against itself still catches NaNs, crashes, and
    Newton's-third-law violations.
    """
    if reference is None:
        reference = candidate
    p = synthetic_problem()
    try:
        # nb_pairs
        f_c = np.zeros((p["n"], 3))
        f_r = np.zeros((p["n"], 3))
        args = (p["pos"], p["box"], p["i_idx"], p["j_idx"], p["eps"], p["rmin"],
                p["qq"], p["cutoff"], p["switch"])
        out_c = candidate.nb_pairs(*args, f_c, p["i_idx"], p["j_idx"])
        out_r = reference.nb_pairs(*args, f_r, p["i_idx"], p["j_idx"])
        if out_c[2] == 0:
            return False, "nb_pairs: synthetic problem produced no pairs"
        if out_c[2] != out_r[2]:
            return False, f"nb_pairs: pair count {out_c[2]} != {out_r[2]}"
        if not _close(out_c[:2], out_r[:2], tol):
            return False, f"nb_pairs: energies {out_c[:2]} != {out_r[:2]}"
        if not _close(f_c, f_r, tol):
            return False, "nb_pairs: forces disagree"
        net = np.abs(f_c.sum(axis=0))
        if not np.all(net <= 1e-8 * max(1.0, float(np.max(np.abs(f_c))))):
            return False, f"nb_pairs: Newton's third law violated (net {net})"

        # pair_mask
        mask_c = candidate.pair_mask(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                     p["cutoff"])
        mask_r = reference.pair_mask(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                     p["cutoff"])
        if not np.array_equal(np.asarray(mask_c, bool), np.asarray(mask_r, bool)):
            return False, "pair_mask: masks disagree"

        # segment_add
        s_c = np.zeros((p["n"], 3))
        s_r = np.zeros((p["n"], 3))
        candidate.segment_add(s_c, p["scatter_idx"], p["contrib"])
        reference.segment_add(s_r, p["scatter_idx"], p["contrib"])
        if not _close(s_c, s_r, tol):
            return False, "segment_add: sums disagree"

        # ewald_real (qq including the Coulomb factor, per contract)
        qq_c = 332.0636 * p["qq"]
        fe_c = np.zeros((p["n"], 3))
        fe_r = np.zeros((p["n"], 3))
        e_c = candidate.ewald_real(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                   qq_c, p["alpha"], p["cutoff"], fe_c)
        e_r = reference.ewald_real(p["pos"], p["box"], p["i_idx"], p["j_idx"],
                                   qq_c, p["alpha"], p["cutoff"], fe_r)
        if not _close(e_c, e_r, tol) or not _close(fe_c, fe_r, tol):
            return False, "ewald_real: results disagree"

        # ewald_recip
        fk_c = np.zeros((p["n"], 3))
        fk_r = np.zeros((p["n"], 3))
        ek_c = candidate.ewald_recip(p["pos"], p["charges"], p["kvecs"], p["ak"],
                                     p["pref"], fk_c)
        ek_r = reference.ewald_recip(p["pos"], p["charges"], p["kvecs"], p["ak"],
                                     p["pref"], fk_r)
        if not _close(ek_c, ek_r, tol) or not _close(fk_c, fk_r, tol):
            return False, "ewald_recip: results disagree"
    except Exception as exc:  # noqa: BLE001 - fold any kernel failure into fallback
        return False, f"{type(exc).__name__}: {exc}"
    return True, "ok"
