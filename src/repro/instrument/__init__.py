"""Shared measurement layer (paper §2.2).

"The framework automatically instruments all Charm++ objects, collects
their timing and communication data at runtime (in a 'database'), and
provides a standard interface to different load balancing strategies."

Both runtimes in this repository feed the same database:

* the **simulated** runtime (:mod:`repro.runtime.stats`,
  :mod:`repro.core.simulation`) records modeled execution times, and
* the **real** engine (:mod:`repro.md.parallel`) records
  ``perf_counter_ns`` wall-clock samples per half-shell cell task.

:class:`WorkDB` holds the samples (EWMA + last-K window), the cost-model
prior used before the first measurement, task→patch affinity and ownership,
and per-worker background load.  :func:`build_lb_problem` is the one
adapter that turns a database into the strategy-facing
:class:`~repro.balancer.problem.LBProblem`.
"""

from repro.instrument.adapter import build_lb_problem, derive_proxies
from repro.instrument.workdb import TaskRecord, WorkDB

__all__ = ["WorkDB", "TaskRecord", "build_lb_problem", "derive_proxies"]
