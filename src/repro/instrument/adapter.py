"""The one WorkDB → :class:`LBProblem` adapter.

Whatever runtime fed the database — the simulated scheduler or the real
``ParallelEngine`` — a strategy sees the same problem description: per-task
predictive loads, patch affinity, current ownership, home processors,
existing proxies, and background load.  Centralizing the conversion here is
what keeps the cost-model prior and the measured loads from drifting apart
between the two runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.balancer.problem import ComputeItem, LBProblem
from repro.instrument.workdb import WorkDB

__all__ = ["build_job_lb_problem", "build_lb_problem", "derive_proxies"]


def derive_proxies(
    db: WorkDB, patch_home: dict[int, int]
) -> set[tuple[int, int]]:
    """(patch, proc) pairs where current ownership implies a proxy.

    A task placed away from one of its patches' home processors forces the
    runtime to keep a proxy of that patch there — these already-paid
    communication costs are what the refinement strategy may reuse for
    free (paper §3.2).
    """
    proxies: set[tuple[int, int]] = set()
    for rec in db.tasks.values():
        if rec.owner < 0:
            continue
        for patch in rec.patches:
            if patch_home.get(patch) != rec.owner:
                proxies.add((patch, rec.owner))
    return proxies


def build_lb_problem(
    db: WorkDB,
    n_procs: int,
    patch_home: dict[int, int],
    existing_proxies: set[tuple[int, int]] | None = None,
    background: np.ndarray | None = None,
    dead_procs=frozenset(),
    task_ids=None,
) -> LBProblem:
    """Build the strategy-facing problem from the measurement database.

    ``existing_proxies=None`` derives them from current task ownership via
    :func:`derive_proxies`; pass a set explicitly when the runtime tracks
    proxies itself (the simulated runtime's non-migratable computes).
    ``task_ids`` restricts/orders the migratable computes (default: every
    migratable task in the database, sorted by id).
    """
    if task_ids is None:
        task_ids = sorted(
            tid for tid, rec in db.tasks.items() if rec.migratable
        )
    scale = db._prior_scale()
    computes = [
        ComputeItem(
            index=int(tid),
            load=db.load(tid, scale),
            patches=db.tasks[tid].patches,
            proc=int(db.tasks[tid].owner),
        )
        for tid in task_ids
    ]
    if existing_proxies is None:
        existing_proxies = derive_proxies(db, patch_home)
    if background is None:
        background = db.background_array(n_procs)
    return LBProblem(
        n_procs=int(n_procs),
        computes=computes,
        background=np.asarray(background, dtype=np.float64),
        patch_home=dict(patch_home),
        existing_proxies=set(existing_proxies),
        dead_procs=frozenset(dead_procs),
    )


def build_job_lb_problem(db: WorkDB, n_lanes: int, task_ids) -> LBProblem:
    """Job-granularity problem: one migratable compute per live job.

    The simulation service records each job as one WorkDB task
    (``kind="job"``, load = measured seconds/step) and balances jobs
    across concurrency *lanes* the same way the engine balances cells
    across workers — the paper's many-objects-per-processor bet applied
    one level up.  Jobs have no patch structure, so the patch-affinity
    machinery collapses: no homes, no proxies, and no fixed background
    (completed jobs are simply left out of ``task_ids``).
    """
    return build_lb_problem(
        db,
        n_lanes,
        patch_home={},
        existing_proxies=set(),
        background=np.zeros(int(n_lanes), dtype=np.float64),
        task_ids=sorted(int(t) for t in task_ids),
    )
