"""The measurement database shared by the simulated and real runtimes.

One :class:`TaskRecord` per schedulable object (a compute descriptor in the
simulated runtime, a half-shell cell task in the real engine) holding:

* the **cost-model prior** — the load estimate used "before the first
  measurement" (paper §2.2),
* an **EWMA** of measured per-execution times plus the raw **last-K
  window** (the window is what serialization preserves, so a dump can be
  re-analyzed without losing the recent history),
* the accumulated **total** and invocation count (what the simulated
  runtime's :class:`~repro.runtime.stats.LBSnapshot` reports),
* the task's **patch affinity** and current **owner**.

:meth:`WorkDB.load` is the predictive load estimate strategies consume: the
prior while unmeasured, then a sample-count-weighted blend that lets
measurements dominate after ``prior_blend_samples`` executions.  When
``calibrate_prior`` is on, priors of still-unmeasured tasks are rescaled by
the measured/prior ratio of the measured ones, so cost-model units
(arbitrary) and wall-clock seconds can mix in one problem.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["TaskRecord", "WorkDB"]

#: default EWMA smoothing weight of the newest sample
DEFAULT_ALPHA = 0.3
#: default last-K window length (also the default measurement count after
#: which the prior's weight reaches zero)
DEFAULT_WINDOW = 8


@dataclass
class TaskRecord:
    """Measurement state of one schedulable task.

    Grainsize sub-tasks (paper §4.2.1–2) carry their identity here:
    ``parent`` is the index of the unsplit cell task the slice came from
    (``-1`` for a task that is not a slice), ``part``/``n_parts`` the slice
    coordinates.  The ``prior`` of a slice is the parent's prior inherited
    pro-rata by candidate count.
    """

    task_id: int
    patches: tuple[int, ...] = ()
    owner: int = -1
    prior: float = 0.0
    migratable: bool = True
    ewma: float = 0.0
    n_samples: int = 0
    total: float = 0.0
    window: deque = field(default_factory=lambda: deque(maxlen=DEFAULT_WINDOW))
    parent: int = -1
    part: int = 0
    n_parts: int = 1
    #: task kind: "cell" (half-shell pair task), "bonded" (per-cell bonded
    #: term group), "kspace" (Ewald reciprocal shard) — lets per-kind
    #: measured times feed the balancer and analysis tooling
    kind: str = "cell"

    @property
    def last(self) -> float:
        """Most recent sample (0.0 when unmeasured)."""
        return self.window[-1] if self.window else 0.0

    def window_mean(self) -> float:
        """Mean of the last-K window (0.0 when unmeasured)."""
        return float(np.mean(self.window)) if self.window else 0.0


class WorkDB:
    """Per-task wall-clock samples, priors, affinity, and background load.

    ``prior_blend_samples`` controls the prior-to-measurement handoff: the
    measured EWMA's weight grows linearly with the sample count and reaches
    1 after that many samples (``1`` reproduces the paper's simulated
    runtime, where one measured phase fully replaces the cost model).
    """

    def __init__(
        self,
        ewma_alpha: float = DEFAULT_ALPHA,
        window: int = DEFAULT_WINDOW,
        prior_blend_samples: int | None = None,
        calibrate_prior: bool = True,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.ewma_alpha = float(ewma_alpha)
        self.window = int(window)
        self.prior_blend_samples = int(
            prior_blend_samples if prior_blend_samples is not None else window
        )
        if self.prior_blend_samples < 1:
            raise ValueError("prior_blend_samples must be >= 1")
        self.calibrate_prior = bool(calibrate_prior)
        self.tasks: dict[int, TaskRecord] = {}
        self._background_total: dict[int, float] = {}
        self._background_ewma: dict[int, float] = {}
        self._background_samples: dict[int, int] = {}
        self.measured_steps = 0
        #: recovery accounting fed by the real engine's supervisor — event
        #: counters keyed by kind ("kills", "hangs", "errors", "respawns",
        #: "reassigned", "degraded", ...); empty on a fault-free run
        self.recovery: dict[str, int] = {}
        #: kernel backend the samples were measured under (``None`` until
        #: declared); a numba sample is not comparable to a numpy one, so
        #: switching backends resets the measurement state
        self.backend: str | None = None
        #: backend resolved by each worker at spawn, keyed by worker id
        self.worker_backends: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def ensure_task(
        self,
        task_id: int,
        patches: tuple[int, ...] = (),
        prior: float = 0.0,
        owner: int = -1,
        migratable: bool = True,
        parent: int = -1,
        part: int = 0,
        n_parts: int = 1,
        kind: str = "cell",
    ) -> TaskRecord:
        """Declare a task (idempotent); updates affinity/prior if given.

        ``parent``/``part``/``n_parts`` declare a grainsize slice (see
        :class:`TaskRecord`); they default to "not a slice".  ``kind``
        classifies the task ("cell", "bonded", "kspace").
        """
        rec = self.tasks.get(task_id)
        if rec is None:
            rec = self.tasks[task_id] = TaskRecord(
                task_id,
                tuple(int(p) for p in patches),
                int(owner),
                float(prior),
                migratable,
                window=deque(maxlen=self.window),
                parent=int(parent),
                part=int(part),
                n_parts=int(n_parts),
                kind=str(kind),
            )
        else:
            if patches:
                rec.patches = tuple(int(p) for p in patches)
            if prior:
                rec.prior = float(prior)
            if owner >= 0:
                rec.owner = int(owner)
            if parent >= 0:
                rec.parent = int(parent)
                rec.part = int(part)
                rec.n_parts = int(n_parts)
            if kind != "cell":
                rec.kind = str(kind)
        return rec

    def kind_loads(self) -> dict[str, float]:
        """Predicted load summed per task kind (balancer/report input)."""
        out: dict[str, float] = {}
        scale = self._prior_scale()
        for tid, rec in self.tasks.items():
            out[rec.kind] = out.get(rec.kind, 0.0) + self.load(tid, scale)
        return out

    def fixed_owner_loads(self, n_workers: int) -> np.ndarray:
        """Per-worker predicted load of *non-migratable* tasks only.

        This is the background term :func:`repro.instrument.adapter.
        build_lb_problem` packs migratable work around: fixed inter-cell
        bonded groups stay with their owner, so the balancer must see their
        load as immovable."""
        out = np.zeros(int(n_workers), dtype=np.float64)
        scale = self._prior_scale()
        for tid, rec in self.tasks.items():
            if not rec.migratable and 0 <= rec.owner < len(out):
                out[rec.owner] += self.load(tid, scale)
        return out

    def record(
        self,
        task_id: int,
        seconds: float,
        owner: int | None = None,
        migratable: bool | None = None,
    ) -> None:
        """Add one execution-time sample for ``task_id``."""
        rec = self.tasks.get(task_id)
        if rec is None:
            rec = self.ensure_task(task_id)
        s = float(seconds)
        rec.total += s
        rec.window.append(s)
        if rec.n_samples == 0:
            rec.ewma = s
        else:
            rec.ewma += self.ewma_alpha * (s - rec.ewma)
        rec.n_samples += 1
        if owner is not None:
            rec.owner = int(owner)
        if migratable is not None:
            rec.migratable = bool(migratable)
        if not rec.migratable and rec.owner >= 0:
            self._background_total[rec.owner] = (
                self._background_total.get(rec.owner, 0.0) + s
            )

    def record_many(
        self, task_ids, seconds, owners=None
    ) -> None:
        """Vectorized-ish bulk :meth:`record` (one step of the real engine)."""
        if owners is None:
            for tid, s in zip(task_ids, seconds):
                self.record(int(tid), float(s))
        else:
            for tid, s, w in zip(task_ids, seconds, owners):
                self.record(int(tid), float(s), owner=int(w))

    def record_background(self, worker: int, seconds: float) -> None:
        """Add one per-step background (non-migratable) load sample."""
        worker = int(worker)
        s = float(seconds)
        self._background_total[worker] = (
            self._background_total.get(worker, 0.0) + s
        )
        n = self._background_samples.get(worker, 0)
        if n == 0:
            self._background_ewma[worker] = s
        else:
            self._background_ewma[worker] += self.ewma_alpha * (
                s - self._background_ewma[worker]
            )
        self._background_samples[worker] = n + 1

    def mark_step(self) -> None:
        """Note that one simulation step's worth of data was recorded."""
        self.measured_steps += 1

    def note_recovery(self, kind: str, n: int = 1) -> None:
        """Count ``n`` recovery events of ``kind`` (kills, respawns, ...)."""
        self.recovery[str(kind)] = self.recovery.get(str(kind), 0) + int(n)

    def set_backend(self, name: str) -> None:
        """Declare the kernel backend the coming samples run under.

        Timings taken under different backends are not comparable (a JIT
        kernel can be an order of magnitude faster than the numpy
        reference), so if measurements already exist for a *different*
        backend the per-task measurement state (EWMA, windows, totals,
        background) is dropped — priors, affinity, and ownership survive,
        exactly the "before the first measurement" state of a fresh run.
        """
        name = str(name)
        if self.backend is not None and self.backend != name and any(
            rec.n_samples > 0 for rec in self.tasks.values()
        ):
            for rec in self.tasks.values():
                rec.ewma = 0.0
                rec.n_samples = 0
                rec.total = 0.0
                rec.window.clear()
            self._background_total.clear()
            self._background_ewma.clear()
            self._background_samples.clear()
            self.measured_steps = 0
        self.backend = name
        self.worker_backends = {
            w: b for w, b in self.worker_backends.items() if b == name
        }

    def note_worker_backend(self, worker: int, name: str) -> None:
        """Record the backend worker ``worker`` resolved at (re)spawn."""
        self.worker_backends[int(worker)] = str(name)

    def reset(self) -> None:
        """Drop all measurements, priors, and background state."""
        self.tasks.clear()
        self._background_total.clear()
        self._background_ewma.clear()
        self._background_samples.clear()
        self.measured_steps = 0
        self.recovery.clear()
        self.backend = None
        self.worker_backends.clear()

    # ------------------------------------------------------------------ #
    # predictive loads
    # ------------------------------------------------------------------ #
    def _prior_scale(self) -> float:
        """Measured-seconds per prior-unit over measured tasks (>= 1 sample)."""
        if not self.calibrate_prior:
            return 1.0
        ewma_sum = prior_sum = 0.0
        for rec in self.tasks.values():
            if rec.n_samples > 0 and rec.prior > 0.0:
                ewma_sum += rec.ewma
                prior_sum += rec.prior
        return ewma_sum / prior_sum if prior_sum > 0.0 and ewma_sum > 0.0 else 1.0

    def load(self, task_id: int, prior_scale: float | None = None) -> float:
        """Predicted per-execution load: prior, measurement, or blend."""
        rec = self.tasks[task_id]
        if prior_scale is None:
            prior_scale = self._prior_scale()
        if rec.n_samples == 0:
            return rec.prior * prior_scale
        if rec.prior <= 0.0:
            # no prior knowledge to blend against: trust the measurement
            return rec.ewma
        w = min(rec.n_samples / self.prior_blend_samples, 1.0)
        return w * rec.ewma + (1.0 - w) * rec.prior * prior_scale

    def loads(self, task_ids=None) -> np.ndarray:
        """Predicted loads for ``task_ids`` (default: all, sorted by id)."""
        if task_ids is None:
            task_ids = sorted(self.tasks)
        scale = self._prior_scale()
        return np.array([self.load(t, scale) for t in task_ids], dtype=np.float64)

    def owner_loads(self, n_workers: int) -> np.ndarray:
        """Predicted per-worker load: sum of each owner's task loads."""
        out = np.zeros(int(n_workers), dtype=np.float64)
        scale = self._prior_scale()
        for tid, rec in self.tasks.items():
            if 0 <= rec.owner < len(out):
                out[rec.owner] += self.load(tid, scale)
        return out

    def background_array(self, n_workers: int, per_step: bool = True) -> np.ndarray:
        """Per-worker background load (EWMA of per-step samples)."""
        out = np.zeros(int(n_workers), dtype=np.float64)
        source = self._background_ewma if per_step else self._background_total
        for worker, value in source.items():
            if 0 <= worker < len(out):
                out[worker] = value
        return out

    def background_totals(self) -> dict[int, float]:
        """Accumulated background seconds per worker (simulated-runtime view)."""
        return dict(self._background_total)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable dump of the full database."""
        return {
            "ewma_alpha": self.ewma_alpha,
            "window": self.window,
            "prior_blend_samples": self.prior_blend_samples,
            "calibrate_prior": self.calibrate_prior,
            "measured_steps": self.measured_steps,
            "recovery": dict(self.recovery),
            "backend": self.backend,
            "worker_backends": {
                str(k): v for k, v in self.worker_backends.items()
            },
            "background_total": {
                str(k): v for k, v in self._background_total.items()
            },
            "background_ewma": {
                str(k): v for k, v in self._background_ewma.items()
            },
            "background_samples": {
                str(k): v for k, v in self._background_samples.items()
            },
            "tasks": [
                {
                    "task_id": rec.task_id,
                    "patches": list(rec.patches),
                    "owner": rec.owner,
                    "prior": rec.prior,
                    "migratable": rec.migratable,
                    "ewma": rec.ewma,
                    "n_samples": rec.n_samples,
                    "total": rec.total,
                    "window": list(rec.window),
                    "parent": rec.parent,
                    "part": rec.part,
                    "n_parts": rec.n_parts,
                    "kind": rec.kind,
                }
                for rec in self.tasks.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkDB":
        """Rebuild a database from :meth:`to_dict` output."""
        db = cls(
            ewma_alpha=data["ewma_alpha"],
            window=data["window"],
            prior_blend_samples=data["prior_blend_samples"],
            calibrate_prior=data["calibrate_prior"],
        )
        db.measured_steps = int(data["measured_steps"])
        # dumps from before the resilience layer carry no recovery block
        db.recovery = {
            str(k): int(v) for k, v in data.get("recovery", {}).items()
        }
        # dumps from before the backend layer carry neither field
        raw_backend = data.get("backend")
        db.backend = str(raw_backend) if raw_backend is not None else None
        db.worker_backends = {
            int(k): str(v) for k, v in data.get("worker_backends", {}).items()
        }
        db._background_total = {
            int(k): float(v) for k, v in data["background_total"].items()
        }
        db._background_ewma = {
            int(k): float(v) for k, v in data["background_ewma"].items()
        }
        db._background_samples = {
            int(k): int(v) for k, v in data["background_samples"].items()
        }
        for t in data["tasks"]:
            rec = TaskRecord(
                int(t["task_id"]),
                tuple(int(p) for p in t["patches"]),
                int(t["owner"]),
                float(t["prior"]),
                bool(t["migratable"]),
                float(t["ewma"]),
                int(t["n_samples"]),
                float(t["total"]),
                deque(
                    (float(x) for x in t["window"]), maxlen=db.window
                ),
                parent=int(t.get("parent", -1)),
                part=int(t.get("part", 0)),
                n_parts=int(t.get("n_parts", 1)),
                kind=str(t.get("kind", "cell")),
            )
            db.tasks[rec.task_id] = rec
        return db

    def dump(self, path) -> None:
        """Write the database as JSON to ``path`` atomically.

        The write goes through a same-directory temp file + fsync +
        ``os.replace`` (:func:`repro.util.atomic_write_text`), so a driver
        killed mid-dump never leaves a truncated database behind — a reader
        sees the previous complete dump or the new one, never a torn file.
        """
        from repro.util import atomic_write_text

        atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load_file(cls, path) -> "WorkDB":
        """Read a database dumped with :meth:`dump`.

        Raises ``ValueError`` (with the path in the message) on a corrupt or
        truncated dump instead of leaking a bare ``JSONDecodeError``.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt WorkDB dump {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"corrupt WorkDB dump {path}: expected a JSON object, "
                f"got {type(data).__name__}"
            )
        return cls.from_dict(data)
