"""Projections-style timeline views (Figures 3 and 4).

"Figure 3, obtained via Projections, shows this effect clearly, with
time-lines for a few processors, in an 'Upshot'-style diagram.  Each
rectangle on a processor's line represents an asynchronous method execution
(or task)."

Rendered as text: one row per processor, one character per time slot,
with the category coded as ``N`` (non-bonded), ``B`` (bonded), ``I``
(integration), ``p`` (proxy handling) and ``.`` (idle).  The before/after
multicast comparison (Figure 3 vs 4) shows the integration blocks
shortening and the idle gaps on compute-only processors closing.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.trace import TraceLog

__all__ = [
    "render_timeline",
    "render_workdb_timeline",
    "format_recovery_summary",
    "CATEGORY_CODES",
]

CATEGORY_CODES = {
    "integration": "I",
    "nonbonded": "N",
    "bonded": "B",
    "proxy": "p",
}


def render_timeline(
    trace: TraceLog,
    procs: list[int],
    t0: float,
    t1: float,
    width: int = 100,
) -> str:
    """Render the ``[t0, t1)`` window of selected processors.

    Each of the ``width`` character slots covers ``(t1-t0)/width`` seconds;
    a slot shows the category occupying the majority of it.
    """
    if t1 <= t0:
        raise ValueError("empty time window")
    slot = (t1 - t0) / width
    lines = [
        f"timeline {t0 * 1e3:.2f}..{t1 * 1e3:.2f} ms "
        f"({slot * 1e6:.0f} us/char)  I=integration N=nonbonded B=bonded p=proxy"
    ]
    for proc in procs:
        occupancy = np.zeros((width, len(CATEGORY_CODES)))
        codes = list(CATEGORY_CODES)
        for rec in trace.proc_timeline(proc):
            if rec.end <= t0 or rec.start >= t1 or rec.category not in CATEGORY_CODES:
                continue
            ci = codes.index(rec.category)
            lo = max(int((rec.start - t0) / slot), 0)
            hi = min(int(np.ceil((rec.end - t0) / slot)), width)
            for s in range(lo, hi):
                s0, s1 = t0 + s * slot, t0 + (s + 1) * slot
                overlap = min(rec.end, s1) - max(rec.start, s0)
                if overlap > 0:
                    occupancy[s, ci] += overlap
        row = []
        for s in range(width):
            if occupancy[s].sum() < 0.5 * slot:
                row.append(".")
            else:
                row.append(CATEGORY_CODES[codes[int(np.argmax(occupancy[s]))]])
        lines.append(f"P{proc:<5}|{''.join(row)}|")
    return "\n".join(lines)


def render_workdb_timeline(db, n_workers: int, width: int = 100) -> str:
    """Upshot-style view of one modeled step from a real-engine WorkDB.

    Works on a live :class:`repro.instrument.WorkDB` or one reloaded from a
    ``--workdb-dump`` file.  One row per worker: its tasks' predicted
    per-step durations laid end to end in task-id order, alternating
    ``N``/``n`` so block boundaries stay visible, then ``.`` idle until the
    slowest worker (the step barrier) finishes — the real-engine analogue
    of the paper's Figure 3 timelines, with the idle tails showing exactly
    the imbalance the measurement-based balancer removes.
    """
    scale = db._prior_scale()
    per_worker: list[list[tuple[int, float]]] = [[] for _ in range(n_workers)]
    for tid in sorted(db.tasks):
        rec = db.tasks[tid]
        if 0 <= rec.owner < n_workers:
            per_worker[rec.owner].append((tid, db.load(tid, scale)))
    makespan = max(
        (sum(load for _, load in tasks) for tasks in per_worker), default=0.0
    )
    if makespan <= 0.0:
        return "workdb timeline: no measured or estimated load"
    slot = makespan / width
    lines = [
        f"workdb timeline, one step: makespan {makespan * 1e3:.2f} ms "
        f"({slot * 1e6:.0f} us/char)  N/n=non-bonded tasks  .=idle at barrier"
    ]
    for w, tasks in enumerate(per_worker):
        row = ["."] * width
        t_now = 0.0
        for k, (_, load) in enumerate(tasks):
            lo = int(t_now / slot)
            t_now += load
            hi = min(int(np.ceil(t_now / slot)), width)
            code = "N" if k % 2 == 0 else "n"
            for s in range(lo, hi):
                row[s] = code
        busy = sum(load for _, load in tasks)
        lines.append(
            f"W{w:<5}|{''.join(row)}| {busy * 1e3:7.2f} ms, {len(tasks)} tasks"
        )
    recovery = format_recovery_summary(db)
    if recovery:
        lines.append(recovery)
    return "\n".join(lines)


def format_recovery_summary(db) -> str:
    """One-line recovery accounting from a WorkDB, or ``""`` when clean.

    The supervisor mirrors its event counters into ``WorkDB.recovery``
    (kills, hangs, errors, respawns, reassigned tasks, degradations), so a
    reloaded ``--workdb-dump`` still shows what the run survived.
    """
    recovery = getattr(db, "recovery", None)
    if not recovery:
        return ""
    order = ["kills", "hangs", "errors", "respawns", "reassigned", "degraded"]
    parts = [f"{k}={recovery[k]}" for k in order if recovery.get(k)]
    parts += [
        f"{k}={v}" for k, v in sorted(recovery.items()) if k not in order and v
    ]
    return "recovery: " + ", ".join(parts)
