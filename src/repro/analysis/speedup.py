"""Scaling sweeps and table formatting (Tables 2–6).

Each paper table lists processors / time-per-step / speedup / GFLOPS for one
(molecule, machine) pair.  :func:`scaling_sweep` runs the full simulation at
every processor count against a shared :class:`DecomposedProblem`;
:func:`format_scaling_table` prints the same columns as the paper.

Speedup baselines follow the paper's conventions: relative to one processor
normally, but "scaled relative to the speedup on two processors = 2.0" for
BC1 (too big for one node) and to four processors for ApoA-I on the T3E —
handled via ``baseline_procs``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    ParallelSimulation,
    SimulationConfig,
    SimulationResult,
)

__all__ = ["ScalingRow", "scaling_sweep", "format_scaling_table"]


@dataclass
class ScalingRow:
    """One row of a scaling table."""

    procs: int
    time_per_step: float
    speedup: float
    gflops: float
    imbalance_ratio: float
    result: SimulationResult


def scaling_sweep(
    problem: DecomposedProblem,
    base_config: SimulationConfig,
    proc_counts: list[int],
    baseline_procs: int = 1,
) -> list[ScalingRow]:
    """Run the simulation at each processor count; returns table rows.

    The speedup column is normalized so the ``baseline_procs`` row reads
    exactly ``baseline_procs`` (the paper's convention for systems too large
    to run on one processor).
    """
    rows: list[ScalingRow] = []
    results: dict[int, SimulationResult] = {}
    for procs in proc_counts:
        cfg = replace(base_config, n_procs=procs)
        sim = ParallelSimulation(problem.system, cfg, problem=problem)
        results[procs] = sim.run()

    if baseline_procs in results:
        base_time = results[baseline_procs].time_per_step * baseline_procs
    else:
        base_time = results[proc_counts[0]].sequential_reference_s

    for procs in proc_counts:
        res = results[procs]
        rows.append(
            ScalingRow(
                procs=procs,
                time_per_step=res.time_per_step,
                speedup=base_time / res.time_per_step,
                gflops=res.gflops,
                imbalance_ratio=res.final.stats["imbalance_ratio"],
                result=res,
            )
        )
    return rows


def format_scaling_table(
    rows: list[ScalingRow],
    title: str = "",
    paper_speedups: dict[int, float] | None = None,
) -> str:
    """Text table in the layout of Tables 2–6 (optionally with the paper's
    published speedups side by side)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'Procs':>6} {'Time (s/step)':>14} {'Speedup':>9} {'GFLOPS':>8}"
    if paper_speedups:
        header += f" {'Paper speedup':>14}"
    lines.append(header)
    for row in rows:
        line = (
            f"{row.procs:>6} {row.time_per_step:>14.4g} "
            f"{row.speedup:>9.1f} {row.gflops:>8.3g}"
        )
        if paper_speedups:
            ref = paper_speedups.get(row.procs)
            line += f" {ref:>14.1f}" if ref is not None else f" {'-':>14}"
        lines.append(line)
    return "\n".join(lines)
