"""Analysis of simulated runs: the paper's tables and figures.

* :mod:`repro.analysis.audit` — the Table 1 performance audit
  (ideal vs. actual per-step time decomposition),
* :mod:`repro.analysis.grainsize` — Figures 1–2 grainsize histograms,
* :mod:`repro.analysis.timeline` — Figures 3–4 Projections-style timeline
  views rendered as text,
* :mod:`repro.analysis.speedup` — Tables 2–6 scaling sweeps and formatting.
"""

from repro.analysis.audit import PerformanceAudit, performance_audit
from repro.analysis.grainsize import (
    grainsize_histogram,
    histogram_from_descriptors,
    histogram_from_workdb,
    format_histogram,
)
from repro.analysis.timeline import (
    format_recovery_summary,
    render_timeline,
    render_workdb_timeline,
)
from repro.analysis.speedup import ScalingRow, scaling_sweep, format_scaling_table
from repro.analysis.utilization import (
    UtilizationProfile,
    utilization_profile,
    workdb_utilization,
    format_utilization,
)

__all__ = [
    "PerformanceAudit",
    "performance_audit",
    "grainsize_histogram",
    "histogram_from_descriptors",
    "histogram_from_workdb",
    "format_histogram",
    "render_timeline",
    "render_workdb_timeline",
    "format_recovery_summary",
    "ScalingRow",
    "scaling_sweep",
    "format_scaling_table",
    "UtilizationProfile",
    "utilization_profile",
    "workdb_utilization",
    "format_utilization",
]
