"""The performance audit of Table 1.

"Table 1 shows a snapshot of the audit at an intermediate stage ... The
audit compares ideal and actual 1024 processor data, where the ideal
performance is computed by assuming that the single processor performance
could scale perfectly."

Columns (all milliseconds per step, averaged over processors):

* Total — measured time per step (Actual) or sequential/P (Ideal)
* Non-bonded / Bonds / Integration — per-processor average work by category
* Overhead — CPU spent initiating/packing sends ("extra work one had to do
  only in a parallel setting")
* Receives — CPU spent receiving/dispatching messages
* Imbalance — max processor busy time minus average busy time
* Idle — the remainder of the step (waiting that is not attributable to
  imbalance)

Our columns satisfy the same accounting identity as the paper's:
``Total = Non-bonded + Bonds + Integration + Overhead + Receives +
Imbalance + Idle`` exactly, because Idle is defined as the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulation import PhaseResult, SimulationResult
from repro.runtime.checkpoint import RecoveryStats

__all__ = ["PerformanceAudit", "performance_audit"]


@dataclass
class AuditRow:
    """One row of the audit, seconds per step."""

    total: float
    nonbonded: float
    bonds: float
    integration: float
    overhead: float
    imbalance: float
    idle: float
    receives: float

    def as_ms(self) -> dict[str, float]:
        """The row's columns converted to milliseconds."""
        return {
            "total": self.total * 1e3,
            "nonbonded": self.nonbonded * 1e3,
            "bonds": self.bonds * 1e3,
            "integration": self.integration * 1e3,
            "overhead": self.overhead * 1e3,
            "imbalance": self.imbalance * 1e3,
            "idle": self.idle * 1e3,
            "receives": self.receives * 1e3,
        }


@dataclass
class PerformanceAudit:
    """Ideal vs. actual decomposition of one run's step time."""

    n_procs: int
    ideal: AuditRow
    actual: AuditRow
    #: fault-tolerance accounting; None when the run had no resilience layer
    recovery: "RecoveryStats | None" = None
    #: processors lost by the end of the run
    dead_procs: tuple[int, ...] = ()

    def format(self) -> str:
        """Text rendering in the layout of the paper's Table 1."""
        cols = [
            "Total",
            "Non-bonded",
            "Bonds",
            "Integration",
            "Overhead",
            "Imbalance",
            "Idle",
            "Receives",
        ]
        keys = [
            "total",
            "nonbonded",
            "bonds",
            "integration",
            "overhead",
            "imbalance",
            "idle",
            "receives",
        ]
        header = "        " + "".join(f"{c:>12}" for c in cols)
        lines = [f"Performance audit on {self.n_procs} processors (ms/step)", header]
        for name, row in (("Ideal", self.ideal), ("Actual", self.actual)):
            ms = row.as_ms()
            lines.append(f"{name:8}" + "".join(f"{ms[k]:12.2f}" for k in keys))
        if self.recovery is not None:
            lines.append("")
            lines.extend(self._format_recovery())
        return "\n".join(lines)

    def _format_recovery(self) -> list[str]:
        rec = self.recovery
        lines = ["Recovery overhead"]
        lines.append(
            f"  checkpoints taken      {rec.checkpoints_taken:6d}"
            f"   ({rec.checkpoint_time_s * 1e3:10.3f} ms modeled)"
        )
        lines.append(
            f"  processor failures     {rec.n_failures:6d}"
            + (f"   (procs {list(self.dead_procs)})" if self.dead_procs else "")
        )
        if rec.n_failures:
            lines.append(
                f"  detection latency      {rec.detection_latency_s * 1e3:10.3f} ms"
            )
            lines.append(f"  steps replayed         {rec.steps_replayed:6d}")
            lines.append(
                f"  recovery wall-clock    {rec.recovery_time_s * 1e3:10.3f} ms"
            )
            lines.append(
                f"  messages lost to dead  {rec.messages_lost_to_dead:6d}"
            )
        if rec.messages_dropped or rec.messages_delayed or rec.messages_duplicated:
            lines.append(
                f"  messages dropped/delayed/duplicated  "
                f"{rec.messages_dropped}/{rec.messages_delayed}"
                f"/{rec.messages_duplicated}"
            )
        return lines


def performance_audit(
    result: SimulationResult, phase: PhaseResult | None = None
) -> PerformanceAudit:
    """Build the audit from a finished run (uses the final phase by default)."""
    phase = phase or result.final
    cfg = result.config
    P = cfg.n_procs
    steps = cfg.steps_per_phase  # instrumentation covers every round
    summary = phase.summary

    per_cat = {k: v / steps / P for k, v in summary.time_per_category.items()}
    nonbonded = per_cat.get("nonbonded", 0.0)
    bonds = per_cat.get("bonded", 0.0)
    integration = per_cat.get("integration", 0.0) + per_cat.get("proxy", 0.0)
    overhead = float(summary.send_overhead_per_proc.sum()) / steps / P
    receives = float(summary.recv_overhead_per_proc.sum()) / steps / P
    busy = summary.busy_time_per_proc / steps
    imbalance = float(busy.max() - busy.mean()) if len(busy) else 0.0
    total = phase.timings.time_per_step
    idle = total - (nonbonded + bonds + integration + overhead + receives + imbalance)

    actual = AuditRow(
        total=total,
        nonbonded=nonbonded,
        bonds=bonds,
        integration=integration,
        overhead=overhead,
        imbalance=imbalance,
        idle=idle,
        receives=receives,
    )

    cm = None
    counts = result.counts
    cpu = cfg.machine.cpu_factor
    # ideal: the single-processor decomposition divided by P
    from repro.core.simulation import DEFAULT_COST_MODEL

    cm = DEFAULT_COST_MODEL
    nb_seq = cm.nonbonded_cost(counts.nonbonded_pairs, counts.candidate_pairs) * cpu
    bd_seq = cm.bonded_cost(
        counts.bonds, counts.angles, counts.dihedrals, counts.impropers
    ) * cpu
    in_seq = cm.integration_cost(counts.atoms) * cpu
    ideal = AuditRow(
        total=(nb_seq + bd_seq + in_seq) / P,
        nonbonded=nb_seq / P,
        bonds=bd_seq / P,
        integration=in_seq / P,
        overhead=0.0,
        imbalance=0.0,
        idle=0.0,
        receives=0.0,
    )
    recovery = (
        result.recovery
        if any(ph.recovery is not None for ph in result.phases)
        else None
    )
    return PerformanceAudit(
        n_procs=P,
        ideal=ideal,
        actual=actual,
        recovery=recovery,
        dead_procs=result.dead_procs,
    )
