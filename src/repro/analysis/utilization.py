"""Processor-utilization profiles (paper §4.1, summary level 2).

"Two types of trace information are stored in the summary profile.  The
first is the processor utilization for every processor throughout the
program run."

Provides the per-processor utilization vector and an ASCII profile
rendering (one bar per processor, or binned for large machines), plus the
aggregate statistics the paper's audits derive from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.trace import SummaryProfile

__all__ = [
    "UtilizationProfile",
    "utilization_profile",
    "workdb_utilization",
    "format_utilization",
]


@dataclass
class UtilizationProfile:
    """Busy fraction per processor over a measured interval."""

    utilization: np.ndarray  # in [0, 1] per processor
    makespan: float

    @property
    def mean(self) -> float:
        """Mean busy fraction across processors."""
        return float(self.utilization.mean()) if len(self.utilization) else 0.0

    @property
    def minimum(self) -> float:
        """Lowest per-processor busy fraction."""
        return float(self.utilization.min()) if len(self.utilization) else 0.0

    @property
    def maximum(self) -> float:
        """Highest per-processor busy fraction."""
        return float(self.utilization.max()) if len(self.utilization) else 0.0

    def idle_processors(self, threshold: float = 0.05) -> int:
        """Processors busy less than ``threshold`` of the time (the paper's
        'many processors with no work at all' before load balancing)."""
        return int(np.count_nonzero(self.utilization < threshold))


def utilization_profile(
    summary: SummaryProfile, makespan: float
) -> UtilizationProfile:
    """Build the profile from a summary and the measured wall interval."""
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    util = np.clip(summary.busy_time_per_proc / makespan, 0.0, 1.0)
    return UtilizationProfile(utilization=util, makespan=makespan)


def workdb_utilization(db, n_workers: int) -> UtilizationProfile:
    """Profile of one modeled step from a :class:`repro.instrument.WorkDB`.

    The same chart the simulated runtime derives from its trace, but for the
    real parallel engine's measurement database (live, or reloaded from a
    ``--workdb-dump`` file with :meth:`WorkDB.load_file`): each worker's
    busy time is the predicted per-step load of its tasks plus its
    background load, and the makespan is the slowest worker — the barrier
    every other worker waits on.
    """
    loads = db.owner_loads(n_workers) + db.background_array(n_workers)
    makespan = float(loads.max()) if len(loads) else 0.0
    if makespan <= 0.0:
        return UtilizationProfile(
            utilization=np.zeros(int(n_workers)), makespan=0.0
        )
    return UtilizationProfile(
        utilization=np.clip(loads / makespan, 0.0, 1.0), makespan=makespan
    )


def format_utilization(
    profile: UtilizationProfile, width: int = 50, max_rows: int = 64
) -> str:
    """ASCII utilization chart; bins processors when there are many."""
    util = profile.utilization
    n = len(util)
    lines = [
        f"utilization: mean {profile.mean:.1%}, min {profile.minimum:.1%}, "
        f"max {profile.maximum:.1%}, idle procs {profile.idle_processors()}"
    ]
    if n <= max_rows:
        groups = [(f"P{p}", util[p : p + 1]) for p in range(n)]
    else:
        per_bin = int(np.ceil(n / max_rows))
        groups = [
            (f"P{p}-{min(p + per_bin, n) - 1}", util[p : p + per_bin])
            for p in range(0, n, per_bin)
        ]
    for label, vals in groups:
        frac = float(vals.mean())
        bar = "#" * int(round(width * frac))
        lines.append(f"{label:>12} |{bar:<{width}}| {frac:5.1%}")
    return "\n".join(lines)
