"""Grainsize histograms (Figures 1 and 2).

"Each bar represents the number of instances of tasks with the grainsize
indicated by its x-coordinate.  (Thus there were about 880 tasks of
grainsize 9 ms, or more precisely, of grainsize between 8 and 10 ms, during
an average timestep.)"

Three sources are supported: execution durations from a full trace (what
Projections measured), modeled loads straight from the compute descriptors
(available without running the machine at all), and *measured wall-clock
task times* from a real engine's :class:`~repro.instrument.WorkDB` — the
Figure 1→2 reproduction on real processes, before and after
``grainsize_ms`` splitting.  All show the paper's signature: a bimodal
distribution with a long tail before splitting, collapsing below the
target grainsize after.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.computes import ComputeDescriptor
from repro.runtime.trace import TraceLog

__all__ = [
    "GrainsizeHistogram",
    "grainsize_histogram",
    "histogram_from_descriptors",
    "histogram_from_workdb",
    "format_histogram",
]


@dataclass
class GrainsizeHistogram:
    """Task-duration histogram over one average timestep."""

    bin_edges_ms: np.ndarray  # length nbins+1
    counts: np.ndarray  # tasks per bin per timestep
    max_grainsize_ms: float
    total_tasks: float

    def bimodality_gap(self) -> bool:
        """True when a populated high mode is separated from the main mass
        by empty bins — the Figure 1 signature."""
        nz = np.flatnonzero(self.counts > 0)
        if len(nz) < 2:
            return False
        gaps = np.diff(nz)
        return bool(gaps.max() >= 2)


def grainsize_histogram(
    trace: TraceLog,
    n_steps: int,
    category: str = "nonbonded",
    bin_ms: float = 2.0,
) -> GrainsizeHistogram:
    """Histogram of execution durations from a full trace."""
    durations = trace.durations_by_category(category) * 1e3  # ms
    return _histogram(durations, n_steps, bin_ms)


def histogram_from_descriptors(
    descriptors: list[ComputeDescriptor],
    cpu_factor: float = 1.0,
    kinds: tuple[str, ...] = ("nb_self", "nb_pair"),
    bin_ms: float = 2.0,
) -> GrainsizeHistogram:
    """Histogram of modeled object loads (one execution per step each)."""
    loads = np.array(
        [d.load * cpu_factor for d in descriptors if d.kind in kinds], dtype=float
    )
    return _histogram(loads * 1e3, 1, bin_ms)


def histogram_from_workdb(
    db,
    bin_ms: float = 2.0,
    measured_only: bool = True,
) -> GrainsizeHistogram:
    """Histogram of the real engine's measured per-task wall-clock times.

    Each measured task contributes its last-K window mean (in ms); with
    ``measured_only=False`` unmeasured tasks contribute their prior
    (cost-model seconds — only meaningful when the engine ran with a real
    cost model).  Comparing the histogram of a ``grainsize_ms=0`` run with
    a split run is the paper's Figure 1 → Figure 2 on real processes.
    """
    durations = [
        rec.window_mean() * 1e3
        for rec in db.tasks.values()
        if rec.n_samples > 0
    ]
    if not measured_only:
        durations += [
            rec.prior * 1e3
            for rec in db.tasks.values()
            if rec.n_samples == 0
        ]
    return _histogram(np.asarray(durations, dtype=float), 1, bin_ms)


def _histogram(durations_ms: np.ndarray, n_steps: int, bin_ms: float) -> GrainsizeHistogram:
    if len(durations_ms) == 0:
        return GrainsizeHistogram(np.array([0.0, bin_ms]), np.zeros(1), 0.0, 0.0)
    top = max(float(durations_ms.max()), bin_ms)
    edges = np.arange(0.0, top + bin_ms, bin_ms)
    counts, _ = np.histogram(durations_ms, bins=edges)
    return GrainsizeHistogram(
        bin_edges_ms=edges,
        counts=counts / max(n_steps, 1),
        max_grainsize_ms=float(durations_ms.max()),
        total_tasks=len(durations_ms) / max(n_steps, 1),
    )


def format_histogram(hist: GrainsizeHistogram, width: int = 60, title: str = "") -> str:
    """ASCII bar rendering in the style of Figures 1–2."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"tasks/step={hist.total_tasks:.0f}  max grainsize={hist.max_grainsize_ms:.1f} ms"
    )
    peak = hist.counts.max() if hist.counts.size else 1.0
    peak = max(peak, 1.0)
    for i, c in enumerate(hist.counts):
        lo = hist.bin_edges_ms[i]
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{lo:6.1f} ms |{bar} {c:.0f}")
    return "\n".join(lines)
