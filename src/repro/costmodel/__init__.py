"""Cost and flop models for the simulated parallel runs.

Object execution costs (reference-machine seconds) are derived from the
paper's own single-processor decomposition (Table 1 "Ideal": 52.44 s
non-bonded, 3.16 s bonds, 1.44 s integration for ApoA-I on one ASCI-Red
processor) divided by exact work counts measured on the synthetic systems —
see DESIGN.md §2 for why this anchoring preserves the published scaling
shape.
"""

from repro.costmodel.model import CostModel, WorkCounts, count_work
from repro.costmodel.flops import FlopModel, DEFAULT_FLOPS

__all__ = ["CostModel", "WorkCounts", "count_work", "FlopModel", "DEFAULT_FLOPS"]
