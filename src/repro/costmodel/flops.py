"""Floating-point operation counts for the GFLOPS columns of Tables 2–6.

The paper determined flops "by using the instruction counters of the Origin
2000 ... for a single-processor run", then divided by parallel step time.  We
do the analogous thing: count the arithmetic the kernels perform per step
(from exact pair/term counts) and divide by simulated step time.

The per-interaction constants below are calibrated so that ApoA-I lands near
the paper's 2.74 Gflop/step (57.1 s/step at 0.048 GFLOPS on one ASCI-Red
processor); they are consistent with a hand count of the switching LJ +
shifted Coulomb inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlopModel", "DEFAULT_FLOPS"]


@dataclass(frozen=True)
class FlopModel:
    """Flops per unit of each kernel's work."""

    per_pair: float = 72.0  # LJ + Coulomb + switching on one in-range pair
    per_candidate: float = 0.5  # amortized pairlist distance check
    per_bond: float = 30.0
    per_angle: float = 75.0
    per_dihedral: float = 160.0
    per_improper: float = 140.0
    per_atom_integration: float = 40.0

    def step_flops(self, counts: "WorkCounts") -> float:  # noqa: F821
        """Total flops of one MD step given exact work counts."""
        return (
            self.per_pair * counts.nonbonded_pairs
            + self.per_candidate * counts.candidate_pairs
            + self.per_bond * counts.bonds
            + self.per_angle * counts.angles
            + self.per_dihedral * counts.dihedrals
            + self.per_improper * counts.impropers
            + self.per_atom_integration * counts.atoms
        )


DEFAULT_FLOPS = FlopModel()
