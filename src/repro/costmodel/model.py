"""Execution-cost model calibrated to the paper's published numbers.

The decisive property for reproducing the paper's scaling curves is the
*relative* cost of every schedulable piece of work: non-bonded pair blocks,
bonded term groups, per-patch integration, and messaging (the machine model
covers the last).  We anchor absolute scale to the paper's own
single-processor audit (Table 1, "Ideal" row, ApoA-I on ASCI-Red):

=============  ============  =============================
Component      Time (s)      Our unit cost derivation
=============  ============  =============================
Non-bonded     52.44         / exact in-cutoff pair count (+ candidate checks)
Bonds          3.16          / weighted bonded-term count
Integration    1.44          / atom count
=============  ============  =============================

All costs are in *reference seconds* (one ASCI-Red CPU); the scheduler
multiplies by each machine's ``cpu_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.cells import count_pairs_within
from repro.md.nonbonded import count_interacting_pairs
from repro.md.system import MolecularSystem

__all__ = [
    "WorkCounts",
    "CostModel",
    "count_work",
    "block_pair_counts",
    "estimate_block_costs",
    "PAPER_APOA1_SECONDS",
]

#: Table 1 "Ideal" single-processor decomposition for ApoA-I (seconds/step).
PAPER_APOA1_SECONDS = {"nonbonded": 52.44, "bonded": 3.16, "integration": 1.44}

#: Relative cost weights of the four bonded-term kinds (a dihedral costs
#: roughly four bonds; consistent with kernel arithmetic counts).
_BOND_WEIGHTS = {"bond": 1.0, "angle": 2.0, "dihedral": 4.0, "improper": 3.5}

#: Ratio of the cost of one in-cutoff pair to one out-of-cutoff candidate
#: check (distance computation + compare only).
_CANDIDATE_RATIO = 8.0


@dataclass(frozen=True)
class WorkCounts:
    """Exact per-step work for one system under one decomposition."""

    atoms: int
    nonbonded_pairs: int
    candidate_pairs: int
    bonds: int
    angles: int
    dihedrals: int
    impropers: int

    @property
    def weighted_bonded(self) -> float:
        """Bonded term count weighted by per-kind relative cost."""
        return (
            _BOND_WEIGHTS["bond"] * self.bonds
            + _BOND_WEIGHTS["angle"] * self.angles
            + _BOND_WEIGHTS["dihedral"] * self.dihedrals
            + _BOND_WEIGHTS["improper"] * self.impropers
        )


def count_work(system: MolecularSystem, decomposition) -> WorkCounts:
    """Measure exact work counts for ``system`` under ``decomposition``.

    ``decomposition`` provides ``patch_atoms`` (list of atom-index arrays),
    ``self_patches()`` and ``neighbor_pairs()`` (see
    :class:`repro.core.decomposition.SpatialDecomposition`).  Candidate
    counts are pure arithmetic over patch sizes; the in-cutoff pair count
    uses the chunked cell-grid enumeration
    (:func:`repro.md.cells.count_pairs_within`), which equals the sum over
    self/neighbour patch blocks because the patch edge is at least one
    cutoff — every in-cutoff pair lies in exactly one block.  Memory stays
    bounded even for the 206,617-atom BC1 system, without the former
    per-block O(n²) Python loop (see ``_count_work_blocked``).
    """
    n_candidates = 0
    for p in decomposition.self_patches():
        m = len(decomposition.patch_atoms[p])
        n_candidates += m * (m - 1) // 2
    for pa, pb in decomposition.neighbor_pairs():
        n_candidates += len(decomposition.patch_atoms[pa]) * len(
            decomposition.patch_atoms[pb]
        )
    n_pairs = count_pairs_within(
        system.positions, system.box, decomposition.cutoff
    )
    topo = system.topology
    return WorkCounts(
        atoms=system.n_atoms,
        nonbonded_pairs=int(n_pairs),
        candidate_pairs=int(n_candidates),
        bonds=topo.n_bonds,
        angles=topo.n_angles,
        dihedrals=topo.n_dihedrals,
        impropers=topo.n_impropers,
    )


@dataclass(frozen=True)
class CostModel:
    """Unit costs in reference-machine seconds."""

    t_pair: float
    t_candidate: float
    t_bonded_unit: float  # per weighted bonded-term unit
    t_atom_integration: float

    @classmethod
    def calibrated(
        cls,
        counts: WorkCounts,
        nonbonded_s: float = PAPER_APOA1_SECONDS["nonbonded"],
        bonded_s: float = PAPER_APOA1_SECONDS["bonded"],
        integration_s: float = PAPER_APOA1_SECONDS["integration"],
    ) -> "CostModel":
        """Fit unit costs so one full step costs the published seconds."""
        if counts.nonbonded_pairs <= 0:
            raise ValueError("cannot calibrate on a system with no pairs")
        denom = counts.nonbonded_pairs + counts.candidate_pairs / _CANDIDATE_RATIO
        t_pair = nonbonded_s / denom
        weighted = max(counts.weighted_bonded, 1.0)
        return cls(
            t_pair=t_pair,
            t_candidate=t_pair / _CANDIDATE_RATIO,
            t_bonded_unit=bonded_s / weighted,
            t_atom_integration=integration_s / max(counts.atoms, 1),
        )

    # ------------------------------------------------------------------ #
    def nonbonded_cost(self, n_pairs: float, n_candidates: float) -> float:
        """Cost of one non-bonded compute execution."""
        return self.t_pair * n_pairs + self.t_candidate * n_candidates

    def bonded_cost(
        self, bonds: float, angles: float, dihedrals: float, impropers: float
    ) -> float:
        """Cost of one bonded compute execution."""
        weighted = (
            _BOND_WEIGHTS["bond"] * bonds
            + _BOND_WEIGHTS["angle"] * angles
            + _BOND_WEIGHTS["dihedral"] * dihedrals
            + _BOND_WEIGHTS["improper"] * impropers
        )
        return self.t_bonded_unit * weighted

    def integration_cost(self, n_atoms: float) -> float:
        """Cost of one patch integration (per step)."""
        return self.t_atom_integration * n_atoms

    def sequential_step_cost(self, counts: WorkCounts) -> float:
        """Modeled single-processor step time (reference seconds)."""
        return (
            self.nonbonded_cost(counts.nonbonded_pairs, counts.candidate_pairs)
            + self.bonded_cost(
                counts.bonds, counts.angles, counts.dihedrals, counts.impropers
            )
            + self.integration_cost(counts.atoms)
        )


def block_pair_counts(
    positions: np.ndarray,
    box: np.ndarray,
    cutoff: float,
    atoms_a: np.ndarray,
    atoms_b: np.ndarray | None = None,
) -> tuple[int, int]:
    """``(in_cutoff_pairs, candidate_pairs)`` of one compute block.

    The single pair-counting path every cost estimate routes through:
    ``atoms_b=None`` means the self block of ``atoms_a`` (``m(m-1)/2``
    candidates), otherwise the ``a``×``b`` cross block.  Keeping this in one
    place is what guarantees :func:`estimate_block_costs` (the parallel
    engine's WorkDB priors) and :func:`_count_work_blocked` (the audit-table
    reference) can never disagree on what a block costs.
    """
    if atoms_b is None:
        m = len(atoms_a)
        n_cand = m * (m - 1) // 2
        n_pairs = count_interacting_pairs(positions[atoms_a], None, box, cutoff)
    else:
        n_cand = len(atoms_a) * len(atoms_b)
        n_pairs = count_interacting_pairs(
            positions[atoms_a], positions[atoms_b], box, cutoff
        )
    return int(n_pairs), int(n_cand)


def estimate_block_costs(
    positions: np.ndarray,
    box: np.ndarray,
    cutoff: float,
    buckets: list[np.ndarray],
    tasks,
    model: CostModel | None = None,
) -> np.ndarray:
    """Measured relative cost of each self/pair compute block.

    ``tasks`` is a sequence of ``(a, b)`` bucket indices (``a == b`` marks a
    self block); ``buckets`` maps bucket index to atom indices.  Each task's
    cost combines its exact in-cutoff pair count — the measurement-based
    seeding of the paper's load balancing (§2.2) — with its candidate-check
    count at the model's pair/candidate cost ratio.  With no ``model`` the
    unit is one in-cutoff pair.

    The real-parallel engine (:mod:`repro.md.parallel`) uses these estimates
    for its static block assignment: contiguous runs of tasks with near-equal
    summed cost, one per worker.
    """
    if model is not None:
        t_pair, t_cand = model.t_pair, model.t_candidate
    else:
        t_pair, t_cand = 1.0, 1.0 / _CANDIDATE_RATIO
    costs = np.zeros(len(tasks), dtype=np.float64)
    for t, (a, b) in enumerate(tasks):
        n_pairs, n_cand = block_pair_counts(
            positions, box, cutoff, buckets[a], None if a == b else buckets[b]
        )
        costs[t] = t_pair * n_pairs + t_cand * n_cand
    return costs


def _count_pairs_blocked(
    pos_a: np.ndarray, pos_b: np.ndarray | None, box: np.ndarray, cutoff: float
) -> int:  # pragma: no cover - retained for API compatibility
    return count_interacting_pairs(pos_a, pos_b, box, cutoff)


def _count_work_blocked(system: MolecularSystem, decomposition) -> WorkCounts:
    """Former per-block implementation of :func:`count_work`.

    Kept as the readable specification; the equivalence test in
    ``tests/test_costmodel/test_model.py`` asserts :func:`count_work`
    produces identical :class:`WorkCounts`.
    """
    pos = system.positions
    box = system.box
    cutoff = decomposition.cutoff
    n_pairs = 0
    n_candidates = 0
    for p in decomposition.self_patches():
        p_pairs, p_cand = block_pair_counts(
            pos, box, cutoff, decomposition.patch_atoms[p]
        )
        n_pairs += p_pairs
        n_candidates += p_cand
    for pa, pb in decomposition.neighbor_pairs():
        p_pairs, p_cand = block_pair_counts(
            pos,
            box,
            cutoff,
            decomposition.patch_atoms[pa],
            decomposition.patch_atoms[pb],
        )
        n_pairs += p_pairs
        n_candidates += p_cand
    topo = system.topology
    return WorkCounts(
        atoms=system.n_atoms,
        nonbonded_pairs=int(n_pairs),
        candidate_pairs=int(n_candidates),
        bonds=topo.n_bonds,
        angles=topo.n_angles,
        dihedrals=topo.n_dihedrals,
        impropers=topo.n_impropers,
    )
