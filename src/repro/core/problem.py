"""Reusable decomposition + descriptor bundle.

Building descriptors requires exact pair counting over every patch pair —
seconds of work for the 92k/206k-atom benchmarks.  None of it depends on the
processor count or machine model, so benchmark sweeps build one
:class:`DecomposedProblem` per (system, grainsize/bonded configuration) and
run :class:`~repro.core.simulation.ParallelSimulation` against it for every
processor count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.computes import (
    ComputeDescriptor,
    GrainsizeConfig,
    build_bonded_computes,
    build_nonbonded_computes,
)
from repro.core.decomposition import BondedAssignment, SpatialDecomposition
from repro.costmodel.model import CostModel, WorkCounts
from repro.md.system import MolecularSystem

__all__ = ["DecomposedProblem"]


@dataclass
class DecomposedProblem:
    """Everything about a system's parallel structure that is independent of
    the machine and processor count."""

    system: MolecularSystem
    cutoff: float
    grainsize: GrainsizeConfig
    split_bonded: bool
    cost_model: CostModel
    decomposition: SpatialDecomposition
    assignment: BondedAssignment
    nb_descriptors: list[ComputeDescriptor]
    bonded_descriptors: list[ComputeDescriptor]
    counts: WorkCounts

    @classmethod
    def build(
        cls,
        system: MolecularSystem,
        cost_model: CostModel,
        cutoff: float = 12.0,
        dims: tuple[int, int, int] | None = None,
        grainsize: GrainsizeConfig | None = None,
        split_bonded: bool = True,
    ) -> "DecomposedProblem":
        """Decompose a system and build all compute descriptors."""
        grainsize = grainsize or GrainsizeConfig()
        decomposition = SpatialDecomposition(system, cutoff, dims)
        assignment = decomposition.assign_bonded_terms()
        nb = build_nonbonded_computes(decomposition, cost_model, grainsize)
        bonded = build_bonded_computes(
            decomposition,
            assignment,
            cost_model,
            split_intra_inter=split_bonded,
            index_offset=len(nb),
            grainsize=grainsize,
        )
        topo = system.topology
        counts = WorkCounts(
            atoms=system.n_atoms,
            nonbonded_pairs=sum(d.n_pairs for d in nb),
            candidate_pairs=sum(d.n_candidates for d in nb),
            bonds=topo.n_bonds,
            angles=topo.n_angles,
            dihedrals=topo.n_dihedrals,
            impropers=topo.n_impropers,
        )
        return cls(
            system=system,
            cutoff=cutoff,
            grainsize=grainsize,
            split_bonded=split_bonded,
            cost_model=cost_model,
            decomposition=decomposition,
            assignment=assignment,
            nb_descriptors=nb,
            bonded_descriptors=bonded,
            counts=counts,
        )

    @property
    def descriptors(self) -> list[ComputeDescriptor]:
        """All compute descriptors (non-bonded then bonded)."""
        return self.nb_descriptors + self.bonded_descriptors
