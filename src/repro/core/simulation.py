"""The parallel-simulation driver (paper §3.1–§3.2).

Orchestrates one NAMD-style run on the simulated machine:

1. decompose space into patches; assign bonded terms (§3);
2. build compute descriptors with cost-model loads and grainsize splitting
   (§4.2.1–2);
3. *static placement*: patches by recursive coordinate bisection, computes
   on the processor of their anchor patch (§3.2, stage 1);
4. run a measurement phase; collect the LB database; apply the greedy +
   refinement strategies; rebuild the object graph at the new placement;
   repeat per the LB schedule (§3.2, stages 2–3);
5. report steady-state per-step time from the final phase.

Between phases the chare graph is rebuilt rather than migrated in place;
the paper's steady-state step times likewise exclude the LB pause itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.balancer.problem import LBProblem, placement_stats
from repro.balancer.rcb import recursive_coordinate_bisection
from repro.balancer.refine import refine_strategy
from repro.balancer.strategies import STRATEGIES, solve
from repro.core.chares import (
    BondedComputeChare,
    HomePatchChare,
    NonbondedComputeChare,
    ProxyPatchChare,
)
from repro.core.computes import ComputeDescriptor, GrainsizeConfig
from repro.core.numeric import NumericBackend
from repro.costmodel.flops import DEFAULT_FLOPS, FlopModel
from repro.costmodel.model import CostModel, WorkCounts
from repro.md.nonbonded import NonbondedOptions
from repro.md.system import MolecularSystem
from repro.runtime.checkpoint import (
    BackendState,
    ChareCheckpoint,
    Checkpoint,
    DoubleCheckpointStore,
    RecoveryEvent,
    RecoveryStats,
    restore_chare,
    snapshot_chare,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.machine import ASCI_RED, MachineModel
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import SummaryProfile, TraceLog

__all__ = [
    "SimulationConfig",
    "StepTimings",
    "PhaseResult",
    "SimulationResult",
    "ParallelSimulation",
    "DEFAULT_COST_MODEL",
]

#: Cost model calibrated on the ApoA-I benchmark against the paper's Table 1
#: single-processor decomposition (see ``CostModel.calibrated`` and the
#: regression test ``tests/test_costmodel/test_calibration.py``).  Frozen
#: here so every simulation shares one set of physical unit costs without
#: rebuilding the 92,224-atom system.
DEFAULT_COST_MODEL = CostModel(
    t_pair=5.642e-07,
    t_candidate=7.053e-08,
    t_bonded_unit=1.579e-05,
    t_atom_integration=1.561e-05,
)


@dataclass
class SimulationConfig:
    """Everything configurable about a parallel run."""

    n_procs: int
    machine: MachineModel = ASCI_RED
    cutoff: float = 12.0
    dims: tuple[int, int, int] | None = None
    grainsize: GrainsizeConfig = field(default_factory=GrainsizeConfig)
    #: §4.2.2 bonded split (intra migratable / inter pinned); False emulates
    #: the earlier single-object design for the ablation benchmark
    split_bonded: bool = True
    #: §4.2.3 multicast optimization
    optimized_multicast: bool = True
    #: strategies applied between phases; names from
    #: ``repro.balancer.STRATEGIES`` plus the combo "greedy+refine"
    lb_schedule: tuple[str, ...] = ("greedy+refine", "refine")
    steps_per_phase: int = 6
    #: how many of each phase's final steps enter the timing average
    measure_last: int = 4
    #: run real kernels + integration (validation mode, small systems only)
    numeric: bool = False
    dt: float = 1.0
    #: keep full Projections-style traces for the final phase
    trace_final_phase: bool = False
    #: balance on measured loads (True, the paper's approach) or on
    #: cost-model loads (False)
    use_measured_loads: bool = True
    #: per-processor CPU slowdown factors (heterogeneous / externally
    #: loaded machine, ref [3]); None = homogeneous
    proc_speed_factors: "np.ndarray | None" = None
    #: deterministic fault schedule (processor death, transient slowdowns,
    #: message drop/delay/duplicate); None = fault-free run
    fault_plan: "FaultPlan | None" = None
    #: rounds between in-memory double checkpoints; 0 = checkpoint only at
    #: phase start (a baseline cut is always taken when resilience is on)
    checkpoint_interval: int = 0
    #: simulated seconds from a processor death to its detection (the
    #: keep-alive timeout of the failure detector)
    failure_detection_timeout: float = 5e-4

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if not (0 < self.measure_last <= self.steps_per_phase):
            raise ValueError("measure_last must be in 1..steps_per_phase")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.failure_detection_timeout <= 0:
            raise ValueError("failure_detection_timeout must be positive")
        for name in self.lb_schedule:
            base_names = name.split("+")
            for b in base_names:
                if b not in STRATEGIES:
                    raise ValueError(f"unknown LB strategy {b!r}")


@dataclass
class StepTimings:
    """Per-step completion times of one phase."""

    completion_times: list[float]
    measure_last: int

    @property
    def step_times(self) -> np.ndarray:
        """Intervals between consecutive step completions."""
        t = np.asarray(self.completion_times)
        return np.diff(t)

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds/step.

        Averages up to ``measure_last`` *interior* step intervals: the first
        interval carries the pipeline fill and the last one omits the next
        round's position sends (there is no next round), so both are
        excluded whenever enough intervals exist.
        """
        diffs = self.step_times
        if len(diffs) == 0:
            return float(self.completion_times[-1]) if self.completion_times else 0.0
        interior = diffs[1:-1] if len(diffs) >= 3 else diffs
        k = min(self.measure_last, len(interior))
        return float(interior[-k:].mean())


@dataclass
class PhaseResult:
    """Measurements of one placement phase."""

    phase: int
    strategy_applied: str | None  # strategy that produced this placement
    timings: StepTimings
    summary: SummaryProfile
    placement: dict[int, int]
    stats: dict[str, float]
    trace: TraceLog | None
    measured_loads: dict[int, float]  # descriptor index -> per-step seconds
    background_per_step: np.ndarray
    #: numeric-mode backend (real positions/velocities/energies); None in
    #: timing mode
    backend: "NumericBackend | None" = None
    #: fault-tolerance accounting; None when the phase ran without the
    #: resilience layer
    recovery: "RecoveryStats | None" = None
    #: processors lost (cumulatively) by the end of this phase
    dead_procs: tuple[int, ...] = ()


@dataclass
class SimulationResult:
    """Output of a full run (all phases)."""

    config: SimulationConfig
    phases: list[PhaseResult]
    counts: WorkCounts
    sequential_reference_s: float
    flops_per_step: float

    @property
    def final(self) -> PhaseResult:
        """The last (converged) phase."""
        return self.phases[-1]

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds/step of the final phase."""
        return self.final.timings.time_per_step

    @property
    def speedup(self) -> float:
        """Sequential reference time / final time per step."""
        return self.sequential_reference_s / self.time_per_step

    @property
    def gflops(self) -> float:
        """Modeled flop rate at the final step time."""
        return self.flops_per_step / self.time_per_step / 1e9

    @property
    def recovery(self) -> RecoveryStats:
        """Aggregate fault-tolerance accounting across all phases."""
        total = RecoveryStats()
        for ph in self.phases:
            if ph.recovery is not None:
                total = total.merge(ph.recovery)
        return total

    @property
    def dead_procs(self) -> tuple[int, ...]:
        """Processors lost by the end of the run."""
        return self.phases[-1].dead_procs if self.phases else ()


@dataclass
class _ChareGraph:
    """All chares of one phase, as wired onto a scheduler."""

    patch_oid: dict[int, int]
    patch_chares: dict[int, HomePatchChare]
    compute_oid: dict[int, int]  # descriptor index -> object id
    compute_proc: dict[int, int]  # descriptor index -> processor
    oid_to_desc: dict[int, int]
    proxy_chares: dict[tuple[int, int], ProxyPatchChare]


class ParallelSimulation:
    """Builds and runs the full NAMD-style parallel structure."""

    def __init__(
        self,
        system: MolecularSystem,
        config: SimulationConfig,
        cost_model: CostModel | None = None,
        flop_model: FlopModel = DEFAULT_FLOPS,
        problem: "DecomposedProblem | None" = None,
    ) -> None:
        """``problem`` may carry a prebuilt :class:`DecomposedProblem`
        (shared across processor counts in a sweep); it must match the
        config's cutoff/grainsize/bonded settings or behaviour is undefined.
        """
        from repro.core.problem import DecomposedProblem

        self.system = system
        self.config = config
        self.cost_model = cost_model or (
            problem.cost_model if problem is not None else DEFAULT_COST_MODEL
        )
        self.flop_model = flop_model

        if problem is None:
            problem = DecomposedProblem.build(
                system,
                self.cost_model,
                cutoff=config.cutoff,
                dims=config.dims,
                grainsize=config.grainsize,
                split_bonded=config.split_bonded,
            )
        self.problem_setup = problem
        self.decomposition = problem.decomposition
        self.assignment = problem.assignment
        self.nb_descriptors = problem.nb_descriptors
        self.bonded_descriptors = problem.bonded_descriptors
        self.descriptors: list[ComputeDescriptor] = problem.descriptors
        self.counts = problem.counts

        # stage-1 static placement (§3.2)
        centers = np.array(
            [self.decomposition.coords(p) for p in range(self.decomposition.n_patches)],
            dtype=np.float64,
        )
        weights = np.array(
            [self.decomposition.patch_size(p) for p in range(self.decomposition.n_patches)],
            dtype=np.float64,
        )
        self.patch_proc = recursive_coordinate_bisection(
            centers, np.maximum(weights, 1.0), config.n_procs
        )
        self.initial_placement = {
            d.index: int(self.patch_proc[d.home_patch]) for d in self.descriptors
        }
        self._reset_fault_state()

    def _reset_fault_state(self) -> None:
        """Per-run resilience state: which processors have died so far and
        where each patch is homed on the (possibly degraded) machine."""
        self._dead_procs: set[int] = set()
        self._patch_proc_now = np.array(self.patch_proc, dtype=np.int64).copy()
        #: sum of completed phases' end times: converts the global fault-plan
        #: clock into each phase's local clock
        self._global_offset = 0.0

    # ------------------------------------------------------------------ #
    @property
    def sequential_reference_s(self) -> float:
        """Modeled one-processor step time on this machine (no messaging)."""
        return (
            self.cost_model.sequential_step_cost(self.counts)
            * self.config.machine.cpu_factor
        )

    @property
    def flops_per_step(self) -> float:
        """Flops of one MD step under the flop model."""
        return self.flop_model.step_flops(self.counts)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all phases of the LB schedule; returns all measurements."""
        self._reset_fault_state()
        placement = dict(self.initial_placement)
        schedule: list[str | None] = list(self.config.lb_schedule) + [None]
        phases: list[PhaseResult] = []
        strategy_applied: str | None = "static"
        for i, next_strategy in enumerate(schedule):
            trace_full = self.config.trace_final_phase and next_strategy is None
            phase = self._run_phase(i, strategy_applied, placement, trace_full)
            phases.append(phase)
            if next_strategy is not None:
                placement = self._apply_strategy(next_strategy, phase)
                strategy_applied = next_strategy
        return SimulationResult(
            config=self.config,
            phases=phases,
            counts=self.counts,
            sequential_reference_s=self.sequential_reference_s,
            flops_per_step=self.flops_per_step,
        )

    def run_phase_only(
        self, placement: dict[int, int] | None = None, trace_full: bool = False
    ) -> PhaseResult:
        """Run a single phase at a given placement (analysis/benchmarks)."""
        self._reset_fault_state()
        return self._run_phase(
            0, "static", placement or dict(self.initial_placement), trace_full
        )

    # ------------------------------------------------------------------ #
    def _run_phase(
        self,
        phase_index: int,
        strategy_applied: str | None,
        placement: dict[int, int],
        trace_full: bool,
    ) -> PhaseResult:
        if self.config.fault_plan is None and self.config.checkpoint_interval == 0:
            return self._run_phase_simple(
                phase_index, strategy_applied, placement, trace_full
            )
        return self._run_phase_resilient(
            phase_index, strategy_applied, placement, trace_full
        )

    def _make_backend(self) -> "NumericBackend | None":
        cfg = self.config
        if not cfg.numeric:
            return None
        return NumericBackend(
            self.system, NonbondedOptions(cutoff=cfg.cutoff), dt=cfg.dt
        )

    def _build_chare_graph(
        self,
        scheduler: Scheduler,
        placement: dict[int, int],
        backend: "NumericBackend | None",
        n_rounds: int,
    ) -> "_ChareGraph":
        """Create and wire all chares on ``scheduler`` for one phase.

        Homes come from ``self._patch_proc_now`` (equal to the static RCB map
        until a failure re-homes patches onto survivors); migratable computes
        from ``placement``; non-migratables follow their anchor patch.
        """
        decomp = self.decomposition
        patch_proc = self._patch_proc_now

        # --- create home patches -------------------------------------- #
        patch_oid: dict[int, int] = {}
        patch_chares: dict[int, HomePatchChare] = {}
        for p in range(decomp.n_patches):
            atoms = decomp.patch_atoms[p]
            chare = HomePatchChare(
                p,
                atoms,
                self.cost_model.integration_cost(len(atoms)),
                n_rounds,
                backend,
            )
            patch_oid[p] = scheduler.register(chare, int(patch_proc[p]))
            patch_chares[p] = chare

        # --- create computes ------------------------------------------ #
        compute_proc: dict[int, int] = {}
        compute_oid: dict[int, int] = {}
        oid_to_desc: dict[int, int] = {}
        for d in self.descriptors:
            if d.migratable:
                proc = int(placement.get(d.index, patch_proc[d.home_patch]))
            else:
                proc = int(patch_proc[d.home_patch])
            compute_proc[d.index] = proc
            if d.kind in ("nb_self", "nb_pair"):
                atoms_a = decomp.patch_atoms[d.patches[0]]
                atoms_b = (
                    decomp.patch_atoms[d.patches[1]] if len(d.patches) > 1 else None
                )
                chare: NonbondedComputeChare | BondedComputeChare = (
                    NonbondedComputeChare(
                        d.patches, d.load, d.part, d.n_parts, backend, atoms_a, atoms_b
                    )
                )
            else:
                chare = BondedComputeChare(
                    d.patches, d.load, d.migratable, backend, d.term_indices
                )
            oid = scheduler.register(chare, proc)
            compute_oid[d.index] = oid
            oid_to_desc[oid] = d.index

        # --- create proxies and wire everything ------------------------ #
        proxy_oid: dict[tuple[int, int], int] = {}
        proxy_chares: dict[tuple[int, int], ProxyPatchChare] = {}
        for d in self.descriptors:
            proc = compute_proc[d.index]
            for q in d.patches:
                if int(patch_proc[q]) != proc and (q, proc) not in proxy_oid:
                    proxy = ProxyPatchChare(
                        q, patch_oid[q], decomp.patch_size(q)
                    )
                    proxy_oid[(q, proc)] = scheduler.register(proxy, proc)
                    proxy_chares[(q, proc)] = proxy

        for d in self.descriptors:
            proc = compute_proc[d.index]
            cid = compute_oid[d.index]
            compute = scheduler.object(cid)
            for q in d.patches:
                if int(patch_proc[q]) == proc:
                    home = patch_chares[q]
                    home.local_compute_ids.append(cid)
                    compute.deposit_ids.append(patch_oid[q])
                else:
                    proxy = proxy_chares[(q, proc)]
                    proxy.local_compute_ids.append(cid)
                    compute.deposit_ids.append(proxy_oid[(q, proc)])

        for p in range(decomp.n_patches):
            home = patch_chares[p]
            home.proxy_ids = [
                oid for (q, _proc), oid in proxy_oid.items() if q == p
            ]
            home.expected_contributions = len(home.local_compute_ids) + len(
                home.proxy_ids
            )
        for proxy in proxy_chares.values():
            proxy.expected_deposits = len(proxy.local_compute_ids)

        return _ChareGraph(
            patch_oid=patch_oid,
            patch_chares=patch_chares,
            compute_oid=compute_oid,
            compute_proc=compute_proc,
            oid_to_desc=oid_to_desc,
            proxy_chares=proxy_chares,
        )

    def _collect_phase(
        self,
        phase_index: int,
        strategy_applied: str | None,
        placement: dict[int, int],
        trace_full: bool,
        scheduler: Scheduler,
        graph: "_ChareGraph",
        completion_times: list[float],
        backend: "NumericBackend | None",
        recovery: "RecoveryStats | None" = None,
    ) -> PhaseResult:
        cfg = self.config
        snapshot = scheduler.lb_db.snapshot()
        measured_steps = max(snapshot.measured_steps, 1)
        measured_loads = {
            graph.oid_to_desc[oid]: stats.load / measured_steps
            for oid, stats in snapshot.objects.items()
            if oid in graph.oid_to_desc
        }
        background = np.zeros(cfg.n_procs)
        for proc, load in snapshot.background_load.items():
            background[proc] = load / measured_steps

        problem = self._build_problem(placement, measured_loads, background)
        stats = placement_stats(problem, placement)

        return PhaseResult(
            phase=phase_index,
            strategy_applied=strategy_applied,
            timings=StepTimings(completion_times, cfg.measure_last),
            summary=scheduler.trace.summary(),
            placement=dict(placement),
            stats=stats,
            trace=scheduler.trace if trace_full else None,
            measured_loads=measured_loads,
            background_per_step=background,
            backend=backend,
            recovery=recovery,
            dead_procs=tuple(sorted(self._dead_procs)),
        )

    def _run_phase_simple(
        self,
        phase_index: int,
        strategy_applied: str | None,
        placement: dict[int, int],
        trace_full: bool,
    ) -> PhaseResult:
        cfg = self.config
        scheduler = Scheduler(
            cfg.n_procs,
            cfg.machine,
            trace_full=trace_full,
            optimized_multicast=cfg.optimized_multicast,
            proc_speed_factors=cfg.proc_speed_factors,
        )
        backend = self._make_backend()
        n_steps = cfg.steps_per_phase
        graph = self._build_chare_graph(scheduler, placement, backend, n_steps)

        # --- drive the steps ------------------------------------------- #
        n_patches = self.decomposition.n_patches
        completion: list[float] = []
        round_counts: dict[int, int] = {}

        # Instrumentation covers every round: per-round work is identical
        # (positions are fixed in timing mode), so totals divide exactly by
        # the round count.  Gating instrumentation to a tail window instead
        # would silently drop pipelined work that executes before the
        # slowest patch finishes the preceding round.
        def on_control(time: float, payload) -> None:
            tag, _patch, rnd = payload
            if tag != "step_done":
                return
            round_counts[rnd] = round_counts.get(rnd, 0) + 1
            if round_counts[rnd] == n_patches:
                completion.append(time)
                scheduler.lb_db.mark_step()

        scheduler.set_control_handler(on_control)
        for p in range(n_patches):
            scheduler.inject(
                graph.patch_oid[p], "start", {}, size_bytes=0.0, at_time=0.0
            )
        scheduler.run()
        if len(completion) != n_steps:
            raise RuntimeError(
                f"phase {phase_index}: {len(completion)}/{n_steps} steps completed "
                "(protocol deadlock)"
            )

        return self._collect_phase(
            phase_index,
            strategy_applied,
            placement,
            trace_full,
            scheduler,
            graph,
            completion,
            backend,
        )

    # ------------------------------------------------------------------ #
    # resilient execution: checkpointing, failure detection, recovery
    # ------------------------------------------------------------------ #
    def _run_phase_resilient(
        self,
        phase_index: int,
        strategy_applied: str | None,
        placement: dict[int, int],
        trace_full: bool,
    ) -> PhaseResult:
        """Segmented phase execution with double checkpointing.

        The phase's rounds are executed in segments of ``checkpoint_interval``
        rounds.  Each segment ends at quiescence — a consistent global cut —
        where every chare's state is checkpointed to its processor and a
        buddy.  If processors die mid-segment the protocol stalls, the
        failure detector notices, and recovery rebuilds the chare graph on
        the survivors (forced refinement pass included), restores state from
        the last surviving checkpoint, and replays.
        """
        cfg = self.config
        plan = (
            cfg.fault_plan.shifted(self._global_offset)
            if cfg.fault_plan is not None
            else None
        )
        backend = self._make_backend()
        n_steps = cfg.steps_per_phase
        interval = cfg.checkpoint_interval if cfg.checkpoint_interval > 0 else n_steps
        n_patches = self.decomposition.n_patches

        store = DoubleCheckpointStore(cfg.n_procs)
        recovery = RecoveryStats()
        completion: dict[int, float] = {}
        round_counts: dict[int, int] = {}
        placement = dict(placement)
        sched_ref: list[Scheduler] = []

        def on_control(time: float, payload) -> None:
            tag, _patch, rnd = payload
            if tag != "step_done":
                return
            round_counts[rnd] = round_counts.get(rnd, 0) + 1
            if round_counts[rnd] == n_patches:
                completion[rnd] = time
                sched_ref[0].lb_db.mark_step()

        def new_scheduler(start_time: float) -> Scheduler:
            s = Scheduler(
                cfg.n_procs,
                cfg.machine,
                trace_full=trace_full,
                optimized_multicast=cfg.optimized_multicast,
                proc_speed_factors=cfg.proc_speed_factors,
                fault_plan=plan,
                initially_dead=set(self._dead_procs),
                start_time=start_time,
            )
            s.set_control_handler(on_control)
            sched_ref[:] = [s]
            return s

        def harvest(s: Scheduler) -> None:
            fs = s.fault_stats
            recovery.messages_dropped += fs["drops"]
            recovery.messages_delayed += fs["delays"]
            recovery.messages_duplicated += fs["duplicates"]
            recovery.messages_lost_to_dead += fs["dead_dropped"]

        scheduler = new_scheduler(0.0)
        graph = self._build_chare_graph(scheduler, placement, backend, n_steps)
        # baseline cut at round 0: the recovery floor for failures striking
        # before the first periodic checkpoint
        start_at = self._take_checkpoint(
            scheduler, graph, backend, store, recovery, 0, 0.0
        )
        resume_round = 0

        while True:
            target = min(resume_round + interval, n_steps)
            for chare in graph.patch_chares.values():
                chare.n_rounds = target
            for p in range(n_patches):
                scheduler.inject(
                    graph.patch_oid[p], "start", {}, size_bytes=0.0, at_time=start_at
                )
            end = scheduler.run()

            new_dead = scheduler.dead_procs - self._dead_procs
            if new_dead:
                harvest(scheduler)
                scheduler, graph, start_at, resume_round = self._recover(
                    scheduler,
                    plan,
                    placement,
                    backend,
                    store,
                    recovery,
                    new_dead,
                    completion,
                    round_counts,
                    n_steps,
                    new_scheduler,
                )
                continue

            done = max(completion) + 1 if completion else 0
            if done != target:
                raise RuntimeError(
                    f"phase {phase_index}: {done}/{target} rounds completed "
                    "(protocol deadlock)"
                )
            if target >= n_steps:
                harvest(scheduler)
                break
            cost = self._take_checkpoint(
                scheduler, graph, backend, store, recovery, target, end
            )
            resume_round = target
            start_at = end + cost

        self._global_offset += scheduler.now
        completion_times = [completion[r] for r in range(n_steps)]
        return self._collect_phase(
            phase_index,
            strategy_applied,
            placement,
            trace_full,
            scheduler,
            graph,
            completion_times,
            backend,
            recovery=recovery,
        )

    def _take_checkpoint(
        self,
        scheduler: Scheduler,
        graph: "_ChareGraph",
        backend: "NumericBackend | None",
        store: DoubleCheckpointStore,
        recovery: RecoveryStats,
        round_: int,
        time: float,
    ) -> float:
        """Checkpoint every chare to its owner + buddy; returns modeled cost.

        The cost is the slowest processor's pack + send + transit of its
        buddy-copy traffic — checkpointing is a barrier, so the max governs.
        Proxies are not checkpointed: at a quiescent cut they hold no state
        (deposit counters are zero) and recovery rebuilds them anyway.
        """
        cfg = self.config
        live = [p for p in range(cfg.n_procs) if p not in scheduler.dead_procs]
        chares: dict[tuple, ChareCheckpoint] = {}
        for p, chare in graph.patch_chares.items():
            owner = int(self._patch_proc_now[p])
            chares[("patch", p)] = ChareCheckpoint(
                ("patch", p),
                snapshot_chare(chare),
                owner,
                DoubleCheckpointStore.buddy_of(owner, live),
            )
        for idx, oid in graph.compute_oid.items():
            owner = graph.compute_proc[idx]
            chares[("compute", idx)] = ChareCheckpoint(
                ("compute", idx),
                snapshot_chare(scheduler.object(oid)),
                owner,
                DoubleCheckpointStore.buddy_of(owner, live),
            )
        cp = Checkpoint(
            round=round_,
            time=time,
            chares=chares,
            backend_state=(
                BackendState.capture(backend) if backend is not None else None
            ),
        )
        store.commit(cp)
        recovery.checkpoints_taken += 1

        m = cfg.machine
        cost = 0.0
        for p in live:
            b = cp.bytes_sent_from(p)
            if b:
                cost = max(
                    cost, m.pack_time(b) + m.send_overhead_s + m.transit_time(b)
                )
        recovery.checkpoint_time_s += cost
        return cost

    def _recover(
        self,
        scheduler: Scheduler,
        plan: "FaultPlan | None",
        placement: dict[int, int],
        backend: "NumericBackend | None",
        store: DoubleCheckpointStore,
        recovery: RecoveryStats,
        new_dead: set[int],
        completion: dict[int, float],
        round_counts: dict[int, int],
        n_steps: int,
        new_scheduler,
    ) -> tuple[Scheduler, "_ChareGraph", float, int]:
        """Rebuild the run on the surviving processors from the last cut."""
        cfg = self.config
        self._dead_procs |= new_dead
        dead = self._dead_procs

        failure_time = min(scheduler.failure_times[p] for p in new_dead)
        detected = failure_time + cfg.failure_detection_timeout
        t0 = max(scheduler.now, detected)
        rounds_done = max(completion) + 1 if completion else 0

        cp = store.recovery_checkpoint(set(dead))
        r0 = cp.round
        for r in [r for r in completion if r >= r0]:
            del completion[r]
        for r in [r for r in round_counts if r >= r0]:
            del round_counts[r]

        # re-home patches that lived on dead processors: the buddy holding
        # their checkpoint copy becomes the new home
        live = sorted(set(range(cfg.n_procs)) - dead)
        for p in range(self.decomposition.n_patches):
            if int(self._patch_proc_now[p]) in dead:
                buddy = cp.chares[("patch", p)].buddy
                self._patch_proc_now[p] = buddy if buddy not in dead else live[0]

        # pull computes off dead processors (non-migratables simply follow
        # their re-homed anchor patch), then force a refinement pass against
        # the degraded machine
        for d in self.descriptors:
            if not d.migratable:
                placement[d.index] = int(self._patch_proc_now[d.home_patch])
            elif placement.get(d.index, -1) in dead:
                placement[d.index] = int(self._patch_proc_now[d.home_patch])
        problem = self._build_problem(placement, {}, np.zeros(cfg.n_procs))
        placement.update(refine_strategy(problem))

        # modeled cost of shipping the lost chares' buddy copies to their
        # new processors (backend arrays are global shared state here)
        m = cfg.machine
        restore_bytes = sum(
            c.size_bytes for c in cp.chares.values() if c.owner in dead
        )
        restore_cost = (
            m.pack_time(restore_bytes)
            + m.send_overhead_s
            + m.transit_time(restore_bytes)
            if restore_bytes
            else 0.0
        )
        t_restart = t0 + restore_cost

        recovery.events.append(
            RecoveryEvent(
                procs=tuple(sorted(new_dead)),
                failure_time=failure_time,
                detected_time=detected,
                checkpoint_round=r0,
                rounds_done_at_failure=rounds_done,
                restore_cost_s=restore_cost,
                restart_time=t_restart,
            )
        )

        scheduler = new_scheduler(t_restart)
        graph = self._build_chare_graph(scheduler, placement, backend, n_steps)
        for (kind, key), cc in cp.chares.items():
            if kind == "patch":
                restore_chare(graph.patch_chares[key], cc.state)
            else:
                restore_chare(scheduler.object(graph.compute_oid[key]), cc.state)
        if backend is not None and cp.backend_state is not None:
            cp.backend_state.restore(backend)
        return scheduler, graph, t_restart, r0

    # ------------------------------------------------------------------ #
    def _build_problem(
        self,
        placement: dict[int, int],
        measured_loads: dict[int, float],
        background: np.ndarray,
    ) -> LBProblem:
        """The strategy-facing problem, routed through the shared
        measurement layer: descriptor cost-model loads become WorkDB
        *priors*, the phase's measured per-step loads become samples, and
        :func:`repro.instrument.build_lb_problem` assembles the
        :class:`LBProblem` exactly as it does for the real engine.
        ``prior_blend_samples=1`` preserves the historical semantics — one
        measured phase fully replaces the cost model."""
        from repro.instrument import WorkDB, build_lb_problem

        cfg = self.config
        patch_proc = self._patch_proc_now
        use_measured = cfg.use_measured_loads and measured_loads
        db = WorkDB(prior_blend_samples=1, calibrate_prior=False)
        task_ids = []
        for d in self.descriptors:
            if not d.migratable:
                continue
            task_ids.append(d.index)
            proc = int(placement.get(d.index, patch_proc[d.home_patch]))
            db.ensure_task(
                d.index,
                patches=d.patches,
                prior=d.load * cfg.machine.cpu_factor,
                owner=proc,
            )
            if use_measured and d.index in measured_loads:
                db.record(d.index, measured_loads[d.index])
        existing = set()
        for d in self.descriptors:
            if d.migratable:
                continue
            proc = int(patch_proc[d.home_patch])
            for q in d.patches:
                if int(patch_proc[q]) != proc:
                    existing.add((q, proc))
        return build_lb_problem(
            db,
            cfg.n_procs,
            patch_home={
                p: int(patch_proc[p]) for p in range(self.decomposition.n_patches)
            },
            existing_proxies=existing,
            background=background,
            dead_procs=frozenset(self._dead_procs),
            task_ids=task_ids,
        )

    def _apply_strategy(self, name: str, phase: PhaseResult) -> dict[int, int]:
        problem = self._build_problem(
            phase.placement, phase.measured_loads, phase.background_per_step
        )
        placement = dict(phase.placement)
        placement.update(solve(problem, name))
        return placement
