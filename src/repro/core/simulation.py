"""The parallel-simulation driver (paper §3.1–§3.2).

Orchestrates one NAMD-style run on the simulated machine:

1. decompose space into patches; assign bonded terms (§3);
2. build compute descriptors with cost-model loads and grainsize splitting
   (§4.2.1–2);
3. *static placement*: patches by recursive coordinate bisection, computes
   on the processor of their anchor patch (§3.2, stage 1);
4. run a measurement phase; collect the LB database; apply the greedy +
   refinement strategies; rebuild the object graph at the new placement;
   repeat per the LB schedule (§3.2, stages 2–3);
5. report steady-state per-step time from the final phase.

Between phases the chare graph is rebuilt rather than migrated in place;
the paper's steady-state step times likewise exclude the LB pause itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.balancer.greedy import greedy_strategy
from repro.balancer.problem import ComputeItem, LBProblem, placement_stats
from repro.balancer.rcb import recursive_coordinate_bisection
from repro.balancer.refine import refine_strategy
from repro.balancer.strategies import STRATEGIES
from repro.core.chares import (
    BondedComputeChare,
    HomePatchChare,
    NonbondedComputeChare,
    ProxyPatchChare,
)
from repro.core.computes import ComputeDescriptor, GrainsizeConfig
from repro.core.numeric import NumericBackend
from repro.costmodel.flops import DEFAULT_FLOPS, FlopModel
from repro.costmodel.model import CostModel, WorkCounts
from repro.md.nonbonded import NonbondedOptions
from repro.md.system import MolecularSystem
from repro.runtime.machine import ASCI_RED, MachineModel
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import SummaryProfile, TraceLog

__all__ = [
    "SimulationConfig",
    "StepTimings",
    "PhaseResult",
    "SimulationResult",
    "ParallelSimulation",
    "DEFAULT_COST_MODEL",
]

#: Cost model calibrated on the ApoA-I benchmark against the paper's Table 1
#: single-processor decomposition (see ``CostModel.calibrated`` and the
#: regression test ``tests/test_costmodel/test_calibration.py``).  Frozen
#: here so every simulation shares one set of physical unit costs without
#: rebuilding the 92,224-atom system.
DEFAULT_COST_MODEL = CostModel(
    t_pair=5.642e-07,
    t_candidate=7.053e-08,
    t_bonded_unit=1.579e-05,
    t_atom_integration=1.561e-05,
)


@dataclass
class SimulationConfig:
    """Everything configurable about a parallel run."""

    n_procs: int
    machine: MachineModel = ASCI_RED
    cutoff: float = 12.0
    dims: tuple[int, int, int] | None = None
    grainsize: GrainsizeConfig = field(default_factory=GrainsizeConfig)
    #: §4.2.2 bonded split (intra migratable / inter pinned); False emulates
    #: the earlier single-object design for the ablation benchmark
    split_bonded: bool = True
    #: §4.2.3 multicast optimization
    optimized_multicast: bool = True
    #: strategies applied between phases; names from
    #: ``repro.balancer.STRATEGIES`` plus the combo "greedy+refine"
    lb_schedule: tuple[str, ...] = ("greedy+refine", "refine")
    steps_per_phase: int = 6
    #: how many of each phase's final steps enter the timing average
    measure_last: int = 4
    #: run real kernels + integration (validation mode, small systems only)
    numeric: bool = False
    dt: float = 1.0
    #: keep full Projections-style traces for the final phase
    trace_final_phase: bool = False
    #: balance on measured loads (True, the paper's approach) or on
    #: cost-model loads (False)
    use_measured_loads: bool = True
    #: per-processor CPU slowdown factors (heterogeneous / externally
    #: loaded machine, ref [3]); None = homogeneous
    proc_speed_factors: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if not (0 < self.measure_last <= self.steps_per_phase):
            raise ValueError("measure_last must be in 1..steps_per_phase")
        for name in self.lb_schedule:
            base_names = name.split("+")
            for b in base_names:
                if b not in STRATEGIES:
                    raise ValueError(f"unknown LB strategy {b!r}")


@dataclass
class StepTimings:
    """Per-step completion times of one phase."""

    completion_times: list[float]
    measure_last: int

    @property
    def step_times(self) -> np.ndarray:
        """Intervals between consecutive step completions."""
        t = np.asarray(self.completion_times)
        return np.diff(t)

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds/step.

        Averages up to ``measure_last`` *interior* step intervals: the first
        interval carries the pipeline fill and the last one omits the next
        round's position sends (there is no next round), so both are
        excluded whenever enough intervals exist.
        """
        diffs = self.step_times
        if len(diffs) == 0:
            return float(self.completion_times[-1]) if self.completion_times else 0.0
        interior = diffs[1:-1] if len(diffs) >= 3 else diffs
        k = min(self.measure_last, len(interior))
        return float(interior[-k:].mean())


@dataclass
class PhaseResult:
    """Measurements of one placement phase."""

    phase: int
    strategy_applied: str | None  # strategy that produced this placement
    timings: StepTimings
    summary: SummaryProfile
    placement: dict[int, int]
    stats: dict[str, float]
    trace: TraceLog | None
    measured_loads: dict[int, float]  # descriptor index -> per-step seconds
    background_per_step: np.ndarray
    #: numeric-mode backend (real positions/velocities/energies); None in
    #: timing mode
    backend: "NumericBackend | None" = None


@dataclass
class SimulationResult:
    """Output of a full run (all phases)."""

    config: SimulationConfig
    phases: list[PhaseResult]
    counts: WorkCounts
    sequential_reference_s: float
    flops_per_step: float

    @property
    def final(self) -> PhaseResult:
        """The last (converged) phase."""
        return self.phases[-1]

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds/step of the final phase."""
        return self.final.timings.time_per_step

    @property
    def speedup(self) -> float:
        """Sequential reference time / final time per step."""
        return self.sequential_reference_s / self.time_per_step

    @property
    def gflops(self) -> float:
        """Modeled flop rate at the final step time."""
        return self.flops_per_step / self.time_per_step / 1e9


class ParallelSimulation:
    """Builds and runs the full NAMD-style parallel structure."""

    def __init__(
        self,
        system: MolecularSystem,
        config: SimulationConfig,
        cost_model: CostModel | None = None,
        flop_model: FlopModel = DEFAULT_FLOPS,
        problem: "DecomposedProblem | None" = None,
    ) -> None:
        """``problem`` may carry a prebuilt :class:`DecomposedProblem`
        (shared across processor counts in a sweep); it must match the
        config's cutoff/grainsize/bonded settings or behaviour is undefined.
        """
        from repro.core.problem import DecomposedProblem

        self.system = system
        self.config = config
        self.cost_model = cost_model or (
            problem.cost_model if problem is not None else DEFAULT_COST_MODEL
        )
        self.flop_model = flop_model

        if problem is None:
            problem = DecomposedProblem.build(
                system,
                self.cost_model,
                cutoff=config.cutoff,
                dims=config.dims,
                grainsize=config.grainsize,
                split_bonded=config.split_bonded,
            )
        self.problem_setup = problem
        self.decomposition = problem.decomposition
        self.assignment = problem.assignment
        self.nb_descriptors = problem.nb_descriptors
        self.bonded_descriptors = problem.bonded_descriptors
        self.descriptors: list[ComputeDescriptor] = problem.descriptors
        self.counts = problem.counts

        # stage-1 static placement (§3.2)
        centers = np.array(
            [self.decomposition.coords(p) for p in range(self.decomposition.n_patches)],
            dtype=np.float64,
        )
        weights = np.array(
            [self.decomposition.patch_size(p) for p in range(self.decomposition.n_patches)],
            dtype=np.float64,
        )
        self.patch_proc = recursive_coordinate_bisection(
            centers, np.maximum(weights, 1.0), config.n_procs
        )
        self.initial_placement = {
            d.index: int(self.patch_proc[d.home_patch]) for d in self.descriptors
        }

    # ------------------------------------------------------------------ #
    @property
    def sequential_reference_s(self) -> float:
        """Modeled one-processor step time on this machine (no messaging)."""
        return (
            self.cost_model.sequential_step_cost(self.counts)
            * self.config.machine.cpu_factor
        )

    @property
    def flops_per_step(self) -> float:
        """Flops of one MD step under the flop model."""
        return self.flop_model.step_flops(self.counts)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all phases of the LB schedule; returns all measurements."""
        placement = dict(self.initial_placement)
        schedule: list[str | None] = list(self.config.lb_schedule) + [None]
        phases: list[PhaseResult] = []
        strategy_applied: str | None = "static"
        for i, next_strategy in enumerate(schedule):
            trace_full = self.config.trace_final_phase and next_strategy is None
            phase = self._run_phase(i, strategy_applied, placement, trace_full)
            phases.append(phase)
            if next_strategy is not None:
                placement = self._apply_strategy(next_strategy, phase)
                strategy_applied = next_strategy
        return SimulationResult(
            config=self.config,
            phases=phases,
            counts=self.counts,
            sequential_reference_s=self.sequential_reference_s,
            flops_per_step=self.flops_per_step,
        )

    def run_phase_only(
        self, placement: dict[int, int] | None = None, trace_full: bool = False
    ) -> PhaseResult:
        """Run a single phase at a given placement (analysis/benchmarks)."""
        return self._run_phase(
            0, "static", placement or dict(self.initial_placement), trace_full
        )

    # ------------------------------------------------------------------ #
    def _run_phase(
        self,
        phase_index: int,
        strategy_applied: str | None,
        placement: dict[int, int],
        trace_full: bool,
    ) -> PhaseResult:
        cfg = self.config
        scheduler = Scheduler(
            cfg.n_procs,
            cfg.machine,
            trace_full=trace_full,
            optimized_multicast=cfg.optimized_multicast,
            proc_speed_factors=cfg.proc_speed_factors,
        )
        backend = (
            NumericBackend(
                self.system,
                NonbondedOptions(cutoff=cfg.cutoff),
                dt=cfg.dt,
            )
            if cfg.numeric
            else None
        )
        decomp = self.decomposition
        n_steps = cfg.steps_per_phase

        # --- create home patches -------------------------------------- #
        patch_oid: dict[int, int] = {}
        patch_chares: dict[int, HomePatchChare] = {}
        for p in range(decomp.n_patches):
            atoms = decomp.patch_atoms[p]
            chare = HomePatchChare(
                p,
                atoms,
                self.cost_model.integration_cost(len(atoms)),
                n_steps,
                backend,
            )
            patch_oid[p] = scheduler.register(chare, int(self.patch_proc[p]))
            patch_chares[p] = chare

        # --- create computes ------------------------------------------ #
        compute_proc: dict[int, int] = {}
        compute_oid: dict[int, int] = {}
        oid_to_desc: dict[int, int] = {}
        for d in self.descriptors:
            if d.migratable:
                proc = int(placement.get(d.index, self.patch_proc[d.home_patch]))
            else:
                proc = int(self.patch_proc[d.home_patch])
            compute_proc[d.index] = proc
            if d.kind in ("nb_self", "nb_pair"):
                atoms_a = decomp.patch_atoms[d.patches[0]]
                atoms_b = (
                    decomp.patch_atoms[d.patches[1]] if len(d.patches) > 1 else None
                )
                chare: NonbondedComputeChare | BondedComputeChare = (
                    NonbondedComputeChare(
                        d.patches, d.load, d.part, d.n_parts, backend, atoms_a, atoms_b
                    )
                )
            else:
                chare = BondedComputeChare(
                    d.patches, d.load, d.migratable, backend, d.term_indices
                )
            oid = scheduler.register(chare, proc)
            compute_oid[d.index] = oid
            oid_to_desc[oid] = d.index

        # --- create proxies and wire everything ------------------------ #
        proxy_oid: dict[tuple[int, int], int] = {}
        proxy_chares: dict[tuple[int, int], ProxyPatchChare] = {}
        for d in self.descriptors:
            proc = compute_proc[d.index]
            for q in d.patches:
                if int(self.patch_proc[q]) != proc and (q, proc) not in proxy_oid:
                    proxy = ProxyPatchChare(
                        q, patch_oid[q], decomp.patch_size(q)
                    )
                    proxy_oid[(q, proc)] = scheduler.register(proxy, proc)
                    proxy_chares[(q, proc)] = proxy

        for d in self.descriptors:
            proc = compute_proc[d.index]
            cid = compute_oid[d.index]
            compute = scheduler.object(cid)
            for q in d.patches:
                if int(self.patch_proc[q]) == proc:
                    home = patch_chares[q]
                    home.local_compute_ids.append(cid)
                    compute.deposit_ids.append(patch_oid[q])
                else:
                    proxy = proxy_chares[(q, proc)]
                    proxy.local_compute_ids.append(cid)
                    compute.deposit_ids.append(proxy_oid[(q, proc)])

        for p in range(decomp.n_patches):
            home = patch_chares[p]
            home.proxy_ids = [
                oid for (q, _proc), oid in proxy_oid.items() if q == p
            ]
            home.expected_contributions = len(home.local_compute_ids) + len(
                home.proxy_ids
            )
        for proxy in proxy_chares.values():
            proxy.expected_deposits = len(proxy.local_compute_ids)

        # --- drive the steps ------------------------------------------- #
        n_patches = decomp.n_patches
        completion: list[float] = []
        round_counts: dict[int, int] = {}

        # Instrumentation covers every round: per-round work is identical
        # (positions are fixed in timing mode), so totals divide exactly by
        # the round count.  Gating instrumentation to a tail window instead
        # would silently drop pipelined work that executes before the
        # slowest patch finishes the preceding round.
        def on_control(time: float, payload) -> None:
            tag, _patch, rnd = payload
            if tag != "step_done":
                return
            round_counts[rnd] = round_counts.get(rnd, 0) + 1
            if round_counts[rnd] == n_patches:
                completion.append(time)
                scheduler.lb_db.mark_step()

        scheduler.set_control_handler(on_control)
        for p in range(n_patches):
            scheduler.inject(patch_oid[p], "start", {}, size_bytes=0.0, at_time=0.0)
        scheduler.run()
        if len(completion) != n_steps:
            raise RuntimeError(
                f"phase {phase_index}: {len(completion)}/{n_steps} steps completed "
                "(protocol deadlock)"
            )

        # --- collect ----------------------------------------------------#
        snapshot = scheduler.lb_db.snapshot()
        measured_steps = max(snapshot.measured_steps, 1)
        measured_loads = {
            oid_to_desc[oid]: stats.load / measured_steps
            for oid, stats in snapshot.objects.items()
            if oid in oid_to_desc
        }
        background = np.zeros(cfg.n_procs)
        for proc, load in snapshot.background_load.items():
            background[proc] = load / measured_steps

        problem = self._build_problem(placement, measured_loads, background)
        stats = placement_stats(problem, placement)

        return PhaseResult(
            phase=phase_index,
            strategy_applied=strategy_applied,
            timings=StepTimings(completion, cfg.measure_last),
            summary=scheduler.trace.summary(),
            placement=dict(placement),
            stats=stats,
            trace=scheduler.trace if trace_full else None,
            measured_loads=measured_loads,
            background_per_step=background,
            backend=backend,
        )

    # ------------------------------------------------------------------ #
    def _build_problem(
        self,
        placement: dict[int, int],
        measured_loads: dict[int, float],
        background: np.ndarray,
    ) -> LBProblem:
        cfg = self.config
        use_measured = cfg.use_measured_loads and measured_loads
        items = []
        for d in self.descriptors:
            if not d.migratable:
                continue
            load = measured_loads.get(d.index) if use_measured else None
            if load is None:
                load = d.load * cfg.machine.cpu_factor
            items.append(
                ComputeItem(
                    index=d.index,
                    load=load,
                    patches=d.patches,
                    proc=int(placement.get(d.index, self.patch_proc[d.home_patch])),
                )
            )
        existing = set()
        for d in self.descriptors:
            if d.migratable:
                continue
            proc = int(self.patch_proc[d.home_patch])
            for q in d.patches:
                if int(self.patch_proc[q]) != proc:
                    existing.add((q, proc))
        return LBProblem(
            n_procs=cfg.n_procs,
            computes=items,
            background=background,
            patch_home={p: int(self.patch_proc[p]) for p in range(self.decomposition.n_patches)},
            existing_proxies=existing,
        )

    def _apply_strategy(self, name: str, phase: PhaseResult) -> dict[int, int]:
        problem = self._build_problem(
            phase.placement, phase.measured_loads, phase.background_per_step
        )
        placement = dict(phase.placement)
        for part in name.split("+"):
            strategy = {"greedy": greedy_strategy, "refine": refine_strategy}.get(
                part, STRATEGIES.get(part)
            )
            new_map = strategy(problem)
            placement.update(new_map)
            for item in problem.computes:
                item.proc = placement[item.index]
        return placement
