"""Numeric backend: real force evaluation inside the parallel protocol.

For the paper's headline tables the chares carry modeled loads only (the
systems are too large to integrate in Python in reasonable time, and only
the *timing* is at stake).  For validation, however, the same chares can run
in *numeric mode*: every compute object evaluates real forces on its slice of
the system with the kernels from :mod:`repro.md`, and every home patch
integrates its atoms with velocity Verlet.  Tests assert that one parallel
force round reproduces :class:`repro.md.engine.SequentialEngine` exactly
(to floating-point reordering) and that parallel NVE trajectories conserve
energy — demonstrating the decomposition computes the right physics, not
just the right message pattern.
"""

from __future__ import annotations

import numpy as np

from repro.md.bonded import (
    compute_angles,
    compute_bonds,
    compute_dihedrals,
    compute_impropers,
)
from repro.backend import get_backend
from repro.md.constants import ACC_CONVERSION
from repro.md.nonbonded import NonbondedOptions, _combined_params
from repro.md.system import MolecularSystem
from repro.util.pbc import minimum_image

__all__ = ["NumericBackend"]

_BONDED_KERNELS = {
    "bond": compute_bonds,
    "angle": compute_angles,
    "dihedral": compute_dihedrals,
    "improper": compute_impropers,
}


class NumericBackend:
    """Shared arrays + kernels for numeric-mode chares.

    The backend owns a private copy of the system (so the caller's system is
    untouched), a global force accumulation buffer, and per-step energy
    tallies.  Chares hold atom-index slices into these arrays; because a home
    patch integrates its atoms only after every compute that reads them has
    run, the shared buffers are race-free even though neighbouring patches
    may be one step apart (the protocol's pipelining).
    """

    def __init__(
        self,
        system: MolecularSystem,
        options: NonbondedOptions,
        dt: float = 1.0,
        pairlist_skin: float = 1.5,
        kernel_backend=None,
    ) -> None:
        """``pairlist_skin`` enables per-compute Verlet-style candidate
        caching (pairs within ``cutoff + skin`` are reused until an involved
        atom moves more than ``skin/2``); 0 disables the cache.

        ``kernel_backend`` selects the :mod:`repro.backend` kernel set for
        the pair math (``None`` = session default); resolved once so every
        compute of this backend instance runs the same kernels."""
        self.kernel_backend = get_backend(kernel_backend)
        self.system = system.copy()
        self.system.wrap()
        self.options = options
        self.dt = float(dt)
        self.positions = self.system.positions
        self.velocities = self.system.velocities
        self.forces = np.zeros_like(self.positions)
        self.masses = self.system.masses
        self.exclusions = self.system.exclusions
        self._keys14 = np.sort(
            self.exclusions.pair_key(
                self.exclusions.pairs14[:, 0], self.exclusions.pairs14[:, 1]
            )
        ) if len(self.exclusions.pairs14) else np.zeros(0, dtype=np.int64)
        # per-step scalar energy tallies, keyed by step
        self.energy_by_step: dict[int, dict[str, float]] = {}
        self.pairlist_skin = float(pairlist_skin)
        # per-compute Verlet caches: cache_key -> {ii, jj, atoms, ref}
        self._pair_cache: dict = {}
        self.pairlist_builds = 0
        self.pairlist_reuses = 0

    # ------------------------------------------------------------------ #
    def _tally(self, step: int, key: str, value: float) -> None:
        bucket = self.energy_by_step.setdefault(
            step, {"lj": 0.0, "elec": 0.0, "bonded": 0.0, "kinetic": 0.0}
        )
        bucket[key] += value

    def energies(self, step: int) -> dict[str, float]:
        """Energy tallies accumulated for ``step``."""
        return dict(self.energy_by_step.get(step, {}))

    # ------------------------------------------------------------------ #
    def _enumerate_compute(
        self,
        atoms_a: np.ndarray,
        atoms_b: np.ndarray | None,
        part: int,
        n_parts: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All candidate pairs of one (possibly split) compute, vectorized.

        Self computes pair row atom ``atoms_a[k]`` with the suffix
        ``atoms_a[k+1:]`` (each pair once); pair computes stripe rows
        against all of ``atoms_b``.  Enumeration order matches the original
        per-row loop, so energies are reproducible to the bit.
        """
        if atoms_b is None:
            ks = np.arange(len(atoms_a), dtype=np.int64)[part::n_parts]
            cnt = len(atoms_a) - 1 - ks
            keep = cnt > 0
            ks, cnt = ks[keep], cnt[keep]
            if len(ks) == 0:
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty.copy()
            total = int(cnt.sum())
            offsets = np.cumsum(cnt) - cnt
            ii = np.repeat(atoms_a[ks], cnt)
            jj = atoms_a[np.repeat(ks + 1 - offsets, cnt) + np.arange(total)]
        else:
            rows = atoms_a[part::n_parts]
            ii = np.repeat(rows, len(atoms_b))
            jj = np.tile(atoms_b, len(rows))
        return ii, jj

    def invalidate_pair_caches(self) -> None:
        """Drop every per-compute candidate cache (after a state restore)."""
        self._pair_cache.clear()

    def _cached_candidates(
        self,
        cache_key,
        atoms_a: np.ndarray,
        atoms_b: np.ndarray | None,
        part: int,
        n_parts: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate pairs via the compute's Verlet cache.

        Cached pairs lie within ``cutoff + skin`` of the build positions;
        the list stays a valid superset of in-cutoff pairs until an involved
        atom moves more than ``skin/2``, the standard Verlet bound.
        """
        pos = self.positions
        box = self.system.box
        half_skin2 = (0.5 * self.pairlist_skin) ** 2
        entry = self._pair_cache.get(cache_key)
        if entry is not None:
            moved = minimum_image(pos[entry["atoms"]] - entry["ref"], box)
            if (
                len(moved)
                and float(np.einsum("ij,ij->i", moved, moved).max()) > half_skin2
            ):
                entry = None
        if entry is None:
            ii, jj = self._enumerate_compute(atoms_a, atoms_b, part, n_parts)
            if len(ii):
                delta = minimum_image(pos[jj] - pos[ii], box)
                r2 = np.einsum("ij,ij->i", delta, delta)
                keep = r2 < (self.options.cutoff + self.pairlist_skin) ** 2
                ii, jj = ii[keep], jj[keep]
            involved = (
                atoms_a
                if atoms_b is None
                else np.concatenate([atoms_a[part::n_parts], atoms_b])
            )
            entry = {
                "ii": ii,
                "jj": jj,
                "atoms": involved,
                "ref": pos[involved].copy(),
            }
            self._pair_cache[cache_key] = entry
            self.pairlist_builds += 1
        else:
            self.pairlist_reuses += 1
        return entry["ii"], entry["jj"]

    def nonbonded(
        self,
        step: int,
        atoms_a: np.ndarray,
        atoms_b: np.ndarray | None,
        part: int,
        n_parts: int,
        cache_key=None,
    ) -> None:
        """Evaluate a (possibly split) non-bonded compute and accumulate.

        Rows of ``atoms_a`` are striped ``part::n_parts`` — the same
        partitioning the descriptors used for load counting, so numeric and
        timing modes agree on which object owns which pairs.  With a
        ``cache_key`` (the calling chare's identity) candidates are served
        from a per-compute Verlet cache instead of re-enumerated.
        """
        pos = self.positions
        box = self.system.box
        if cache_key is not None and self.pairlist_skin > 0:
            ii, jj = self._cached_candidates(
                cache_key, atoms_a, atoms_b, part, n_parts
            )
        else:
            ii, jj = self._enumerate_compute(atoms_a, atoms_b, part, n_parts)
        if len(ii) == 0:
            return
        within = self.kernel_backend.pair_mask(pos, box, ii, jj, self.options.cutoff)
        ii, jj = ii[within], jj[within]
        if len(ii) == 0:
            return
        excl = self.exclusions
        keys = excl.pair_key(ii, jj)
        is_excluded = excl.is_excluded(ii, jj)
        if len(self._keys14):
            pos14 = np.minimum(
                np.searchsorted(self._keys14, keys), len(self._keys14) - 1
            )
            is14 = self._keys14[pos14] == keys
        else:
            is14 = np.zeros(len(ii), dtype=bool)
        normal = ~(is_excluded | is14)

        ff = self.system.forcefield
        for mask, lj_scale, el_scale in (
            (normal, 1.0, 1.0),
            (is14, ff.scale14_lj, ff.scale14_elec),
        ):
            if not np.any(mask):
                continue
            i_m, j_m = ii[mask], jj[mask]
            eps, rmin, qq = _combined_params(self.system, i_m, j_m)
            # fused distance + pair math + scatter; the pairs already passed
            # the distance test, so the kernel's own mask keeps all of them
            e_lj, e_el, _ = self.kernel_backend.nb_pairs(
                pos, box, i_m, j_m, eps * lj_scale, rmin, qq * el_scale,
                self.options.cutoff, self.options.switch, self.forces, i_m, j_m,
            )
            self._tally(step, "lj", e_lj)
            self._tally(step, "elec", e_el)

    def bonded(self, step: int, term_indices: dict[str, np.ndarray]) -> None:
        """Evaluate one bonded compute's term subsets and accumulate."""
        total = 0.0
        for kind, idx in term_indices.items():
            if len(idx) == 0:
                continue
            total += _BONDED_KERNELS[kind](self.system, self.forces, idx)
        self._tally(step, "bonded", total)

    # ------------------------------------------------------------------ #
    def integrate(self, step: int, atoms: np.ndarray, first_round: bool) -> None:
        """Velocity-Verlet update of one patch's atoms.

        ``first_round`` means the incoming forces are F(x0): no completion
        half-kick exists yet.  The opening half-kick + drift for the next
        step always runs, so positions advance for the next position
        multicast.  (See module docstring of :mod:`repro.core.chares` for
        the exact correspondence with the sequential engine.)
        """
        f = self.forces[atoms]
        m = self.masses[atoms][:, None]
        half = 0.5 * self.dt * ACC_CONVERSION * f / m
        if not first_round:
            self.velocities[atoms] += half  # completes the previous step
        v2 = np.einsum("ij,ij->i", self.velocities[atoms], self.velocities[atoms])
        self._tally(
            step,
            "kinetic",
            float(0.5 / ACC_CONVERSION * np.dot(self.masses[atoms], v2)),
        )
        self.velocities[atoms] += half  # opens the next step
        self.positions[atoms] += self.dt * self.velocities[atoms]
        self.forces[atoms] = 0.0  # ready for the next accumulation round

    def clear_forces(self, atoms: np.ndarray) -> None:
        """Zero the force rows of the given atoms."""
        self.forces[atoms] = 0.0
