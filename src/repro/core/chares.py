"""The message-driven objects of the NAMD design (paper §3.1).

"The cubes described above are represented in NAMD by objects called *home
patches*.  Each home patch is responsible for distributing coordinate data,
retrieving forces, and integrating the equations of motion for all of the
atoms in the cube of space owned by the patch.  The forces used by the
patches are computed by a variety of *compute objects*. ... When running in
parallel, some compute objects require data from patches not on the compute
object's processor.  In this case, a *proxy patch* takes the place of the
home patch on the compute object's processor."

Per-round message flow (one MD timestep):

1. ``HomePatchChare.advance`` — integrate (except round 0), then multicast
   positions to proxy patches and notify co-located computes.
2. ``ProxyPatchChare.recv_positions`` — notify the computes on its
   processor that depend on this patch.
3. ``ComputeChare.patch_ready`` — when all of its patches are ready,
   execute the force computation (modeled cost; real kernels in numeric
   mode) and deposit forces with each patch's local representative.
4. ``ProxyPatchChare.deposit`` — after the last local compute deposits,
   send one combined force message back to the home patch.
5. ``HomePatchChare.deposit`` — after all local computes and all proxies
   have contributed, self-send ``advance`` for the next round.

Position messages carry ~32 bytes/atom and force messages ~24 bytes/atom,
the dominant communication the machine model prices.
"""

from __future__ import annotations

import numpy as np

from repro.core.numeric import NumericBackend
from repro.runtime.chare import Chare
from repro.runtime.message import Priority

__all__ = [
    "HomePatchChare",
    "ProxyPatchChare",
    "NonbondedComputeChare",
    "BondedComputeChare",
    "POSITION_BYTES_PER_ATOM",
    "FORCE_BYTES_PER_ATOM",
]

POSITION_BYTES_PER_ATOM = 32.0
FORCE_BYTES_PER_ATOM = 24.0
_HEADER_BYTES = 64.0


class HomePatchChare(Chare):
    """Owns the atoms of one spatial patch; integrates and distributes."""

    category = "integration"
    migratable = False

    def __init__(
        self,
        patch: int,
        atoms: np.ndarray,
        integration_cost: float,
        n_rounds: int,
        backend: NumericBackend | None = None,
    ) -> None:
        super().__init__()
        self.patch = patch
        self.atoms = atoms
        self.n_atoms = len(atoms)
        self.integration_cost = integration_cost
        self.n_rounds = n_rounds
        self.backend = backend
        # wired by the driver after all chares exist
        self.proxy_ids: list[int] = []
        self.local_compute_ids: list[int] = []
        self.expected_contributions = 0
        self._received = 0
        self.round = 0

    def label(self) -> str:
        """Display name used in traces."""
        return f"patch({self.patch})"

    # ------------------------------------------------------------------ #
    def start(self) -> float:
        """Round 0 kickoff (driver-injected): distribute initial positions."""
        self._send_positions()
        return 0.0

    def deposit(self, source: int = -1) -> float:
        """One force contribution arrived (local compute or proxy message)."""
        self._received += 1
        if self._received >= self.expected_contributions:
            self._received = 0
            # integration is a separate prioritized task, as in NAMD
            self.send(self.object_id, "advance", {}, size_bytes=0.0,
                      priority=Priority.HIGH)
        return 0.0

    def advance(self) -> float:
        """Integrate this patch's atoms, then distribute new positions."""
        if self.backend is not None:
            self.backend.integrate(self.round, self.atoms, self.round == 0)
        cost = self.integration_cost
        self.runtime.post_control(("step_done", self.patch, self.round))
        self.round += 1
        if self.round < self.n_rounds:
            self._send_positions()
        return cost

    # ------------------------------------------------------------------ #
    def _send_positions(self) -> None:
        size = _HEADER_BYTES + POSITION_BYTES_PER_ATOM * self.n_atoms
        if self.proxy_ids:
            self.multicast(
                self.proxy_ids,
                "recv_positions",
                {},
                size_bytes=size,
                priority=Priority.HIGH,
            )
        for cid in self.local_compute_ids:
            self.send(cid, "patch_ready", {}, size_bytes=0.0)
        if self.expected_contributions == 0:
            # empty region: nothing will deposit, so self-advance
            self.send(self.object_id, "advance", {}, size_bytes=0.0)


class ProxyPatchChare(Chare):
    """Stand-in for a home patch on another processor."""

    category = "proxy"
    migratable = False

    def __init__(self, patch: int, home_id: int, n_atoms: int) -> None:
        super().__init__()
        self.patch = patch
        self.home_id = home_id
        self.n_atoms = n_atoms
        self.local_compute_ids: list[int] = []
        self.expected_deposits = 0
        self._deposits = 0

    def label(self) -> str:
        """Display name used in traces."""
        return f"proxy({self.patch})"

    def recv_positions(self) -> float:
        """Home patch's coordinates arrived: wake dependent computes."""
        for cid in self.local_compute_ids:
            self.send(cid, "patch_ready", {}, size_bytes=0.0)
        return 0.0

    def deposit(self, source: int = -1) -> float:
        """A local compute deposited forces for this patch."""
        self._deposits += 1
        if self._deposits >= self.expected_deposits:
            self._deposits = 0
            self.send(
                self.home_id,
                "deposit",
                {"source": self.object_id},
                size_bytes=_HEADER_BYTES + FORCE_BYTES_PER_ATOM * self.n_atoms,
                priority=Priority.HIGH,
            )
        return 0.0


class _ComputeBase(Chare):
    """Common wait-for-patches / deposit behaviour of compute objects."""

    def __init__(self, load: float, n_patches_needed: int) -> None:
        super().__init__()
        self.load = load
        self.n_patches_needed = n_patches_needed
        self._ready = 0
        #: local representative (home or proxy object id) per needed patch
        self.deposit_ids: list[int] = []

    def patch_ready(self) -> float:
        """A needed patch's positions are available on this processor."""
        self._ready += 1
        if self._ready >= self.n_patches_needed:
            self._ready = 0
            return self._execute()
        return 0.0

    def _execute(self) -> float:
        self._do_work()
        for dep in self.deposit_ids:
            self.send(dep, "deposit", {"source": self.object_id}, size_bytes=0.0)
        return self.load

    def _do_work(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class NonbondedComputeChare(_ComputeBase):
    """Non-bonded pair/self force computation (§3, §4.2.1).

    The paper's dominant migratable object kind: 14 per patch before
    grainsize splitting.  ``part``/``n_parts`` identify a grainsize slice.
    """

    category = "nonbonded"
    migratable = True

    def __init__(
        self,
        patches: tuple[int, ...],
        load: float,
        part: int = 0,
        n_parts: int = 1,
        backend: NumericBackend | None = None,
        atoms_a: np.ndarray | None = None,
        atoms_b: np.ndarray | None = None,
    ) -> None:
        super().__init__(load, n_patches_needed=len(patches))
        self.patches = patches
        self.part = part
        self.n_parts = n_parts
        self.backend = backend
        self.atoms_a = atoms_a
        self.atoms_b = atoms_b
        self.round = 0

    def label(self) -> str:
        """Display name used in traces."""
        p = "+".join(str(x) for x in self.patches)
        return f"nb({p})[{self.part}/{self.n_parts}]"

    def _do_work(self) -> None:
        if self.backend is not None:
            self.backend.nonbonded(
                self.round,
                self.atoms_a,
                self.atoms_b,
                self.part,
                self.n_parts,
                cache_key=self.label(),
            )
        self.round += 1


class BondedComputeChare(_ComputeBase):
    """Bonded-term computation, intra-patch (migratable) or inter-patch
    (non-migratable), per §4.2.2."""

    category = "bonded"

    def __init__(
        self,
        patches: tuple[int, ...],
        load: float,
        migratable: bool,
        backend: NumericBackend | None = None,
        term_indices: dict[str, np.ndarray] | None = None,
    ) -> None:
        super().__init__(load, n_patches_needed=len(patches))
        self.patches = patches
        self.migratable = migratable
        self.backend = backend
        self.term_indices = term_indices or {}
        self.round = 0

    def label(self) -> str:
        """Display name used in traces."""
        p = "+".join(str(x) for x in self.patches)
        kind = "intra" if self.migratable else "inter"
        return f"bonded_{kind}({p})"

    def _do_work(self) -> None:
        if self.backend is not None:
            self.backend.bonded(self.round, self.term_indices)
        self.round += 1
