"""Grainsize control shared by the simulated and real runtimes (§4.2.1–2).

The paper's headline instrumentation-driven optimization: when one compute
object's execution time exceeds a target grainsize, split it into slices so
no single object caps the achievable load balance.  The simulated layer
(:mod:`repro.core.computes`) applies this to compute *descriptors*; the real
engine (:mod:`repro.md.parallel`) applies the same policy to its half-shell
cell tasks.  Both consume the helpers here so the split arithmetic — how
many parts, which rows land in which part, what each part costs — can never
drift between the two runtimes.

A split is always a *row stripe*: part ``p`` of ``n`` owns the rows
``p::n`` of the object's first patch/cell.  Striping (rather than chunking)
keeps every part's load close to the mean even when the per-row pair counts
trend across the block, and it makes the parts an exact partition of the
parent's pair set:

* self blocks: pair ``(i, j)`` with ``i < j`` belongs to the part owning
  row ``i``;
* pair blocks: pair ``(i, j)`` belongs to the part owning row ``i`` of the
  first cell (every row pairs with the whole second cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GrainsizeConfig",
    "split_counts",
    "stripe_candidate_counts",
]


@dataclass(frozen=True)
class GrainsizeConfig:
    """Grainsize-control switches (§4.2.1 and §5 lesson 2).

    ``target_load_s`` is the desired maximum object execution time in
    reference seconds; the paper recommends "around 5 ms" of computation per
    message.  ``split_self``/``split_pairs`` correspond to the two stages of
    the paper's optimization: Figure 1 was measured with self splitting only,
    Figure 2 with pair splitting added.
    """

    target_load_s: float = 0.005
    split_self: bool = True
    split_pairs: bool = True
    max_parts: int = 64

    def parts_for(self, load: float, enabled: bool) -> int:
        """Number of grainsize slices for an object of ``load`` seconds."""
        if not enabled or load <= self.target_load_s:
            return 1
        return min(int(np.ceil(load / self.target_load_s)), self.max_parts)


def split_counts(row_counts: np.ndarray, n_parts: int) -> list[tuple[int, int]]:
    """Per-part ``(pairs, rows)`` when rows are striped ``part::n_parts``."""
    out = []
    for part in range(n_parts):
        rows = row_counts[part::n_parts]
        out.append((int(rows.sum()), len(rows)))
    return out


def stripe_candidate_counts(
    na: int, nb: int | None, n_parts: int
) -> np.ndarray:
    """Candidate-pair count of each stripe of a self (``nb=None``) or
    ``na``×``nb`` pair block.

    This is the pro-rata weight used to hand a parent task's cost-model
    prior down to its grainsize slices when per-row pair counts are not
    available (the real engine's startup, before any measurement): self
    block row ``i`` contributes ``na - 1 - i`` candidates (pairs ``i < j``),
    a pair block row contributes ``nb``.  The counts sum exactly to the
    parent's candidate count.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    out = np.zeros(n_parts, dtype=np.int64)
    if nb is None:
        per_row = np.arange(na - 1, -1, -1, dtype=np.int64)
    else:
        per_row = np.full(na, int(nb), dtype=np.int64)
    for part in range(n_parts):
        out[part] = int(per_row[part::n_parts].sum())
    return out
